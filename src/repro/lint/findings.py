"""The unit of lint output: one finding at one source location.

Findings identify themselves to the baseline by *content* (rule, file,
stripped source line) rather than line number, so unrelated edits above
a grandfathered violation do not un-suppress it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule_id: str
    message: str
    path: str       #: path as scanned, for display
    rel: str        #: package-relative path, for scoping and baselines
    line: int       #: 1-based source line
    col: int        #: 0-based column
    snippet: str    #: the stripped source line, for baseline matching

    @property
    def group_key(self) -> tuple[str, str, str]:
        """Content-based identity used for baseline suppression."""
        return (self.rule_id, self.rel, self.snippet)

    def render(self) -> str:
        """Conventional ``path:line:col: RULE message`` line."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}")

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form for ``--format json``."""
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "rel": self.rel,
            "line": self.line,
            "col": self.col,
            "snippet": self.snippet,
        }
