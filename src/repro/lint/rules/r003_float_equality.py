"""R003: float equality in hot PHY/radio paths.

``==`` / ``!=`` against a float literal inside the signal-processing
paths is almost always a latent bug: values arrive through FFTs, AGC
gains and LLR scalings where exact equality is an accident of rounding.
The fix is ``math.isclose`` / ``np.isclose`` — or, when the comparison
really is an exact sentinel, a baseline entry saying so.

Also flags identity comparisons with numeric literals (``x is 5``),
which compare object identity and only work by CPython caching
accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Package-relative prefixes that count as hot signal paths.
HOT_PREFIXES = ("phy/", "radio/")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _is_number_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and \
        isinstance(node.value, (int, float, complex)) and \
        not isinstance(node.value, bool)


@register
class FloatEqualityRule(Rule):
    """Flag exact float comparisons where tolerances belong."""

    rule_id = "R003"
    title = "float equality comparison in a hot PHY path"

    def applies(self, rel: str) -> bool:
        return rel.startswith(HOT_PREFIXES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and \
                        any(_is_float_literal(o) for o in operands):
                    yield self.finding(
                        ctx, node,
                        "exact float comparison in a hot path: use "
                        "math.isclose/np.isclose, or baseline it if the "
                        "value is a true sentinel")
                    break
                if isinstance(op, (ast.Is, ast.IsNot)) and \
                        (_is_number_literal(right)
                         or _is_number_literal(node.left)):
                    yield self.finding(
                        ctx, node,
                        "identity comparison with a numeric literal "
                        "('is' compares object identity, not value)")
                    break
