"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent mapping for a subtree."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST,
              parents: dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    """Walk from ``node`` up to the root."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def call_order_key(call: ast.Call) -> tuple[int, int]:
    """Source-order sort key for call nodes.

    Chained calls like ``w.write(a, 6).write(b, 16)`` all share the
    position of the chain's head, so ordering by the *end* of each
    call's function expression (the position of its ``.write`` token)
    recovers true evaluation order.
    """
    func = call.func
    return (getattr(func, "end_lineno", None) or call.lineno,
            getattr(func, "end_col_offset", None) or call.col_offset)


def int_value(node: ast.AST) -> int | None:
    """The value of an int literal (bools excluded), else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def float_value(node: ast.AST) -> float | None:
    """The value of a float literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value
    return None


def _is_upper_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id.isupper()


def constant_definition_spans(tree: ast.Module) \
        -> list[tuple[int, int]]:
    """Line spans of module-level ``UPPER_CASE = ...`` assignments.

    Naming a protocol value in a module-level constant is exactly what
    the literal-hygiene rules funnel code towards, so literals inside
    these spans are exempt.
    """
    spans: list[tuple[int, int]] = []
    for stmt in tree.body:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        if targets and all(_is_upper_name(t) for t in targets):
            spans.append((stmt.lineno, stmt.end_lineno or stmt.lineno))
    return spans


def unparse(node: ast.AST) -> str:
    """Stable textual rendering of an expression."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we hit
        return ast.dump(node)
