#!/usr/bin/env python
"""Standalone runner for the Fig-12 executor/kernel bench.

Equivalent to ``python -m repro.cli bench fig12``; kept here so the
benchmarks/ directory is the one place to look for perf entry points.

Usage::

    PYTHONPATH=src python benchmarks/bench_fig12.py [--quick]
        [--out BENCH_fig12.json] [--slots N]
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_fig12.json")
    parser.add_argument("--slots", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.experiments import bench_fig12
    doc = bench_fig12.main(out_path=args.out, quick=args.quick,
                           n_slots=args.slots)
    print(bench_fig12.render(doc))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
