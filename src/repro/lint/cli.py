"""Command-line front end: ``python -m repro.lint``.

Also mounted as the ``lint`` subcommand of ``python -m repro.cli``.

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 bad usage
or unreadable inputs — so CI can tell "violations" from "broken run".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
)
from repro.lint.engine import LintEngine, LintError
from repro.lint.registry import RuleError, iter_rules

#: Default scan roots, tried in order relative to the current directory.
DEFAULT_ROOTS = ("src/repro", "repro", "src")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the repro.cli subcommand)."""
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", dest="output_format",
                        help="finding output format")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE_NAME} "
                             f"when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current findings to the "
                             "baseline file and exit 0")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(e.g. R001,R004)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def _resolve_paths(args: argparse.Namespace) -> list[Path]:
    if args.paths:
        return [Path(p) for p in args.paths]
    for candidate in DEFAULT_ROOTS:
        root = Path(candidate)
        if root.is_dir():
            return [root]
    return [Path(".")]


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.is_file() or args.write_baseline:
        return default
    return None


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    try:
        select = None if args.select is None else \
            [s.strip() for s in args.select.split(",") if s.strip()]
        if select is not None and not select:
            print("error: --select given but names no rules",
                  file=sys.stderr)
            return 2
        rules = iter_rules(select)
    except RuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    engine = LintEngine(rules=rules)
    try:
        findings = engine.run(_resolve_paths(args))
    except (LintError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)

    if args.write_baseline:
        assert baseline_path is not None
        old = Baseline.load(baseline_path) if baseline_path.is_file() \
            else Baseline()
        new = Baseline.from_findings(findings)
        # Keep justifications already written for surviving entries.
        for key, text in old.justifications.items():
            if key in new.entries:
                new.justifications[key] = text
        new.save(baseline_path)
        print(f"wrote {sum(new.entries.values())} finding(s) to "
              f"{baseline_path}")
        return 0

    suppressed: list = []
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = baseline.filter(findings)

    if args.output_format == "json":
        print(json.dumps({
            "findings": [f.to_json() for f in findings],
            "suppressed": len(suppressed),
        }, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        print(summary)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Domain-aware 3GPP bit-contract and determinism "
                    "lint for the NR-Scope reproduction.")
    add_arguments(parser)
    return run(parser.parse_args(argv))
