"""The radio medium: path loss, shadowing and link SNR.

Stands in for the physical RF path between the gNB, the UEs, and
NR-Scope's USRP (DESIGN.md substitution table).  The paper's coverage
results (Fig 13 floor map, the 350 m / 1460 m T-Mobile cells in Fig 6)
are all functions of the sniffer's receive SNR, which this module models
with log-distance path loss plus log-normal shadowing — the standard
indoor/urban abstraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class MediumError(ValueError):
    """Raised for non-physical link parameters."""


@dataclass(frozen=True)
class Position:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss: PL(d) = PL0 + 10 n log10(d / d0).

    Defaults approximate 3GPP UMi at 3.5 GHz (PL0 ~ 32 dB at 1 m,
    exponent 2.9 indoors / 3.2 urban).  ``shadowing_sigma_db`` adds
    log-normal shadowing, redrawn per link but fixed over a session, the
    way a static sniffer experiences it.
    """

    pl0_db: float = 32.0
    reference_distance_m: float = 1.0
    exponent: float = 2.9
    shadowing_sigma_db: float = 3.0

    def path_loss_db(self, distance_m: float,
                     rng: np.random.Generator | None = None) -> float:
        """Path loss at a distance, with optional shadowing draw."""
        if distance_m <= 0:
            raise MediumError(f"distance must be positive: {distance_m}")
        d = max(distance_m, self.reference_distance_m)
        loss = self.pl0_db + 10.0 * self.exponent * \
            math.log10(d / self.reference_distance_m)
        if rng is not None and self.shadowing_sigma_db > 0:
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return loss


@dataclass
class Link:
    """A fixed radio link with a resolved SNR.

    ``snr_db`` is the wideband average; per-slot small-scale variation is
    the job of :mod:`repro.ue.channel`.
    """

    snr_db: float

    def noise_variance(self) -> float:
        """Complex noise variance for unit signal power."""
        return 10.0 ** (-self.snr_db / 10.0)


@dataclass
class RadioMedium:
    """Resolves link budgets between the gNB and every receiver.

    The budget is ``SNR = tx_power + tx_gain - PL(d) - noise_floor``.
    ``noise_floor_dbm`` defaults to thermal noise over 20 MHz plus a 7 dB
    receiver noise figure (~ -94 dBm).
    """

    gnb_position: Position
    tx_power_dbm: float = 30.0
    antenna_gain_db: float = 6.0
    noise_floor_dbm: float = -94.0
    path_loss: PathLossModel = None  # type: ignore[assignment]
    max_snr_db: float = 40.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.path_loss is None:
            self.path_loss = PathLossModel()
        self._rng = np.random.default_rng(self.seed)
        self._shadowing_cache: dict[tuple[float, float], float] = {}

    def _shadowing_db(self, position: Position) -> float:
        key = (round(position.x, 3), round(position.y, 3))
        if key not in self._shadowing_cache:
            sigma = self.path_loss.shadowing_sigma_db
            self._shadowing_cache[key] = float(
                self._rng.normal(0.0, sigma)) if sigma > 0 else 0.0
        return self._shadowing_cache[key]

    def snr_at(self, position: Position) -> float:
        """Average downlink SNR (dB) seen by a receiver at ``position``."""
        distance = self.gnb_position.distance_to(position)
        loss = self.path_loss.path_loss_db(max(distance, 0.1))
        loss += self._shadowing_db(position)
        snr = self.tx_power_dbm + self.antenna_gain_db - loss \
            - self.noise_floor_dbm
        return min(snr, self.max_snr_db)

    def link_to(self, position: Position) -> Link:
        """Resolve a :class:`Link` for a receiver position."""
        return Link(snr_db=self.snr_at(position))


def lab_medium(snr_db: float = 25.0) -> RadioMedium:
    """A bench-top medium delivering a fixed, clean SNR everywhere.

    Matches the paper's lab settings (USRP a few metres from the gNB):
    the sniffer link is good, and misses come from scheduling/fading, not
    the sniffer's own placement.
    """
    medium = RadioMedium(gnb_position=Position(0.0, 0.0),
                         path_loss=PathLossModel(shadowing_sigma_db=0.0))
    # Pin the budget so snr_at() returns `snr_db` at 1 m.
    medium.tx_power_dbm = snr_db + medium.noise_floor_dbm \
        - medium.antenna_gain_db + medium.path_loss.pl0_db
    return medium
