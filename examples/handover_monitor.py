#!/usr/bin/env python3
"""Multi-cell telemetry fusion: handover and carrier-aggregation view.

The paper's section 7 sketches a post-processing library fusing multiple
NR-Scope instances into one aggregate stream.  This example runs two
sniffers against two cells (an srsRAN-style n41 cell and an
Amarisoft-style n78 cell), walks a device from one to the other, and
lets the fusion layer recover the handover purely from the two
telemetry streams — neither sniffer ever sees the device's identity,
only its RNTIs.

Run:  python examples/handover_monitor.py
"""

from repro import AMARISOFT_PROFILE, NRScope, Simulation, SRSRAN_PROFILE
from repro.core.multicell import FusedStream, MultiCellController, \
    detect_handovers


def main() -> None:
    controller = MultiCellController()
    for profile in (SRSRAN_PROFILE, AMARISOFT_PROFILE):
        sim = Simulation.build(profile, n_ues=0, seed=5)
        scope = NRScope.attach(sim, snr_db=20.0)
        controller.add_cell(profile.name, sim, scope)

    print("attaching device to srsran (n41)...")
    device = controller.attach_device("srsran", traffic="bulk",
                                      rate_bps=5e6)
    controller.run(seconds=1.5)

    print("device moves: handover to amarisoft (n78)...")
    controller.handover(device, "srsran", "amarisoft", traffic="bulk",
                        rate_bps=5e6)
    controller.run(seconds=1.5)

    streams = [controller.stream(name) for name in controller.cells]
    for stream in streams:
        rntis = [f"0x{r:04x}" for r in stream.scope.telemetry.rntis()]
        print(f"  {stream.name}: decoded RNTIs {rntis}, "
              f"{len(stream.scope.telemetry)} DCIs")

    events = detect_handovers(streams, max_gap_s=0.5)
    print(f"\nfusion found {len(events)} handover event(s):")
    for event in events:
        print(f"  0x{event.from_rnti:04x}@{event.from_cell} -> "
              f"0x{event.to_rnti:04x}@{event.to_cell}, "
              f"interruption {event.gap_s * 1e3:.1f} ms "
              f"(left {event.left_at_s:.2f} s, "
              f"joined {event.joined_at_s:.2f} s)")

    if events:
        event = events[0]
        fused = FusedStream(device="phone-1")
        fused.add_leg(controller.stream(event.from_cell),
                      event.from_rnti)
        fused.add_leg(controller.stream(event.to_cell), event.to_rnti)
        print("\nfused device throughput (0.5 s windows):")
        for t, rate in fused.throughput_series(window_s=0.5):
            bar = "#" * int(rate / 4e5)
            print(f"  t={t:4.1f}s  {rate / 1e6:6.2f} Mbps  {bar}")


if __name__ == "__main__":
    main()
