"""Tests for the UE traffic models and buffers."""

import pytest

from repro.ue.traffic import (
    BulkDownload,
    ConstantBitRate,
    OnOffTraffic,
    PoissonPackets,
    TrafficBuffer,
    TrafficError,
    VideoStream,
)

SLOT_S = 0.5e-3


class TestConstantBitRate:
    def test_long_run_rate(self):
        model = ConstantBitRate(rate_bps=4e6, slot_duration_s=SLOT_S)
        total = sum(model.bytes_in_slot(i) for i in range(2000))  # 1 s
        assert total * 8 == pytest.approx(4e6, rel=0.01)

    def test_fractional_bytes_carry(self):
        # 8 kbps at 0.5 ms = 0.5 bytes/slot: arrivals alternate 0/1.
        model = ConstantBitRate(rate_bps=8e3, slot_duration_s=SLOT_S)
        arrivals = [model.bytes_in_slot(i) for i in range(100)]
        assert sum(arrivals) == 50
        assert set(arrivals) == {0, 1}

    def test_rejects_negative(self):
        with pytest.raises(TrafficError):
            ConstantBitRate(rate_bps=-1, slot_duration_s=SLOT_S)


class TestPoisson:
    def test_mean_rate(self):
        model = PoissonPackets(packets_per_second=400, packet_bytes=1400,
                               slot_duration_s=SLOT_S, seed=1)
        total = sum(model.bytes_in_slot(i) for i in range(20000))  # 10 s
        expected = 400 * 10 * 1400
        assert total == pytest.approx(expected, rel=0.1)

    def test_rejects_bad_params(self):
        with pytest.raises(TrafficError):
            PoissonPackets(-1, 1400, SLOT_S)
        with pytest.raises(TrafficError):
            PoissonPackets(10, 0, SLOT_S)


class TestVideo:
    def test_burst_structure(self):
        model = VideoStream(rate_bps=4e6, slot_duration_s=SLOT_S, fps=30,
                            size_jitter=0.0, seed=1)
        arrivals = [model.bytes_in_slot(i) for i in range(2000)]
        bursts = [a for a in arrivals if a > 0]
        # ~30 frames in a second, one burst per frame period.
        assert 25 <= len(bursts) <= 35
        assert all(a == bursts[0] for a in bursts)  # no jitter

    def test_long_run_rate(self):
        model = VideoStream(rate_bps=4e6, slot_duration_s=SLOT_S, seed=2)
        total = sum(model.bytes_in_slot(i) for i in range(20000))
        assert total * 8 == pytest.approx(4e6 * 10, rel=0.15)

    def test_rejects_bad(self):
        with pytest.raises(TrafficError):
            VideoStream(rate_bps=0, slot_duration_s=SLOT_S)


class TestBulkDownload:
    def test_arrives_in_chunks(self):
        model = BulkDownload(rate_cap_bps=8e6, slot_duration_s=SLOT_S,
                             chunk_bytes=131072)
        arrivals = [model.bytes_in_slot(i) for i in range(20000)]
        nonzero = [a for a in arrivals if a > 0]
        assert all(a % 131072 == 0 for a in nonzero)
        # Deep-queue regime: far fewer arrival events than slots.
        assert len(nonzero) < len(arrivals) / 50

    def test_long_run_rate_matches_cap(self):
        model = BulkDownload(rate_cap_bps=8e6, slot_duration_s=SLOT_S,
                             chunk_bytes=65536)
        total = sum(model.bytes_in_slot(i) for i in range(20000))  # 10 s
        # First chunk arrives immediately, hence the one-chunk slack.
        assert total * 8 == pytest.approx(8e7, abs=2 * 65536 * 8)

    def test_rejects_bad_chunk(self):
        with pytest.raises(TrafficError):
            BulkDownload(chunk_bytes=0)


class TestOnOff:
    def test_produces_idle_and_busy_periods(self):
        inner = ConstantBitRate(rate_bps=1e6, slot_duration_s=SLOT_S)
        model = OnOffTraffic(inner=inner, slot_duration_s=SLOT_S,
                             mean_on_s=0.05, mean_off_s=0.05, seed=3)
        arrivals = [model.bytes_in_slot(i) for i in range(10000)]
        idle = sum(1 for a in arrivals if a == 0)
        busy = sum(1 for a in arrivals if a > 0)
        assert idle > 1000 and busy > 1000

    def test_rejects_bad_periods(self):
        inner = BulkDownload()
        with pytest.raises(TrafficError):
            OnOffTraffic(inner=inner, slot_duration_s=SLOT_S, mean_on_s=0)


class TestControlledRate:
    def test_tracks_set_rate(self):
        from repro.ue.traffic import ControlledRate
        model = ControlledRate(slot_duration_s=SLOT_S,
                               initial_rate_bps=1e6)
        first = sum(model.bytes_in_slot(i) for i in range(2000))
        model.set_rate(4e6)
        second = sum(model.bytes_in_slot(i) for i in range(2000, 4000))
        assert first * 8 == pytest.approx(1e6, rel=0.01)
        assert second * 8 == pytest.approx(4e6, rel=0.01)

    def test_zero_rate_sends_nothing(self):
        from repro.ue.traffic import ControlledRate
        model = ControlledRate(slot_duration_s=SLOT_S,
                               initial_rate_bps=1e6)
        model.set_rate(0.0)
        assert sum(model.bytes_in_slot(i) for i in range(100)) == 0

    def test_rejects_negative(self):
        from repro.ue.traffic import ControlledRate
        with pytest.raises(TrafficError):
            ControlledRate(slot_duration_s=SLOT_S,
                           initial_rate_bps=-1.0)
        model = ControlledRate(slot_duration_s=SLOT_S)
        with pytest.raises(TrafficError):
            model.set_rate(-5.0)


class TestTrafficBuffer:
    def test_arrivals_accumulate(self):
        buffer = TrafficBuffer(ConstantBitRate(8e6, SLOT_S))
        buffer.arrive(0)
        assert buffer.backlog_bytes == 500

    def test_packetisation_respects_mtu(self):
        buffer = TrafficBuffer(BulkDownload(rate_cap_bps=0.0,
                                            slot_duration_s=SLOT_S,
                                            chunk_bytes=3500),
                               mtu_bytes=1400)
        buffer.arrive(0)  # 3500-byte chunk -> 2 full + 1 partial packet
        assert buffer.backlog_packets == 3

    def test_drain_returns_bytes_and_packets(self):
        buffer = TrafficBuffer(ConstantBitRate(0, SLOT_S), mtu_bytes=100)
        buffer._packets = [100, 100, 100]
        buffer._backlog_bytes = 300
        served, packets = buffer.drain(250)
        assert served == 250
        assert packets == 2
        assert buffer.backlog_bytes == 50

    def test_partial_packet_completes_later(self):
        buffer = TrafficBuffer(ConstantBitRate(0, SLOT_S), mtu_bytes=100)
        buffer._packets = [100]
        buffer._backlog_bytes = 100
        _, first = buffer.drain(60)
        assert first == 0
        _, second = buffer.drain(40)
        assert second == 1

    def test_drain_more_than_backlog(self):
        buffer = TrafficBuffer(ConstantBitRate(0, SLOT_S))
        buffer._packets = [10]
        buffer._backlog_bytes = 10
        served, packets = buffer.drain(10**6)
        assert (served, packets) == (10, 1)
        assert buffer.backlog_bytes == 0

    def test_negative_drain_rejected(self):
        buffer = TrafficBuffer(BulkDownload())
        with pytest.raises(TrafficError):
            buffer.drain(-1)
