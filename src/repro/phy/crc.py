"""Cyclic redundancy checks from TS 38.212 section 5.1.

5G NR uses six generator polynomials. NR-Scope leans on two of them:

* ``CRC24C`` protects DCI payloads on the PDCCH.  The gNB scrambles
  (XORs) the final 16 CRC bits with the target UE's RNTI, which is both
  how a UE addresses its DCIs and how a sniffer recovers C-RNTIs from
  RACH MSG 4 (paper section 3.1.2).
* ``CRC24A`` protects transport blocks on the PDSCH, which lets the
  sniffer verify decoded RRC messages.

Bits are processed most-significant first, matching the standard's
``a_0..a_{A-1}`` ordering. All functions accept and return numpy uint8
arrays of 0/1 values.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.constants import MAX_RNTI

#: Generator polynomials, MSB (x^L term) excluded, from 38.212 section 5.1.
POLYNOMIALS = {
    "crc24a": (24, 0x864CFB),
    "crc24b": (24, 0x800063),
    "crc24c": (24, 0xB2B117),
    "crc16": (16, 0x1021),
    "crc11": (11, 0x621),
    "crc6": (6, 0x21),
}


class CrcError(ValueError):
    """Raised for unknown CRC names or malformed bit arrays."""


def _as_bits(bits: np.ndarray | list[int]) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise CrcError(f"expected a 1-D bit array, got shape {arr.shape}")
    if arr.size and arr.max() > 1:
        raise CrcError("bit array contains values other than 0/1")
    return arr


def crc_remainder(bits: np.ndarray | list[int], name: str) -> np.ndarray:
    """Compute the CRC remainder of ``bits`` under polynomial ``name``.

    Returns the ``L`` parity bits ``p_0..p_{L-1}`` (MSB first) that
    38.212 appends to the input block.

    Layout: return (L) uint8
    """
    if name not in POLYNOMIALS:
        raise CrcError(f"unknown CRC: {name!r}")
    length, poly = POLYNOMIALS[name]
    arr = _as_bits(bits)
    reg = 0
    mask = (1 << length) - 1
    for bit in arr:
        feedback = ((reg >> (length - 1)) & 1) ^ int(bit)
        reg = ((reg << 1) & mask)
        if feedback:
            reg ^= poly
    out = np.zeros(length, dtype=np.uint8)
    for i in range(length):
        out[i] = (reg >> (length - 1 - i)) & 1
    return out


@lru_cache(maxsize=64)
def crc_generator_matrix(n_bits: int, name: str) -> np.ndarray:
    """GF(2) generator matrix ``M`` with ``crc_remainder(x) == x @ M % 2``.

    The 38.212 CRC registers start from all zeros, so the remainder is a
    linear map over GF(2); column-by-column simulation of unit vectors
    yields an ``(n_bits, L)`` matrix that computes the same parity bits
    as the serial LFSR for *any* input block of that length.  Cached per
    block length so batched checks pay the simulation once.
    """
    if name not in POLYNOMIALS:
        raise CrcError(f"unknown CRC: {name!r}")
    if n_bits < 0:
        raise CrcError(f"negative block length: {n_bits}")
    length, _ = POLYNOMIALS[name]
    matrix = np.zeros((n_bits, length), dtype=np.uint8)
    unit = np.zeros(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        unit[i] = 1
        matrix[i] = crc_remainder(unit, name)
        unit[i] = 0
    matrix.setflags(write=False)
    return matrix


def crc_remainder_batch(bits: np.ndarray, name: str) -> np.ndarray:
    """Row-wise :func:`crc_remainder` over a ``(batch, n_bits)`` matrix.

    One GF(2) matrix product replaces ``batch`` serial LFSR walks; the
    result is bit-identical to calling :func:`crc_remainder` per row.

    Layout: bits (B, n) uint8
    Layout: return (B, L) uint8
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 2:
        raise CrcError(f"expected a 2-D bit matrix, got shape {arr.shape}")
    matrix = crc_generator_matrix(arr.shape[1], name)
    counts = arr.astype(np.int32) @ matrix.astype(np.int32)
    return (counts & 1).astype(np.uint8)


def crc_attach(bits: np.ndarray | list[int], name: str) -> np.ndarray:
    """Append the CRC parity bits to ``bits``."""
    arr = _as_bits(bits)
    return np.concatenate([arr, crc_remainder(arr, name)])


def crc_check(bits_with_crc: np.ndarray | list[int], name: str) -> bool:
    """Return True when the trailing CRC of ``bits_with_crc`` is consistent."""
    if name not in POLYNOMIALS:
        raise CrcError(f"unknown CRC: {name!r}")
    length, _ = POLYNOMIALS[name]
    arr = _as_bits(bits_with_crc)
    if arr.size < length:
        raise CrcError(f"block shorter than its {length}-bit CRC")
    payload, received = arr[:-length], arr[-length:]
    return bool(np.array_equal(crc_remainder(payload, name), received))


def rnti_to_bits(rnti: int) -> np.ndarray:
    """16-bit MSB-first representation of an RNTI."""
    if not 0 <= rnti <= MAX_RNTI:
        raise CrcError(f"RNTI out of 16-bit range: {rnti}")
    return np.array([(rnti >> (15 - i)) & 1 for i in range(16)], dtype=np.uint8)


def bits_to_rnti(bits: np.ndarray | list[int]) -> int:
    """Inverse of :func:`rnti_to_bits`."""
    arr = _as_bits(bits)
    if arr.size != 16:
        raise CrcError(f"RNTI bit field must be 16 bits, got {arr.size}")
    value = 0
    for bit in arr:
        value = (value << 1) | int(bit)
    return value


def scramble_crc_with_rnti(bits_with_crc: np.ndarray, rnti: int,
                           name: str = "crc24c") -> np.ndarray:
    """XOR the last 16 CRC bits with the RNTI (38.212 section 7.3.2).

    The operation is an involution: applying it twice restores the input,
    which is exactly the property NR-Scope exploits to recover a C-RNTI
    from a RACH MSG 4 DCI (it computes the CRC of the received plaintext
    and XORs it against the received, RNTI-scrambled CRC).
    """
    length, _ = POLYNOMIALS[name]
    arr = _as_bits(bits_with_crc).copy()
    if arr.size < length:
        raise CrcError(f"block shorter than its {length}-bit CRC")
    arr[-16:] ^= rnti_to_bits(rnti)
    return arr


def recover_rnti(received_with_crc: np.ndarray,
                 name: str = "crc24c") -> int | None:
    """Recover the scrambling RNTI from a received DCI block.

    Computes the expected CRC over the payload and XORs its last 16 bits
    with the received CRC's last 16 bits; if the leading CRC bits (which
    the RNTI mask does not cover) also match, the XOR *is* the RNTI.
    Returns None when the unmasked CRC bits disagree, meaning the block
    was corrupted rather than merely RNTI-scrambled.
    """
    length, _ = POLYNOMIALS[name]
    arr = _as_bits(received_with_crc)
    if arr.size < length:
        raise CrcError(f"block shorter than its {length}-bit CRC")
    payload, received = arr[:-length], arr[-length:]
    expected = crc_remainder(payload, name)
    if not np.array_equal(expected[:-16], received[:-16]):
        return None
    return bits_to_rnti(expected[-16:] ^ received[-16:])
