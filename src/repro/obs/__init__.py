"""repro.obs: the streaming observability bus.

The subsystem the ROADMAP's "streaming telemetry bus with pluggable
reporters" item describes: a zero-cost-when-disabled
:class:`~repro.obs.context.ObsContext`, protocol-based reporters
(JSONL / Prometheus-style counters / in-memory ring), schema-versioned
events with run ids and commit-order sequence numbers, and the
failure-clustering TopN analysis (:mod:`repro.obs.topn`).

``reporters_from_specs`` parses the CLI's ``--obs`` arguments
(``jsonl:PATH``, ``counters``, ``ring[:N]``, ``tail[:stdout]``) into
reporter instances.
"""

from __future__ import annotations

from repro.obs.context import AnyObsContext, Obs, ObsContext, OBS_NOOP
from repro.obs.events import EventSpec, KNOWN_EVENTS, SCHEMA_VERSION, \
    validate_event, validate_events
from repro.obs.reporters import CounterReporter, JsonlReporter, \
    Reporter, ReporterError, RingReporter, TailReporter
from repro.obs.topn import cluster_failures, load_events, \
    render_markdown, report_to_json

__all__ = [
    "AnyObsContext", "Obs", "ObsContext", "OBS_NOOP", "EventSpec",
    "KNOWN_EVENTS", "SCHEMA_VERSION",
    "validate_event", "validate_events", "CounterReporter",
    "JsonlReporter", "Reporter", "ReporterError", "RingReporter",
    "cluster_failures", "load_events", "render_markdown",
    "report_to_json", "reporters_from_specs", "TailReporter",
]


def reporters_from_specs(specs: list[str]) -> list[Reporter]:
    """Build reporters from CLI ``--obs`` specs.

    * ``jsonl:PATH`` — a :class:`JsonlReporter` writing to ``PATH``;
    * ``counters``   — a :class:`CounterReporter` (text dump at exit);
    * ``ring[:N]``   — a :class:`RingReporter` of capacity ``N``;
    * ``tail[:stdout]`` — a :class:`TailReporter` live-tailing every
      event as a JSON line (stderr unless ``stdout`` is asked for).
    """
    reporters: list[Reporter] = []
    for spec in specs:
        base, _, suffix = spec.partition(":")
        if base == "jsonl":
            if not suffix:
                raise ReporterError(
                    f"jsonl reporter needs a path: {spec!r}")
            reporters.append(JsonlReporter(suffix))
        elif base == "counters":
            if suffix:
                raise ReporterError(
                    f"counters reporter takes no argument: {spec!r}")
            reporters.append(CounterReporter())
        elif base == "ring":
            if suffix:
                try:
                    capacity = int(suffix)
                except ValueError:
                    raise ReporterError(
                        f"bad ring capacity: {spec!r}") from None
                reporters.append(RingReporter(capacity))
            else:
                reporters.append(RingReporter())
        elif base == "tail":
            if suffix == "stdout":
                import sys
                reporters.append(TailReporter(sys.stdout))
            elif suffix in ("", "stderr"):
                reporters.append(TailReporter())
            else:
                raise ReporterError(
                    f"tail reporter wants stdout or stderr: {spec!r}")
        else:
            raise ReporterError(f"unknown obs reporter spec: {spec!r}")
    return reporters
