"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.core.sanitizer import Sanitizer


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator; reseed per test for isolation."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def nrsan() -> Sanitizer:
    """An enabled nrsan sanitizer: pass as ``NRScope(sanitizer=nrsan)``
    (or to ``SlotRuntime``) to run the session instrumented — tracked
    snapshots become write-guarded and parallel-stage RNG draws trip."""
    return Sanitizer(enabled=True)
