#!/usr/bin/env python3
"""Quickstart: attach NR-Scope to a simulated 5G SA cell and read
per-UE telemetry.

Builds the srsRAN/Open5GS-style network from the paper's methodology
(n41, TDD, 30 kHz SCS, 20 MHz), connects two UEs, lets NR-Scope decode
two seconds of air interface, and prints what it learned — all without
touching the gNB's internal state.

Run:  python examples/quickstart.py
"""

from repro import NRScope, Simulation, SRSRAN_PROFILE


def main() -> None:
    # A lab-bench cell with two UEs (one watching video, one
    # downloading), both attached via the full RACH procedure.
    sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=42,
                           traffic="mixed", channel="pedestrian")

    # NR-Scope listens passively; 18 dB is a USRP a few metres away.
    scope = NRScope.attach(sim, snr_db=18.0)

    sim.run(seconds=2.0)

    print(f"cell: {SRSRAN_PROFILE.name} band {SRSRAN_PROFILE.band}, "
          f"{SRSRAN_PROFILE.n_prb} PRB @ {SRSRAN_PROFILE.scs_khz} kHz "
          f"(TTI {SRSRAN_PROFILE.slot_duration_s * 1e3:.2f} ms)")
    print(f"slots observed: {scope.counters.slots_observed}, "
          f"DCIs decoded: {scope.counters.dcis_decoded}, "
          f"UEs discovered via RACH: {scope.counters.msg4_seen}")
    print()

    now = sim.now_s
    for rnti in scope.tracked_rntis:
        rate = scope.throughput.rate_bps(rnti, now)
        total = scope.telemetry.bits_between(rnti, 0.0, now)
        retx = scope.telemetry.retransmission_ratio(rnti)
        mcs = scope.telemetry.mcs_distribution(rnti)
        mean_mcs = sum(mcs) / len(mcs) if mcs else 0.0
        print(f"UE 0x{rnti:04x}: {total / now / 1e6:6.2f} Mbps avg "
              f"({rate / 1e6:.2f} Mbps in the last window), "
              f"mean MCS {mean_mcs:.1f}, retx ratio {retx:.2%}")

        # Ground truth from the phone's tcpdump, for comparison.
        ue = sim.gnb.ue_by_rnti(rnti)
        if ue is not None:
            truth = ue.delivered_dl_bits / now
            estimate = total / now
            print(f"            tcpdump says {truth / 1e6:6.2f} Mbps "
                  f"-> estimation error "
                  f"{abs(estimate - truth) / 1e3:.1f} kbps "
                  f"({abs(estimate - truth) / truth:.2%})")


if __name__ == "__main__":
    main()
