"""Tests for the RACH procedure FSM."""

import pytest

from repro.gnb.rach import RachError, RachProcedure


def drive(rach: RachProcedure, until_slot: int):
    """Step slot by slot collecting MSG 4 events."""
    events = []
    for slot in range(until_slot):
        events.extend(rach.step(slot))
    return events


class TestRachProcedure:
    def test_single_ue_completes(self):
        rach = RachProcedure()
        rach.request_connection(ue_id=7, slot_index=0)
        events = drive(rach, 30)
        assert len(events) == 1
        assert events[0].ue_id == 7
        assert events[0].tc_rnti == 0x4601
        assert rach.completed == 1
        assert rach.in_flight == 0

    def test_msg4_timing_respects_delays(self):
        rach = RachProcedure(occasion_period_slots=10, msg2_delay_slots=2,
                             msg3_delay_slots=3, msg4_delay_slots=2)
        rach.request_connection(ue_id=1, slot_index=0)
        events = drive(rach, 30)
        # MSG1 at slot 0 (occasion), MSG2 by slot 2, MSG3 by 5, MSG4 by 7.
        assert events[0].slot_index == 7

    def test_waits_for_occasion(self):
        rach = RachProcedure(occasion_period_slots=10)
        rach.request_connection(ue_id=1, slot_index=3)
        events = []
        for slot in range(3, 40):
            events.extend(rach.step(slot))
        # Next occasion after slot 3 is slot 10; MSG 4 lands 7 slots on.
        assert events[0].slot_index == 17

    def test_rnti_allocation_sequential_and_unique(self):
        rach = RachProcedure()
        for ue in range(5):
            rach.request_connection(ue, slot_index=0)
        events = drive(rach, 30)
        rntis = [e.tc_rnti for e in events]
        assert len(set(rntis)) == 5
        assert rntis == sorted(rntis)

    def test_rnti_wraps_in_c_rnti_range(self):
        rach = RachProcedure(first_rnti=0xFFEF)
        assert rach.allocate_rnti() == 0xFFEF
        assert rach.allocate_rnti() == 0x0001

    def test_duplicate_request_rejected(self):
        rach = RachProcedure()
        rach.request_connection(1, 0)
        with pytest.raises(RachError):
            rach.request_connection(1, 0)

    def test_invalid_period(self):
        with pytest.raises(RachError):
            RachProcedure(occasion_period_slots=0)

    def test_is_occasion(self):
        rach = RachProcedure(occasion_period_slots=10)
        assert rach.is_occasion(0)
        assert rach.is_occasion(20)
        assert not rach.is_occasion(5)

    def test_many_ues_all_complete(self):
        rach = RachProcedure()
        for ue in range(64):
            rach.request_connection(ue, slot_index=0)
        events = drive(rach, 60)
        assert len(events) == 64
        assert rach.completed == 64
