"""The lint driver: walk files, parse once, run every applicable rule.

Each file is parsed to an AST exactly once and handed to the rules
wrapped in a :class:`LintContext`.  Rule scoping works on a
*package-relative* path (``phy/dci.py``, ``gnb/scheduler.py``) computed
by stripping any leading ``src/repro/`` / ``repro/`` components, so the
same rules fire identically on the real tree and on test fixtures that
mimic its layout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, iter_rules

#: Directory names never scanned.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: Package-relative prefixes never scanned (the linter does not lint
#: itself: its rule tables legitimately contain every magic number).
SKIP_REL_PREFIXES = ("lint/",)


class LintError(ValueError):
    """Raised for unusable scan targets."""


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may want to know about one module."""

    path: Path          #: filesystem path, for display
    rel: str            #: package-relative path, for scoping
    source: str
    tree: ast.Module
    lines: tuple[str, ...] = field(default_factory=tuple)


def _normalise_rel(rel: str) -> str:
    rel = rel.replace("\\", "/")
    for prefix in ("src/repro/", "repro/", "src/"):
        if rel.startswith(prefix):
            rel = rel[len(prefix):]
            break
    return rel


#: Rightmost-match markers that locate the package root inside an
#: absolute path, so a scan target given from *inside* the tree (a
#: single file, or a subdirectory root) still gets the package-relative
#: path that rule scoping needs: ``lint phy/dci.py`` must scope the same
#: as ``lint src/repro``.  ``/fixtures/`` covers the test-fixture trees
#: that mimic the package layout.
_REL_MARKERS = ("/src/repro/", "/repro/", "/fixtures/", "/src/")

#: Top-level subpackage names; when no root marker matches, a path
#: component with one of these names anchors the rel instead (kept in
#: the rel, unlike the markers above), so ``lint gnb/`` on a tree that
#: merely mimics the layout scopes the same as ``lint .``.
_PACKAGE_DIRS = ("phy", "rrc", "gnb", "ue", "radio", "core",
                 "analysis", "experiments")


def _recover_rel(path: Path, fallback: str) -> str:
    text = str(path.resolve()).replace("\\", "/")
    for marker in _REL_MARKERS:
        idx = text.rfind(marker)
        if idx != -1:
            return _normalise_rel(text[idx + len(marker):])
    parts = text.split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] in _PACKAGE_DIRS:
            return "/".join(parts[i:])
    return fallback


def _iter_python_files(root: Path) -> Iterator[tuple[Path, str]]:
    if root.is_file():
        yield root, _recover_rel(root, _normalise_rel(root.name))
        return
    if not root.is_dir():
        raise LintError(f"no such file or directory: {root}")
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(part in SKIP_DIRS or part.endswith(".egg-info")
               for part in parts):
            continue
        yield path, _recover_rel(path, _normalise_rel("/".join(parts)))


@dataclass
class LintEngine:
    """Runs a rule set over a list of scan roots."""

    rules: list[Rule] = field(default_factory=iter_rules)

    def run(self, paths: Iterable[Path | str]) -> list[Finding]:
        """Lint every Python file under ``paths``; returns all findings."""
        findings: list[Finding] = []
        for root in paths:
            for path, rel in _iter_python_files(Path(root)):
                if rel.startswith(SKIP_REL_PREFIXES):
                    continue
                findings.extend(self.run_file(path, rel))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def run_file(self, path: Path, rel: str | None = None) -> list[Finding]:
        """Lint a single file."""
        rel = _normalise_rel(rel if rel is not None else path.name)
        source = Path(path).read_text()
        return self.run_source(source, path=Path(path), rel=rel)

    def run_source(self, source: str, path: Path | str = "<memory>",
                   rel: str | None = None) -> list[Finding]:
        """Lint source text directly (the unit-test entry point)."""
        path = Path(path)
        rel = _normalise_rel(rel if rel is not None else path.name)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Finding(
                rule_id="E000",
                message=f"syntax error: {exc.msg}",
                path=str(path), rel=rel,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                snippet="")]
        ctx = LintContext(path=path, rel=rel, source=source, tree=tree,
                          lines=tuple(source.splitlines()))
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.applies(rel):
                findings.extend(rule.check(ctx))
        return findings
