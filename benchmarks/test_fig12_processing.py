"""Fig 12: per-slot processing time with one or four DCI threads.

Paper result: processing time grows linearly with the number of tracked
UEs (O(n log n) signal processing + O(m) DCI decoding); four threads
keep larger cells within the TTI budget.  This reproduction runs the
same pipeline in Python, where the GIL flattens the thread win — the
linear trend in m is the portable observation (see EXPERIMENTS.md).
"""

from repro.analysis.report import print_tables
from repro.experiments import fig12_processing as fig12

UE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_fig12_processing_time(once):
    rows = once(fig12.run, ue_counts=UE_COUNTS, n_slots=3)
    result = fig12.to_result(rows)
    print()
    print_tables([fig12.table(rows)])
    print("summary:", {k: round(v, 2) for k, v in result.summary.items()})

    amarisoft_1t = sorted(
        (r.n_ues, r.mean_us) for r in rows
        if r.profile == "amarisoft" and r.n_threads == 1)

    # Shape: monotone growth with the UE count (allowing timer noise).
    times = [t for _, t in amarisoft_1t]
    assert times[-1] > times[0], "more UEs must cost more"
    grew = sum(b >= a * 0.9 for a, b in zip(times, times[1:]))
    assert grew >= len(times) - 2, f"trend not monotone: {times}"

    # Shape: linear-ish, not quadratic — 128x the UEs costs far less
    # than 128^2 the time.
    assert times[-1] / times[0] < 128, \
        "per-UE cost must stay sub-linear in total (shared FFT amortised)"
