"""Statistical helpers behind the paper's figures.

CCDF/CDF construction, percentile summaries, throughput-error series and
the coefficient of determination used in Fig 15's comparison against
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class MetricsError(ValueError):
    """Raised for empty or malformed inputs."""


def ccdf_points(values: list[float] | np.ndarray) \
        -> list[tuple[float, float]]:
    """(value, P(X > value)) points, the axes of Figs 8, 9, 10 and 16."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise MetricsError("cannot build a CCDF from no samples")
    ordered = np.sort(arr)
    n = ordered.size
    return [(float(v), float(1.0 - (i + 1) / n))
            for i, v in enumerate(ordered)]


def cdf_points(values: list[float] | np.ndarray) \
        -> list[tuple[float, float]]:
    """(value, P(X <= value)) points, the axes of Figs 11 and 15."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise MetricsError("cannot build a CDF from no samples")
    ordered = np.sort(arr)
    n = ordered.size
    return [(float(v), float((i + 1) / n)) for i, v in enumerate(ordered)]


def percentile(values: list[float] | np.ndarray, q: float) -> float:
    """Percentile with the paper's inclusive convention."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise MetricsError("cannot take a percentile of no samples")
    if not 0 <= q <= 100:
        raise MetricsError(f"percentile out of range: {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class ErrorSummary:
    """The numbers the paper quotes for an error distribution."""

    n_samples: int
    median: float
    p75: float
    p95: float
    mean: float

    def describe(self, unit: str = "kbps") -> str:
        """One line in the style of section 5.2.2's summaries."""
        return (f"n={self.n_samples} median={self.median:.2f}{unit} "
                f"p75={self.p75:.2f}{unit} p95={self.p95:.2f}{unit} "
                f"mean={self.mean:.2f}{unit}")


def summarize_errors(errors: list[float] | np.ndarray) -> ErrorSummary:
    """Median/p75/p95/mean of an error sample set."""
    arr = np.asarray(errors, dtype=float)
    if arr.size == 0:
        raise MetricsError("cannot summarise no samples")
    return ErrorSummary(n_samples=int(arr.size),
                        median=percentile(arr, 50),
                        p75=percentile(arr, 75),
                        p95=percentile(arr, 95),
                        mean=float(arr.mean()))


def throughput_error_series(estimated: list[tuple[float, float]],
                            truth: list[tuple[float, float]],
                            unit: float = 1e3) -> list[float]:
    """|estimate - truth| per aligned window, in ``unit`` (default kbps).

    Both series are (window end time, bits/s) as produced by the
    telemetry log and the packet capture; windows are matched by time.
    """
    truth_by_time = {round(t, 9): v for t, v in truth}
    errors = []
    for t, estimate in estimated:
        key = round(t, 9)
        if key not in truth_by_time:
            continue
        errors.append(abs(estimate - truth_by_time[key]) / unit)
    if not errors:
        raise MetricsError("no aligned windows between the two series")
    return errors


def relative_error(estimated_total: float, true_total: float) -> float:
    """|est - true| / true, the paper's overall-percentage metric."""
    if true_total <= 0:
        raise MetricsError(f"true total must be positive: {true_total}")
    return abs(estimated_total - true_total) / true_total


def jain_fairness(allocations: list[float] | np.ndarray) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal shares; 1/n means one UE got everything.
    Used by the scheduler-policy ablation.
    """
    arr = np.asarray(allocations, dtype=float)
    if arr.size == 0:
        raise MetricsError("fairness of an empty allocation is undefined")
    if np.any(arr < 0):
        raise MetricsError("allocations must be non-negative")
    total_sq = float(arr.sum()) ** 2
    sq_total = float((arr ** 2).sum())
    if sq_total == 0.0:
        return 1.0
    return total_sq / (arr.size * sq_total)


def bootstrap_ci(values: list[float] | np.ndarray, q: float = 50.0,
                 confidence: float = 0.95, n_resamples: int = 1000,
                 seed: int = 0) -> tuple[float, float]:
    """Bootstrap confidence interval for a percentile of a sample.

    Returns (low, high) bounds; used to report uncertainty alongside
    the figure summaries when session durations are scaled down.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise MetricsError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise MetricsError(f"confidence out of range: {confidence}")
    rng = np.random.default_rng(seed)
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = rng.choice(arr, size=arr.size, replace=True)
        stats[i] = np.percentile(resample, q)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(stats, alpha)),
            float(np.quantile(stats, 1.0 - alpha)))


def coefficient_of_determination(estimates: list[float] | np.ndarray,
                                 truth: list[float] | np.ndarray) -> float:
    """R^2 between paired samples (Fig 15: 0.9970 MCS, 0.9862 retx)."""
    est = np.asarray(estimates, dtype=float)
    true = np.asarray(truth, dtype=float)
    if est.size != true.size or est.size == 0:
        raise MetricsError("R^2 needs equal-length non-empty samples")
    residual = float(np.sum((true - est) ** 2))
    total = float(np.sum((true - true.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total
