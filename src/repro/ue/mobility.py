"""UE mobility: the static / moving / blocked scenarios of Fig 9c and 16.

Mobility changes a UE's average SNR over time; the fading channel adds
small-scale variation on top.  ``step`` is called once per slot and
returns the dB adjustment to apply to the UE's base link budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.radio.medium import Position


class MobilityError(ValueError):
    """Raised for invalid trajectories."""


class MobilityModel:
    """Interface: per-slot SNR adjustment in dB."""

    def step(self, slot_index: int) -> float:
        """Advance one slot; return the SNR delta (dB) vs the base link."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Scenario label used in experiment output."""
        return type(self).__name__.lower()


@dataclass
class StaticUe(MobilityModel):
    """A UE sitting still: no adjustment."""

    def step(self, slot_index: int) -> float:
        return 0.0

    @property
    def name(self) -> str:
        return "static"


@dataclass
class MovingUe(MobilityModel):
    """A UE walking a back-and-forth path between two distances.

    The SNR delta follows the path-loss difference between the current
    and starting distance, producing the slow ramps the paper's moving
    scenario shows.
    """

    start: Position
    gnb: Position
    speed_mps: float
    slot_duration_s: float
    range_m: float = 20.0
    path_loss_exponent: float = 2.9

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise MobilityError(f"negative speed: {self.speed_mps}")
        self._offset_m = 0.0
        self._direction = 1.0
        self._base_distance = max(self.gnb.distance_to(self.start), 1.0)

    def step(self, slot_index: int) -> float:
        self._offset_m += self._direction * self.speed_mps \
            * self.slot_duration_s
        if abs(self._offset_m) >= self.range_m:
            self._direction = -self._direction
            self._offset_m = math.copysign(self.range_m, self._offset_m)
        distance = max(self._base_distance + self._offset_m, 1.0)
        return -10.0 * self.path_loss_exponent \
            * math.log10(distance / self._base_distance)

    @property
    def name(self) -> str:
        return "moving"


@dataclass
class BlockedUe(MobilityModel):
    """A UE whose line of sight is intermittently blocked (body/furniture).

    Blockage arrives as an on/off process with exponential dwell times
    and a fixed penetration loss while blocked.
    """

    slot_duration_s: float
    blockage_loss_db: float = 10.0
    mean_blocked_s: float = 2.0
    mean_clear_s: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_blocked_s <= 0 or self.mean_clear_s <= 0:
            raise MobilityError("dwell times must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._blocked = False
        self._remaining_s = float(self._rng.exponential(self.mean_clear_s))

    def step(self, slot_index: int) -> float:
        self._remaining_s -= self.slot_duration_s
        if self._remaining_s <= 0:
            self._blocked = not self._blocked
            mean = self.mean_blocked_s if self._blocked else self.mean_clear_s
            self._remaining_s = float(self._rng.exponential(mean))
        return -self.blockage_loss_db if self._blocked else 0.0

    @property
    def name(self) -> str:
        return "blocked"


def scenario(name: str, slot_duration_s: float, seed: int = 0,
             gnb: Position | None = None) -> MobilityModel:
    """Build a mobility model by scenario name (static/moving/blocked)."""
    if name == "static":
        return StaticUe()
    if name == "moving":
        origin = gnb or Position(0.0, 0.0)
        return MovingUe(start=Position(origin.x + 10.0, origin.y), gnb=origin,
                        speed_mps=1.4, slot_duration_s=slot_duration_s)
    if name == "blocked":
        return BlockedUe(slot_duration_s=slot_duration_s, seed=seed)
    raise MobilityError(f"unknown mobility scenario: {name!r}")
