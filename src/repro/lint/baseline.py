"""Grandfathered-finding baseline.

The baseline lets the lint gate turn red only for *new* violations:
pre-existing findings are recorded once (with a justification) and
suppressed on later runs.  Entries match findings by content — rule id,
package-relative path and the stripped source line — with a ``count``
so a file may grandfather N identical lines and still fail on the
N+1th.  Line numbers are deliberately not part of the identity.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename looked up in the current directory.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for unreadable or malformed baseline files."""


@dataclass
class Baseline:
    """A set of suppressed finding groups."""

    #: (rule, rel, snippet) -> allowed occurrence count
    entries: Counter = field(default_factory=Counter)
    #: (rule, rel, snippet) -> justification string
    justifications: dict[tuple[str, str, str], str] = \
        field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline JSON file."""
        try:
            raw = json.loads(path.read_text())
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise BaselineError(f"malformed baseline {path}: {exc}")
        if not isinstance(raw, dict) or "entries" not in raw:
            raise BaselineError(f"baseline {path} has no 'entries' list")
        baseline = cls()
        for entry in raw["entries"]:
            try:
                key = (str(entry["rule"]), str(entry["path"]),
                       str(entry["snippet"]))
                count = int(entry.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(
                    f"malformed baseline entry in {path}: {entry!r} ({exc})")
            baseline.entries[key] += count
            if "justification" in entry:
                baseline.justifications[key] = str(entry["justification"])
        return baseline

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline that grandfathers exactly ``findings``."""
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.group_key] += 1
        return baseline

    def filter(self, findings: list[Finding]) \
            -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, suppressed)."""
        budget = Counter(self.entries)
        fresh: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            if budget[finding.group_key] > 0:
                budget[finding.group_key] -= 1
                suppressed.append(finding)
            else:
                fresh.append(finding)
        return fresh, suppressed

    def save(self, path: Path) -> None:
        """Write the baseline as stable, reviewable JSON."""
        entries = []
        for key in sorted(self.entries):
            rule, rel, snippet = key
            entry: dict[str, object] = {
                "rule": rule, "path": rel, "snippet": snippet,
                "count": int(self.entries[key]),
            }
            justification = self.justifications.get(key)
            entry["justification"] = justification if justification else \
                "TODO: justify or fix"
            entries.append(entry)
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n")
