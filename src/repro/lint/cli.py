"""Command-line front end: ``python -m repro.lint``.

Also mounted as the ``lint`` subcommand of ``python -m repro.cli``.

Modes::

    python -m repro.lint [PATH...]        # lint (default)
    python -m repro.lint effects [PATH...]  # JSON effect report
    python -m repro.lint contracts [PATH...]  # JSON contract report
    python -m repro.lint --changed [REF]  # lint only git-changed files

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 analyzer
crash / bad usage / unreadable inputs — so CI can tell "violations"
from "broken run".
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
)
from repro.lint.engine import LintEngine, LintError
from repro.lint.registry import RuleError, iter_rules

#: Default scan roots, tried in order relative to the current directory.
DEFAULT_ROOTS = ("src/repro", "repro", "src")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the repro.cli subcommand)."""
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint; the first "
                             "may be the literal 'effects' or "
                             "'contracts' to emit the corresponding "
                             "JSON report instead of findings "
                             "(default: the repro package)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="output_format",
                        help="finding output format (sarif emits a "
                             "SARIF 2.1.0 log for code scanning)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE_NAME} "
                             f"when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current findings to the "
                             "baseline file and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline file with orphaned "
                             "entries (no longer matching any finding) "
                             "removed")
    parser.add_argument("--changed", nargs="?", const="HEAD",
                        default=None, metavar="REF",
                        help="lint only Python files changed vs the "
                             "given git ref (default HEAD), plus "
                             "untracked ones — the fast PR gate")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(e.g. R001,R004)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def _resolve_paths(args: argparse.Namespace,
                   paths: list[str]) -> list[Path]:
    if paths:
        return [Path(p) for p in paths]
    for candidate in DEFAULT_ROOTS:
        root = Path(candidate)
        if root.is_dir():
            return [root]
    return [Path(".")]


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.is_file() or args.write_baseline:
        return default
    return None


def _git_lines(cmd: list[str]) -> list[str]:
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise LintError(f"{' '.join(cmd)} failed: "
                        f"{proc.stderr.strip() or proc.returncode}")
    return [line for line in proc.stdout.splitlines() if line.strip()]


#: Repo-relative prefixes ``--changed`` never lints: the seeded
#: violation fixtures *must* contain findings, so a PR touching them
#: would otherwise turn the fast gate red by design.
CHANGED_EXCLUDE_PREFIXES = ("tests/lint/fixtures/",)


def changed_python_files(ref: str) -> list[Path]:
    """Python files changed vs ``ref`` plus untracked ones.

    Deleted files are filtered out (``--diff-filter=d`` and the
    existence check) — there is nothing left to lint.
    """
    names = _git_lines(["git", "diff", "--name-only", "--diff-filter=d",
                        ref, "--"])
    names += _git_lines(["git", "ls-files", "--others",
                         "--exclude-standard"])
    seen: set[str] = set()
    out: list[Path] = []
    for name in names:
        if not name.endswith(".py") or name in seen:
            continue
        if name.startswith(CHANGED_EXCLUDE_PREFIXES):
            continue
        seen.add(name)
        path = Path(name)
        if path.is_file():
            out.append(path)
    return out


def _run_effects(args: argparse.Namespace, paths: list[str]) -> int:
    """The ``effects`` mode: emit the JSON effect report."""
    engine = LintEngine(rules=[])
    modules, parse_failures = engine.collect(
        _resolve_paths(args, paths))
    program = engine.build_program(modules)
    report = program.effect_report()
    report["parse_failures"] = [f.rel for f in parse_failures]
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _run_contracts(args: argparse.Namespace, paths: list[str]) -> int:
    """The ``contracts`` mode: emit the cross-boundary contract report.

    Three sections mirror the three R009-R012 analyses: ``wire`` (what
    crosses the process-executor boundary and how), ``shapes`` (dtype/
    layout interpretation of the hot batched modules, including scalar/
    batch twins), and ``obs`` (every emission site versus the declared
    event registry).
    """
    from repro.lint.obsconform import collect_emissions
    from repro.lint.rules.r010_dtype_drift import HOT_FILES, HOT_PREFIXES
    from repro.lint.shapes import analyze_module
    from repro.obs.events import KNOWN_EVENTS

    engine = LintEngine(rules=[])
    modules, parse_failures = engine.collect(
        _resolve_paths(args, paths))
    program = engine.build_program(modules)

    shapes_section: dict[str, object] = {}
    for module in modules:
        if not (module.rel.startswith(HOT_PREFIXES)
                or module.rel in HOT_FILES):
            continue
        mod = analyze_module(module.tree)
        functions = {
            qualname: {
                "layouts": {name: value.render() for name, value
                            in sorted(shapes.layouts.items())},
                "return": shapes.return_value.render(),
                "issues": [
                    {"kind": issue.kind, "line": issue.lineno,
                     "detail": issue.detail}
                    for issue in shapes.issues
                ],
            }
            for qualname, shapes in sorted(mod.functions.items())
        }
        twins = [
            {"scalar": scalar.qualname, "batch": batch.qualname,
             "scalar_return": scalar.return_value.render(),
             "batch_return": batch.return_value.render()}
            for scalar, batch in mod.batch_twins()
        ]
        shapes_section[module.rel] = {
            "functions": functions, "twins": twins,
        }

    sites: list[dict[str, object]] = []
    unknown: list[str] = []
    for module in modules:
        for site in collect_emissions(module.tree):
            known = site.name in KNOWN_EVENTS
            sites.append({
                "rel": module.rel, "line": site.lineno,
                "name": site.name, "kind": site.kind,
                "method": site.method, "known": known,
            })
            if site.name is not None and not known:
                unknown.append(site.name)

    report = {
        "wire": program.wire.report(),
        "shapes": shapes_section,
        "obs": {
            "n_sites": len(sites),
            "known_events": sorted(KNOWN_EVENTS),
            "unknown_names": sorted(set(unknown)),
            "sites": sorted(sites,
                            key=lambda s: (s["rel"], s["line"])),
        },
        "parse_failures": [f.rel for f in parse_failures],
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    paths = list(args.paths)
    effects_mode = bool(paths) and paths[0] == "effects"
    contracts_mode = bool(paths) and paths[0] == "contracts"
    if effects_mode or contracts_mode:
        paths = paths[1:]

    try:
        select = None if args.select is None else \
            [s.strip() for s in args.select.split(",") if s.strip()]
        if select is not None and not select:
            print("error: --select given but names no rules",
                  file=sys.stderr)
            return 2
        rules = iter_rules(select)
    except RuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    try:
        if effects_mode:
            return _run_effects(args, paths)
        if contracts_mode:
            return _run_contracts(args, paths)

        if args.changed is not None:
            if paths:
                print("error: --changed and explicit paths are "
                      "mutually exclusive", file=sys.stderr)
                return 2
            changed = changed_python_files(args.changed)
            if not changed:
                print(f"no Python files changed vs {args.changed}; "
                      f"nothing to lint")
                return 0
            scan_paths: list[Path] = changed
        else:
            scan_paths = _resolve_paths(args, paths)

        engine = LintEngine(rules=rules)
        findings = engine.run(scan_paths)
    except (LintError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)

    if args.write_baseline:
        assert baseline_path is not None
        old = Baseline.load(baseline_path) if baseline_path.is_file() \
            else Baseline()
        new = Baseline.from_findings(findings)
        # Keep justifications already written for surviving entries.
        for key, text in old.justifications.items():
            if key in new.entries:
                new.justifications[key] = text
        new.save(baseline_path)
        print(f"wrote {sum(new.entries.values())} finding(s) to "
              f"{baseline_path}")
        return 0

    # Only entries for rules that actually ran may be judged orphaned.
    # A --changed scan additionally drops whole-program rules from the
    # active set: they run against a *partial* program there, so their
    # silence proves nothing about grandfathered findings.
    active_rules = {rule.rule_id for rule in rules
                    if args.changed is None or not rule.needs_program}

    suppressed: list = []
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        orphans = baseline.unmatched(findings,
                                     scanned_rels=engine.last_scanned,
                                     active_rules=active_rules)
        if args.prune_baseline:
            pruned = baseline.prune(findings,
                                    scanned_rels=engine.last_scanned,
                                    active_rules=active_rules)
            baseline.save(baseline_path)
            print(f"pruned {pruned} orphaned suppression(s) from "
                  f"{baseline_path}")
        else:
            for rule, rel, snippet in orphans:
                print(f"warning: orphaned baseline entry "
                      f"{rule} {rel}: {snippet!r} no longer matches "
                      f"any finding (run --prune-baseline)",
                      file=sys.stderr)
        findings, suppressed = baseline.filter(findings)
    elif args.prune_baseline:
        print("error: --prune-baseline needs an existing baseline file",
              file=sys.stderr)
        return 2

    if args.output_format == "json":
        print(json.dumps({
            "findings": [f.to_json() for f in findings],
            "suppressed": len(suppressed),
        }, indent=2))
    elif args.output_format == "sarif":
        from repro.lint.sarif import render_sarif
        print(render_sarif(findings, rules), end="")
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        print(summary)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Domain-aware 3GPP bit-contract and determinism "
                    "lint for the NR-Scope reproduction.")
    add_arguments(parser)
    return run(parser.parse_args(argv))
