"""Tests for UCI coding (repetition / small block / polar regimes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.uci import (
    SMALL_BLOCK_N,
    UCI_POLAR_E,
    UciError,
    UciReport,
    _small_block_generator,
    decode_small_block,
    decode_uci,
    encode_small_block,
    encode_uci,
)


def bits_to_llrs(coded, scale=6.0):
    return (1.0 - 2.0 * np.asarray(coded, dtype=float)) * scale


class TestSmallBlockCode:
    def test_generator_shape_and_rank(self):
        generator = _small_block_generator()
        assert generator.shape == (32, 11)
        # Full rank over GF(2): all 2^11 codewords distinct.
        messages = np.arange(1 << 11)
        bits = ((messages[:, None] >> np.arange(11)[None, :]) & 1) \
            .astype(np.uint8)
        codewords = (bits @ generator.T) % 2
        packed = np.packbits(codewords, axis=1)
        assert len({bytes(row) for row in packed}) == 1 << 11

    def test_minimum_distance_reasonable(self):
        # Pairwise distance = weight of nonzero codewords; a usable
        # (32, 11) code needs minimum distance comfortably above 1.
        generator = _small_block_generator()
        messages = np.arange(1, 1 << 11)
        bits = ((messages[:, None] >> np.arange(11)[None, :]) & 1) \
            .astype(np.uint8)
        weights = ((bits @ generator.T) % 2).sum(axis=1)
        assert weights.min() >= 6

    def test_roundtrip_all_sizes(self, rng):
        for k in range(3, 12):
            payload = rng.integers(0, 2, k).astype(np.uint8)
            coded = encode_small_block(payload)
            assert coded.size == SMALL_BLOCK_N
            assert np.array_equal(
                decode_small_block(bits_to_llrs(coded), k), payload)

    def test_corrects_errors(self, rng):
        payload = rng.integers(0, 2, 8).astype(np.uint8)
        coded = encode_small_block(payload).astype(float)
        llrs = bits_to_llrs(coded)
        llrs[[3, 17]] *= -1  # two hard flips
        assert np.array_equal(decode_small_block(llrs, 8), payload)

    def test_size_validation(self):
        with pytest.raises(UciError):
            encode_small_block(np.zeros(2, dtype=np.uint8))
        with pytest.raises(UciError):
            decode_small_block(np.zeros(10), 5)


class TestEncodeDecodeUci:
    @pytest.mark.parametrize("k", [1, 2, 5, 11])
    def test_roundtrip_small(self, k, rng):
        payload = rng.integers(0, 2, k).astype(np.uint8)
        coded = encode_uci(payload)
        assert np.array_equal(decode_uci(bits_to_llrs(coded), k), payload)

    def test_roundtrip_polar_regime(self, rng):
        payload = rng.integers(0, 2, 20).astype(np.uint8)
        coded = encode_uci(payload)
        assert coded.size == UCI_POLAR_E
        assert np.array_equal(decode_uci(bits_to_llrs(coded), 20),
                              payload)

    def test_polar_regime_crc_gates_noise(self, rng):
        rejections = 0
        for _ in range(10):
            llrs = rng.normal(0, 1, UCI_POLAR_E)
            rejections += decode_uci(llrs, 20) is None
        assert rejections >= 9

    def test_repetition_majority_vote(self):
        coded = encode_uci(np.array([1], dtype=np.uint8)).astype(float)
        llrs = bits_to_llrs(coded)
        llrs[:10] *= -1  # 10 of 32 copies corrupted
        assert decode_uci(llrs, 1)[0] == 1

    def test_empty_rejected(self):
        with pytest.raises(UciError):
            encode_uci(np.zeros(0, dtype=np.uint8))
        with pytest.raises(UciError):
            decode_uci(np.zeros(32), 0)

    @given(st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_property_noisy_small_block(self, seed):
        local = np.random.default_rng(seed)
        payload = local.integers(0, 2, 11).astype(np.uint8)
        coded = encode_uci(payload).astype(float)
        noise_var = 0.5  # 3 dB
        llrs = 2 * ((1 - 2 * coded)
                    + local.normal(0, np.sqrt(noise_var), coded.size)) \
            / noise_var
        decoded = decode_uci(llrs, 11)
        # ML decoding at 3 dB: essentially always right.
        assert np.array_equal(decoded, payload)


class TestUciReport:
    def test_roundtrip_full(self):
        report = UciReport(rnti=0x4601, slot_index=7,
                           harq_ack=(1, 0, 1), scheduling_request=True,
                           cqi=12)
        bits = report.to_bits()
        assert bits.size == UciReport.REPORT_BITS
        assert UciReport.from_bits(bits, 0x4601, 7) == report

    def test_roundtrip_minimal(self):
        report = UciReport(rnti=1, slot_index=0)
        assert UciReport.from_bits(report.to_bits(), 1, 0) == report

    def test_roundtrip_sr_only(self):
        report = UciReport(rnti=1, slot_index=0,
                           scheduling_request=True)
        decoded = UciReport.from_bits(report.to_bits(), 1, 0)
        assert decoded.scheduling_request
        assert decoded.cqi is None
        assert decoded.harq_ack == ()

    def test_over_the_air_roundtrip(self, rng):
        report = UciReport(rnti=9, slot_index=3, harq_ack=(1,),
                           cqi=7)
        coded = encode_uci(report.to_bits())
        llrs = bits_to_llrs(coded) \
            + rng.normal(0, 1.0, coded.size)
        decoded_bits = decode_uci(llrs, UciReport.REPORT_BITS)
        assert UciReport.from_bits(decoded_bits, 9, 3) == report

    def test_validation(self):
        with pytest.raises(UciError):
            UciReport(rnti=1, slot_index=0, harq_ack=(1, 1, 1, 1)) \
                .to_bits()
        with pytest.raises(UciError):
            UciReport(rnti=1, slot_index=0, cqi=16).to_bits()
        with pytest.raises(UciError):
            UciReport.from_bits(np.zeros(5, dtype=np.uint8), 1, 0)