"""Downlink/uplink traffic models driving the simulated UEs.

Each model answers one question per slot: how many new bytes arrived for
this UE at the gNB (downlink) or at the UE (uplink)?  The gNB's scheduler
drains these buffers, which is exactly the offered load whose delivered
bit rate NR-Scope estimates.  The mix mirrors the paper's workloads:
video watching, file downloads (section 5.2.2) and the bursty
come-and-go usage of commercial cells (section 5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import TTI_DURATION_S


class TrafficError(ValueError):
    """Raised for non-physical traffic parameters."""


class TrafficModel:
    """Interface: bytes arriving during one slot."""

    def bytes_in_slot(self, slot_index: int) -> int:
        """New payload bytes generated during ``slot_index``."""
        raise NotImplementedError


@dataclass
class ConstantBitRate(TrafficModel):
    """Smooth CBR traffic (e.g. a voice or sensor stream)."""

    rate_bps: float
    slot_duration_s: float

    def __post_init__(self) -> None:
        if self.rate_bps < 0:
            raise TrafficError(f"negative rate: {self.rate_bps}")
        self._carry = 0.0

    def bytes_in_slot(self, slot_index: int) -> int:
        self._carry += self.rate_bps * self.slot_duration_s / 8.0
        whole = int(self._carry)
        self._carry -= whole
        return whole


@dataclass
class PoissonPackets(TrafficModel):
    """Poisson packet arrivals with a fixed packet size (web-like)."""

    packets_per_second: float
    packet_bytes: int
    slot_duration_s: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.packets_per_second < 0 or self.packet_bytes <= 0:
            raise TrafficError("invalid Poisson traffic parameters")
        self._rng = np.random.default_rng(self.seed)

    def bytes_in_slot(self, slot_index: int) -> int:
        mean = self.packets_per_second * self.slot_duration_s
        return int(self._rng.poisson(mean)) * self.packet_bytes


@dataclass
class VideoStream(TrafficModel):
    """Frame-periodic video: bursts every 1/fps with size jitter.

    Models the "watching videos" workload of section 5.2.2: large
    I-frame-ish bursts arriving at the frame rate, so throughput is
    bursty at millisecond scale but steady per second.
    """

    rate_bps: float
    slot_duration_s: float
    fps: float = 30.0
    size_jitter: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0 or self.fps <= 0:
            raise TrafficError("invalid video traffic parameters")
        self._rng = np.random.default_rng(self.seed)
        self._slots_per_frame = max(
            1, int(round(1.0 / (self.fps * self.slot_duration_s))))
        self._frame_bytes = self.rate_bps / self.fps / 8.0

    def bytes_in_slot(self, slot_index: int) -> int:
        if slot_index % self._slots_per_frame:
            return 0
        jitter = 1.0 + self.size_jitter * float(self._rng.normal())
        return max(0, int(self._frame_bytes * jitter))


@dataclass
class BulkDownload(TrafficModel):
    """A file download arriving in large TCP-like bursts.

    Data lands in ``chunk_bytes`` units (a congestion window's worth),
    so the gNB-side queue is deep while a chunk drains — the regime
    where transport blocks are sized to the radio share, not to the
    arrival trickle. Average offered rate is ``rate_cap_bps``.
    """

    rate_cap_bps: float = 1e9
    slot_duration_s: float = TTI_DURATION_S[30]
    chunk_bytes: int = 131072

    def __post_init__(self) -> None:
        if self.rate_cap_bps < 0 or self.chunk_bytes <= 0:
            raise TrafficError("invalid bulk download parameters")
        self._carry = float(self.chunk_bytes)  # first chunk immediate

    def bytes_in_slot(self, slot_index: int) -> int:
        self._carry += self.rate_cap_bps * self.slot_duration_s / 8.0
        if self._carry >= self.chunk_bytes:
            chunks = int(self._carry // self.chunk_bytes)
            self._carry -= chunks * self.chunk_bytes
            return chunks * self.chunk_bytes
        return 0


@dataclass
class ControlledRate(TrafficModel):
    """A sender-controlled stream: the rate is set from outside.

    This is the closed-loop case of the paper's section 6 — an
    application server adjusting its offered load from NR-Scope
    feedback.  ``set_rate`` takes effect on the next slot.
    """

    slot_duration_s: float
    initial_rate_bps: float = 1e6

    def __post_init__(self) -> None:
        if self.initial_rate_bps < 0:
            raise TrafficError(f"negative rate: {self.initial_rate_bps}")
        self._rate_bps = self.initial_rate_bps
        self._carry = 0.0

    @property
    def rate_bps(self) -> float:
        """The currently offered rate."""
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Update the offered rate (the sender's control action)."""
        if rate_bps < 0:
            raise TrafficError(f"negative rate: {rate_bps}")
        self._rate_bps = rate_bps

    def bytes_in_slot(self, slot_index: int) -> int:
        self._carry += self._rate_bps * self.slot_duration_s / 8.0
        whole = int(self._carry)
        self._carry -= whole
        return whole


@dataclass
class OnOffTraffic(TrafficModel):
    """Exponential on/off bursts around an inner model (chatty apps)."""

    inner: TrafficModel
    slot_duration_s: float
    mean_on_s: float = 2.0
    mean_off_s: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise TrafficError("on/off periods must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._on = True
        self._remaining_s = float(self._rng.exponential(self.mean_on_s))

    def bytes_in_slot(self, slot_index: int) -> int:
        self._remaining_s -= self.slot_duration_s
        if self._remaining_s <= 0:
            self._on = not self._on
            mean = self.mean_on_s if self._on else self.mean_off_s
            self._remaining_s = float(self._rng.exponential(mean))
        if not self._on:
            return 0
        return self.inner.bytes_in_slot(slot_index)


@dataclass
class TrafficBuffer:
    """The gNB-side (or UE-side) queue a traffic model feeds.

    Tracks arrival timestamps at packet granularity so the packet
    aggregation analysis (paper Appendix D) can count packets per TTI.
    """

    model: TrafficModel
    mtu_bytes: int = 1400

    def __post_init__(self) -> None:
        self._backlog_bytes = 0
        self._packets: list[int] = []  # per-packet byte counts, FIFO

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting to be scheduled."""
        return self._backlog_bytes

    @property
    def backlog_packets(self) -> int:
        """Whole packets waiting (for aggregation accounting)."""
        return len(self._packets)

    def arrive(self, slot_index: int) -> int:
        """Pull one slot of arrivals from the model into the queue."""
        new_bytes = self.model.bytes_in_slot(slot_index)
        remaining = new_bytes
        while remaining > 0:
            size = min(self.mtu_bytes, remaining)
            self._packets.append(size)
            remaining -= size
        self._backlog_bytes += new_bytes
        return new_bytes

    def drain(self, max_bytes: int) -> tuple[int, int]:
        """Serve up to ``max_bytes``; returns (bytes, whole packets) sent.

        Packets are consumed FIFO; a partially sent packet counts toward
        the packet tally only when it completes (RLC reassembly view).
        """
        if max_bytes < 0:
            raise TrafficError(f"negative drain: {max_bytes}")
        served = min(max_bytes, self._backlog_bytes)
        self._backlog_bytes -= served
        packets_done = 0
        budget = served
        while self._packets and budget >= self._packets[0]:
            budget -= self._packets.pop(0)
            packets_done += 1
        if self._packets and budget > 0:
            self._packets[0] -= budget
        return served, packets_done
