"""NR-Scope: the telemetry tool this repository reproduces.

One :class:`NRScope` instance is the paper's Fig 4 box: it attaches to a
simulated cell as a passive observer, finds the cell (MIB/SIB1), sniffs
the RACH for C-RNTIs and UE configurations, decodes every tracked UE's
DCIs each TTI, and feeds the telemetry consumers — throughput
estimation, HARQ/retransmission tracking, spare-capacity computation and
packet-aggregation analysis.

Passivity is structural: the scope only reads :class:`SlotOutput`
broadcasts, never the gNB's or UEs' internal state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SI_RNTI
from repro.core.aggregation import PacketAggregationAnalyzer
from repro.core.cell_search import CellSearcher
from repro.core.dci_decoder import DecodedDci, GridDciDecoder, \
    RecordDciDecoder
from repro.core.harq_tracker import HarqTrackerBank
from repro.core.rach_sniffer import RachSniffer
from repro.core.spare_capacity import SpareCapacityEstimator, TtiUsage
from repro.core.decode_model import uci_decode_succeeds
from repro.core.telemetry import TelemetryLog, TelemetryRecord
from repro.core.throughput import ThroughputBank
from repro.core.uci_telemetry import UciObservation, UciTelemetry
from repro.phy.grant import dci_to_grant
from repro.gnb.gnb import SlotOutput
from repro.radio.medium import Link


class ScopeError(ValueError):
    """Raised for invalid scope configuration."""


#: Probability the sniffer's one-off RRC Setup PDSCH decode succeeds at
#: workable SNR; PDSCH decode of a 500-byte QPSK block is far more robust
#: than a single-shot DCI, hence the high floor.
_SETUP_DECODE_SNR_FLOOR_DB = -2.0


@dataclass
class ScopeCounters:
    """Operational statistics of one telemetry session."""

    slots_observed: int = 0
    slots_synchronized: int = 0
    dcis_decoded: int = 0
    msg4_seen: int = 0
    msg4_missed: int = 0

    @property
    def msg4_total(self) -> int:
        return self.msg4_seen + self.msg4_missed


class NRScope:
    """The passive 5G SA telemetry tool."""

    def __init__(self, link: Link, scs_khz: int = 30,
                 fidelity: str = "message", seed: int = 0,
                 window_s: float = 0.2, idle_timeout_s: float = 10.0,
                 packet_bytes: int = 1400, cell_n_id: int = 0,
                 always_decode_setup: bool = False,
                 decode_uci: bool = True,
                 uplink_snr_offset_db: float = 6.0,
                 capture_impairments: bool = False,
                 waveform_bootstrap: bool = False) -> None:
        if fidelity not in ("message", "iq"):
            raise ScopeError(f"unknown fidelity: {fidelity!r}")
        self.link = link
        self.scs_khz = scs_khz
        self.fidelity = fidelity
        self.cell_n_id = cell_n_id
        self.idle_timeout_s = idle_timeout_s
        self.always_decode_setup = always_decode_setup
        self._rng = np.random.default_rng(seed)

        self.searcher = CellSearcher(sniffer_snr_db=link.snr_db)
        self.counters = ScopeCounters()
        self.telemetry = TelemetryLog()
        self.harq = HarqTrackerBank()
        self.throughput = ThroughputBank(window_s=window_s)
        self.aggregation = PacketAggregationAnalyzer(
            packet_bytes=packet_bytes)
        # UCI decoding (paper section 7 future work): PUCCH comes from
        # the UE's much weaker transmitter, hence the SNR offset.
        self.decode_uci = decode_uci
        self.uplink_snr_offset_db = uplink_snr_offset_db
        self.uci = UciTelemetry()
        # Front-end impairments: a slowly drifting complex gain applied
        # to every IQ capture (oscillator drift / AGC wobble).  The grid
        # decoder then equalises from the DMRS pilots like a real
        # receiver must.
        self.capture_impairments = capture_impairments
        self._capture_phase = 0.0
        self._capture_amplitude = 1.0
        # Waveform bootstrap: ignore message-layer MIBs and acquire the
        # cell from the SSB samples (PSS/SSS correlation + PBCH decode).
        self.waveform_bootstrap = waveform_bootstrap
        self.acquisitions = 0

        # Built once SIB 1 lands:
        self.rach: RachSniffer | None = None
        self.spare: SpareCapacityEstimator | None = None
        self._record_decoder: RecordDciDecoder | None = None
        self._grid_decoder: GridDciDecoder | None = None
        self._usrp = None
        self._slot_duration_s = {15: 1e-3, 30: 0.5e-3, 60: 0.25e-3} \
            .get(scs_khz, 0.5e-3)

    # ----------------------------------------------------- attachment
    @classmethod
    def attach(cls, sim, snr_db: float | None = None, position=None,
               fidelity: str | None = None, **kwargs) -> "NRScope":
        """Create a scope listening to a :class:`~repro.simulation.Simulation`.

        The sniffer's link budget comes from the simulation's radio
        medium (or an explicit ``snr_db``); fidelity defaults to the
        gNB's mode so grids are only rendered when they will be used.
        """
        link = sim.sniffer_link(position=position, snr_db=snr_db)
        scope = cls(link=link, scs_khz=sim.profile.scs_khz,
                    fidelity=fidelity or sim.gnb.fidelity,
                    cell_n_id=sim.profile.cell_id, **kwargs)
        sim.add_observer(scope.observe_slot)
        return scope

    # ----------------------------------------------------- lifecycle
    def _on_synchronized(self) -> None:
        """SIB 1 landed: build the post-sync machinery."""
        knowledge = self.searcher.knowledge
        assert knowledge is not None and knowledge.n_prb is not None
        self.rach = RachSniffer(bwp_n_prb=knowledge.n_prb)
        self.spare = SpareCapacityEstimator(
            grant_config=knowledge.base_grant_config(),
            n_prb_carrier=knowledge.n_prb)
        self._record_decoder = RecordDciDecoder(
            sniffer_snr_db=self.link.snr_db,
            seed=int(self._rng.integers(0, 2**31)))
        self._grid_decoder = GridDciDecoder(
            dci_cfg=knowledge.dci_size_config(), n_id=self.cell_n_id,
            noise_var=self.link.noise_variance(),
            equalize=self.capture_impairments)

    @property
    def tracked_rntis(self) -> list[int]:
        """RNTIs currently under telemetry."""
        if self.rach is None:
            return []
        return sorted(self.rach.tracked)

    # ------------------------------------------------------- RACH path
    def _setup_decode_succeeds(self, body=None, rnti: int = 0) -> bool:
        """The one-off RRC Setup PDSCH decode.

        In iq fidelity the Setup body really rides the coded PDSCH
        chain (CRC24A + segmented polar + scrambling + QPSK) through
        the sniffer's noisy capture; in message fidelity a calibrated
        roll stands in (the chain decodes reliably above ~0 dB).
        """
        if self.link.snr_db < _SETUP_DECODE_SNR_FLOOR_DB:
            return False
        if self.fidelity == "iq" and body is not None:
            from repro.phy.pdsch import decode_pdsch_transport_block, \
                encode_pdsch_transport_block
            payload = body.encode()
            symbols = encode_pdsch_transport_block(payload, rnti,
                                                   self.cell_n_id)
            noise_var = self.link.noise_variance()
            scale = np.sqrt(noise_var / 2.0)
            noisy = symbols \
                + self._rng.normal(0, scale, symbols.size) \
                + 1j * self._rng.normal(0, scale, symbols.size)
            decoded = decode_pdsch_transport_block(
                noisy, payload.size, rnti, self.cell_n_id, noise_var)
            return decoded is not None \
                and bool(np.array_equal(decoded, payload))
        return bool(self._rng.random() < 0.995)

    def _handle_msg4_decode(self, rnti: int, output: SlotOutput,
                            decoded: bool) -> None:
        assert self.rach is not None
        if self.rach.is_tracked(rnti) or \
                rnti in self.rach.missed_rach_rntis:
            return
        if not decoded:
            self.rach.miss(rnti)
            self.counters.msg4_missed += 1
            return
        setup = None
        needs_setup = self.rach.cached_setup is None \
            or self.always_decode_setup
        if needs_setup:
            body = next((m.rrc_setup for m in output.msg4_records
                         if m.tc_rnti == rnti), None)
            if body is None or not self._setup_decode_succeeds(body,
                                                               rnti):
                self.rach.miss(rnti)
                self.counters.msg4_missed += 1
                return
            setup = body
        self.rach.discover(rnti, output.slot.time_s, setup)
        self.counters.msg4_seen += 1

    def _sniff_rach_message_mode(self, output: SlotOutput) -> None:
        assert self._record_decoder is not None
        for record, ok in self._record_decoder.decode_common(
                output.dci_records):
            if record.rnti == SI_RNTI:
                continue
            self._handle_msg4_decode(record.rnti, output, ok)

    def _sniff_rach_iq_mode(self, grid, output: SlotOutput) -> None:
        assert self._grid_decoder is not None
        knowledge = self.searcher.knowledge
        assert knowledge is not None
        decoded_rntis = set()
        for item in self._grid_decoder.blind_decode_common(
                grid, output.slot.index, knowledge.common_search_space()):
            if item.dci.rnti == SI_RNTI:
                continue
            decoded_rntis.add(item.dci.rnti)
            self._handle_msg4_decode(item.dci.rnti, output, decoded=True)
        # MSG 4s transmitted this slot but not blind-decoded are missed
        # forever (the sniffer of course cannot see this; we account it
        # from ground truth for the counters only).
        for record in output.msg4_records:
            if record.tc_rnti not in decoded_rntis:
                self._handle_msg4_decode(record.tc_rnti, output,
                                         decoded=False)

    # ------------------------------------------------------- DCI path
    def _process_decoded(self, decoded: list[DecodedDci],
                         output: SlotOutput) -> TtiUsage:
        assert self.rach is not None
        time_s = output.slot.time_s
        slot_index = output.slot.index
        per_ue_prbs: dict[int, int] = {}
        per_ue_mcs: dict[int, int] = {}
        used_prbs = 0
        for item in decoded:
            dci = item.dci
            ue = self.rach.tracked.get(dci.rnti)
            if ue is None:
                continue
            ue.touch(time_s)
            ue.decoded_dcis += 1
            grant = dci_to_grant(dci, ue.grant_config)
            is_retx = self.harq.observe(dci.rnti, dci.harq_id, dci.ndi,
                                        grant.downlink)
            record = TelemetryRecord.from_decode(
                slot_index=slot_index, time_s=time_s, dci=dci, grant=grant,
                aggregation_level=item.aggregation_level,
                is_retransmission=is_retx)
            self.telemetry.add(record)
            self.counters.dcis_decoded += 1
            if not is_retx:
                self.throughput.add(dci.rnti, grant.downlink, time_s,
                                    grant.tbs_bits)
                if grant.downlink:
                    self.aggregation.observe(time_s, dci.rnti,
                                             grant.tbs_bits)
            if grant.downlink:
                per_ue_prbs[dci.rnti] = per_ue_prbs.get(dci.rnti, 0) \
                    + grant.n_prb
                per_ue_mcs[dci.rnti] = grant.mcs.index
                used_prbs += grant.n_prb
        return TtiUsage(slot_index=slot_index, time_s=time_s,
                        used_prbs=used_prbs, per_ue_prbs=per_ue_prbs,
                        per_ue_mcs=per_ue_mcs)

    # ------------------------------------------------------ main loop
    def observe_slot(self, output: SlotOutput) -> None:
        """Consume one slot of the air interface."""
        self.counters.slots_observed += 1
        if output.mib is not None:
            if self.waveform_bootstrap:
                mib = self._acquire_from_waveform(output)
                if mib is not None:
                    self.searcher.on_mib(mib)
            else:
                self.searcher.on_mib(output.mib)
        if output.sib1 is not None:
            was_synced = self.searcher.synchronized
            self.searcher.on_sib1(output.sib1)
            if self.searcher.synchronized and not was_synced:
                self._on_synchronized()
        if not self.searcher.synchronized:
            return
        if output.uci_records and self.decode_uci and \
                self.rach is not None:
            self._sniff_uci(output)
        if not output.is_downlink:
            return
        self.counters.slots_synchronized += 1
        assert self.rach is not None and self.spare is not None

        if self.fidelity == "iq":
            if output.grid is None:
                return
            grid = self._capture(output)
            self._sniff_rach_iq_mode(grid, output)
            assert self._grid_decoder is not None
            decoded = self._grid_decoder.decode_slot(
                grid, output.slot.index, self.rach.tracked)
        else:
            self._sniff_rach_message_mode(output)
            assert self._record_decoder is not None
            decoded = self._record_decoder.decode_slot(
                output.dci_records, self.rach.tracked)

        usage = self._process_decoded(decoded, output)
        self.spare.observe_tti(usage, known_rntis=self.tracked_rntis)

        # Age out idle RNTIs once a second.
        if output.slot.index % int(1.0 / self._slot_duration_s) == 0:
            for rnti in self.rach.prune_idle(output.slot.time_s,
                                             self.idle_timeout_s):
                self.harq.forget(rnti)
                self.throughput.forget(rnti)
                self.uci.forget(rnti)

    def _sniff_uci(self, output: SlotOutput) -> None:
        """Decode PUCCH reports of tracked UEs (message-level model;
        the UL waveform is not rendered in either fidelity)."""
        assert self.rach is not None
        snr = self.link.snr_db - self.uplink_snr_offset_db
        for record in output.uci_records:
            if not self.rach.is_tracked(record.rnti):
                continue
            if not uci_decode_succeeds(snr, self._rng):
                continue
            report = record.report
            self.uci.add(UciObservation(
                slot_index=record.slot_index, time_s=record.time_s,
                rnti=record.rnti, cqi=report.cqi,
                scheduling_request=report.scheduling_request,
                harq_ack=report.harq_ack))
            tracked = self.rach.tracked.get(record.rnti)
            if tracked is not None:
                tracked.touch(record.time_s)

    def _acquire_from_waveform(self, output: SlotOutput):
        """PSS/SSS search + PBCH decode over the noisy SSB burst."""
        if output.ssb_samples is None or output.mib is None:
            return None
        from repro.core.acquisition import acquire_cell
        samples = np.asarray(output.ssb_samples, dtype=np.complex128)
        noise_var = self.link.noise_variance()
        scale = np.sqrt(noise_var / 2.0)
        noisy = samples + self._rng.normal(0, scale, samples.size) \
            + 1j * self._rng.normal(0, scale, samples.size)
        result = acquire_cell(noisy, output.mib.encode().size,
                              noise_var)
        if result is None or result.cell_id != self.cell_n_id:
            return None
        self.acquisitions += 1
        return result.mib

    def _capture(self, output: SlotOutput):
        """Noisy capture of the transmitted grid (the virtual USRP)."""
        assert output.grid is not None
        captured = output.grid.clone_with_noise(self.link.snr_db,
                                                self._rng)
        if self.capture_impairments:
            # Random-walk phase (oscillator drift) and a mild amplitude
            # wobble around the AGC set point.
            self._capture_phase += float(self._rng.normal(0.0, 0.05))
            self._capture_amplitude = float(np.clip(
                self._capture_amplitude
                + self._rng.normal(0.0, 0.01), 0.7, 1.4))
            captured.data *= self._capture_amplitude \
                * np.exp(1j * self._capture_phase)
        return captured

    # ------------------------------------------------------ reporting
    def per_ue_throughput(self, now_s: float,
                          downlink: bool = True) -> dict[int, float]:
        """Current windowed bit-rate estimate per tracked UE."""
        return {rnti: self.throughput.rate_bps(rnti, now_s, downlink)
                for rnti in self.tracked_rntis}
