"""Fig 14: spare-capacity estimation for two UEs on the Mosolab cell.

Paper result: NR-Scope's per-UE rate tracks tcpdump closely in time,
and the fair-share spare bit rates differ between the two UEs despite
equal spare PRBs, because their MCSs differ.
"""

from repro.analysis.report import print_tables, series_table
from repro.experiments import fig14_spare_capacity as fig14


def test_fig14_spare_capacity(once):
    traces = once(fig14.run, duration_s=8.0)
    result = fig14.to_result(traces)
    print()
    tables = [fig14.table(traces)]
    for trace in traces[:1]:
        tables.append(series_table(
            f"Fig 14a - UE 0x{trace.rnti:04x} bit rate (bps)",
            trace.estimated_rate, "t s", "NR-Scope bps", max_rows=8))
        tables.append(series_table(
            f"Fig 14a - UE 0x{trace.rnti:04x} spare (bps)",
            trace.spare_rate, "t s", "spare bps", max_rows=8))
    print_tables(tables)
    print("summary:", {k: round(v, 3) for k, v in result.summary.items()})

    assert len(traces) == 2
    # Shape: the estimate tracks ground truth within a few percent.
    for trace in traces:
        est_total = sum(v for _, v in trace.estimated_rate)
        truth_total = sum(v for _, v in trace.tcpdump_rate)
        assert est_total > 0 and truth_total > 0
        assert abs(est_total - truth_total) / truth_total < 0.1
        # Spare capacity exists: the two video flows do not fill the
        # 20 MHz cell.
        assert trace.mean_spare_bps > 1e6
    # Fair-share PRBs match between the two UEs in overlapping TTIs
    # (same split), while spare bit rates may differ via MCS.
    a, b = traces
    shared = set(s for s, _, _ in a.prb_rows) & \
        set(s for s, _, _ in b.prb_rows)
    spares_a = {s: spare for s, _, spare in a.prb_rows}
    spares_b = {s: spare for s, _, spare in b.prb_rows}
    for slot in list(shared)[:20]:
        assert spares_a[slot] == spares_b[slot]
    # ...but the *bit rates* those equal PRBs translate to differ,
    # because the two UEs run different MCSs (Fig 14a's observation).
    assert result.summary["spare_rate_ratio"] > 1.3
