"""Telemetry records and the stream NR-Scope emits (paper Fig 4's log).

Every decoded DCI becomes one row of the columnar
:class:`~repro.core.telemetry_store.TelemetryStore`;
:class:`TelemetryRecord` is the row's dataclass view for consumers that
want objects (JSONL serialisation, record-level tests, experiments).
:class:`TelemetryLog` is a thin facade over the store keeping the seed's
query API — per-UE throughput series, retransmission ratios, MCS
distributions, and the raw stream an application server would subscribe
to — while every query runs as a vectorized pass.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any

from repro.core.telemetry_store import TelemetryStore
from repro.phy.dci import Dci, DciFormat
from repro.phy.grant import Grant

#: On-disk JSONL schema version.  v1 streams carried the record fields
#: bare; v2 adds the ``v`` marker itself.  :meth:`TelemetryRecord.from_dict`
#: reads both.
TELEMETRY_SCHEMA_VERSION = 2


class TelemetryError(ValueError):
    """Raised for malformed telemetry operations."""


@dataclass(frozen=True)
class TelemetryRecord:
    """One decoded DCI with its derived quantities."""

    slot_index: int
    time_s: float
    rnti: int
    downlink: bool
    tbs_bits: int
    n_prb: int
    n_symbols: int
    mcs_index: int
    harq_id: int
    ndi: int
    rv: int
    is_retransmission: bool
    aggregation_level: int

    @classmethod
    def from_decode(cls, slot_index: int, time_s: float, dci: Dci,
                    grant: Grant, aggregation_level: int,
                    is_retransmission: bool) -> "TelemetryRecord":
        """Build a record from a decoded DCI/grant pair."""
        return cls(slot_index=slot_index, time_s=time_s, rnti=dci.rnti,
                   downlink=dci.format is DciFormat.DL_1_1,
                   tbs_bits=grant.tbs_bits, n_prb=grant.n_prb,
                   n_symbols=grant.n_symbols, mcs_index=dci.mcs,
                   harq_id=dci.harq_id, ndi=dci.ndi, rv=dci.rv,
                   is_retransmission=is_retransmission,
                   aggregation_level=aggregation_level)

    @property
    def n_regs(self) -> int:
        """REGs this record's grant occupies."""
        return self.n_prb * self.n_symbols

    def to_json(self) -> str:
        """One JSON line, the on-disk log format (schema v2)."""
        payload = {"v": TELEMETRY_SCHEMA_VERSION, **asdict(self)}
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TelemetryRecord":
        """Tolerant reader for any on-disk schema version.

        A missing ``v`` marks a v1 line.  Unknown keys — fields a later
        schema may add — are ignored so old readers of new logs and new
        readers of old logs both work; missing record fields raise
        :class:`TelemetryError` naming them.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in payload.items()
                  if key in known}
        missing = known - kwargs.keys()
        if missing:
            version = payload.get("v", 1)
            raise TelemetryError(
                f"telemetry line (schema v{version}) is missing "
                f"fields: {', '.join(sorted(missing))}")
        return cls(**kwargs)


def _materialize(rows: list[tuple]) -> list[TelemetryRecord]:
    """Packed row tuples (RECORD_FIELDS order) back into dataclasses."""
    return [TelemetryRecord(
        slot_index=t[0], time_s=t[1], rnti=t[2], downlink=bool(t[3]),
        tbs_bits=t[4], n_prb=t[5], n_symbols=t[6], mcs_index=t[7],
        harq_id=t[8], ndi=t[9], rv=t[10],
        is_retransmission=bool(t[11]), aggregation_level=t[12])
        for t in rows]


class TelemetryLog:
    """Indexed store of everything NR-Scope decoded in a session.

    Since the columnar refactor this class is a facade: rows live in a
    :class:`~repro.core.telemetry_store.TelemetryStore` and every query
    delegates to its vectorized kernels.  ``records`` / ``for_rnti``
    materialise :class:`TelemetryRecord` dataclasses on demand, so the
    object-level API (and the JSONL byte format) is unchanged.
    """

    def __init__(self, store: TelemetryStore | None = None) -> None:
        self._store = store if store is not None else TelemetryStore()

    @property
    def store(self) -> TelemetryStore:
        """The columnar store behind this log."""
        return self._store

    def add(self, record: TelemetryRecord) -> None:
        """Append one decode."""
        self._store.append(
            slot_index=record.slot_index, time_s=record.time_s,
            rnti=record.rnti, downlink=record.downlink,
            tbs_bits=record.tbs_bits, n_prb=record.n_prb,
            n_symbols=record.n_symbols, mcs_index=record.mcs_index,
            harq_id=record.harq_id, ndi=record.ndi, rv=record.rv,
            is_retransmission=record.is_retransmission,
            aggregation_level=record.aggregation_level)

    def append_decode(self, slot_index: int, time_s: float, dci: Dci,
                      grant: Grant, aggregation_level: int,
                      is_retransmission: bool) -> None:
        """Append one decode straight from the DCI/grant pair.

        The sink stage's hot path: no dataclass is constructed, the
        fields go directly into the packed row.
        """
        self._store.append(
            slot_index=slot_index, time_s=time_s, rnti=dci.rnti,
            downlink=dci.format is DciFormat.DL_1_1,
            tbs_bits=grant.tbs_bits, n_prb=grant.n_prb,
            n_symbols=grant.n_symbols, mcs_index=dci.mcs,
            harq_id=dci.harq_id, ndi=dci.ndi, rv=dci.rv,
            is_retransmission=is_retransmission,
            aggregation_level=aggregation_level)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def records(self) -> list[TelemetryRecord]:
        """All records in decode order."""
        return _materialize(self._store.table().tolist())

    def for_rnti(self, rnti: int, downlink: bool | None = None) \
            -> list[TelemetryRecord]:
        """Records for one UE, optionally filtered by direction."""
        sub = self._store.table()[self._store.rows_for_rnti(rnti)]
        if downlink is not None:
            sub = sub[sub["downlink"] == (1 if downlink else 0)]
        return _materialize(sub.tolist())

    def rntis(self) -> list[int]:
        """Every RNTI seen in the session."""
        return self._store.rntis()

    def bits_between(self, rnti: int, start_s: float, end_s: float,
                     downlink: bool = True,
                     count_retransmissions: bool = False) -> int:
        """New-data bits scheduled for a UE in a window.

        Retransmissions are excluded by default: their bits were already
        counted when the HARQ process first carried them, which is what
        makes the estimate comparable to tcpdump's delivered bytes.
        """
        return self._store.bits_between(
            rnti, start_s, end_s, downlink=downlink,
            count_retransmissions=count_retransmissions)

    def bitrate_series(self, rnti: int, window_s: float, end_time_s: float,
                       downlink: bool = True) -> list[tuple[float, float]]:
        """(window end, bits/s) estimates — the paper Fig 14 time series.

        Window edges come from integer window indices (``k * window_s``,
        one multiply each); the seed accumulated ``t += window_s``,
        which drifts over long series.
        """
        if window_s <= 0:
            raise TelemetryError(f"window must be positive: {window_s}")
        return self._store.bitrate_series(rnti, window_s, end_time_s,
                                          downlink=downlink)

    def mcs_distribution(self, rnti: int | None = None,
                         downlink: bool = True) -> list[int]:
        """MCS indices of decoded (new-data) DCIs (paper Fig 15 left)."""
        return self._store.mcs_distribution(rnti, downlink=downlink)

    def retransmission_ratio(self, rnti: int | None = None,
                             downlink: bool = True) -> float:
        """Fraction of decoded DCIs that were retransmissions (Fig 15)."""
        return self._store.retransmission_ratio(rnti, downlink=downlink)

    def write_jsonl(self, path: str | Path) -> int:
        """Dump the session to a JSON-lines file; returns the line count.

        Byte-identical to the seed format: rows materialise through
        :meth:`TelemetryRecord.to_json` line by line.
        """
        target = Path(path)
        count = 0
        with target.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(record.to_json() + "\n")
                count += 1
        return count

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "TelemetryLog":
        """Reload a session written by :meth:`write_jsonl`."""
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                log.add(TelemetryRecord.from_dict(json.loads(line)))
        return log
