"""R010: batched PHY dataflow must not drift dtypes.

The batch kernels' contract is *bit identity* with their scalar twins
— same rounding, same packed bits, 4x the throughput.  Two dtype bugs
break it without any test noticing until the numbers diverge:

* a **silent upcast**: a float32/complex64 LLR or symbol matrix meets
  a float64/complex128 operand and the rest of the chain runs wide —
  different rounding than the scalar path, double the memory traffic;
* **return drift**: a function whose declared ``Layout: return ...``
  dtype (or whose scalar twin) disagrees with what its returns
  actually produce, so callers get a different dtype depending on
  which path ran.

This rule runs the abstract interpreter (:mod:`repro.lint.shapes`)
over every function of a hot module.  ``Layout:`` docstring lines seed
parameter dtypes/shapes; upcast issues and declared-return drift
become findings, and every ``(f, f_batch)`` pair with concretely
inferred but *different* return dtypes is flagged as twin drift.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.shapes import analyze_module

#: Where the batched dataflow lives: the PHY kernels and the decoder
#: that drives them.
HOT_PREFIXES = ("phy/",)
HOT_FILES = ("core/dci_decoder.py",)

#: ShapeIssue kinds this rule owns (R011 owns ``broadcast``).
_OWNED = ("upcast", "return-drift")


@register
class DtypeDriftRule(Rule):
    """Flag silent upcasts and scalar/batch return-dtype drift."""

    rule_id = "R010"
    title = "dtype drift in the batched PHY dataflow"

    def applies(self, rel: str) -> bool:
        return rel.startswith(HOT_PREFIXES) or rel in HOT_FILES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        module = analyze_module(ctx.tree)
        for shapes in module.functions.values():
            for issue in shapes.issues:
                if issue.kind not in _OWNED:
                    continue
                node = ast.Constant(value=None)
                node.lineno = issue.lineno
                node.col_offset = issue.col
                yield self.finding(
                    ctx, node,
                    f"in '{shapes.qualname}': {issue.detail}")
        for scalar, batch in module.batch_twins():
            s_dtype = scalar.return_value.dtype
            b_dtype = batch.return_value.dtype
            if s_dtype.is_concrete and b_dtype.is_concrete \
                    and s_dtype != b_dtype:
                node = ast.Constant(value=None)
                node.lineno = batch.lineno
                node.col_offset = 0
                yield self.finding(
                    ctx, node,
                    f"'{batch.qualname}' returns {b_dtype.name} but "
                    f"its scalar twin '{scalar.qualname}' returns "
                    f"{s_dtype.name} — the batched path must be "
                    f"bit-identical to the scalar path; align the "
                    f"return dtypes")
