"""Transport block size determination (TS 38.214 section 5.1.3.2).

The TBS is the quantity NR-Scope's whole telemetry pipeline exists to
recover: bits delivered to one UE in one TTI (paper section 3.2.2 and
Appendix A).  Inputs come from the decoded DCI (time/frequency allocation,
MCS) and the RRC configuration (DMRS pattern, overhead, MIMO layers).

Note on the paper's Appendix A: it restates the standard with the two
``N_info`` branches transposed and 3814 where the spec has 3816; this
module follows TS 38.214 itself, which is also what the released NR-Scope
C++ code does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import N_SC_PER_PRB
from repro.phy.mcs_tables import McsEntry

#: Table 5.1.3.2-1: TBS values for N_info <= 3824.
TBS_TABLE = (
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144,
    152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288, 304, 320,
    336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552, 576, 608, 640,
    672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160,
    1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736,
    1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472, 2536, 2600,
    2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496, 3624, 3752, 3824,
)

#: Cap on usable REs per PRB in the TBS formula (38.214 eq. in 5.1.3.2).
RE_PER_PRB_CAP = 156


class TbsError(ValueError):
    """Raised for invalid allocation parameters."""


@dataclass(frozen=True)
class TbsResult:
    """TBS plus the intermediate quantities, useful for logs and tests."""

    tbs_bits: int
    n_re: int
    n_info: float
    code_rate: float
    qm: int
    n_layers: int


def effective_res(n_prb: int, n_symbols: int, n_dmrs_per_prb: int,
                  n_oh_per_prb: int) -> int:
    """Resource elements counted toward the TBS (38.214 step 1).

    ``N'_RE = N_sc * N_symb - N_dmrs - N_oh`` per PRB, capped at 156, then
    scaled by the PRB count.
    """
    if n_prb <= 0:
        raise TbsError(f"PRB count must be positive, got {n_prb}")
    if not 1 <= n_symbols <= 14:
        raise TbsError(f"symbol count out of range: {n_symbols}")
    if n_dmrs_per_prb < 0 or n_oh_per_prb < 0:
        raise TbsError("DMRS/overhead RE counts must be non-negative")
    per_prb = N_SC_PER_PRB * n_symbols - n_dmrs_per_prb - n_oh_per_prb
    if per_prb <= 0:
        raise TbsError(
            f"allocation leaves no usable REs per PRB ({per_prb})")
    return min(RE_PER_PRB_CAP, per_prb) * n_prb


def _quantize_small(n_info: float) -> int:
    """N'_info for the N_info <= 3824 branch."""
    n = max(3, int(math.floor(math.log2(n_info))) - 6)
    return max(24, (1 << n) * int(math.floor(n_info / (1 << n))))


def _lookup_small(n_info_prime: int) -> int:
    """Smallest table TBS not less than N'_info."""
    for value in TBS_TABLE:
        if value >= n_info_prime:
            return value
    return TBS_TABLE[-1]


def _quantize_large(n_info: float, code_rate: float) -> int:
    """TBS for the N_info > 3824 branch (LDPC segmentation aware)."""
    n = int(math.floor(math.log2(n_info - 24))) - 5
    step = 1 << n
    n_info_prime = max(3840, step * round((n_info - 24) / step))
    if code_rate <= 0.25:
        c = math.ceil((n_info_prime + 24) / 3816)
        return 8 * c * math.ceil((n_info_prime + 24) / (8 * c)) - 24
    if n_info_prime > 8424:
        c = math.ceil((n_info_prime + 24) / 8424)
        return 8 * c * math.ceil((n_info_prime + 24) / (8 * c)) - 24
    return 8 * math.ceil((n_info_prime + 24) / 8) - 24


def transport_block_size(n_prb: int, n_symbols: int, mcs: McsEntry,
                         n_layers: int = 1, n_dmrs_per_prb: int = 12,
                         n_oh_per_prb: int = 0) -> TbsResult:
    """Full 38.214 section 5.1.3.2 TBS determination.

    Defaults match the paper's testbeds: single-symbol type-A DMRS without
    CDM-group data sharing contributes 12 DMRS REs per PRB, and
    ``xOverhead`` is absent (0), as in the Appendix B sample grant.
    """
    if not 1 <= n_layers <= 4:
        raise TbsError(f"layer count out of range: {n_layers}")
    n_re = effective_res(n_prb, n_symbols, n_dmrs_per_prb, n_oh_per_prb)
    n_info = n_re * mcs.code_rate * mcs.qm * n_layers
    if n_info <= 0:
        raise TbsError(f"non-positive N_info: {n_info}")
    if n_info <= 3824:
        tbs = _lookup_small(_quantize_small(n_info))
    else:
        tbs = _quantize_large(n_info, mcs.code_rate)
    return TbsResult(tbs_bits=int(tbs), n_re=n_re, n_info=float(n_info),
                     code_rate=mcs.code_rate, qm=mcs.qm, n_layers=n_layers)
