"""repro: a reproduction of NR-Scope (CoNEXT '24) on a simulated 5G SA RAN.

The package is layered:

* :mod:`repro.phy` - 3GPP physical-layer substrate (38.211/212/214).
* :mod:`repro.rrc` - the RRC message set NR-Scope decodes (MIB, SIB1,
  RRC Setup).
* :mod:`repro.gnb`, :mod:`repro.ue`, :mod:`repro.radio` - the simulated
  5G Standalone network standing in for the paper's testbeds.
* :mod:`repro.core` - NR-Scope itself: cell search, RACH sniffing, DCI
  decoding, throughput / HARQ / spare-capacity telemetry.
* :mod:`repro.analysis` - ground-truth matching and the paper's metrics.
* :mod:`repro.experiments` - one module per evaluation figure.

Quickstart::

    from repro import NRScope, Simulation, SRSRAN_PROFILE
    sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=1)
    scope = NRScope.attach(sim)
    sim.run(seconds=1.0)
    for record in scope.telemetry.per_ue_throughput():
        print(record)
"""

__version__ = "1.0.0"

#: Names re-exported lazily so that importing a subpackage (e.g.
#: ``repro.phy``) never drags in the whole stack.
_LAZY_EXPORTS = {
    "NRScope": ("repro.core.scope", "NRScope"),
    "Simulation": ("repro.simulation", "Simulation"),
    "CellProfile": ("repro.gnb.cell_config", "CellProfile"),
    "SRSRAN_PROFILE": ("repro.gnb.cell_config", "SRSRAN_PROFILE"),
    "MOSOLAB_PROFILE": ("repro.gnb.cell_config", "MOSOLAB_PROFILE"),
    "AMARISOFT_PROFILE": ("repro.gnb.cell_config", "AMARISOFT_PROFILE"),
    "TMOBILE_N25_PROFILE": ("repro.gnb.cell_config", "TMOBILE_N25_PROFILE"),
    "TMOBILE_N71_PROFILE": ("repro.gnb.cell_config", "TMOBILE_N71_PROFILE"),
    "ObsContext": ("repro.obs.context", "ObsContext"),
    "OBS_NOOP": ("repro.obs.context", "OBS_NOOP"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
