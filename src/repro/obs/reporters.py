"""Pluggable reporters: where bus events go.

A reporter is anything with ``emit(event)`` / ``close()`` (the
:class:`Reporter` protocol).  Three ship with the bus:

* :class:`JsonlReporter` - one schema-versioned JSON object per line,
  the durable run artifact ``repro.cli obs topn`` post-processes;
* :class:`CounterReporter` - Prometheus-style monotonic counters and
  span histograms with a text-format dump, the live-scrape surface;
* :class:`RingReporter` - a bounded in-memory ring, the substrate for
  live dashboards and for tests that assert on the exact stream.

Reporters must be fast and must never raise into the hot path; the
context catches and counts reporter failures rather than letting them
abort a telemetry session.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Iterator, Mapping, Protocol, runtime_checkable


class ReporterError(ValueError):
    """Raised for invalid reporter configuration."""


@runtime_checkable
class Reporter(Protocol):
    """The reporter protocol: consume one event; flush state on close."""

    def emit(self, event: Mapping[str, Any]) -> None:
        """Consume one schema-versioned event."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""
        ...  # pragma: no cover - protocol


class JsonlReporter:
    """Writes one compact JSON line per event.

    The file is opened lazily on the first event and the key order is
    the context's assembly order, so two sessions emitting the same
    event sequence produce byte-identical files.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.count = 0
        self._handle: Any = None

    def emit(self, event: Mapping[str, Any]) -> None:
        if self._handle is None:
            self._handle = self.path.open("w", encoding="utf-8")
        self._handle.write(
            json.dumps(event, separators=(",", ":")) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class RingReporter:
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ReporterError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.count = 0

    def emit(self, event: Mapping[str, Any]) -> None:
        self._ring.append(dict(event))
        self.count += 1

    @property
    def events(self) -> list[dict[str, Any]]:
        """Retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(list(self._ring))

    def close(self) -> None:
        return None


class TailReporter:
    """Live-tails the stream: one compact JSON line per event.

    The operator's ``tail -f`` surface — watch a fleet's checkpoint
    spans and failure events as they commit, without waiting for a
    JSONL file to flush.  Writes to ``stderr`` by default (keeping
    ``stdout`` clean for command output) and flushes per event; the
    stream object is borrowed, so :meth:`close` never closes it.
    """

    def __init__(self, stream: Any = None) -> None:
        import sys
        self._stream = stream if stream is not None else sys.stderr
        self.count = 0

    def emit(self, event: Mapping[str, Any]) -> None:
        self._stream.write(
            json.dumps(event, separators=(",", ":")) + "\n")
        self._stream.flush()
        self.count += 1

    def close(self) -> None:
        return None


#: Event fields promoted to metric labels (low-cardinality by design;
#: ``rnti`` and ``slot`` stay event-only so counters cannot explode).
LABEL_KEYS = ("cell", "stage", "reason", "outcome")

#: Histogram bucket upper bounds for span durations, in microseconds.
SPAN_BUCKETS_US = (50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
                   10000.0, 50000.0, float("inf"))


class CounterReporter:
    """Prometheus-style aggregation of the event stream.

    * ``counter`` events add their ``value`` to a monotonic counter
      keyed by (name, labels);
    * plain ``event`` events count occurrences the same way (so failure
      events aggregate without a separate counter emission);
    * ``span`` events land in a fixed-bucket histogram per (name,
      labels) with ``sum``/``count`` like a Prometheus histogram.

    :meth:`render_text` dumps everything in the Prometheus text
    exposition format (deterministic ordering).
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, tuple[tuple[str, Any], ...]],
                             float] = {}
        self._hist: dict[tuple[str, tuple[tuple[str, Any], ...]],
                         list[float]] = {}
        self._hist_sum: dict[tuple[str, tuple[tuple[str, Any], ...]],
                             float] = {}
        self.events_seen = 0

    @staticmethod
    def _labels_of(event: Mapping[str, Any]) \
            -> tuple[tuple[str, Any], ...]:
        return tuple((k, event[k]) for k in LABEL_KEYS if k in event)

    def emit(self, event: Mapping[str, Any]) -> None:
        self.events_seen += 1
        kind = event.get("kind")
        key = (str(event.get("name")), self._labels_of(event))
        if kind == "counter":
            raw = event.get("value", 1)
            inc = float(raw) if isinstance(raw, (int, float)) \
                and not isinstance(raw, bool) else 1.0
            self._counters[key] = self._counters.get(key, 0.0) + inc
        elif kind == "event":
            self._counters[key] = self._counters.get(key, 0.0) + 1.0
        elif kind == "span":
            raw = event.get("duration_us", 0.0)
            duration = float(raw) if isinstance(raw, (int, float)) \
                and not isinstance(raw, bool) else 0.0
            buckets = self._hist.get(key)
            if buckets is None:
                buckets = [0.0] * len(SPAN_BUCKETS_US)
                self._hist[key] = buckets
            for i, bound in enumerate(SPAN_BUCKETS_US):
                if duration <= bound:
                    buckets[i] += 1
            self._hist_sum[key] = self._hist_sum.get(key, 0.0) + duration

    # ------------------------------------------------------------ query
    def value(self, name: str, **labels: Any) -> float:
        """Sum of a counter over every series matching ``labels``.

        Label filters are a subset match: ``value("stage.drop",
        stage="dci")`` sums all ``stage.drop`` series whose ``stage``
        label is ``dci`` whatever their other labels.
        """
        want = set(labels.items())
        total = 0.0
        for (cname, clabels), count in self._counters.items():
            if cname == name and want <= set(clabels):
                total += count
        return total

    def span_count(self, name: str, **labels: Any) -> float:
        """Total observations of a span histogram (subset label match)."""
        want = set(labels.items())
        total = 0.0
        for (hname, hlabels), buckets in self._hist.items():
            if hname == name and want <= set(hlabels):
                total += buckets[-1]
        return total

    def span_sum_us(self, name: str, **labels: Any) -> float:
        """Summed duration of a span histogram, in microseconds."""
        want = set(labels.items())
        return sum(value for (hname, hlabels), value
                   in self._hist_sum.items()
                   if hname == name and want <= set(hlabels))

    # ----------------------------------------------------------- render
    @staticmethod
    def _metric_name(event_name: str, suffix: str) -> str:
        return "nrscope_" + event_name.replace(".", "_") + suffix

    @staticmethod
    def _format_labels(labels: tuple[tuple[str, Any], ...],
                       extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = tuple((k, str(v)) for k, v in labels) + extra
        if not pairs:
            return ""
        body = ",".join(f'{k}="{v}"' for k, v in pairs)
        return "{" + body + "}"

    def render_text(self) -> str:
        """Prometheus text-format dump of every counter and histogram."""
        lines: list[str] = []
        by_counter: dict[str, list[tuple[tuple[tuple[str, Any], ...],
                                         float]]] = {}
        for (name, labels), count in self._counters.items():
            by_counter.setdefault(name, []).append((labels, count))
        for name in sorted(by_counter):
            metric = self._metric_name(name, "_total")
            lines.append(f"# TYPE {metric} counter")
            for labels, count in sorted(by_counter[name],
                                        key=lambda item: item[0]):
                value = int(count) if count == int(count) else count
                lines.append(
                    f"{metric}{self._format_labels(labels)} {value}")
        by_hist: dict[str, list[tuple[tuple[tuple[str, Any], ...],
                                      list[float]]]] = {}
        for (name, labels), buckets in self._hist.items():
            by_hist.setdefault(name, []).append((labels, buckets))
        for name in sorted(by_hist):
            metric = self._metric_name(name, "_duration_us")
            lines.append(f"# TYPE {metric} histogram")
            for labels, buckets in sorted(by_hist[name],
                                          key=lambda item: item[0]):
                for bound, count in zip(SPAN_BUCKETS_US, buckets):
                    le = "+Inf" if bound == float("inf") else \
                        f"{bound:g}"
                    lines.append(
                        f"{metric}_bucket"
                        f"{self._format_labels(labels, (('le', le),))}"
                        f" {int(count)}")
                total = self._hist_sum[(name, labels)]
                lines.append(f"{metric}_sum"
                             f"{self._format_labels(labels)}"
                             f" {total:.3f}")
                lines.append(f"{metric}_count"
                             f"{self._format_labels(labels)}"
                             f" {int(buckets[-1])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def close(self) -> None:
        return None
