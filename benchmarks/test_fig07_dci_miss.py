"""Fig 7: DCI miss rate vs number of UEs.

Paper result: miss rates stay in the sub-percent range — 0.33%/0.28%
(srsRAN DL/UL) and 0.93%/0.31% (Amarisoft), "two 9's of reliability".
"""

from repro.analysis.report import print_tables
from repro.experiments import fig07_dci_miss as fig7


def test_fig07_dci_miss_rate(once):
    srsran, amarisoft = once(fig7.run, duration_s=4.0)
    result = fig7.to_result(srsran, amarisoft)
    print()
    print_tables([
        fig7.table(srsran, "Fig 7a - DCI miss rate, srsRAN (paper:"
                           " 0.33% DL / 0.28% UL)"),
        fig7.table(amarisoft, "Fig 7b - DCI miss rate, Amarisoft (paper:"
                              " 0.93% DL / 0.31% UL)"),
    ])
    print("summary:", {k: round(v, 3) for k, v in result.summary.items()})

    # Shape: sub-percent misses at lab SNR, i.e. two 9's of reliability.
    for key, value in result.summary.items():
        assert value < 2.0, f"{key} = {value}% breaks the two-9s claim"
    # Enough DCIs flowed for the rates to be meaningful.
    assert all(r.n_dl_dcis > 100 for r in srsran)
    assert all(r.n_dl_dcis > 200 for r in amarisoft)
