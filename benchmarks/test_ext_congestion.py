"""Extension: RAN-aware congestion control vs end-to-end AIMD (§6).

The paper's motivating application (and the PBE-CC line of work it
cites): spare-capacity feedback from NR-Scope lets a sender track the
radio capacity directly, where an end-to-end loop must probe for it a
round trip at a time.
"""

from repro.analysis.report import print_tables, series_table
from repro.experiments import ext_congestion


def test_ext_ran_aware_congestion_control(once):
    ran_aware, baseline = once(ext_congestion.run, duration_s=6.0)
    result = ext_congestion.to_result(ran_aware, baseline)
    print()
    print_tables([
        ext_congestion.table(ran_aware, baseline),
        series_table("RAN-aware offered rate (bps)",
                     list(zip(ran_aware.times, ran_aware.offered_bps)),
                     "t s", "offered bps", max_rows=8),
        series_table("e2e AIMD offered rate (bps)",
                     list(zip(baseline.times, baseline.offered_bps)),
                     "t s", "offered bps", max_rows=8),
    ])
    print("summary:", {k: round(v, 2) for k, v in result.summary.items()})

    # Shape: RAN-aware feedback wins on goodput by a wide margin —
    # it rides the measured capacity instead of probing for it.
    assert result.summary["ran_aware_goodput_mbps"] > \
        1.5 * result.summary["e2e_goodput_mbps"]
    # Both senders survive the mid-session blockage (no collapse):
    # goodput in the final third recovers for each.
    import numpy as np
    for trace in (ran_aware, baseline):
        thirds = np.array_split(np.array(trace.delivered_bps), 3)
        assert thirds[2].mean() > 0.5 * thirds[0].mean(), trace.name
    # The RAN-aware sender's queue does not blow up relative to the
    # AIMD baseline despite running ~4x the rate.
    assert result.summary["ran_aware_peak_backlog_kb"] < \
        3 * max(result.summary["e2e_peak_backlog_kb"], 50.0)
