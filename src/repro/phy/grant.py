"""DCI-to-grant translation (TS 38.214 sections 5.1.2, 6.1.2).

A DCI is a compressed pointer; the *grant* is what it means: which PRBs,
which symbols, what modulation, and how many bits (TBS).  The gNB
performs this translation to build its transmissions, and NR-Scope
performs the identical translation on decoded DCIs (paper Appendix B
shows one DCI/grant pair).  Keeping one implementation here guarantees
the two agree bit-for-bit, which is what makes the sniffer's TBS
accounting exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.dci import Dci, DciError, DciFormat, riv_decode
from repro.phy.mcs_tables import McsEntry, mcs_entry
from repro.phy.tbs import TbsResult, transport_block_size


class GrantError(ValueError):
    """Raised when a DCI cannot be translated under a config."""


#: Time-domain resource allocation table (38.214 Table 5.1.2.1.1-2
#: shape): DCI ``time_alloc`` indexes (start_symbol, n_symbols, mapping).
#: Row 2 is the paper's Appendix B sample: t_alloc 2:12.
TDRA_TABLE: tuple[tuple[int, int, str], ...] = (
    (0, 14, "A"),
    (2, 12, "A"),
    (2, 12, "A"),
    (2, 10, "A"),
    (2, 9, "A"),
    (2, 7, "A"),
    (2, 5, "A"),
    (2, 4, "A"),
    (5, 7, "B"),
    (5, 4, "B"),
    (9, 4, "B"),
    (12, 2, "B"),
    (1, 13, "A"),
    (1, 6, "A"),
    (2, 2, "B"),
    (4, 10, "A"),
)


@dataclass(frozen=True)
class GrantConfig:
    """RRC-derived parameters needed to expand a DCI into a grant.

    The gNB knows these natively; NR-Scope learns them from SIB 1 and
    MSG 4 (``mcs-Table``, ``maxMIMO-Layers``, DMRS pattern, xOverhead -
    paper section 3.1.2 and Appendix A).
    """

    bwp_n_prb: int
    mcs_table: str = "qam64"
    n_layers: int = 1
    n_dmrs_per_prb: int = 12
    xoverhead_res: int = 0

    def __post_init__(self) -> None:
        if self.bwp_n_prb < 1:
            raise GrantError(f"BWP must have PRBs: {self.bwp_n_prb}")
        if not 1 <= self.n_layers <= 4:
            raise GrantError(f"layers out of range: {self.n_layers}")


@dataclass(frozen=True)
class Grant:
    """A fully resolved scheduling decision for one UE in one TTI."""

    rnti: int
    downlink: bool
    first_prb: int
    n_prb: int
    first_symbol: int
    n_symbols: int
    mapping_type: str
    mcs: McsEntry
    tbs_bits: int
    n_re: int
    ndi: int
    rv: int
    harq_id: int
    n_layers: int

    @property
    def n_regs(self) -> int:
        """REGs (PRB x symbol units) this grant occupies (paper Fig 8)."""
        return self.n_prb * self.n_symbols

    @property
    def tbs_bytes(self) -> int:
        """Payload bytes carried when the block decodes."""
        return self.tbs_bits // 8

    def describe(self) -> str:
        """Appendix-B style one-liner."""
        direction = "PDSCH" if self.downlink else "PUSCH"
        return (f"rnti=0x{self.rnti:04x}, ch={direction}, "
                f"t_alloc={self.first_symbol}:{self.n_symbols}, "
                f"f_alloc={self.first_prb}:{self.n_prb}, "
                f"mcs={self.mcs.index}, tbs={self.tbs_bits}, "
                f"rv={self.rv}, ndi={self.ndi}, nof_re={self.n_re}")


def time_allocation(time_alloc_index: int) -> tuple[int, int, str]:
    """Resolve a DCI time-domain allocation index via the TDRA table."""
    if not 0 <= time_alloc_index < len(TDRA_TABLE):
        raise GrantError(
            f"time allocation index {time_alloc_index} outside TDRA table")
    return TDRA_TABLE[time_alloc_index]


def dci_to_grant(dci: Dci, config: GrantConfig) -> Grant:
    """Expand a decoded DCI into its grant, computing the TBS.

    This is the paper's section 3.2.2 step: combine the DCI's frequency/
    time allocation and MCS with the RRC-known DMRS/overhead/layer
    parameters and run the 38.214 TBS computation.
    """
    try:
        first_prb, n_prb = riv_decode(dci.freq_alloc_riv, config.bwp_n_prb)
    except DciError as exc:
        raise GrantError(f"bad frequency allocation: {exc}") from exc
    first_symbol, n_symbols, mapping = time_allocation(dci.time_alloc)
    mcs = mcs_entry(dci.mcs, config.mcs_table)
    result: TbsResult = transport_block_size(
        n_prb=n_prb, n_symbols=n_symbols, mcs=mcs,
        n_layers=config.n_layers,
        n_dmrs_per_prb=config.n_dmrs_per_prb,
        n_oh_per_prb=config.xoverhead_res)
    return Grant(
        rnti=dci.rnti,
        downlink=dci.format is DciFormat.DL_1_1,
        first_prb=first_prb,
        n_prb=n_prb,
        first_symbol=first_symbol,
        n_symbols=n_symbols,
        mapping_type=mapping,
        mcs=mcs,
        tbs_bits=result.tbs_bits,
        n_re=result.n_re,
        ndi=dci.ndi,
        rv=dci.rv,
        harq_id=dci.harq_id,
        n_layers=config.n_layers,
    )
