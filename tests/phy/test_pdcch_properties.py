"""Property-based tests over the full PDCCH chain.

Hypothesis drives randomized DCIs through encode -> (optional noise) ->
decode and checks the invariants the telemetry pipeline relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.coreset import Coreset
from repro.phy.dci import Dci, DciFormat, DciSizeConfig, riv_encode
from repro.phy.grant import GrantConfig, dci_to_grant
from repro.phy.pdcch import PdcchCandidate, encode_pdcch, \
    try_decode_pdcch
from repro.phy.resource_grid import ResourceGrid

CFG = DciSizeConfig(n_prb_bwp=51)
CORESET = Coreset(coreset_id=1, first_prb=0, n_prb=48, n_symbols=1)
N_ID = 500


def random_dci(data) -> Dci:
    fmt = data.draw(st.sampled_from(list(DciFormat)))
    n_prb = data.draw(st.integers(1, 51))
    start = data.draw(st.integers(0, 51 - n_prb))
    return Dci(
        format=fmt,
        rnti=data.draw(st.integers(1, 0xFFEF)),
        freq_alloc_riv=riv_encode(start, n_prb, 51),
        time_alloc=data.draw(st.integers(0, 15)),
        mcs=data.draw(st.integers(0, 27)),
        ndi=data.draw(st.integers(0, 1)),
        rv=data.draw(st.integers(0, 3)),
        harq_id=data.draw(st.integers(0, 15)),
        dai=data.draw(st.integers(0, 3 if fmt is DciFormat.DL_1_1
                                  else 1)),
        tpc=data.draw(st.integers(0, 3)),
    )


class TestChainProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_clean_roundtrip_any_dci(self, data):
        """Any well-formed DCI survives encode -> decode bit-exactly."""
        dci = random_dci(data)
        level = data.draw(st.sampled_from([1, 2, 4, 8]))
        start = data.draw(st.integers(0, CORESET.n_cces // level - 1))
        candidate = PdcchCandidate(first_cce=start * level,
                                   aggregation_level=level)
        grid = ResourceGrid(51)
        slot = data.draw(st.integers(0, 1000))
        encode_pdcch(dci, CFG, CORESET, candidate, grid, N_ID, slot)
        decoded = try_decode_pdcch(grid, CFG, CORESET, candidate,
                                   dci.format, dci.rnti, N_ID, 1e-4)
        assert decoded == dci

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_wrong_rnti_never_decodes(self, data):
        """The CRC gate rejects every wrong-RNTI hypothesis."""
        dci = random_dci(data)
        wrong = data.draw(st.integers(1, 0xFFEF)
                          .filter(lambda r: r != dci.rnti))
        grid = ResourceGrid(51)
        candidate = PdcchCandidate(0, 2)
        encode_pdcch(dci, CFG, CORESET, candidate, grid, N_ID, 0)
        assert try_decode_pdcch(grid, CFG, CORESET, candidate,
                                dci.format, wrong, N_ID, 1e-4) is None

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_decoded_grant_matches_encoded_intent(self, data):
        """encode -> decode -> grant equals the encoder's own grant."""
        dci = random_dci(data)
        config = GrantConfig(bwp_n_prb=51, mcs_table="qam64",
                             n_layers=data.draw(st.integers(1, 2)))
        grid = ResourceGrid(51)
        candidate = PdcchCandidate(0, 4)
        encode_pdcch(dci, CFG, CORESET, candidate, grid, N_ID, 0)
        decoded = try_decode_pdcch(grid, CFG, CORESET, candidate,
                                   dci.format, dci.rnti, N_ID, 1e-4)
        assert decoded is not None
        assert dci_to_grant(decoded, config) == dci_to_grant(dci, config)

    @given(st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_noisy_decode_never_corrupts_silently(self, seed):
        """Under heavy noise the decode either fails or is exact:
        the CRC makes silently-wrong DCIs (the 4G-tool failure mode)
        vanishingly unlikely."""
        rng = np.random.default_rng(seed)
        dci = Dci(format=DciFormat.DL_1_1, rnti=0x4601,
                  freq_alloc_riv=riv_encode(0, 8, 51), time_alloc=1,
                  mcs=10, ndi=0, rv=0, harq_id=3)
        grid = ResourceGrid(51)
        candidate = PdcchCandidate(0, 2)
        encode_pdcch(dci, CFG, CORESET, candidate, grid, N_ID, 0)
        snr_db = float(rng.uniform(-6.0, 4.0))
        noisy = grid.clone_with_noise(snr_db, rng)
        decoded = try_decode_pdcch(noisy, CFG, CORESET, candidate,
                                   DciFormat.DL_1_1, 0x4601, N_ID,
                                   10 ** (-snr_db / 10))
        assert decoded is None or decoded == dci
