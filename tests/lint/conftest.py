"""Shared helpers for the nrlint self-tests."""

from pathlib import Path

import pytest

from repro.lint import LintEngine

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def engine() -> LintEngine:
    """A lint engine running the full built-in rule set."""
    return LintEngine()


@pytest.fixture
def fixtures_dir() -> Path:
    """The committed seeded-violation fixture tree."""
    return FIXTURES
