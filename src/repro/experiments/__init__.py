"""One module per evaluation figure of the paper (section 5).

Each module exposes ``run(...)`` returning structured results,
``to_result`` condensing them into a :class:`FigureResult` and
``table(...)`` producing the printable form; ``benchmarks/`` wires them
into the pytest-benchmark harness.
"""

from repro.experiments.common import FigureResult, SessionResult, \
    run_session

__all__ = ["FigureResult", "SessionResult", "run_session"]
