"""Fig 12: per-slot processing time vs tracked UEs (paper section 5.3.2).

The paper measures signal processing (FFT/demodulation, O(n log n) in
the slot's samples) plus per-UE DCI decoding (O(m) in the UE count) with
one or four DCI threads, on the Amarisoft cell (20 MHz) and a T-Mobile
cell (10 MHz), and finds a linear trend in the UE count.

This module measures the same quantities on the *shared* slot runtime —
the same :class:`~repro.core.runtime.SlotRuntime` stages NR-Scope runs
in production, with the per-stage means read out of its
:class:`~repro.core.runtime.RuntimeStats` — not a private harness.  The
GIL limits what Python threads can win back (EXPERIMENTS.md discusses
the deviation); the linear-in-m trend is the portable result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dci_decoder import GridDciDecoder, grid_decode_job, \
    pack_grid_for_decode, pack_tracked_for_decode
from repro.core.rach_sniffer import RachSniffer
from repro.core.runtime import Executor, InlineExecutor, SlotContext, \
    SlotRuntime, Stage, ThreadedExecutor, sharded_grid_decode
from repro.experiments.common import ExperimentError, FigureResult
from repro.gnb.cell_config import AMARISOFT_PROFILE, CellProfile, \
    TMOBILE_N25_PROFILE
from repro.analysis.report import Table
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.ofdm import OfdmConfig, demodulate_slot, modulate_slot
from repro.phy.pdcch import PdcchCandidate, encode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.rrc.messages import RrcSetup

UE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)
THREAD_COUNTS = (1, 4)


@dataclass
class Workload:
    """One slot's decode workload for a given tracked-UE count."""

    profile: CellProfile
    tracked: dict
    samples: object          # time-domain IQ for one slot
    ofdm: OfdmConfig
    slot_index: int
    n_encoded: int


@dataclass(frozen=True)
class TimingRow:
    """One point of Fig 12."""

    profile: str
    n_ues: int
    n_threads: int
    mean_us: float


def build_workload(profile: CellProfile, n_ues: int,
                   slot_index: int = 4,
                   active_ues: int = 8) -> Workload:
    """Tracked table of ``n_ues`` plus a slot with real encoded DCIs.

    Only up to ``active_ues`` UEs carry a DCI this slot (PDCCH capacity
    caps simultaneous scheduling), but the decoder must check every
    tracked UE's candidates — which is exactly the O(m) term.
    """
    if n_ues < 1:
        raise ExperimentError(f"need at least one UE: {n_ues}")
    sniffer = RachSniffer(bwp_n_prb=profile.n_prb)
    setup = RrcSetup(tc_rnti=0x4601,
                     search_space=profile.search_space_config(),
                     mcs_table=profile.mcs_table)
    sniffer.discover(0x4601, 0.0, setup)
    for i in range(1, n_ues):
        sniffer.discover(0x4601 + i, 0.0, None)

    grid = ResourceGrid(profile.n_prb)
    cfg = profile.dci_size_config()
    used: set[int] = set()
    encoded = 0
    for rnti, ue in list(sniffer.tracked.items()):
        if encoded >= active_ues:
            break
        for start in ue.search_space.candidate_cces(2, slot_index, rnti):
            cces = set(range(start, start + 2))
            if cces & used:
                continue
            dci = Dci(format=DciFormat.DL_1_1, rnti=rnti,
                      freq_alloc_riv=riv_encode(0, 4, profile.n_prb),
                      time_alloc=1, mcs=10, ndi=0, rv=0, harq_id=0)
            encode_pdcch(dci, cfg, ue.search_space.coreset,
                         PdcchCandidate(start, 2), grid,
                         n_id=profile.cell_id, slot_index=slot_index)
            used |= cces
            encoded += 1
            break
    ofdm = OfdmConfig.for_grid(grid.n_subcarriers)
    samples = modulate_slot(grid, ofdm)
    return Workload(profile=profile, tracked=sniffer.tracked,
                    samples=samples, ofdm=ofdm, slot_index=slot_index,
                    n_encoded=encoded)


def build_runtime(workload: Workload, executor: Executor,
                  noise_var: float = 1e-3, batch: bool = False,
                  latencies: list | None = None,
                  decoded_counts: list | None = None) -> SlotRuntime:
    """The production stage graph over a fixed workload: OFDM
    demodulation on the backbone, the sharded candidate search on the
    parallel stage.

    ``batch`` selects the vectorized kernel path; pack/merge hooks make
    the graph runnable on a :class:`~repro.core.runtime.ProcessExecutor`
    (the decode travels as a picklable job, byte-identical results).
    ``latencies``/``decoded_counts`` are optional per-slot collectors
    the bench harness reads (appended by a sink, so in slot order).
    """
    decoder = GridDciDecoder(
        dci_cfg=workload.profile.dci_size_config(),
        n_id=workload.profile.cell_id, noise_var=noise_var)

    def demod(ctx: SlotContext) -> None:
        ctx.grid = demodulate_slot(workload.samples, workload.ofdm)
        ctx.tracked = workload.tracked

    def dci(ctx: SlotContext) -> None:
        ctx.decoded = sharded_grid_decode(
            decoder, ctx.grid, workload.slot_index, ctx.tracked,
            executor.n_dci_threads, mapper=executor.map, batch=batch)

    def pack(ctx: SlotContext):
        return grid_decode_job, {
            "dci_cfg": decoder.dci_cfg, "n_id": decoder.n_id,
            "noise_var": decoder.noise_var,
            "use_energy_gate": decoder.use_energy_gate,
            "use_cce_claiming": decoder.use_cce_claiming,
            "equalize": decoder.equalize,
            "grid": pack_grid_for_decode(ctx.grid, ctx.tracked),
            "slot_index": workload.slot_index,
            "tracked": pack_tracked_for_decode(ctx.tracked),
            "n_shards": executor.n_dci_threads, "batch": batch,
        }

    def merge(ctx: SlotContext, result) -> None:
        decoded, attempts = result
        decoder.attempts += attempts
        ctx.decoded = decoded

    stages = [Stage("demod", demod),
              Stage("dci", dci, parallel=True, pack=pack, merge=merge)]
    if latencies is not None or decoded_counts is not None:

        def collect(ctx: SlotContext) -> None:
            if latencies is not None:
                latencies.append(ctx.decode_time_s)
            if decoded_counts is not None:
                decoded_counts.append(len(ctx.decoded))

        stages.append(Stage("collect", collect, sink=True))
    return SlotRuntime(stages=stages, executor=executor)


def executor_for(n_threads: int) -> Executor:
    """Map the paper's thread count onto a runtime executor: one DCI
    thread is the deterministic inline path, more shard the tracked
    table like the paper's DCI threads."""
    if n_threads <= 1:
        return InlineExecutor()
    return ThreadedExecutor(n_workers=1, n_dci_threads=n_threads)


def measure(profile: CellProfile, n_ues: int, n_threads: int,
            n_slots: int = 3) -> TimingRow:
    """Mean per-slot processing time over ``n_slots`` repetitions."""
    workload = build_workload(profile, n_ues)
    runtime = build_runtime(workload, executor_for(n_threads))
    runtime.submit(None)          # warm-up
    runtime.flush()
    runtime.reset_stats()
    for _ in range(n_slots):
        runtime.submit(None)
    runtime.close()
    stats = runtime.stats()
    mean_us = stats.stage("demod").mean_us + stats.stage("dci").mean_us
    return TimingRow(profile=profile.name, n_ues=n_ues,
                     n_threads=n_threads, mean_us=mean_us)


def run(ue_counts: tuple[int, ...] = UE_COUNTS,
        n_slots: int = 3) -> list[TimingRow]:
    """The full sweep: both cells x both thread counts x UE counts."""
    rows = []
    for profile in (AMARISOFT_PROFILE, TMOBILE_N25_PROFILE):
        for n_threads in THREAD_COUNTS:
            for n_ues in ue_counts:
                rows.append(measure(profile, n_ues, n_threads,
                                    n_slots=n_slots))
    return rows


def to_result(rows: list[TimingRow]) -> FigureResult:
    result = FigureResult(figure="fig12")
    keys = {(r.profile, r.n_threads) for r in rows}
    for profile, n_threads in sorted(keys):
        points = [(float(r.n_ues), r.mean_us) for r in rows
                  if r.profile == profile and r.n_threads == n_threads]
        result.add_series(f"{profile}-{n_threads}thread",
                          sorted(points))
    # Linearity check: time at the largest UE count over the smallest
    # should scale roughly with the count ratio, not explode.
    for profile, n_threads in sorted(keys):
        mine = sorted([(r.n_ues, r.mean_us) for r in rows
                       if r.profile == profile
                       and r.n_threads == n_threads])
        if len(mine) >= 2 and mine[0][1] > 0:
            result.summary[f"{profile}-{n_threads}t_growth"] = \
                mine[-1][1] / mine[0][1]
    return result


def table(rows: list[TimingRow]) -> Table:
    return Table(
        title="Fig 12 - per-slot processing time",
        columns=("cell", "UEs", "threads", "mean us/slot"),
        rows=tuple((r.profile, r.n_ues, r.n_threads, r.mean_us)
                   for r in rows))
