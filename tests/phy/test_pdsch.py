"""Tests for the coded PDSCH transport-block chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.pdsch import (
    MAX_SEGMENT_PAYLOAD_BITS,
    PdschError,
    PdschGeometry,
    SEGMENT_E_BITS,
    decode_pdsch_transport_block,
    encode_pdsch_transport_block,
)
from repro.rrc.messages import RrcSetup


def rrc_setup_bits():
    return RrcSetup(tc_rnti=0x4601).encode()


class TestGeometry:
    def test_small_payload_one_segment(self):
        geometry = PdschGeometry.for_payload(100)
        assert geometry.n_segments == 1
        assert geometry.coded_bits == SEGMENT_E_BITS
        assert geometry.n_symbols == SEGMENT_E_BITS // 2

    def test_rrc_setup_scale(self):
        # 500 bytes = 4000 bits: ~16 segments of coded PDSCH.
        geometry = PdschGeometry.for_payload(4000)
        expected = -(-(4000 + 24) // MAX_SEGMENT_PAYLOAD_BITS)
        assert geometry.n_segments == expected

    def test_higher_modulation_fewer_symbols(self):
        qpsk = PdschGeometry.for_payload(1000, "QPSK")
        qam256 = PdschGeometry.for_payload(1000, "256QAM")
        assert qam256.n_symbols == qpsk.n_symbols // 4

    def test_rejects_empty(self):
        with pytest.raises(PdschError):
            PdschGeometry.for_payload(0)


class TestRoundtrip:
    def test_clean_roundtrip_rrc_setup(self):
        payload = rrc_setup_bits()
        symbols = encode_pdsch_transport_block(payload, 0x4601, 500)
        decoded = decode_pdsch_transport_block(
            symbols, payload.size, 0x4601, 500, noise_var=1e-4)
        assert np.array_equal(decoded, payload)

    def test_multi_segment_roundtrip(self, rng):
        # A 500-byte RRC Setup body (the paper's size).
        payload = rng.integers(0, 2, 4000).astype(np.uint8)
        symbols = encode_pdsch_transport_block(payload, 0x17, 3)
        decoded = decode_pdsch_transport_block(symbols, 4000, 0x17, 3,
                                               1e-4)
        assert np.array_equal(decoded, payload)

    def test_roundtrip_256qam(self, rng):
        payload = rng.integers(0, 2, 1200).astype(np.uint8)
        symbols = encode_pdsch_transport_block(payload, 0x17, 3,
                                               modulation="256QAM")
        decoded = decode_pdsch_transport_block(symbols, 1200, 0x17, 3,
                                               1e-3, modulation="256QAM")
        assert np.array_equal(decoded, payload)

    def test_wrong_rnti_rejected(self):
        payload = rrc_setup_bits()
        symbols = encode_pdsch_transport_block(payload, 0x4601, 500)
        assert decode_pdsch_transport_block(
            symbols, payload.size, 0x4602, 500, 1e-4) is None

    def test_noise_failure_is_clean_none(self, rng):
        payload = rrc_setup_bits()
        symbols = encode_pdsch_transport_block(payload, 0x4601, 500)
        # Destroy the signal entirely.
        noise = rng.normal(0, 3, symbols.size) \
            + 1j * rng.normal(0, 3, symbols.size)
        assert decode_pdsch_transport_block(
            symbols + noise, payload.size, 0x4601, 500, 9.0) is None

    def test_decodes_at_moderate_snr(self, rng):
        payload = rrc_setup_bits()
        hits = 0
        for _ in range(8):
            symbols = encode_pdsch_transport_block(payload, 0x4601, 500)
            noise_var = 10 ** (-2 / 10)  # 2 dB
            noisy = symbols + rng.normal(0, np.sqrt(noise_var / 2),
                                         symbols.size) \
                + 1j * rng.normal(0, np.sqrt(noise_var / 2),
                                  symbols.size)
            decoded = decode_pdsch_transport_block(
                noisy, payload.size, 0x4601, 500, noise_var)
            hits += decoded is not None and np.array_equal(decoded,
                                                           payload)
        assert hits >= 7

    def test_short_grant_rejected(self):
        payload = rrc_setup_bits()
        symbols = encode_pdsch_transport_block(payload, 1, 1)
        with pytest.raises(PdschError):
            decode_pdsch_transport_block(symbols[:-10], payload.size, 1,
                                         1, 0.1)

    @given(st.integers(0, 2**16), st.integers(50, 600))
    @settings(max_examples=10, deadline=None)
    def test_property_roundtrip_random_sizes(self, seed, n_bits):
        local = np.random.default_rng(seed)
        payload = local.integers(0, 2, n_bits).astype(np.uint8)
        symbols = encode_pdsch_transport_block(payload, 0x1234, 42)
        decoded = decode_pdsch_transport_block(symbols, n_bits, 0x1234,
                                               42, 1e-4)
        assert np.array_equal(decoded, payload)
