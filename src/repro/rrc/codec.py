"""Bit-level codec primitives for the RRC message set.

Real RRC messages are ASN.1 UPER; NR-Scope links a full ASN.1 decoder.
This reproduction uses a deterministic fixed-width bit codec with the same
essential property: both ends must agree on the schema, and a sniffer that
knows the schema can decode broadcast messages bit-exactly.  Each message
carries a 6-bit type tag followed by its fields.
"""

from __future__ import annotations

import numpy as np


class CodecError(ValueError):
    """Raised on malformed or truncated RRC message bits."""


class BitWriter:
    """Accumulates unsigned fields MSB-first into a bit array."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, width: int) -> "BitWriter":
        """Append ``value`` as ``width`` bits; rejects overflow."""
        if width < 0:
            raise CodecError(f"negative field width: {width}")
        if not 0 <= value < (1 << width):
            raise CodecError(f"value {value} does not fit in {width} bits")
        self._bits.extend((value >> (width - 1 - i)) & 1
                          for i in range(width))
        return self

    def write_bool(self, flag: bool) -> "BitWriter":
        """Append a single boolean bit."""
        return self.write(1 if flag else 0, 1)

    def write_signed(self, value: int, width: int) -> "BitWriter":
        """Append a two's-complement signed field."""
        half = 1 << (width - 1)
        if not -half <= value < half:
            raise CodecError(f"value {value} does not fit signed {width}")
        return self.write(value & ((1 << width) - 1), width)

    @property
    def bit_count(self) -> int:
        """Bits written so far."""
        return len(self._bits)

    def to_bits(self) -> np.ndarray:
        """The accumulated bit array."""
        return np.array(self._bits, dtype=np.uint8)

    def to_bytes_padded(self) -> bytes:
        """Byte-aligned rendering (zero padded), as carried in a PDSCH TB."""
        bits = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for bit in bits[i:i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class BitReader:
    """Consumes unsigned fields MSB-first from a bit array."""

    def __init__(self, bits: np.ndarray | bytes) -> None:
        if isinstance(bits, (bytes, bytearray)):
            arr = np.unpackbits(np.frombuffer(bytes(bits), dtype=np.uint8))
        else:
            arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size and arr.max() > 1:
            raise CodecError("bit array contains non-binary values")
        self._bits = arr
        self._pos = 0

    def read(self, width: int) -> int:
        """Consume ``width`` bits as an unsigned integer."""
        if width < 0:
            raise CodecError(f"negative field width: {width}")
        if self._pos + width > self._bits.size:
            raise CodecError(
                f"truncated message: wanted {width} bits at {self._pos},"
                f" have {self._bits.size}")
        value = 0
        for _ in range(width):
            value = (value << 1) | int(self._bits[self._pos])
            self._pos += 1
        return value

    def read_bool(self) -> bool:
        """Consume one bit as a boolean."""
        return self.read(1) == 1

    def read_signed(self, width: int) -> int:
        """Consume a two's-complement signed field."""
        raw = self.read(width)
        half = 1 << (width - 1)
        return raw - (1 << width) if raw >= half else raw

    @property
    def remaining(self) -> int:
        """Bits not yet consumed."""
        return self._bits.size - self._pos
