"""Tests for DMRS-based channel estimation and equalised decoding."""

import numpy as np
import pytest

from repro.phy.coreset import Coreset
from repro.phy.dci import Dci, DciFormat, DciSizeConfig, riv_encode
from repro.phy.pdcch import PdcchCandidate, encode_pdcch, \
    estimate_channel, try_decode_pdcch
from repro.phy.resource_grid import ResourceGrid

CFG = DciSizeConfig(n_prb_bwp=51)
CORESET = Coreset(coreset_id=1, first_prb=0, n_prb=48, n_symbols=1)
N_ID = 500


def encode_one(gain=1.0 + 0j, slot_index=3, level=2):
    dci = Dci(format=DciFormat.DL_1_1, rnti=0x4601,
              freq_alloc_riv=riv_encode(0, 6, 51), time_alloc=1, mcs=12,
              ndi=1, rv=0, harq_id=4)
    grid = ResourceGrid(51)
    candidate = PdcchCandidate(0, level)
    encode_pdcch(dci, CFG, CORESET, candidate, grid, N_ID, slot_index)
    grid.data *= gain
    return dci, grid, candidate


class TestEstimateChannel:
    def test_flat_channel_estimates_unity(self):
        _, grid, candidate = encode_one()
        gain = estimate_channel(grid, CORESET, candidate, N_ID, 3)
        assert gain == pytest.approx(1.0 + 0j, abs=1e-9)

    @pytest.mark.parametrize("true_gain", [0.5 + 0j, 2.0j,
                                           0.7 - 1.1j, -1.0 + 0j])
    def test_recovers_complex_gain(self, true_gain):
        _, grid, candidate = encode_one(gain=true_gain)
        gain = estimate_channel(grid, CORESET, candidate, N_ID, 3)
        assert gain == pytest.approx(true_gain, abs=1e-9)

    def test_estimate_under_noise(self, rng):
        _, grid, candidate = encode_one(gain=0.8 * np.exp(0.9j))
        noisy = grid.clone_with_noise(10.0, rng)
        gain = estimate_channel(noisy, CORESET, candidate, N_ID, 3)
        assert abs(gain - 0.8 * np.exp(0.9j)) < 0.2

    def test_out_of_coreset_candidate(self):
        grid = ResourceGrid(51)
        gain = estimate_channel(grid, CORESET, PdcchCandidate(7, 4),
                                N_ID, 0)
        assert gain == 1.0 + 0.0j

    def test_empty_candidate_returns_unity_fallback(self):
        grid = ResourceGrid(51)
        gain = estimate_channel(grid, CORESET, PdcchCandidate(0, 2),
                                N_ID, 0)
        assert gain == 1.0 + 0.0j


class TestEqualizedDecode:
    def test_phase_rotation_breaks_unequalized_decode(self):
        dci, grid, candidate = encode_one(gain=np.exp(2.0j))
        plain = try_decode_pdcch(grid, CFG, CORESET, candidate,
                                 DciFormat.DL_1_1, 0x4601, N_ID, 1e-4,
                                 slot_index=3, equalize=False)
        assert plain is None, "a 2-radian rotation must break QPSK"

    def test_equalized_decode_survives_rotation(self):
        dci, grid, candidate = encode_one(gain=np.exp(2.0j))
        equalized = try_decode_pdcch(grid, CFG, CORESET, candidate,
                                     DciFormat.DL_1_1, 0x4601, N_ID,
                                     1e-4, slot_index=3, equalize=True)
        assert equalized == dci

    def test_equalized_decode_survives_gain_and_noise(self, rng):
        hits = 0
        for trial in range(10):
            dci, grid, candidate = encode_one(
                gain=1.4 * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                slot_index=trial)
            noisy = grid.clone_with_noise(12.0, rng)
            decoded = try_decode_pdcch(noisy, CFG, CORESET, candidate,
                                       DciFormat.DL_1_1, 0x4601, N_ID,
                                       10 ** (-12 / 10),
                                       slot_index=trial, equalize=True)
            hits += decoded == dci
        assert hits >= 9

    def test_equalize_noop_on_clean_channel(self):
        dci, grid, candidate = encode_one()
        decoded = try_decode_pdcch(grid, CFG, CORESET, candidate,
                                   DciFormat.DL_1_1, 0x4601, N_ID, 1e-4,
                                   slot_index=3, equalize=True)
        assert decoded == dci


class TestDecoderIntegration:
    def test_grid_decoder_with_impaired_capture(self, rng):
        """End-to-end: a rotated+noisy capture decodes only with the
        equalising decoder."""
        from repro.core.dci_decoder import GridDciDecoder
        from repro.core.rach_sniffer import RachSniffer
        from repro.gnb.cell_config import SRSRAN_PROFILE
        from repro.rrc.messages import RrcSetup

        sniffer = RachSniffer(bwp_n_prb=51)
        setup = RrcSetup(tc_rnti=0x4601,
                         search_space=SRSRAN_PROFILE.search_space_config())
        ue = sniffer.discover(0x4601, 0.0, setup)
        slot_index = 6
        grid = ResourceGrid(51)
        start = ue.search_space.candidate_cces(2, slot_index,
                                               0x4601)[0]
        dci = Dci(format=DciFormat.DL_1_1, rnti=0x4601,
                  freq_alloc_riv=riv_encode(0, 4, 51), time_alloc=1,
                  mcs=9, ndi=0, rv=0, harq_id=1)
        encode_pdcch(dci, SRSRAN_PROFILE.dci_size_config(),
                     ue.search_space.coreset, PdcchCandidate(start, 2),
                     grid, n_id=SRSRAN_PROFILE.cell_id,
                     slot_index=slot_index)
        grid.data *= np.exp(1.5j)
        captured = grid.clone_with_noise(15.0, rng)

        base = dict(dci_cfg=SRSRAN_PROFILE.dci_size_config(),
                    n_id=SRSRAN_PROFILE.cell_id,
                    noise_var=10 ** (-15 / 10))
        plain = GridDciDecoder(**base, equalize=False)
        assert plain.decode_slot(captured, slot_index,
                                 sniffer.tracked) == []
        smart = GridDciDecoder(**base, equalize=True)
        decoded = smart.decode_slot(captured, slot_index,
                                    sniffer.tracked)
        assert [d.dci for d in decoded] == [dci]
