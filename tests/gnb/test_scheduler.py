"""Tests for the MAC scheduler policies."""

import pytest

from repro.gnb.cell_config import SRSRAN_PROFILE
from repro.gnb.scheduler import (
    AllocationPlan,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    SchedulerError,
    UeSchedulingContext,
    build_dci,
)
from repro.phy.dci import DciFormat
from repro.phy.grant import dci_to_grant


def make_scheduler(cls=RoundRobinScheduler, **kwargs):
    return cls(SRSRAN_PROFILE.grant_config(),
               SRSRAN_PROFILE.ue_search_space(), **kwargs)


def ue_ctx(ue_id, dl=10000, ul=0, cqi=12, **kwargs):
    return UeSchedulingContext(ue_id=ue_id, rnti=0x4600 + ue_id,
                               dl_backlog_bytes=dl, ul_backlog_bytes=ul,
                               cqi=cqi, **kwargs)


class TestScheduling:
    def test_no_ues_no_plans(self):
        assert make_scheduler().schedule(0, []) == []

    def test_idle_ue_not_scheduled(self):
        plans = make_scheduler().schedule(0, [ue_ctx(0, dl=0, ul=0)])
        assert plans == []

    def test_backlogged_ue_scheduled(self):
        plans = make_scheduler().schedule(0, [ue_ctx(0)])
        assert len(plans) == 1
        assert plans[0].downlink

    def test_ul_grant_when_ul_backlog(self):
        plans = make_scheduler().schedule(0, [ue_ctx(0, dl=0, ul=5000)])
        assert len(plans) == 1
        assert not plans[0].downlink

    def test_dl_allocations_disjoint(self):
        ues = [ue_ctx(i, dl=50000) for i in range(4)]
        plans = make_scheduler().schedule(0, ues)
        dl_plans = [p for p in plans if p.downlink]
        spans = sorted((p.first_prb, p.first_prb + p.n_prb)
                       for p in dl_plans)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_allocation_within_carrier(self):
        ues = [ue_ctx(i, dl=10**6) for i in range(8)]
        plans = make_scheduler().schedule(0, ues)
        for plan in plans:
            assert plan.first_prb + plan.n_prb <= 51

    def test_pdcch_capacity_limits_ues(self):
        # 48-PRB 1-symbol CORESET = 8 CCEs; at AL2 that is at most 4
        # simultaneous DCIs, so 8 backlogged UEs cannot all be served.
        ues = [ue_ctx(i, dl=10**6, ul=10**4, cqi=15) for i in range(8)]
        plans = make_scheduler(max_ues_per_slot=8).schedule(0, ues)
        assert 0 < len(plans) <= 8
        served_ues = {p.ue_id for p in plans}
        assert len(served_ues) < 8

    def test_max_ues_per_slot_respected(self):
        ues = [ue_ctx(i, dl=100) for i in range(8)]
        plans = make_scheduler(max_ues_per_slot=2).schedule(0, ues)
        assert len({p.ue_id for p in plans}) <= 2

    def test_low_cqi_gets_low_mcs_and_high_al(self):
        good = make_scheduler().schedule(0, [ue_ctx(0, cqi=15)])[0]
        bad = make_scheduler().schedule(0, [ue_ctx(0, cqi=2)])[0]
        assert bad.mcs.index < good.mcs.index
        assert bad.candidate.aggregation_level >= \
            good.candidate.aggregation_level

    def test_small_backlog_small_allocation(self):
        small = make_scheduler().schedule(0, [ue_ctx(0, dl=100)])[0]
        large = make_scheduler().schedule(0, [ue_ctx(0, dl=10**6)])[0]
        assert small.n_prb < large.n_prb

    def test_retransmission_priority_and_size(self):
        ue = ue_ctx(0, dl=10**6,
                    pending_retx=[(3, True)],
                    retx_prb_sizes={(3, True): (7, 5, 7)})
        plans = make_scheduler().schedule(0, [ue])
        retx = [p for p in plans if p.is_retransmission]
        assert len(retx) == 1
        assert retx[0].retx_harq_id == 3
        assert retx[0].n_prb == 7
        # The retransmission reuses the original transmission's TDRA.
        assert (retx[0].time_alloc, retx[0].n_symbols) == (5, 7)
        assert plans.index(retx[0]) == 0  # retx scheduled first

    def test_small_payload_gets_short_allocation(self):
        # 30 bytes fit a single PRB over a short TDRA row at CQI 12.
        small = make_scheduler().schedule(0, [ue_ctx(0, dl=30)])[0]
        large = make_scheduler().schedule(0, [ue_ctx(0, dl=10**6)])[0]
        assert small.n_symbols < large.n_symbols
        assert large.n_symbols == 12
        # Both rows resolve through the shared TDRA table.
        from repro.phy.grant import time_allocation
        assert time_allocation(small.time_alloc)[1] == small.n_symbols
        assert time_allocation(large.time_alloc)[1] == large.n_symbols

    def test_rejects_bad_config(self):
        with pytest.raises(SchedulerError):
            make_scheduler(max_ues_per_slot=0)


class TestRoundRobinFairness:
    def test_rotation_serves_everyone(self):
        scheduler = make_scheduler(max_ues_per_slot=1)
        served = set()
        ues = [ue_ctx(i, dl=10**6) for i in range(4)]
        for slot in range(8):
            for plan in scheduler.schedule(slot, ues):
                served.add(plan.ue_id)
        assert served == {0, 1, 2, 3}


class TestProportionalFair:
    def test_starved_ue_prioritised(self):
        scheduler = make_scheduler(ProportionalFairScheduler,
                                   max_ues_per_slot=1)
        hungry = ue_ctx(0, cqi=12, ewma_throughput_bps=1e3)
        fed = ue_ctx(1, cqi=12, ewma_throughput_bps=1e8)
        plans = scheduler.schedule(0, [fed, hungry])
        assert plans[0].ue_id == 0

    def test_better_channel_prioritised_at_equal_history(self):
        scheduler = make_scheduler(ProportionalFairScheduler,
                                   max_ues_per_slot=1)
        good = ue_ctx(0, cqi=15, ewma_throughput_bps=1e6)
        bad = ue_ctx(1, cqi=3, ewma_throughput_bps=1e6)
        plans = scheduler.schedule(0, [bad, good])
        assert plans[0].ue_id == 0


class TestBuildDci:
    def test_plan_to_dci_to_grant(self):
        plan = make_scheduler().schedule(0, [ue_ctx(0)])[0]
        dci = build_dci(plan, 51, ndi=1, rv=0, harq_id=5)
        assert dci.format is DciFormat.DL_1_1
        assert dci.harq_id == 5
        grant = dci_to_grant(dci, SRSRAN_PROFILE.grant_config())
        assert grant.n_prb == plan.n_prb
        assert grant.first_prb == plan.first_prb

    def test_ul_plan_builds_ul_dci(self):
        plans = make_scheduler().schedule(0, [ue_ctx(0, dl=0, ul=1000)])
        dci = build_dci(plans[0], 51, ndi=0, rv=0, harq_id=0)
        assert dci.format is DciFormat.UL_0_1
