"""nrsan tests: the runtime half of the stage-purity contract.

The headline test mirrors the static R006 fixture dynamically: a
parallel stage that mutates the tracked snapshot must be caught by the
write-guard and surface as a ``SlotRuntimeError`` at commit.
"""

import numpy as np
import pytest

from repro import NRScope, Simulation, SRSRAN_PROFILE
from repro.core.rach_sniffer import RachSniffer
from repro.core.runtime import (
    SlotContext,
    SlotRuntime,
    SlotRuntimeError,
    Stage,
)
from repro.core.sanitizer import (
    AuditedGenerator,
    GuardedTrackedTable,
    Sanitizer,
    SanitizerViolation,
    parallel_stage,
)


def make_ue(rnti=0x4601):
    from repro.rrc.messages import RrcSetup
    sniffer = RachSniffer(bwp_n_prb=52)
    return sniffer.discover(rnti, 0.0, RrcSetup(tc_rnti=rnti))


class TestActivation:
    def test_disabled_hooks_are_passthrough(self):
        san = Sanitizer(enabled=False)
        table = {1: make_ue(1)}
        rng = np.random.default_rng(0)
        assert san.guard_tracked(table) is table
        assert san.audit_rng(rng) is rng

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("NRSAN", raising=False)
        assert not Sanitizer.from_env().enabled
        for value in ("1", "on", "yes", "true"):
            monkeypatch.setenv("NRSAN", value)
            assert Sanitizer.from_env().enabled
        for value in ("0", "off", "false", ""):
            monkeypatch.setenv("NRSAN", value)
            assert not Sanitizer.from_env().enabled

    def test_parallel_stage_marker_returns_function(self):
        def fn(ctx):
            return ctx

        marked = parallel_stage(fn)
        assert marked is fn
        assert marked.__nr_parallel_stage__


class TestTrackedGuard:
    def test_snapshot_is_frozen_everywhere(self, nrsan):
        guarded = nrsan.guard_tracked({1: make_ue(1)})
        assert isinstance(guarded, GuardedTrackedTable)
        for op in (lambda: guarded.pop(1),
                   lambda: guarded.popitem(),
                   lambda: guarded.clear(),
                   lambda: guarded.update({2: make_ue(2)}),
                   lambda: guarded.setdefault(3, make_ue(3)),
                   lambda: guarded.__setitem__(4, make_ue(4)),
                   lambda: guarded.__delitem__(1)):
            with pytest.raises(SanitizerViolation):
                op()
        assert nrsan.violations

    def test_reads_pass_through(self, nrsan):
        ue = make_ue(7)
        guarded = nrsan.guard_tracked({7: ue})
        assert 7 in guarded
        assert guarded[7].rnti == 7
        assert guarded[7].search_space is ue.search_space
        assert sorted(guarded) == [7]

    def test_ue_mutation_legal_outside_stage(self, nrsan):
        ue = make_ue()
        guarded = nrsan.guard_tracked({ue.rnti: ue})
        guarded[ue.rnti].touch(1.5)
        assert ue.last_seen_s == 1.5
        guarded[ue.rnti].decoded_dcis = 3
        assert ue.decoded_dcis == 3

    def test_ue_mutation_trips_inside_stage(self, nrsan):
        ue = make_ue()
        guarded = nrsan.guard_tracked({ue.rnti: ue})
        with nrsan.parallel_stage_scope("dci"):
            with pytest.raises(SanitizerViolation):
                guarded[ue.rnti].touch(2.0)
            with pytest.raises(SanitizerViolation):
                guarded[ue.rnti].decoded_dcis = 9
        assert ue.last_seen_s == 0.0
        assert any("dci" in v for v in nrsan.violations)


class TestRngAudit:
    def test_stream_is_bit_identical(self, nrsan):
        bare = np.random.default_rng(42)
        audited = nrsan.audit_rng(np.random.default_rng(42))
        assert isinstance(audited, AuditedGenerator)
        assert audited.random() == bare.random()
        assert np.array_equal(audited.integers(0, 100, 10),
                              bare.integers(0, 100, 10))
        assert np.array_equal(audited.normal(0, 1, 5), bare.normal(0, 1, 5))

    def test_draw_trips_inside_stage(self, nrsan):
        audited = nrsan.audit_rng(np.random.default_rng(0))
        with nrsan.parallel_stage_scope("dci"):
            with pytest.raises(SanitizerViolation):
                audited.random()
        # Outside the scope the same proxy draws again.
        assert 0.0 <= audited.random() < 1.0

    def test_scope_is_thread_local(self, nrsan):
        import threading

        audited = nrsan.audit_rng(np.random.default_rng(0))
        results = {}

        def other_thread():
            try:
                results["value"] = audited.random()
            except SanitizerViolation as exc:  # pragma: no cover
                results["error"] = exc

        with nrsan.parallel_stage_scope("dci"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert "value" in results and "error" not in results


class TestRuntimeIntegration:
    """The dynamic R006 catch: an impure parallel stage fails at commit."""

    def _runtime(self, nrsan, stage_fn):
        return SlotRuntime(
            stages=[Stage("decode", stage_fn, parallel=True)],
            sanitizer=nrsan)

    def test_tracked_mutation_in_parallel_stage_is_caught(self, nrsan):
        ue = make_ue()

        def bad_stage(ctx):
            # The same violation bad_stage.py seeds for static R006.
            ctx.tracked[ue.rnti].touch(9.9)

        runtime = self._runtime(nrsan, bad_stage)
        ctx = SlotContext(output=None)
        ctx.tracked = nrsan.guard_tracked({ue.rnti: ue})
        with pytest.raises(SlotRuntimeError) as excinfo:
            runtime.submit(ctx)
            runtime.flush()
        assert isinstance(excinfo.value.__cause__, SanitizerViolation)
        assert ue.last_seen_s == 0.0
        assert nrsan.violations

    def test_rng_draw_in_parallel_stage_is_caught(self, nrsan):
        audited = nrsan.audit_rng(np.random.default_rng(0))

        def bad_stage(ctx):
            audited.random()

        runtime = self._runtime(nrsan, bad_stage)
        with pytest.raises(SlotRuntimeError):
            runtime.submit(SlotContext(output=None))
            runtime.flush()

    def test_pure_stage_passes(self, nrsan):
        seen = []

        def good_stage(ctx):
            seen.append(sorted(ctx.tracked))

        runtime = self._runtime(nrsan, good_stage)
        ctx = SlotContext(output=None)
        ctx.tracked = nrsan.guard_tracked({5: make_ue(5)})
        runtime.submit(ctx)
        runtime.flush()
        assert seen == [[5]]
        assert nrsan.violations == []


class TestScopeIntegration:
    def _session(self, sanitizer=None, seconds=0.5, seed=5):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=seed)
        scope = NRScope.attach(sim, snr_db=20.0,
                               **({"sanitizer": sanitizer}
                                  if sanitizer is not None else {}))
        sim.run(seconds=seconds)
        scope.flush()
        return scope

    def test_instrumented_session_is_clean_and_identical(self, nrsan):
        """The production pipeline passes its own runtime audit, and
        instrumentation does not perturb telemetry."""
        bare = self._session()
        instrumented = self._session(sanitizer=nrsan)
        assert nrsan.violations == []
        assert instrumented.counters.dcis_decoded > 0
        assert [r for r in instrumented.telemetry.records] \
            == [r for r in bare.telemetry.records]

    def test_process_executor_session_stays_clean(self, nrsan):
        """The audit holds across the process boundary too: the parent
        half of a ProcessExecutor session (payload packing, result
        merge, commit) runs instrumented and stays violation-free, with
        telemetry identical to the bare inline session."""
        bare = self._session()
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=5)
        scope = NRScope.attach(sim, snr_db=20.0, sanitizer=nrsan,
                               executor="process", n_workers=2,
                               queue_depth=8192, idle_timeout_s=5.0)
        sim.run(seconds=0.5)
        scope.close()
        assert nrsan.violations == []
        assert scope.runtime_stats.slots_dropped == 0
        assert [r for r in scope.telemetry.records] \
            == [r for r in bare.telemetry.records]
