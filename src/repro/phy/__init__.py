"""3GPP physical-layer substrate: the pieces of 38.211/212/214 that both
the simulated gNB and NR-Scope's decoder are built from."""

from repro.phy.coreset import Coreset, SearchSpace, coreset0_for_bandwidth
from repro.phy.crc import crc_attach, crc_check, crc_remainder, recover_rnti
from repro.phy.dci import Dci, DciFormat, DciSizeConfig, dci_payload_size, \
    riv_decode, riv_encode
from repro.phy.grant import Grant, GrantConfig, dci_to_grant
from repro.phy.mcs_tables import McsEntry, mcs_entry, \
    mcs_for_spectral_efficiency
from repro.phy.modulation import demodulate_hard, demodulate_soft, modulate
from repro.phy.numerology import SlotClock, prb_count_for_bandwidth, \
    slot_duration_s, slots_per_frame
from repro.phy.pbch import decode_pbch, encode_pbch
from repro.phy.pdcch import BITS_PER_CCE, PdcchCandidate, dci_crc_attach, \
    dci_crc_check, dci_recover_rnti, encode_pdcch, try_decode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.phy.sync import FrameSynchronizer, pss_sequence, render_ssb, \
    sss_sequence
from repro.phy.tbs import TbsResult, transport_block_size
from repro.phy.uci import UciReport, decode_uci, encode_uci

__all__ = [
    "BITS_PER_CCE", "Coreset", "Dci", "DciFormat", "DciSizeConfig",
    "FrameSynchronizer", "Grant", "GrantConfig", "McsEntry",
    "PdcchCandidate", "ResourceGrid", "SearchSpace", "SlotClock",
    "TbsResult", "UciReport", "coreset0_for_bandwidth", "crc_attach",
    "crc_check", "crc_remainder", "dci_crc_attach", "dci_crc_check",
    "dci_payload_size", "dci_recover_rnti", "dci_to_grant", "decode_pbch",
    "decode_uci", "demodulate_hard", "demodulate_soft", "encode_pbch",
    "encode_pdcch", "encode_uci", "mcs_entry",
    "mcs_for_spectral_efficiency", "modulate", "prb_count_for_bandwidth",
    "pss_sequence", "recover_rnti", "render_ssb", "riv_decode",
    "riv_encode", "slot_duration_s", "slots_per_frame", "sss_sequence",
    "transport_block_size", "try_decode_pdcch",
]
