"""NR-Scope itself: cell search, RACH sniffing, DCI decoding, telemetry."""

from repro.core.aggregation import PacketAggregationAnalyzer
from repro.core.cell_search import CellKnowledge, CellSearcher
from repro.core.dci_decoder import DecodedDci, GridDciDecoder, \
    RecordDciDecoder
from repro.core.decode_model import decode_succeeds, pdcch_bler, uci_bler
from repro.core.feedback import FeedbackMessage, FeedbackService
from repro.core.fingerprint import FingerprintLibrary, RanFingerprint, \
    anomaly_score, classify_scheduler, fingerprint_session
from repro.core.harq_tracker import HarqTrackerBank, UeHarqTracker
from repro.core.multicell import CellStream, FusedStream, HandoverEvent, \
    MultiCellController, correlate_streams, detect_handovers
from repro.core.rach_sniffer import RachSniffer, TrackedUe
from repro.core.runtime import Executor, InlineExecutor, RuntimeStats, \
    SlotContext, SlotRuntime, Stage, StageStats, ThreadedExecutor, \
    build_executor, shard_ues, sharded_grid_decode
from repro.core.scope import NRScope, ScopeCounters
from repro.core.spare_capacity import SpareCapacityEstimator, SpareShare, \
    TtiUsage
from repro.core.telemetry import TelemetryLog, TelemetryRecord
from repro.core.throughput import SlidingWindowEstimator, ThroughputBank
from repro.core.uci_telemetry import UciObservation, UciTelemetry

__all__ = [
    "CellKnowledge", "CellSearcher", "CellStream", "DecodedDci",
    "Executor", "FeedbackMessage", "FeedbackService",
    "FingerprintLibrary", "FusedStream", "GridDciDecoder",
    "HandoverEvent", "HarqTrackerBank", "InlineExecutor",
    "MultiCellController", "NRScope",
    "PacketAggregationAnalyzer", "RachSniffer", "RecordDciDecoder",
    "RuntimeStats", "ScopeCounters", "SlidingWindowEstimator",
    "SlotContext", "SlotRuntime", "SpareCapacityEstimator",
    "SpareShare", "Stage", "StageStats", "TelemetryLog",
    "TelemetryRecord", "ThreadedExecutor", "ThroughputBank",
    "TrackedUe", "TtiUsage",
    "RanFingerprint", "UciObservation", "UciTelemetry", "UeHarqTracker",
    "anomaly_score", "build_executor", "classify_scheduler",
    "correlate_streams", "decode_succeeds", "detect_handovers",
    "fingerprint_session", "pdcch_bler", "shard_ues",
    "sharded_grid_decode", "uci_bler",
]
