"""R004 fixture: raw slot/frame arithmetic in scheduler-side code."""


def slot_in_frame(slot_index):
    # Hard-codes 30 kHz slots-per-frame; must route through numerology.
    return slot_index % 20


def wrap_frame(sfn):
    return sfn % 1024
