"""Project-wide call graph for the flow-aware lint passes.

The per-file rules (R001-R005) can check anything visible in one
module; the stage-purity contract cannot be seen that way — whether the
parallel DCI-decode stage is pure depends on everything it *transitively
calls* across the package.  This module builds the call graph those
passes (:mod:`repro.lint.effects`, rules R006/R007) walk.

Resolution is deliberately static and conservative.  A call edge is
recorded only when the callee can be pinned to a function definition in
the scanned tree:

* plain names: module-level functions, names imported with
  ``from repro.x import f`` and ``repro.x`` module aliases;
* constructors: ``ClassName(...)`` resolves to ``ClassName.__init__``;
* ``self.method()`` inside a class (including single-name local bases);
* attribute calls through *known types*: a receiver whose type is pinned
  by a parameter annotation (``decoder: GridDciDecoder``), a class
  attribute annotation or ``self.x = ClassName(...)`` assignment, a
  ``dict[K, V]`` subscript, or a one-hop local assignment chain
  (``ue = tracked[rnti]; ue.search_space.candidate_cces(...)``).

Anything else (builtins, numpy, callables passed as values) becomes an
*opaque* call: recorded for the effect report's coverage number, never
guessed at.  Nested functions and lambdas are folded into their
enclosing definition — a closure's effects belong to whoever builds it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Subscripted annotation heads whose value slot names the element type.
_MAP_HEADS = {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict",
              "OrderedDict", "Counter"}
_SEQ_HEADS = {"list", "List", "tuple", "Tuple", "set", "Set", "frozenset",
              "Sequence", "Iterable", "Iterator", "FrozenSet"}


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_rel(dotted: str) -> str | None:
    """Map a ``repro.core.runtime`` import to its package-relative path."""
    parts = dotted.split(".")
    if parts and parts[0] == "repro":
        parts = parts[1:]
    if not parts:
        return None
    return "/".join(parts) + ".py"


@dataclass(frozen=True)
class TypeRef:
    """A statically known receiver type.

    ``kind`` is ``"class"`` for a plain instance, ``"map"`` when the
    value is a mapping whose *values* have the named class (so a
    subscript read yields a ``"class"`` ref), ``"seq"`` likewise for
    sequence elements.
    """

    kind: str
    name: str


def annotation_ref(node: ast.AST | None) -> TypeRef | None:
    """Extract a :class:`TypeRef` from an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return annotation_ref(parsed)
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        if name is None or name in ("None", "object"):
            return None
        return TypeRef("class", name)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_ref(node.left)
        if left is not None:
            return left
        return annotation_ref(node.right)
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        if head is None:
            return None
        leaf = head.split(".")[-1]
        if leaf == "Optional":
            return annotation_ref(node.slice)
        slice_node = node.slice
        elements = slice_node.elts if isinstance(slice_node, ast.Tuple) \
            else [slice_node]
        if leaf in _MAP_HEADS and len(elements) == 2:
            value = annotation_ref(elements[1])
            if value is not None and value.kind == "class":
                return TypeRef("map", value.name)
            return None
        if leaf in _SEQ_HEADS and elements:
            element = annotation_ref(elements[0])
            if element is not None and element.kind == "class":
                return TypeRef("seq", element.name)
            return None
    return None


@dataclass
class FunctionNode:
    """One analyzed function or method."""

    qualname: str                   #: ``rel::Class.method`` / ``rel::fn``
    rel: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    decorators: tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """Per-class method table and statically known attribute types."""

    name: str
    rel: str
    node: ast.ClassDef
    methods: dict[str, FunctionNode] = field(default_factory=dict)
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed module of the scanned tree."""

    rel: str
    path: str
    tree: ast.Module
    #: local name -> ("module", target rel, "") or
    #: ("symbol", target rel, remote name)
    imports: dict[str, tuple[str, str, str]] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionNode] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller -> callee edge, anchored at the call site."""

    caller: str
    callee: str
    lineno: int


@dataclass(frozen=True)
class OpaqueCall:
    """A call whose target could not be pinned to a scanned definition."""

    caller: str
    name: str
    lineno: int


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) \
        -> tuple[str, ...]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name is not None:
            names.append(name)
    return tuple(names)


def _collect_imports(tree: ast.Module) -> dict[str, tuple[str, str, str]]:
    imports: dict[str, tuple[str, str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                rel = module_rel(alias.name)
                if rel is not None:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname is None and "." in alias.name:
                        # ``import repro.core.runtime`` binds ``repro``;
                        # calls spell the full dotted path, handled by
                        # the resolver's dotted-module fallback.
                        continue
                    imports[local] = ("module", rel, "")
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module is not None:
            rel = module_rel(node.module)
            if rel is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = \
                    ("symbol", rel, alias.name)
    return imports


class CallGraph:
    """The resolved call graph of one scanned tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.edges: dict[str, list[CallEdge]] = {}
        self.opaque: dict[str, list[OpaqueCall]] = {}

    # ------------------------------------------------------------ build
    @classmethod
    def build(cls, modules: list[tuple[str, str, ast.Module]]) \
            -> "CallGraph":
        """Build the graph from ``(path, rel, tree)`` parsed modules."""
        graph = cls()
        for path, rel, tree in modules:
            graph._index_module(path, rel, tree)
        for module in graph.modules.values():
            graph._infer_attr_types(module)
        for module in graph.modules.values():
            for function in module.functions.values():
                graph._resolve_calls(module, function)
            for klass in module.classes.values():
                for method in klass.methods.values():
                    graph._resolve_calls(module, method, klass)
        return graph

    def _index_module(self, path: str, rel: str, tree: ast.Module) -> None:
        module = ModuleInfo(rel=rel, path=path, tree=tree,
                            imports=_collect_imports(tree))
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node = FunctionNode(
                    qualname=f"{rel}::{stmt.name}", rel=rel,
                    name=stmt.name, cls=None, node=stmt,
                    decorators=_decorator_names(stmt))
                module.functions[stmt.name] = node
                self.functions[node.qualname] = node
            elif isinstance(stmt, ast.ClassDef):
                klass = ClassInfo(
                    name=stmt.name, rel=rel, node=stmt,
                    bases=tuple(n for n in
                                (dotted_name(b) for b in stmt.bases)
                                if n is not None))
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        method = FunctionNode(
                            qualname=f"{rel}::{stmt.name}.{item.name}",
                            rel=rel, name=item.name, cls=stmt.name,
                            node=item, decorators=_decorator_names(item))
                        klass.methods[item.name] = method
                        self.functions[method.qualname] = method
                    elif isinstance(item, ast.AnnAssign) and \
                            isinstance(item.target, ast.Name):
                        ref = annotation_ref(item.annotation)
                        if ref is not None:
                            klass.attr_types[item.target.id] = ref
                module.classes[stmt.name] = klass
        self.modules[rel] = module

    def _infer_attr_types(self, module: ModuleInfo) -> None:
        """Fill attribute types from ``self.x = ClassName(...)`` and
        annotated ``self.x: T`` assignments inside method bodies."""
        for klass in module.classes.values():
            for method in klass.methods.values():
                for node in ast.walk(method.node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    if isinstance(node, ast.Assign) and \
                            len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target = node.target
                        ref = annotation_ref(node.annotation)
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "self" and \
                                ref is not None:
                            klass.attr_types.setdefault(target.attr, ref)
                        continue
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and value is not None):
                        continue
                    if isinstance(value, ast.Call):
                        name = dotted_name(value.func)
                        if name is not None and \
                                self._resolve_class(module, name) \
                                is not None:
                            klass.attr_types.setdefault(
                                target.attr, TypeRef("class", name))

    # --------------------------------------------------------- resolve
    def _resolve_class(self, module: ModuleInfo,
                       name: str) -> ClassInfo | None:
        """A class by (possibly dotted) name as seen from ``module``."""
        parts = name.split(".")
        if len(parts) == 1:
            if name in module.classes:
                return module.classes[name]
            entry = module.imports.get(name)
            if entry is not None and entry[0] == "symbol":
                target = self.modules.get(entry[1])
                if target is not None:
                    return target.classes.get(entry[2])
            return None
        head, leaf = parts[0], parts[-1]
        entry = module.imports.get(head)
        if entry is not None and entry[0] == "module" and len(parts) == 2:
            target = self.modules.get(entry[1])
            if target is not None:
                return target.classes.get(leaf)
        return None

    def _resolve_function(self, module: ModuleInfo,
                          name: str) -> FunctionNode | None:
        """A module-level function by name as seen from ``module``."""
        parts = name.split(".")
        if len(parts) == 1:
            if name in module.functions:
                return module.functions[name]
            entry = module.imports.get(name)
            if entry is not None and entry[0] == "symbol":
                target = self.modules.get(entry[1])
                if target is not None:
                    return target.functions.get(entry[2])
            return None
        head, leaf = parts[0], parts[-1]
        entry = module.imports.get(head)
        if entry is not None and entry[0] == "module" and len(parts) == 2:
            target = self.modules.get(entry[1])
            if target is not None:
                return target.functions.get(leaf)
        if parts[0] == "repro" and len(parts) >= 3:
            rel = module_rel(".".join(parts[:-1]))
            target = self.modules.get(rel) if rel is not None else None
            if target is not None:
                return target.functions.get(leaf)
        return None

    def _class_method(self, module: ModuleInfo, klass: ClassInfo,
                      name: str) -> FunctionNode | None:
        """Look up a method, following single-name local bases one level."""
        if name in klass.methods:
            return klass.methods[name]
        for base_name in klass.bases:
            base = self._resolve_class(module, base_name)
            if base is not None and name in base.methods:
                return base.methods[name]
        return None

    def _build_env(self, module: ModuleInfo,
                   function: FunctionNode,
                   klass: ClassInfo | None) -> dict[str, TypeRef]:
        env: dict[str, TypeRef] = {}
        if klass is not None:
            env["self"] = TypeRef("class", klass.name)
        args = function.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            ref = annotation_ref(arg.annotation)
            if ref is not None:
                env[arg.arg] = ref
        # One forward pass over assignments: a later use of an earlier
        # binding resolves; anything cyclic simply stays unknown.
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                ref = self._infer_expr(module, node.value, env)
                if ref is not None:
                    env.setdefault(node.targets[0].id, ref)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                ref = annotation_ref(node.annotation)
                if ref is not None:
                    env.setdefault(node.target.id, ref)
        return env

    def _infer_expr(self, module: ModuleInfo, expr: ast.expr,
                    env: dict[str, TypeRef]) -> TypeRef | None:
        """Best-effort type of an expression under ``env``."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is not None and \
                    self._resolve_class(module, name) is not None:
                return TypeRef("class", name)
            return None
        if isinstance(expr, ast.Attribute):
            base = self._infer_expr(module, expr.value, env)
            if base is not None and base.kind == "class":
                klass = self._resolve_class(module, base.name)
                if klass is not None:
                    return klass.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self._infer_expr(module, expr.value, env)
            if base is not None and base.kind in ("map", "seq"):
                return TypeRef("class", base.name)
            return None
        return None

    def _resolve_calls(self, module: ModuleInfo, function: FunctionNode,
                       klass: ClassInfo | None = None) -> None:
        env = self._build_env(module, function, klass)
        edges: list[CallEdge] = []
        opaque: list[OpaqueCall] = []
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call_target(module, node, env)
            if callee is not None:
                edges.append(CallEdge(caller=function.qualname,
                                      callee=callee.qualname,
                                      lineno=node.lineno))
            else:
                name = dotted_name(node.func) or \
                    (f"?.{node.func.attr}"
                     if isinstance(node.func, ast.Attribute) else "?")
                opaque.append(OpaqueCall(caller=function.qualname,
                                         name=name, lineno=node.lineno))
        self.edges[function.qualname] = edges
        self.opaque[function.qualname] = opaque

    def _resolve_call_target(self, module: ModuleInfo, call: ast.Call,
                             env: dict[str, TypeRef]) \
            -> FunctionNode | None:
        func = call.func
        name = dotted_name(func)
        if name is not None:
            target = self._resolve_function(module, name)
            if target is not None:
                return target
            klass = self._resolve_class(module, name)
            if klass is not None:
                init = self._class_method(module, klass, "__init__")
                if init is not None:
                    return init
                # A class without __init__ is still a resolved,
                # effect-free construction; report it as its class body
                # by falling through to opaque (no function to attach).
                return None
        if isinstance(func, ast.Attribute):
            base = self._infer_expr(module, func.value, env)
            if base is not None and base.kind == "class":
                klass = self._resolve_class(module, base.name)
                if klass is not None:
                    method = self._class_method(module, klass, func.attr)
                    if method is not None:
                        return method
        return None

    # ------------------------------------------------------- queries
    def type_env(self, function: FunctionNode) -> dict[str, TypeRef]:
        """The statically known name -> type environment of a function
        (public face of the resolver's internal env builder, used by
        the wire-payload escape analysis)."""
        module = self.modules.get(function.rel)
        if module is None:
            return {}
        klass = module.classes.get(function.cls) \
            if function.cls is not None else None
        return self._build_env(module, function, klass)

    def infer_type(self, rel: str, expr: ast.expr,
                   env: dict[str, TypeRef]) -> TypeRef | None:
        """Best-effort type of ``expr`` as seen from module ``rel``
        under ``env`` (public face of the expression typer)."""
        module = self.modules.get(rel)
        if module is None:
            return None
        return self._infer_expr(module, expr, env)

    def resolve_callable_expr(self, rel: str, expr: ast.expr,
                              cls: str | None = None) \
            -> FunctionNode | None:
        """Resolve a callable *reference* (not a call) like
        ``self._stage_dci`` or a bare function name, as seen from
        ``rel`` inside class ``cls``."""
        module = self.modules.get(rel)
        if module is None:
            return None
        if isinstance(expr, ast.Name):
            return self._resolve_function(module, expr.id)
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and cls is not None:
                klass = module.classes.get(cls)
                if klass is not None:
                    return self._class_method(module, klass, expr.attr)
            name = dotted_name(expr)
            if name is not None:
                return self._resolve_function(module, name)
        return None

    def callees(self, qualname: str) -> list[CallEdge]:
        """Resolved outgoing edges of one function."""
        return self.edges.get(qualname, [])

    def opaque_calls(self, qualname: str) -> list[OpaqueCall]:
        """Unresolved calls of one function."""
        return self.opaque.get(qualname, [])

    @property
    def n_opaque(self) -> int:
        """Total unresolved call sites (the coverage honesty number)."""
        return sum(len(calls) for calls in self.opaque.values())
