"""Tests for the top-level simulation driver."""

import pytest

from repro.gnb.cell_config import MOSOLAB_PROFILE, SRSRAN_PROFILE
from repro.simulation import Simulation, SimulationError, make_traffic
from repro.ue.population import Session
from repro.ue.traffic import BulkDownload, ConstantBitRate, \
    PoissonPackets, VideoStream


class TestMakeTraffic:
    def test_kinds(self):
        assert isinstance(make_traffic("video", 5e-4, 0), VideoStream)
        assert isinstance(make_traffic("bulk", 5e-4, 0), BulkDownload)
        assert isinstance(make_traffic("cbr", 5e-4, 0), ConstantBitRate)
        assert isinstance(make_traffic("poisson", 5e-4, 0),
                          PoissonPackets)

    def test_mixed_resolves_by_seed(self):
        kinds = {type(make_traffic("mixed", 5e-4, seed))
                 for seed in range(4)}
        assert kinds == {VideoStream, BulkDownload}

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            make_traffic("carrier-pigeon", 5e-4, 0)


class TestBuild:
    def test_builds_with_ues(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=3, seed=1)
        assert len(sim.gnb.ues) == 3
        assert sim.now_s == 0.0

    def test_negative_ues_rejected(self):
        with pytest.raises(SimulationError):
            Simulation.build(SRSRAN_PROFILE, n_ues=-1)

    def test_run_advances_clock(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=1, seed=2)
        sim.run(seconds=0.1)
        assert sim.now_s == pytest.approx(0.1)
        assert sim.slots_run == 200

    def test_run_negative_rejected(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0)
        with pytest.raises(SimulationError):
            sim.run(seconds=-1.0)
        with pytest.raises(SimulationError):
            sim.run_slots(-5)

    def test_determinism(self):
        def run_once():
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=7)
            sim.run(seconds=0.5)
            return [(r.slot_index, r.rnti, r.grant.tbs_bits)
                    for r in sim.gnb.log.dci_records]

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_with(seed):
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=seed)
            sim.run(seconds=0.5)
            return [(r.slot_index, r.rnti) for r in
                    sim.gnb.log.dci_records]

        assert run_with(1) != run_with(2)


class TestObservers:
    def test_observer_sees_every_slot(self):
        sim = Simulation.build(MOSOLAB_PROFILE, n_ues=1, seed=3)
        slots = []
        sim.add_observer(lambda out: slots.append(out.slot.index))
        sim.run_slots(50)
        assert slots == list(range(50))

    def test_multiple_observers(self):
        sim = Simulation.build(MOSOLAB_PROFILE, n_ues=1, seed=3)
        counts = [0, 0]
        sim.add_observer(lambda out: counts.__setitem__(
            0, counts[0] + 1))
        sim.add_observer(lambda out: counts.__setitem__(
            1, counts[1] + 1))
        sim.run_slots(10)
        assert counts == [10, 10]


class TestSessions:
    def test_sessions_admit_and_release(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=4)
        sessions = [Session(ue_id=100, arrival_s=0.05, holding_s=0.2),
                    Session(ue_id=101, arrival_s=0.15, holding_s=0.4)]
        sim.schedule_sessions(sessions)
        sim.run(seconds=0.1)
        assert set(sim.gnb.ues) == {100}
        sim.run(seconds=0.1)   # t=0.2: 101 admitted
        assert set(sim.gnb.ues) == {100, 101}
        sim.run(seconds=0.1)   # t=0.3: 100 departed at 0.25
        assert set(sim.gnb.ues) == {101}
        sim.run(seconds=0.4)   # t=0.7: 101 departed at 0.55
        assert sim.gnb.ues == {}

    def test_departed_ue_has_departure_time(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=4)
        sim.schedule_sessions([Session(ue_id=7, arrival_s=0.0,
                                       holding_s=0.1)])
        sim.run(seconds=0.3)
        entry = sim._sessions[0]
        assert entry.ue.departure_time_s == pytest.approx(0.1, abs=0.01)


class TestSnifferLink:
    def test_explicit_snr_wins(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0)
        assert sim.sniffer_link(snr_db=7.5).snr_db == 7.5

    def test_default_position_near_gnb(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0)
        link = sim.sniffer_link()
        assert link.snr_db > 15.0  # bench conditions
