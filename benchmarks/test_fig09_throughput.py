"""Fig 9: per-UE throughput estimation accuracy.

Paper results: p75 error 2.33 kbps (Mosolab vs tcpdump), p95 error
35.9 kbps (Amarisoft vs gNB log), median 42.56 kbps (T-Mobile); against
average per-UE rates of 3.35-5.73 Mbit/s the majority of errors are
under 0.9%.
"""

from repro.analysis.metrics import summarize_errors
from repro.analysis.report import print_tables
from repro.experiments import fig09_throughput as fig9


def run_all():
    return (fig9.run_mosolab(duration_s=5.0),
            fig9.run_amarisoft(duration_s=2.5),
            fig9.run_tmobile(duration_s=5.0))


def test_fig09_throughput_accuracy(once):
    mosolab, amarisoft, tmobile = once(run_all)
    result = fig9.to_result(mosolab, amarisoft, tmobile)
    print()
    print_tables([
        fig9.table(mosolab, "Fig 9a - Mosolab vs tcpdump (paper: p75"
                            " 2.33 kbps)"),
        fig9.table(amarisoft, "Fig 9b - Amarisoft vs gNB log (paper:"
                              " p95 35.9 kbps)"),
        fig9.table(tmobile, "Fig 9c - T-Mobile cells (paper: median"
                            " 42.6 kbps)"),
    ])
    print("summary:", {k: round(v, 2) for k, v in result.summary.items()})

    # Shape: relative errors stay around or under the ~1% mark.
    for series in mosolab + amarisoft + tmobile:
        assert series.relative_error_pct < 3.0, series.label
    # Medians sit in the kbps range against multi-Mbps flows.
    pooled = summarize_errors(
        [e for s in mosolab for e in s.errors_kbps])
    assert pooled.median < 100.0
    # The log-truth comparison (9b) is tighter than tcpdump truth at the
    # same scale, since it shares the TBS quantisation.
    assert result.summary["amarisoft_p95_kbps"] < 500.0
