"""Unit tests for the static call-graph builder."""

import ast
import textwrap

from repro.lint.callgraph import (
    CallGraph,
    annotation_ref,
    dotted_name,
    module_rel,
)


def build(*modules):
    """Build a graph from (rel, source) pairs."""
    return CallGraph.build([
        (rel, rel, ast.parse(textwrap.dedent(source)))
        for rel, source in modules])


def edge_names(graph, qualname):
    return {edge.callee for edge in graph.callees(qualname)}


class TestHelpers:
    def test_dotted_name(self):
        expr = ast.parse("a.b.c").body[0].value
        assert dotted_name(expr) == "a.b.c"
        assert dotted_name(ast.parse("f()").body[0].value) is None

    def test_module_rel(self):
        assert module_rel("repro.core.runtime") == "core/runtime.py"
        assert module_rel("repro.constants") == "constants.py"

    def test_annotation_ref_forms(self):
        def ref(src):
            return annotation_ref(ast.parse(src, mode="eval").body)

        assert ref("GridDciDecoder").name == "GridDciDecoder"
        assert ref("Optional[Decoder]").name == "Decoder"
        assert ref("Decoder | None").name == "Decoder"
        assert ref("'Decoder'").name == "Decoder"
        mapped = ref("dict[int, TrackedUe]")
        assert mapped.kind == "map" and mapped.name == "TrackedUe"
        seq = ref("list[TrackedUe]")
        assert seq.kind == "seq" and seq.name == "TrackedUe"
        assert ref("None") is None
        assert ref("int") is not None  # unknown classes resolve nowhere


class TestResolution:
    def test_local_and_imported_functions(self):
        graph = build(
            ("core/a.py", """
             from repro.core.b import helper

             def local():
                 pass

             def caller():
                 local()
                 helper()
             """),
            ("core/b.py", """
             def helper():
                 pass
             """))
        assert edge_names(graph, "core/a.py::caller") == {
            "core/a.py::local", "core/b.py::helper"}

    def test_constructor_resolves_to_init(self):
        graph = build(("core/a.py", """
            class Widget:
                def __init__(self):
                    pass

            def make():
                return Widget()
            """))
        assert edge_names(graph, "core/a.py::make") == {
            "core/a.py::Widget.__init__"}

    def test_self_method_and_base_class(self):
        graph = build(("core/a.py", """
            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def run(self):
                    self.shared()
                    self.own()

                def own(self):
                    pass
            """))
        assert edge_names(graph, "core/a.py::Child.run") == {
            "core/a.py::Base.shared", "core/a.py::Child.own"}

    def test_param_annotation_pins_receiver(self):
        graph = build(("core/a.py", """
            class Decoder:
                def decode(self):
                    pass

            def run(decoder: Decoder):
                decoder.decode()
            """))
        assert edge_names(graph, "core/a.py::run") == {
            "core/a.py::Decoder.decode"}

    def test_self_attr_assignment_pins_type(self):
        graph = build(("core/a.py", """
            class Decoder:
                def decode(self):
                    pass

            class Scope:
                def __init__(self):
                    self.decoder = Decoder()

                def run(self):
                    self.decoder.decode()
            """))
        assert "core/a.py::Decoder.decode" in \
            edge_names(graph, "core/a.py::Scope.run")

    def test_dict_subscript_yields_value_class(self):
        graph = build(("core/a.py", """
            class TrackedUe:
                def touch(self):
                    pass

            def mark(tracked: dict[int, TrackedUe], rnti: int):
                tracked[rnti].touch()
            """))
        assert edge_names(graph, "core/a.py::mark") == {
            "core/a.py::TrackedUe.touch"}

    def test_local_assignment_chain(self):
        graph = build(("core/a.py", """
            class TrackedUe:
                def touch(self):
                    pass

            def mark(tracked: dict[int, TrackedUe], rnti: int):
                ue = tracked[rnti]
                ue.touch()
            """))
        assert edge_names(graph, "core/a.py::mark") == {
            "core/a.py::TrackedUe.touch"}

    def test_unresolved_calls_are_opaque_not_guessed(self):
        graph = build(("core/a.py", """
            import numpy as np

            def run(thing):
                thing.mystery()
                np.zeros(4)
            """))
        assert edge_names(graph, "core/a.py::run") == set()
        names = {c.name for c in graph.opaque_calls("core/a.py::run")}
        assert names == {"thing.mystery", "np.zeros"}
        assert graph.n_opaque == 2

    def test_nested_defs_fold_into_enclosing(self):
        graph = build(("core/a.py", """
            def target():
                pass

            def outer():
                def inner():
                    target()
                return inner
            """))
        assert "core/a.py::target" in edge_names(graph, "core/a.py::outer")

    def test_resolve_callable_expr(self):
        graph = build(("core/a.py", """
            class Scope:
                def _stage_dci(self, ctx):
                    pass

            def free(ctx):
                pass
            """))
        name = ast.parse("free", mode="eval").body
        assert graph.resolve_callable_expr(
            "core/a.py", name).qualname == "core/a.py::free"
        attr = ast.parse("self._stage_dci", mode="eval").body
        assert graph.resolve_callable_expr(
            "core/a.py", attr, cls="Scope").qualname \
            == "core/a.py::Scope._stage_dci"
        assert graph.resolve_callable_expr("core/a.py", attr) is None
