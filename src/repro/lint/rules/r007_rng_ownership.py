"""R007: every generator draw must flow from an owned, seeded Generator.

R005 polices ``gnb/``/``ue/``/``simulation.py``; the runtime core in
``core/`` has a stricter ownership story: the *session* seeds exactly
one ``np.random.default_rng(seed)`` per component in ``__init__``, and
every draw flows from that stored generator (``self._rng``) or from a
generator threaded in as a parameter.  Randomness that is not owned —
the stdlib ``random`` module, legacy ``np.random.*`` global state,
entropy-seeded ``default_rng()``, or a draw chained onto a fresh
``default_rng(...)`` that nobody keeps — makes replay diverge or (for
global state) couples independent components.

Flow-aware part: constructing *any* generator (even a seeded one)
inside a function reachable from a parallel-stage root is flagged too —
generators are sequential state machines, so the parallel per-UE stage
may only use counter-keyed draws (``counter_uniform``) or values drawn
by a backbone stage beforehand.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Legacy numpy global-state entry points (mirrors R005's table).
LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "normal", "uniform", "poisson",
    "exponential", "standard_normal", "binomial",
}

#: Draw methods of numpy Generator objects.
RNG_DRAW_METHODS = {
    "random", "normal", "integers", "uniform", "choice", "shuffle",
    "permutation", "standard_normal", "exponential", "poisson",
    "binomial", "bytes",
}


@register
class RngOwnershipRule(Rule):
    """Flag RNG that does not flow from an owned, seeded Generator."""

    rule_id = "R007"
    title = "RNG draw not owned by a seeded stage Generator"
    needs_program = True

    def applies(self, rel: str) -> bool:
        return rel.startswith("core/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        reported: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                reported.add((node.lineno, node.col_offset))
                yield self.finding(
                    ctx, node,
                    "stdlib 'random' in the runtime core: draws must "
                    "flow from a stored, seeded np.random.default_rng")
            elif isinstance(node, ast.Call):
                for finding in self._check_call(ctx, node):
                    reported.add((node.lineno, node.col_offset))
                    yield finding
        yield from self._check_parallel_closure(ctx, reported)

    def _check_call(self, ctx: LintContext,
                    node: ast.Call) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if parts[0] == "random" and len(parts) > 1:
                yield self.finding(
                    ctx, node,
                    f"'{name}()' draws from unowned global randomness: "
                    f"thread a seeded np.random.default_rng through")
                return
            if len(parts) >= 3 and parts[-2] == "random" \
                    and parts[-1] in LEGACY_NP_RANDOM:
                yield self.finding(
                    ctx, node,
                    f"'{name}()' drives numpy's global RNG state, owned "
                    f"by nobody: use a stored seeded default_rng")
                return
            if parts[-1] == "default_rng":
                unseeded = (not node.args and not node.keywords) or (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None)
                if unseeded:
                    yield self.finding(
                        ctx, node,
                        "default_rng() without a seed is entropy-seeded: "
                        "an owned generator must be seeded so replay "
                        "reproduces its stream")
                return
        # A draw chained onto a fresh generator nobody stores:
        # ``default_rng(7).random()`` owns nothing — the stream restarts
        # at every call site.
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in RNG_DRAW_METHODS and \
                isinstance(node.func.value, ast.Call):
            inner = dotted_name(node.func.value.func)
            if inner is not None and \
                    inner.split(".")[-1] == "default_rng":
                yield self.finding(
                    ctx, node,
                    f"draw on a fresh '{inner}(...)': the generator is "
                    f"discarded after one draw, so the stream is not "
                    f"owned by any stage — store it and reuse it")

    def _check_parallel_closure(self, ctx: LintContext,
                                reported: set[tuple[int, int]]) \
            -> Iterator[Finding]:
        program = ctx.program
        if program is None:  # pragma: no cover - engine always supplies it
            return
        module = program.graph.modules.get(ctx.rel)
        if module is None:
            return
        parallel = program.parallel_reachable()
        functions = list(module.functions.values())
        for klass in module.classes.values():
            functions.extend(klass.methods.values())
        for function in functions:
            if function.qualname not in parallel:
                continue
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                if (node.lineno, node.col_offset) in reported:
                    continue
                name = dotted_name(node.func)
                if name is not None and \
                        name.split(".")[-1] == "default_rng":
                    short = function.qualname.split("::", 1)[-1]
                    yield self.finding(
                        ctx, node,
                        f"'{name}(...)' constructs a Generator inside "
                        f"'{short}', which is reachable from a parallel "
                        f"stage: generators are sequential state — use "
                        f"counter_uniform or draw in a backbone stage")
