#!/usr/bin/env python3
"""Security assessment from passive telemetry (paper section 6).

"The RRC messages and the resource allocation patterns that NR-Scope
reveals can aid security assessments of the RAN, particularly to
identify surveillance equipment and RAN vendors."

This example surveys three cells with NR-Scope and runs the
fingerprinting toolkit over the telemetry:

1. build a reference library from two known-good cells,
2. attribute a freshly observed cell to its nearest reference,
3. detect the deployed scheduler policy from the DCI stream, and
4. score each cell for the catcher-shaped anomaly (many attachments,
   no user traffic).

Run:  python examples/security_assessment.py
"""

from repro import AMARISOFT_PROFILE, NRScope, Simulation, SRSRAN_PROFILE
from repro.core.fingerprint import FingerprintLibrary, anomaly_score, \
    classify_scheduler, fingerprint_session, interleaving_runs
from repro.ue.population import Session

OBSERVATION_S = 1.5


def observe(profile, seed, scheduler="rr", catcher=False):
    """One passive observation of a cell."""
    sim = Simulation.build(profile, n_ues=0 if catcher else 4, seed=seed,
                           scheduler=scheduler, traffic="bulk",
                           channel="pedestrian")
    if catcher:
        # The suspicious cell: short attachments, negligible payload.
        sessions = [Session(ue_id=i, arrival_s=0.12 * i, holding_s=0.1)
                    for i in range(10)]
        sim.schedule_sessions(sessions, traffic="cbr", rate_bps=1e3)
    scope = NRScope.attach(sim, snr_db=20.0)
    sim.run(seconds=OBSERVATION_S if not catcher else 2.0)
    return scope


def main() -> None:
    print("building reference library from known cells...")
    library = FingerprintLibrary()
    known_srs = observe(SRSRAN_PROFILE, seed=1)
    library.add("srsran (n41, 64QAM)",
                fingerprint_session(known_srs.telemetry))
    known_ama = observe(AMARISOFT_PROFILE, seed=2)
    library.add("amarisoft (n78, 256QAM, 2-layer)",
                fingerprint_session(known_ama.telemetry))

    print("\nobserving an unknown cell...")
    unknown = observe(SRSRAN_PROFILE, seed=77)
    fingerprint = fingerprint_session(unknown.telemetry)
    label, distance = library.identify(fingerprint)
    print(f"  nearest reference: {label} (distance {distance:.3f})")
    print(f"  mean MCS {fingerprint.mcs_mean:.1f}, mean grant "
          f"{fingerprint.mean_grant_prbs:.1f} PRB, "
          f"{fingerprint.n_ues} UEs over {fingerprint.n_dcis} DCIs")
    runs = interleaving_runs(unknown.telemetry)
    print(f"  scheduler policy: {classify_scheduler(runs)}")

    print("\nanomaly scan:")
    for name, scope, duration in (
            ("known srsran cell", known_srs, OBSERVATION_S),
            ("known amarisoft cell", known_ama, OBSERVATION_S),
            ("suspicious cell", observe(SRSRAN_PROFILE, seed=9,
                                        catcher=True), 2.0)):
        score = anomaly_score(scope.telemetry, duration,
                              scope.counters.msg4_seen)
        verdict = "SUSPICIOUS" if score > 0.5 else "ordinary"
        print(f"  {name:>22}: attach={scope.counters.msg4_seen:3d}, "
              f"score={score:.2f} -> {verdict}")


if __name__ == "__main__":
    main()
