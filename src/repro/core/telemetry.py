"""Telemetry records and the stream NR-Scope emits (paper Fig 4's log).

Every decoded DCI becomes one :class:`TelemetryRecord`.  The
:class:`TelemetryLog` indexes them for the consumers the paper describes:
per-UE throughput series, retransmission ratios, MCS distributions, and
the raw stream an application server would subscribe to.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any

from repro.phy.dci import Dci, DciFormat
from repro.phy.grant import Grant

#: On-disk JSONL schema version.  v1 streams carried the record fields
#: bare; v2 adds the ``v`` marker itself.  :meth:`TelemetryRecord.from_dict`
#: reads both.
TELEMETRY_SCHEMA_VERSION = 2


class TelemetryError(ValueError):
    """Raised for malformed telemetry operations."""


@dataclass(frozen=True)
class TelemetryRecord:
    """One decoded DCI with its derived quantities."""

    slot_index: int
    time_s: float
    rnti: int
    downlink: bool
    tbs_bits: int
    n_prb: int
    n_symbols: int
    mcs_index: int
    harq_id: int
    ndi: int
    rv: int
    is_retransmission: bool
    aggregation_level: int

    @classmethod
    def from_decode(cls, slot_index: int, time_s: float, dci: Dci,
                    grant: Grant, aggregation_level: int,
                    is_retransmission: bool) -> "TelemetryRecord":
        """Build a record from a decoded DCI/grant pair."""
        return cls(slot_index=slot_index, time_s=time_s, rnti=dci.rnti,
                   downlink=dci.format is DciFormat.DL_1_1,
                   tbs_bits=grant.tbs_bits, n_prb=grant.n_prb,
                   n_symbols=grant.n_symbols, mcs_index=dci.mcs,
                   harq_id=dci.harq_id, ndi=dci.ndi, rv=dci.rv,
                   is_retransmission=is_retransmission,
                   aggregation_level=aggregation_level)

    @property
    def n_regs(self) -> int:
        """REGs this record's grant occupies."""
        return self.n_prb * self.n_symbols

    def to_json(self) -> str:
        """One JSON line, the on-disk log format (schema v2)."""
        payload = {"v": TELEMETRY_SCHEMA_VERSION, **asdict(self)}
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TelemetryRecord":
        """Tolerant reader for any on-disk schema version.

        A missing ``v`` marks a v1 line.  Unknown keys — fields a later
        schema may add — are ignored so old readers of new logs and new
        readers of old logs both work; missing record fields raise
        :class:`TelemetryError` naming them.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in payload.items()
                  if key in known}
        missing = known - kwargs.keys()
        if missing:
            version = payload.get("v", 1)
            raise TelemetryError(
                f"telemetry line (schema v{version}) is missing "
                f"fields: {', '.join(sorted(missing))}")
        return cls(**kwargs)


class TelemetryLog:
    """Indexed store of everything NR-Scope decoded in a session."""

    def __init__(self) -> None:
        self._records: list[TelemetryRecord] = []
        self._by_rnti: dict[int, list[TelemetryRecord]] = {}

    def add(self, record: TelemetryRecord) -> None:
        """Append one decode."""
        self._records.append(record)
        self._by_rnti.setdefault(record.rnti, []).append(record)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[TelemetryRecord]:
        """All records in decode order."""
        return list(self._records)

    def for_rnti(self, rnti: int, downlink: bool | None = None) \
            -> list[TelemetryRecord]:
        """Records for one UE, optionally filtered by direction."""
        records = self._by_rnti.get(rnti, [])
        if downlink is None:
            return list(records)
        return [r for r in records if r.downlink == downlink]

    def rntis(self) -> list[int]:
        """Every RNTI seen in the session."""
        return sorted(self._by_rnti)

    def bits_between(self, rnti: int, start_s: float, end_s: float,
                     downlink: bool = True,
                     count_retransmissions: bool = False) -> int:
        """New-data bits scheduled for a UE in a window.

        Retransmissions are excluded by default: their bits were already
        counted when the HARQ process first carried them, which is what
        makes the estimate comparable to tcpdump's delivered bytes.
        """
        total = 0
        for record in self._by_rnti.get(rnti, []):
            if record.downlink != downlink:
                continue
            if not start_s <= record.time_s < end_s:
                continue
            if record.is_retransmission and not count_retransmissions:
                continue
            total += record.tbs_bits
        return total

    def bitrate_series(self, rnti: int, window_s: float, end_time_s: float,
                       downlink: bool = True) -> list[tuple[float, float]]:
        """(window end, bits/s) estimates — the paper Fig 14 time series."""
        if window_s <= 0:
            raise TelemetryError(f"window must be positive: {window_s}")
        series = []
        t = window_s
        while t <= end_time_s + 1e-9:
            bits = self.bits_between(rnti, t - window_s, t, downlink)
            series.append((t, bits / window_s))
            t += window_s
        return series

    def mcs_distribution(self, rnti: int | None = None,
                         downlink: bool = True) -> list[int]:
        """MCS indices of decoded (new-data) DCIs (paper Fig 15 left)."""
        records = self._records if rnti is None \
            else self._by_rnti.get(rnti, [])
        return [r.mcs_index for r in records
                if r.downlink == downlink and not r.is_retransmission]

    def retransmission_ratio(self, rnti: int | None = None,
                             downlink: bool = True) -> float:
        """Fraction of decoded DCIs that were retransmissions (Fig 15)."""
        records = self._records if rnti is None \
            else self._by_rnti.get(rnti, [])
        relevant = [r for r in records if r.downlink == downlink]
        if not relevant:
            return 0.0
        return sum(r.is_retransmission for r in relevant) / len(relevant)

    def write_jsonl(self, path: str | Path) -> int:
        """Dump the session to a JSON-lines file; returns the line count."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(record.to_json() + "\n")
        return len(self._records)

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "TelemetryLog":
        """Reload a session written by :meth:`write_jsonl`."""
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                log.add(TelemetryRecord.from_dict(json.loads(line)))
        return log
