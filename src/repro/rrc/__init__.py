"""RRC message set and codec (TS 38.331, abridged)."""

from repro.rrc.codec import BitReader, BitWriter, CodecError
from repro.rrc.messages import Mib, RachConfig, RrcMessage, RrcRelease, \
    RrcSetup, SearchSpaceConfig, Sib1, TddConfig, decode_message

__all__ = [
    "BitReader", "BitWriter", "CodecError", "Mib", "RachConfig",
    "RrcMessage", "RrcRelease", "RrcSetup", "SearchSpaceConfig", "Sib1",
    "TddConfig", "decode_message",
]
