"""RACH sniffing: C-RNTI and per-UE parameter discovery (section 3.1.2).

The sniffer watches the common search space for MSG 4 DCIs.  A decoded
MSG 4 yields, via the CRC XOR trick, the TC-RNTI about to become the
UE's C-RNTI, plus (from the scheduled PDSCH) the RRC Setup body with the
UE-dedicated configuration.  Two paper behaviours are modelled exactly:

* *RRC Setup caching*: decoding the Setup PDSCH costs 1-2 ms, so after
  the first UE the sniffer skips it and reuses the cached configuration
  ("the RRC Setup is identical among UEs").
* *Missed RACH = lost UE*: each UE gets exactly one MSG 4; if its decode
  fails, that RNTI can never be tracked in this session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.coreset import Coreset, SearchSpace
from repro.phy.grant import GrantConfig
from repro.rrc.messages import RrcSetup, SearchSpaceConfig


class RachSnifferError(ValueError):
    """Raised for inconsistent tracking operations."""


@dataclass
class TrackedUe:
    """Sniffer-side state for one discovered UE."""

    rnti: int
    first_seen_s: float
    grant_config: GrantConfig
    search_space: SearchSpace
    dci_format_dl: str = "1_1"
    last_seen_s: float = 0.0
    decoded_dcis: int = 0

    def touch(self, time_s: float) -> None:
        """Record activity for idle-pruning purposes."""
        self.last_seen_s = max(self.last_seen_s, time_s)


def search_space_from_config(config: SearchSpaceConfig) -> SearchSpace:
    """Materialise the PHY search space from the MSG 4 RRC element."""
    coreset = Coreset(coreset_id=config.coreset_id,
                      first_prb=config.coreset_first_prb,
                      n_prb=config.coreset_n_prb,
                      n_symbols=config.coreset_n_symbols,
                      first_symbol=config.coreset_first_symbol,
                      interleaved=config.interleaved)
    return SearchSpace(search_space_id=1, coreset=coreset, is_common=False,
                       candidates_per_level=config.candidates_per_level())


def grant_config_from_setup(setup: RrcSetup,
                            bwp_n_prb: int) -> GrantConfig:
    """The TBS-relevant parameters MSG 4 carries (paper Appendix A)."""
    return GrantConfig(bwp_n_prb=bwp_n_prb, mcs_table=setup.mcs_table,
                       n_layers=setup.max_mimo_layers,
                       n_dmrs_per_prb=setup.n_dmrs_res_per_prb,
                       xoverhead_res=setup.xoverhead_res)


@dataclass
class RachSniffer:
    """Tracks the UE table NR-Scope builds from sniffed MSG 4s."""

    bwp_n_prb: int
    tracked: dict[int, TrackedUe] = field(default_factory=dict)
    missed_rach_rntis: set[int] = field(default_factory=set)
    cached_setup: RrcSetup | None = None
    setup_pdsch_decodes: int = 0

    def discover(self, rnti: int, time_s: float,
                 setup: RrcSetup | None) -> TrackedUe:
        """Register a UE whose MSG 4 DCI was decoded.

        ``setup`` is the RRC Setup body when the sniffer decoded the
        PDSCH; None means "reuse the cache" (the paper's skip
        optimisation).  The very first UE must carry a setup.
        """
        if rnti in self.tracked:
            raise RachSnifferError(f"RNTI 0x{rnti:04x} already tracked")
        if setup is not None:
            self.cached_setup = setup
            self.setup_pdsch_decodes += 1
        if self.cached_setup is None:
            raise RachSnifferError(
                "first MSG 4 must include a decoded RRC Setup")
        config = self.cached_setup
        ue = TrackedUe(
            rnti=rnti, first_seen_s=time_s, last_seen_s=time_s,
            grant_config=grant_config_from_setup(config, self.bwp_n_prb),
            search_space=search_space_from_config(config.search_space),
            dci_format_dl=config.dci_format_dl)
        self.tracked[rnti] = ue
        return ue

    def miss(self, rnti: int) -> None:
        """Record a missed MSG 4: this UE is untrackable this session."""
        if rnti not in self.tracked:
            self.missed_rach_rntis.add(rnti)

    def is_tracked(self, rnti: int) -> bool:
        """True when DCIs for this RNTI can be decoded."""
        return rnti in self.tracked

    def release(self, rnti: int) -> None:
        """Forget a UE (departed or RNTI reused)."""
        self.tracked.pop(rnti, None)

    def prune_idle(self, now_s: float, idle_timeout_s: float) -> list[int]:
        """Drop UEs silent for longer than the timeout; returns RNTIs.

        RNTIs are 16-bit and reused by the cell, so a sniffer must age
        entries out or a recycled RNTI would inherit a stale config.
        """
        if idle_timeout_s <= 0:
            raise RachSnifferError("idle timeout must be positive")
        stale = [rnti for rnti, ue in self.tracked.items()
                 if now_s - ue.last_seen_s > idle_timeout_s]
        for rnti in stale:
            del self.tracked[rnti]
        return stale
