"""R006 fixture: a parallel stage whose closure is impure every way.

Both root-detection forms appear: the ``@parallel_stage`` decorator and
a ``Stage(..., parallel=True)`` construction.  The stage body reaches,
through helpers, a tracked-table mutation, a stateful RNG draw and a
wall-clock read — each must surface as an R006 finding with a witness
chain.  The same file doubles as the nrsan test's shape reference: the
runtime guard must catch the tracked mutation dynamically.
"""

import time

import numpy as np


def parallel_stage(fn):
    return fn


class Stage:
    def __init__(self, name, fn, parallel=False):
        self.name = name
        self.fn = fn
        self.parallel = parallel


def _mark_activity(tracked, rnti, now_s):
    tracked[rnti].last_seen_s = now_s


def _draw_decision():
    return np.random.default_rng().random() < 0.5


def _stamp():
    return time.time()


class BadPipeline:
    def __init__(self):
        self.tracked = {}
        self.stage = Stage("decode", self._stage_decode, parallel=True)

    def _stage_decode(self, ctx):
        for rnti in ctx.tracked:
            _mark_activity(ctx.tracked, rnti, _stamp())
            if _draw_decision():
                self.tracked.pop(rnti)


@parallel_stage
def decode_shard(tracked, rnti):
    tracked[rnti].decoded_dcis += 1
    return _draw_decision()
