"""nrlint: domain-aware static analysis for the NR-Scope reproduction.

Generic linters can tell you a variable is unused; they cannot tell you
that a DCI field is packed 4 bits wide and unpacked 3, or that a slot
index is reduced mod 20 behind the numerology helpers' back.  This
package holds an AST-based analysis pass with rules that encode the
repo's 3GPP bit-contract and determinism invariants (paper section
3.2.1: one mis-sized field silently corrupts every downstream metric).

Run it as ``python -m repro.lint [--format text|json] [paths...]`` or
through the main CLI as ``python -m repro.cli lint``.  Two more modes:
``python -m repro.lint effects`` prints the call-graph-backed JSON
effect report (see :mod:`repro.lint.effects`), and ``--changed [REF]``
scopes the scan to git-changed files for a fast PR gate.

Rule catalogue (see each module under :mod:`repro.lint.rules`):

* **R001** magic 3GPP numeric literals outside the constants modules.
* **R002** bit-width contract symmetry between pack/encode and
  unpack/decode sides of every codec.
* **R003** float equality comparisons in hot PHY/radio paths.
* **R004** raw slot/frame modular arithmetic bypassing numerology.
* **R005** unseeded randomness or wall-clock reads in deterministic
  simulation code.
* **R006** (flow-aware) parallel stage entry points must be
  transitively pure except counter-keyed RNG.
* **R007** (flow-aware) every RNG draw in the runtime core must flow
  from an owned, seeded Generator.
* **R008** dtype-less numpy allocations in PHY hot paths.

R006/R007 run on a whole-scan :class:`~repro.lint.effects.Program`
(project call graph + transitive effect inference); their runtime
companion is nrsan (:mod:`repro.core.sanitizer`), which checks the
same contracts with write-guard proxies and RNG audits.

New rules are one file each: drop ``rNNN_name.py`` into
:mod:`repro.lint.rules` with a ``@register``-decorated :class:`Rule`
subclass and the registry discovers it; set ``needs_program = True``
to receive the whole-scan analysis on ``ctx.program``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.callgraph import CallGraph
from repro.lint.effects import EffectTable, Program
from repro.lint.engine import LintContext, LintEngine
from repro.lint.findings import Finding
from repro.lint.registry import Rule, iter_rules, register

__all__ = [
    "Baseline",
    "CallGraph",
    "EffectTable",
    "Finding",
    "LintContext",
    "LintEngine",
    "Program",
    "Rule",
    "iter_rules",
    "register",
]
