"""Tests for MCS tables (38.214 5.1.3.1) and TBS calculation (5.1.3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.mcs_tables import (
    McsError,
    TABLE_QAM64,
    TABLE_QAM256,
    max_mcs_index,
    mcs_entry,
    mcs_for_spectral_efficiency,
)
from repro.phy.tbs import (
    TBS_TABLE,
    TbsError,
    effective_res,
    transport_block_size,
)


class TestMcsTables:
    def test_table_sizes(self):
        assert len(TABLE_QAM64) == 29
        assert len(TABLE_QAM256) == 28

    def test_known_rows_qam64(self):
        row0 = mcs_entry(0, "qam64")
        assert (row0.qm, row0.code_rate_x1024) == (2, 120)
        row28 = mcs_entry(28, "qam64")
        assert (row28.qm, row28.code_rate_x1024) == (6, 948)

    def test_known_rows_qam256(self):
        # Appendix B sample: mcs=27 in the 256QAM table, R=0.926, 256QAM.
        row = mcs_entry(27, "qam256")
        assert row.qm == 8
        assert row.code_rate == pytest.approx(0.926, abs=0.001)

    def test_spectral_efficiency_nearly_monotone(self):
        # The real 38.214 tables have one tiny dip at the 16QAM/64QAM
        # boundary (qam64 index 16 -> 17: 2.5703 -> 2.5664), so require
        # non-decreasing only up to that tolerance.
        for table in (TABLE_QAM64, TABLE_QAM256):
            effs = [row.spectral_efficiency for row in table]
            for prev, cur in zip(effs, effs[1:]):
                assert cur > prev - 0.005

    def test_out_of_range(self):
        with pytest.raises(McsError):
            mcs_entry(29, "qam64")
        with pytest.raises(McsError):
            mcs_entry(-1, "qam64")
        with pytest.raises(McsError):
            mcs_entry(0, "qam1024")

    def test_max_index(self):
        assert max_mcs_index("qam64") == 28
        assert max_mcs_index("qam256") == 27

    def test_link_adaptation_selection(self):
        # A very clean channel should select the top MCS; a terrible one
        # the bottom.
        assert mcs_for_spectral_efficiency(10.0, "qam256").index == 27
        assert mcs_for_spectral_efficiency(0.01, "qam64").index == 0

    @given(st.floats(0.0, 8.0), st.sampled_from(["qam64", "qam256"]))
    @settings(max_examples=50, deadline=None)
    def test_property_selection_never_exceeds_target(self, eff, table):
        row = mcs_for_spectral_efficiency(eff, table)
        floor = mcs_entry(0, table).spectral_efficiency
        assert row.spectral_efficiency <= max(eff, floor)


class TestEffectiveRes:
    def test_cap_at_156(self):
        # Full 14-symbol allocation with no overhead: 168 REs capped to 156.
        assert effective_res(1, 14, 0, 0) == 156
        assert effective_res(10, 14, 0, 0) == 1560

    def test_typical_dmrs(self):
        # 12 symbols, 12 DMRS REs: 12*12 - 12 = 132 per PRB.
        assert effective_res(3, 12, 12, 0) == 396

    def test_overhead_subtracts(self):
        assert effective_res(1, 12, 12, 6) == 126

    def test_rejects_impossible(self):
        with pytest.raises(TbsError):
            effective_res(0, 12, 12, 0)
        with pytest.raises(TbsError):
            effective_res(1, 15, 12, 0)
        with pytest.raises(TbsError):
            effective_res(1, 1, 12, 0)  # all REs eaten by DMRS


class TestTransportBlockSize:
    def test_small_allocation_lands_in_table(self):
        result = transport_block_size(1, 12, mcs_entry(0, "qam64"))
        assert result.tbs_bits in TBS_TABLE

    def test_table_is_sorted_and_byte_aligned(self):
        assert list(TBS_TABLE) == sorted(TBS_TABLE)
        assert all(t % 8 == 0 for t in TBS_TABLE)
        assert TBS_TABLE[-1] == 3824

    def test_monotone_in_prbs(self):
        mcs = mcs_entry(10, "qam64")
        sizes = [transport_block_size(n, 12, mcs).tbs_bits
                 for n in range(1, 60)]
        assert sizes == sorted(sizes)

    def test_monotone_in_mcs(self):
        # Same caveat as spectral efficiency: the qam64 table dips once at
        # index 16 -> 17, so compare each entry to the running maximum
        # with one-table-step slack.
        sizes = [transport_block_size(10, 12, mcs_entry(i, "qam64")).tbs_bits
                 for i in range(29)]
        for prev, cur in zip(sizes, sizes[1:]):
            assert cur >= prev * 0.95

    def test_layers_scale(self):
        mcs = mcs_entry(15, "qam64")
        one = transport_block_size(20, 12, mcs, n_layers=1).tbs_bits
        two = transport_block_size(20, 12, mcs, n_layers=2).tbs_bits
        assert two > 1.8 * one

    def test_large_branch_byte_alignment(self):
        # N_info > 3824 path: TBS + 24 must be divisible by 8.
        result = transport_block_size(51, 12, mcs_entry(27, "qam256"),
                                      n_layers=2)
        assert result.n_info > 3824
        assert (result.tbs_bits + 24) % 8 == 0

    def test_appendix_b_sample_exact(self):
        """The paper's Appendix B grant: mcs=27/256QAM, nof_re=432, tbs=3240.

        N_info = 432 * (948/1024) * 8 = 3199.5 <= 3824, quantised with
        n = 5 to 3168... using the printed R=0.926: 432 * 0.926 * 8 = 3200,
        quantised to 3200, and the smallest table TBS >= 3200 is 3240 -
        exactly the value in the sample grant.
        """
        mcs = mcs_entry(27, "qam256")
        result = transport_block_size(3, 12, mcs, n_layers=1,
                                      n_dmrs_per_prb=0, n_oh_per_prb=0)
        assert result.n_re == 432
        assert result.tbs_bits == 3240

    def test_rejects_bad_layers(self):
        with pytest.raises(TbsError):
            transport_block_size(1, 12, mcs_entry(0, "qam64"), n_layers=5)

    @given(st.integers(1, 100), st.integers(2, 14), st.integers(0, 28),
           st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_property_tbs_below_capacity(self, n_prb, n_sym, mcs_idx, layers):
        """TBS never exceeds the raw physical bit capacity."""
        mcs = mcs_entry(mcs_idx, "qam64")
        result = transport_block_size(n_prb, n_sym, mcs, n_layers=layers,
                                      n_dmrs_per_prb=12)
        capacity = result.n_re * mcs.qm * layers
        assert 0 < result.tbs_bits <= capacity

    @given(st.integers(1, 60), st.integers(0, 27))
    @settings(max_examples=40, deadline=None)
    def test_property_large_branch_alignment(self, n_prb, mcs_idx):
        result = transport_block_size(n_prb, 12, mcs_entry(mcs_idx, "qam256"))
        if result.n_info > 3824:
            assert (result.tbs_bits + 24) % 8 == 0
        else:
            assert result.tbs_bits in TBS_TABLE
