"""The physical broadcast channel carrying the MIB (TS 38.212 section 7.1).

The PBCH is the first *coded* channel a sniffer touches: the MIB payload
gets a CRC24C, a polar code rate-matched to 864 bits, cell-specific Gold
scrambling and QPSK — landing on the SSB's 432 data REs.  With this
module the cell-search path runs the same real encode/decode machinery
as the PDCCH, so MIB acquisition fails honestly at low SNR.
"""

from __future__ import annotations

import numpy as np

from repro.phy import polar
from repro.phy.crc import crc_attach, crc_check
from repro.phy.modulation import QPSK, demodulate_soft, modulate
from repro.phy.scrambling import scramble_bits

#: Rate-matched PBCH size (38.212 section 7.1.5).
PBCH_E_BITS = 864

#: QPSK symbols on the SSB's PBCH REs.
PBCH_N_SYMBOLS = PBCH_E_BITS // 2


class PbchError(ValueError):
    """Raised for malformed PBCH payloads."""


def _scrambling_init(cell_id: int) -> int:
    """PBCH scrambling seeds from the physical cell identity."""
    if cell_id < 0:
        raise PbchError(f"negative cell id: {cell_id}")
    return cell_id % (1 << 31)


def encode_pbch(payload_bits: np.ndarray, cell_id: int) -> np.ndarray:
    """MIB payload -> CRC24C -> polar -> scramble -> QPSK symbols."""
    bits = np.asarray(payload_bits, dtype=np.uint8).ravel()
    if bits.size == 0 or bits.size > 64:
        raise PbchError(
            f"PBCH payload must be 1..64 bits, got {bits.size}")
    with_crc = crc_attach(bits, "crc24c")
    code = polar.construct(with_crc.size, PBCH_E_BITS)
    coded = polar.encode(with_crc, code)
    scrambled = scramble_bits(coded, _scrambling_init(cell_id))
    return modulate(scrambled, QPSK)


def decode_pbch(symbols: np.ndarray, payload_len: int, cell_id: int,
                noise_var: float) -> np.ndarray | None:
    """QPSK LLRs -> descramble -> polar decode -> CRC gate.

    Returns the MIB payload bits, or None when the CRC rejects the
    decode (too noisy, or the wrong cell-ID hypothesis).
    """
    if payload_len <= 0 or payload_len > 64:
        raise PbchError(f"invalid payload length: {payload_len}")
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    if syms.size != PBCH_N_SYMBOLS:
        raise PbchError(
            f"PBCH needs {PBCH_N_SYMBOLS} symbols, got {syms.size}")
    llrs = demodulate_soft(syms, QPSK, max(noise_var, 1e-12))
    seq = scramble_bits(np.zeros(PBCH_E_BITS, dtype=np.uint8),
                        _scrambling_init(cell_id)).astype(float)
    llrs = llrs * (1.0 - 2.0 * seq)
    code = polar.construct(payload_len + 24, PBCH_E_BITS)
    block = polar.decode(llrs, code)
    if not crc_check(block, "crc24c"):
        return None
    return block[:payload_len]
