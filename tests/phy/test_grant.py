"""Tests for repro.phy.grant: DCI-to-grant translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.grant import (
    Grant,
    GrantConfig,
    GrantError,
    TDRA_TABLE,
    dci_to_grant,
    time_allocation,
)

CONFIG = GrantConfig(bwp_n_prb=51, mcs_table="qam256", n_layers=2)


def make_dci(**overrides):
    base = dict(format=DciFormat.DL_1_1, rnti=0x4296,
                freq_alloc_riv=riv_encode(0, 3, 51), time_alloc=1, mcs=27,
                ndi=0, rv=0, harq_id=11)
    base.update(overrides)
    return Dci(**base)


class TestTdra:
    def test_table_shape(self):
        assert len(TDRA_TABLE) == 16
        for start, length, mapping in TDRA_TABLE:
            assert 0 <= start < 14
            assert 1 <= length <= 14
            assert start + length <= 14
            assert mapping in ("A", "B")

    def test_out_of_range(self):
        with pytest.raises(GrantError):
            time_allocation(16)
        with pytest.raises(GrantError):
            time_allocation(-1)


class TestGrantConfig:
    def test_validation(self):
        with pytest.raises(GrantError):
            GrantConfig(bwp_n_prb=0)
        with pytest.raises(GrantError):
            GrantConfig(bwp_n_prb=51, n_layers=5)


class TestDciToGrant:
    def test_basic_translation(self):
        grant = dci_to_grant(make_dci(), CONFIG)
        assert isinstance(grant, Grant)
        assert grant.rnti == 0x4296
        assert grant.downlink
        assert (grant.first_prb, grant.n_prb) == (0, 3)
        assert (grant.first_symbol, grant.n_symbols) == (2, 12)
        assert grant.n_layers == 2
        assert grant.tbs_bits > 0

    def test_uplink_direction(self):
        dci = make_dci(format=DciFormat.UL_0_1)
        assert not dci_to_grant(dci, CONFIG).downlink

    def test_reg_count(self):
        grant = dci_to_grant(make_dci(), CONFIG)
        assert grant.n_regs == 3 * 12

    def test_bad_riv_rejected(self):
        # 2047 (the field's max value) decodes to an allocation crossing
        # the BWP edge under both RIV branches.
        dci = make_dci(freq_alloc_riv=2047)
        with pytest.raises(GrantError):
            dci_to_grant(dci, CONFIG)

    def test_describe(self):
        text = dci_to_grant(make_dci(), CONFIG).describe()
        assert "PDSCH" in text
        assert "tbs=" in text

    def test_gnb_and_sniffer_agree(self):
        """Identical DCIs + configs must give identical TBS on both ends."""
        dci = make_dci(mcs=15, freq_alloc_riv=riv_encode(10, 20, 51))
        assert dci_to_grant(dci, CONFIG) == dci_to_grant(dci, CONFIG)

    @given(st.integers(0, 27), st.integers(0, 15), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_any_valid_dci_translates(self, mcs, t_alloc, data):
        n_prb = data.draw(st.integers(1, 51))
        start = data.draw(st.integers(0, 51 - n_prb))
        dci = make_dci(mcs=mcs, time_alloc=t_alloc,
                       freq_alloc_riv=riv_encode(start, n_prb, 51))
        grant = dci_to_grant(dci, CONFIG)
        assert grant.n_prb == n_prb
        assert grant.first_prb == start
        assert grant.tbs_bits > 0
        assert grant.tbs_bytes == grant.tbs_bits // 8
