"""The columnar-telemetry bench: store vs per-record baseline.

Quantifies what the columnar :class:`~repro.core.telemetry_store.
TelemetryStore` buys over the seed's object-per-record ``TelemetryLog``
on one synthetic 100k-record session:

* **ingest** — records/second appending row by row (the sink stage's
  hot path);
* **query latency** — the four query families every analysis pass
  leans on (windowed ``bits_between``, ``bitrate_series``,
  ``mcs_distribution``, ``retransmission_ratio``), object loops vs
  vectorized kernels, with the results asserted equal before any
  timing is trusted;
* **memory** — live bytes per record after ingest (tracemalloc), the
  dataclass-plus-list representation vs packed structured-array chunks.

The baseline :class:`_ObjectTelemetryLog` replicates the seed's
pre-columnar implementation: a list of
:class:`~repro.core.telemetry.TelemetryRecord` objects, a per-RNTI
index of references, and pure-Python accumulation loops.

The result is written to ``BENCH_telemetry.json`` (schema
``bench-telemetry/v1``); CI runs a tiny config and validates the
schema with :func:`validate_bench`.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

from repro.core.telemetry import TelemetryRecord
from repro.core.telemetry_store import TelemetryStore, window_count
from repro.experiments.common import ExperimentError

SCHEMA = "bench-telemetry/v1"

N_RECORDS = 100_000
QUICK_N_RECORDS = 5_000

#: Distinct UEs in the synthetic session and the slot cadence
#: (30 kHz numerology) the timestamps follow.
_N_UES = 24
_FIRST_RNTI = 0x4601
_SLOT_DURATION_S = 5e-4

#: Query-family parameters: throughput series window and the window
#: count the ``bits_between`` family sweeps.
_SERIES_WINDOW_S = 0.2
_BITS_WINDOWS = 32

#: Timed repetitions per query family (best-of, to shed scheduler
#: noise) — ingest and memory are single-shot by nature.
QUERY_REPEATS = 3


class _ObjectTelemetryLog:
    """The seed's per-record log: objects, reference index, loops."""

    def __init__(self) -> None:
        self._records: list[TelemetryRecord] = []
        self._by_rnti: dict[int, list[TelemetryRecord]] = {}

    def add(self, record: TelemetryRecord) -> None:
        self._records.append(record)
        self._by_rnti.setdefault(record.rnti, []).append(record)

    def __len__(self) -> int:
        return len(self._records)

    def bits_between(self, rnti: int, start_s: float, end_s: float,
                     downlink: bool = True,
                     count_retransmissions: bool = False) -> int:
        total = 0
        for record in self._by_rnti.get(rnti, []):
            if record.downlink != downlink:
                continue
            if not (start_s <= record.time_s < end_s):
                continue
            if record.is_retransmission and not count_retransmissions:
                continue
            total += record.tbs_bits
        return total

    def bitrate_series(self, rnti: int, window_s: float,
                       end_time_s: float, downlink: bool = True) \
            -> list[tuple[float, float]]:
        # Integer-window edges (the repaired semantics — the seed's
        # ``t += window_s`` drift fix is orthogonal to the columnar
        # perf question), but per-window Python accumulation loops.
        series = []
        n_windows = window_count(end_time_s, window_s)
        for k in range(n_windows):
            bits = self.bits_between(rnti, k * window_s,
                                     (k + 1) * window_s, downlink)
            series.append(((k + 1) * window_s, bits / window_s))
        return series

    def mcs_distribution(self, rnti: int | None = None,
                         downlink: bool = True) -> list[int]:
        return [r.mcs_index for r in self._records
                if r.downlink == downlink
                and not r.is_retransmission
                and (rnti is None or r.rnti == rnti)]

    def retransmission_ratio(self, rnti: int | None = None,
                             downlink: bool = True) -> float:
        relevant = [r for r in self._records
                    if r.downlink == downlink
                    and (rnti is None or r.rnti == rnti)]
        if not relevant:
            return 0.0
        return sum(r.is_retransmission for r in relevant) / len(relevant)


def synth_rows(n_records: int, seed: int = 0) -> list[tuple]:
    """Deterministic synthetic session rows (RECORD_FIELDS order)."""
    rng = np.random.default_rng(seed)
    slots = np.arange(n_records, dtype=np.int64)
    times = slots * _SLOT_DURATION_S
    rntis = _FIRST_RNTI + rng.integers(0, _N_UES, n_records)
    downlink = rng.random(n_records) < 0.8
    n_prb = rng.integers(1, 52, n_records)
    n_symbols = rng.choice([4, 7, 12, 14], n_records)
    mcs = rng.integers(0, 28, n_records)
    tbs = (n_prb * n_symbols * (mcs + 1) * 12).astype(np.int64)
    harq = rng.integers(0, 16, n_records)
    ndi = rng.integers(0, 2, n_records)
    rv = rng.integers(0, 4, n_records)
    retx = rng.random(n_records) < 0.07
    level = rng.choice([1, 2, 4, 8], n_records)
    return list(zip(
        slots.tolist(), times.tolist(), rntis.tolist(),
        downlink.tolist(), tbs.tolist(), n_prb.tolist(),
        n_symbols.tolist(), mcs.tolist(), harq.tolist(), ndi.tolist(),
        rv.tolist(), retx.tolist(), level.tolist()))


def _record_of(row: tuple) -> TelemetryRecord:
    return TelemetryRecord(
        slot_index=row[0], time_s=row[1], rnti=row[2], downlink=row[3],
        tbs_bits=row[4], n_prb=row[5], n_symbols=row[6],
        mcs_index=row[7], harq_id=row[8], ndi=row[9], rv=row[10],
        is_retransmission=row[11], aggregation_level=row[12])


def _fill_object(rows: list[tuple]) -> _ObjectTelemetryLog:
    log = _ObjectTelemetryLog()
    for row in rows:
        log.add(_record_of(row))
    return log


def _fill_store(rows: list[tuple]) -> TelemetryStore:
    store = TelemetryStore()
    for row in rows:
        store.append(
            slot_index=row[0], time_s=row[1], rnti=row[2],
            downlink=row[3], tbs_bits=row[4], n_prb=row[5],
            n_symbols=row[6], mcs_index=row[7], harq_id=row[8],
            ndi=row[9], rv=row[10], is_retransmission=row[11],
            aggregation_level=row[12])
    return store


@dataclass(frozen=True)
class QueryResult:
    """One query family's timings (microseconds, best-of-repeats)."""

    name: str
    object_us: float
    store_us: float

    @property
    def speedup(self) -> float:
        return self.object_us / max(self.store_us, 1e-9)


def _time_us(fn) -> float:
    best = float("inf")
    for _ in range(QUERY_REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return 1e6 * best


def _measure_queries(obj: _ObjectTelemetryLog, store: TelemetryStore,
                     end_s: float) -> list[QueryResult]:
    """Time the four families, asserting object/store agreement."""
    rntis = store.rntis()
    probe = rntis[: max(1, len(rntis) // 4)]
    edges = np.linspace(0.0, end_s, _BITS_WINDOWS + 1)
    windows = list(zip(edges[:-1].tolist(), edges[1:].tolist()))

    def bits_object() -> list[int]:
        return [obj.bits_between(r, lo, hi)
                for r in probe for lo, hi in windows]

    def bits_store() -> list[int]:
        return [store.bits_between(r, lo, hi)
                for r in probe for lo, hi in windows]

    def series_object() -> list:
        return [obj.bitrate_series(r, _SERIES_WINDOW_S, end_s)
                for r in probe]

    def series_store() -> list:
        return [store.bitrate_series(r, _SERIES_WINDOW_S, end_s)
                for r in probe]

    checks: list[tuple[str, object, object]] = [
        ("bits_between", bits_object(), bits_store()),
        ("mcs_distribution", obj.mcs_distribution(),
         store.mcs_distribution()),
        ("retransmission_ratio", obj.retransmission_ratio(),
         store.retransmission_ratio()),
    ]
    for name, want, got in checks:
        if want != got:
            raise ExperimentError(
                f"{name}: store disagrees with the object baseline")
    for want_series, got_series in zip(series_object(), series_store()):
        if len(want_series) != len(got_series):
            raise ExperimentError("bitrate_series: length mismatch")
        for (_, want_rate), (_, got_rate) in zip(want_series,
                                                 got_series):
            if abs(want_rate - got_rate) > 1e-6:
                raise ExperimentError(
                    "bitrate_series: store disagrees with the object "
                    "baseline")

    return [
        QueryResult("bits_between", _time_us(bits_object),
                    _time_us(bits_store)),
        QueryResult("bitrate_series", _time_us(series_object),
                    _time_us(series_store)),
        QueryResult("mcs_distribution",
                    _time_us(obj.mcs_distribution),
                    _time_us(store.mcs_distribution)),
        QueryResult("retransmission_ratio",
                    _time_us(obj.retransmission_ratio),
                    _time_us(store.retransmission_ratio)),
    ]


def _live_bytes(fill, rows: list[tuple]) -> int:
    """Live allocation of one representation, via tracemalloc."""
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    holder = fill(rows)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(holder) == len(rows)
    return max(after - before, 1)


def run(n_records: int = N_RECORDS, seed: int = 0) -> dict:
    """The full measurement; returns the document body (no I/O)."""
    if n_records < 100:
        raise ExperimentError(
            f"bench needs >= 100 records: {n_records}")
    rows = synth_rows(n_records, seed=seed)
    end_s = rows[-1][1] + _SLOT_DURATION_S

    start = time.perf_counter()
    obj = _fill_object(rows)
    object_ingest_s = time.perf_counter() - start
    start = time.perf_counter()
    store = _fill_store(rows)
    store_ingest_s = time.perf_counter() - start

    queries = _measure_queries(obj, store, end_s)
    object_bytes = _live_bytes(_fill_object, rows)
    store_bytes = _live_bytes(_fill_store, rows)

    ratios = [q.speedup for q in queries]
    overall_speedup = float(np.exp(np.mean(np.log(ratios))))
    memory_reduction = object_bytes / store_bytes
    return {
        "schema": SCHEMA,
        "n_records": n_records,
        "ingest": {
            "object_records_per_s":
                round(n_records / max(object_ingest_s, 1e-9)),
            "store_records_per_s":
                round(n_records / max(store_ingest_s, 1e-9)),
        },
        "memory": {
            "object_bytes_per_record":
                round(object_bytes / n_records, 1),
            "store_bytes_per_record":
                round(store_bytes / n_records, 1),
            "reduction": round(memory_reduction, 2),
        },
        "queries": [
            {
                "name": q.name,
                "object_us": round(q.object_us, 1),
                "store_us": round(q.store_us, 1),
                "speedup": round(q.speedup, 2),
            }
            for q in queries
        ],
        "overall_query_speedup": round(overall_speedup, 2),
    }


def validate_bench(doc: dict) -> None:
    """Raise :class:`ExperimentError` unless ``doc`` is a well-formed
    ``bench-telemetry/v1`` document (the CI bench-smoke gate)."""
    if doc.get("schema") != SCHEMA:
        raise ExperimentError(f"bad schema: {doc.get('schema')!r}")
    for key in ("n_records", "ingest", "memory", "queries",
                "overall_query_speedup"):
        if key not in doc:
            raise ExperimentError(f"missing key: {key!r}")
    for key in ("object_records_per_s", "store_records_per_s"):
        value = doc["ingest"].get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ExperimentError(f"bad ingest {key}: {value!r}")
    for key in ("object_bytes_per_record", "store_bytes_per_record",
                "reduction"):
        value = doc["memory"].get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ExperimentError(f"bad memory {key}: {value!r}")
    if not isinstance(doc["queries"], list) or not doc["queries"]:
        raise ExperimentError("queries must be a non-empty list")
    for query in doc["queries"]:
        for key in ("object_us", "store_us", "speedup"):
            value = query.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ExperimentError(
                    f"{query.get('name')}: bad {key}: {value!r}")
    overall = doc["overall_query_speedup"]
    if not isinstance(overall, (int, float)) or overall <= 0:
        raise ExperimentError(f"bad overall speedup: {overall!r}")


def render(doc: dict) -> str:
    """Human-readable summary of a bench document."""
    lines = [f"BENCH telemetry ({doc['n_records']} records)"]
    ingest = doc["ingest"]
    lines.append(
        f"ingest: object {ingest['object_records_per_s']:,.0f} rec/s, "
        f"store {ingest['store_records_per_s']:,.0f} rec/s")
    memory = doc["memory"]
    lines.append(
        f"memory: object {memory['object_bytes_per_record']:.0f} "
        f"B/rec, store {memory['store_bytes_per_record']:.0f} B/rec "
        f"({memory['reduction']:.1f}x smaller)")
    lines.append("query".ljust(24) + f"{'object us':>12}"
                 f"{'store us':>12}{'speedup':>10}")
    for query in doc["queries"]:
        lines.append(query["name"].ljust(24)
                     + f"{query['object_us']:12.0f}"
                     + f"{query['store_us']:12.0f}"
                     + f"{query['speedup']:9.1f}x")
    lines.append(
        f"overall query speedup: {doc['overall_query_speedup']:.1f}x")
    return "\n".join(lines)


def main(out_path: str = "BENCH_telemetry.json",
         quick: bool = False, n_records: int | None = None) -> dict:
    """Run the bench and write the JSON document; returns it."""
    count = n_records if n_records is not None \
        else (QUICK_N_RECORDS if quick else N_RECORDS)
    doc = run(n_records=count)
    validate_bench(doc)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return doc
