"""The zero-cost contract of the disabled bus.

A disabled session holds the shared :data:`OBS_NOOP` singleton and
guards every emission site with ``if obs:``, so the hot path pays one
pointer truthiness check and never packs call arguments.  The
allocation test below is the enforced form of that claim.
"""

import gc
import sys

from repro.core.runtime import SlotRuntime, Stage
from repro.obs import OBS_NOOP, ObsContext


def _hot_loop(obs, n):
    emitted = 0
    for i in range(n):
        if obs:
            obs.timing("stage.span", 0.001, stage="dci", slot=i)
            obs.emit("dci.miss", rnti=i, slot=i)
            emitted += 2
    return emitted


class TestNoOpOverhead:
    def test_disabled_bus_is_one_shared_singleton(self):
        assert ObsContext.create() is OBS_NOOP
        assert OBS_NOOP.bind(cell="x") is OBS_NOOP

    def test_runtime_defaults_to_the_singleton(self):
        runtime = SlotRuntime(stages=[Stage("s", lambda ctx: None)])
        assert runtime._obs is OBS_NOOP

    def test_guarded_hot_path_allocates_nothing(self):
        # Warm up so bytecode specialization and interned ints settle.
        assert _hot_loop(OBS_NOOP, 1000) == 0
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            _hot_loop(OBS_NOOP, 50_000)
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        # Zero steady-state allocations; a few blocks of slack absorb
        # interpreter-internal bookkeeping.
        assert after - before <= 4

    def test_enabled_path_does_allocate(self):
        # The control: the same loop with a real context retaining its
        # events is not free, which is exactly why the disabled bus
        # must be.
        from repro.obs import RingReporter

        ring = RingReporter(capacity=4096)
        obs = ObsContext.create([ring], run_id="r1")
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            emitted = _hot_loop(obs, 1000)
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        assert emitted == 2000
        assert len(ring) == 2000
        assert after - before > 4
