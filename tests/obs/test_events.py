"""Registry-aware validation: KNOWN_EVENTS as an enforced contract."""

import pytest

from repro.obs import KNOWN_EVENTS, validate_event, validate_events
from repro.obs.context import ObsContext
from repro.obs.reporters import RingReporter


def event(name="sync.acquired", kind="event", **fields):
    base = {"v": 1, "seq": 0, "run_id": "r1", "kind": kind,
            "name": name, "slot": 3}
    base.update(fields)
    return base


class TestRegistryValidation:
    def test_known_event_is_clean(self):
        assert validate_event(event(), registry=KNOWN_EVENTS) == []

    def test_unknown_name_is_rejected(self):
        problems = validate_event(event(name="decode.wat"),
                                  registry=KNOWN_EVENTS)
        assert any("unknown event name" in p for p in problems)

    def test_without_registry_any_name_passes(self):
        assert validate_event(event(name="decode.wat")) == []

    def test_kind_mismatch_is_rejected(self):
        problems = validate_event(event(name="dci.decoded",
                                        kind="event", value=1),
                                  registry=KNOWN_EVENTS)
        assert any("must have kind 'counter'" in p for p in problems)

    def test_missing_required_field_is_rejected(self):
        bad = event(name="dci.miss")     # lacks rnti/stage/reason
        problems = validate_event(bad, registry=KNOWN_EVENTS)
        missing = {p for p in problems if "missing required" in p}
        assert len(missing) == 3

    def test_typed_spec_extra_is_checked(self):
        bad = event(name="session.start", fidelity="phy",
                    executor="inline", seed="not-an-int")
        problems = validate_event(bad, registry=KNOWN_EVENTS)
        assert any("field 'seed'" in p for p in problems)

    def test_registry_skipped_for_broken_envelope(self):
        """Envelope problems short-circuit: no confusing double report
        for an event that is malformed at a lower level."""
        problems = validate_event({"name": "decode.wat"},
                                  registry=KNOWN_EVENTS)
        assert all("unknown event name" not in p for p in problems)

    def test_stream_validation_forwards_registry(self):
        stream = [event(seq=0), event(name="decode.wat", seq=1)]
        problems = validate_events(stream, registry=KNOWN_EVENTS)
        assert [i for i, _ in problems] == [1]


class TestBusConformsToRegistry:
    def test_emitted_stream_validates_against_registry(self):
        """Events built through the real bus helpers satisfy their own
        declarations — the registry matches what the code emits."""
        ring = RingReporter(capacity=64)
        obs = ObsContext.create([ring], run_id="r1")
        obs.emit("sync.acquired", slot=1)
        obs.count("dci.decoded", slot=1)
        obs.timing("stage.span", 0.001, stage="decode", outcome="ok")
        obs.emit("msg4.tracked", slot=1, rnti=17, stage="msg4")
        obs.close()
        assert validate_events(ring.events,
                               registry=KNOWN_EVENTS) == []

    def test_every_spec_name_matches_its_key(self):
        for name, spec in KNOWN_EVENTS.items():
            assert spec.name == name
            assert spec.kind in ("event", "span", "counter")

    def test_required_fields_are_well_known_or_typed(self):
        """Every required field is either a well-known optional field
        or declared with types in the spec — nothing unspecified."""
        from repro.obs.events import OPTIONAL_FIELDS
        for spec in KNOWN_EVENTS.values():
            for name in spec.required:
                assert name in OPTIONAL_FIELDS or name in spec.fields


@pytest.mark.parametrize("name", sorted(KNOWN_EVENTS))
def test_minimal_conforming_event_exists(name):
    """Each declaration is satisfiable: a minimal event carrying the
    spec's own required fields (typed per OPTIONAL_FIELDS) passes."""
    from repro.obs.events import OPTIONAL_FIELDS
    spec = KNOWN_EVENTS[name]
    fields = {}
    for required in spec.required:
        allowed = OPTIONAL_FIELDS.get(required,
                                      spec.fields.get(required, (str,)))
        fields[required] = 1 if int in allowed else "x"
    base = {"v": 1, "seq": 0, "run_id": "r1", "kind": spec.kind,
            "name": name}
    base.update(fields)
    if spec.kind == "counter":
        base["value"] = 1
    if spec.kind == "span":
        base["duration_us"] = 10.0
    assert validate_event(base, registry=KNOWN_EVENTS) == []
