"""Fig 14: spare-capacity estimation for two UEs (paper section 5.4.1).

Two UEs on the Mosolab cell; NR-Scope tracks each UE's bit rate (against
tcpdump) and splits the unused REs evenly to price a fair-share spare
bit rate per UE — different per UE because their MCSs differ even when
their spare PRBs are equal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import throughput_error_series
from repro.analysis.report import Table
from repro.experiments.common import FigureResult
from repro.gnb.cell_config import MOSOLAB_PROFILE

#: Rate series window; the paper plots ~second-scale curves.
WINDOW_S = 0.5


@dataclass
class SpareCapacityTraces:
    """Everything Fig 14 plots, per UE."""

    rnti: int
    estimated_rate: list[tuple[float, float]]     # NR-Scope
    tcpdump_rate: list[tuple[float, float]]       # ground truth
    spare_rate: list[tuple[float, float]]         # fair-share spare
    prb_rows: list[tuple[int, int, int]]          # slot, used, spare PRBs

    @property
    def mean_spare_bps(self) -> float:
        if not self.spare_rate:
            return 0.0
        return sum(v for _, v in self.spare_rate) / len(self.spare_rate)

    def tracking_errors_kbps(self) -> list[float]:
        """|NR-Scope - tcpdump| per window (the 'tracks just under
        ground truth' claim)."""
        return throughput_error_series(self.estimated_rate,
                                       self.tcpdump_rate)


def run(duration_s: float = 8.0, seed: int = 15) \
        -> list[SpareCapacityTraces]:
    """Two video UEs on the Mosolab cell, like the paper's demo.

    The UEs sit at different link qualities so the gNB runs them at
    different MCSs — the condition under which Fig 14a's equal spare
    PRBs price into *different* spare bit rates.
    """
    from repro.core.scope import NRScope
    from repro.simulation import Simulation

    sim = Simulation.build(MOSOLAB_PROFILE, n_ues=0, seed=seed)
    near = sim.make_ue(0, traffic="video", channel="pedestrian",
                       mean_snr_db=26.0, rate_bps=6e6)
    far = sim.make_ue(1, traffic="video", channel="pedestrian",
                      mean_snr_db=12.0, rate_bps=6e6)
    sim.gnb.add_ue(near)
    sim.gnb.add_ue(far)
    scope = NRScope.attach(sim, snr_db=18.0)
    sim.run(seconds=duration_s)

    from repro.experiments.common import SessionResult
    result = SessionResult(sim=sim, scope=scope, duration_s=duration_s,
                           label="fig14")
    traces = []
    slot_s = MOSOLAB_PROFILE.slot_duration_s
    for rnti in scope.tracked_rntis:
        ue = result.sim.gnb.ue_by_rnti(rnti)
        if ue is None:
            continue
        estimated = scope.telemetry.bitrate_series(rnti, WINDOW_S,
                                                   duration_s)
        truth = ue.capture.bitrate_series(WINDOW_S, duration_s)
        spare_per_tti = scope.spare.spare_rate_series(rnti, slot_s)
        # Average the per-TTI spare rate into the plot windows.
        spare = []
        t = WINDOW_S
        while t <= duration_s + 1e-9:
            window = [v for ts, v in spare_per_tti
                      if t - WINDOW_S <= ts < t]
            spare.append((t, sum(window) / len(window) if window else 0.0))
            t += WINDOW_S
        traces.append(SpareCapacityTraces(
            rnti=rnti, estimated_rate=estimated, tcpdump_rate=truth,
            spare_rate=spare,
            prb_rows=scope.spare.prb_series(rnti)[:60]))
    return traces


def to_result(traces: list[SpareCapacityTraces]) -> FigureResult:
    result = FigureResult(figure="fig14")
    for trace in traces:
        tag = f"ue-0x{trace.rnti:04x}"
        result.add_series(f"{tag}-nrscope", trace.estimated_rate)
        result.add_series(f"{tag}-tcpdump", trace.tcpdump_rate)
        result.add_series(f"{tag}-spare", trace.spare_rate)
    errors = [e for t in traces for e in t.tracking_errors_kbps()]
    if errors:
        result.summary["median_tracking_error_kbps"] = \
            sorted(errors)[len(errors) // 2]
    spares = [t.mean_spare_bps for t in traces]
    if len(spares) == 2 and all(s > 0 for s in spares):
        # Fig 14a: equal spare PRBs, different spare bit rates.
        result.summary["spare_rate_ratio"] = max(spares) / min(spares)
    return result


def table(traces: list[SpareCapacityTraces]) -> Table:
    rows = []
    for trace in traces:
        est = sum(v for _, v in trace.estimated_rate) \
            / max(len(trace.estimated_rate), 1)
        truth = sum(v for _, v in trace.tcpdump_rate) \
            / max(len(trace.tcpdump_rate), 1)
        rows.append((f"0x{trace.rnti:04x}", est / 1e6, truth / 1e6,
                     trace.mean_spare_bps / 1e6))
    return Table(
        title="Fig 14 - spare capacity estimation (2 UEs, Mosolab)",
        columns=("UE", "NR-Scope Mbps", "tcpdump Mbps", "spare Mbps"),
        rows=tuple(rows))
