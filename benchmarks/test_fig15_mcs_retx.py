"""Fig 15: MCS index and retransmission ratio per channel condition.

Paper result: better channels (normal, AWGN) draw higher MCS indices
and lower retransmission ratios than worse ones (pedestrian, vehicle,
urban); NR-Scope matches ground truth with R^2 = 0.9970 (MCS) and
0.9862 (retransmissions).
"""

from repro.analysis.report import print_tables
from repro.experiments import fig15_mcs_retx as fig15


def test_fig15_mcs_and_retransmissions(once):
    results = once(fig15.run, n_ues=16, duration_s=2.5)
    figure = fig15.to_result(results)
    print()
    print_tables([fig15.table(results)])
    print("summary:", {k: round(v, 4) for k, v in figure.summary.items()})

    # Shape: good channels run higher MCS with fewer retransmissions.
    assert figure.summary["good_channel_mean_mcs"] > \
        figure.summary["bad_channel_mean_mcs"]
    assert figure.summary["good_channel_retx"] < \
        figure.summary["bad_channel_retx"]
    # Telemetry fidelity: NR-Scope's view matches the gNB's closely
    # (paper: 0.9970 / 0.9862).
    assert figure.summary["mcs_r2"] > 0.95
    assert figure.summary["retx_r2"] > 0.90
    # Urban is the worst of the five conditions for retransmissions.
    by_channel = {r.channel: r for r in results}
    assert by_channel["urban"].est_mean_retx >= \
        by_channel["awgn"].est_mean_retx
