"""Fig 11: number of active UEs per second and per minute.

Paper result: the gNB schedules fewer than ~60 UEs in most one-minute
periods; per-second counts are much lower.
"""

from repro.analysis.report import print_tables, series_table
from repro.experiments import fig11_ue_counts as fig11


def test_fig11_active_ue_counts(benchmark):
    series = benchmark(fig11.run)
    result = fig11.to_result(series)
    print()
    print_tables([
        fig11.table(series),
        series_table("Fig 11 CDF (cell 1, 1 minute)",
                     next(s for s in series
                          if s.cell == 1 and s.bin_s == 60.0).cdf(),
                     "UEs", "CDF", max_rows=10),
    ])
    print("summary:", {k: round(v, 1) for k, v in result.summary.items()})

    # Shape: minute-scale counts sit below ~60-80 UEs; second-scale
    # counts are far smaller (sessions are short).
    assert result.summary["minute_p50"] < 80
    assert result.summary["second_p50"] < result.summary["minute_p50"]
    for line in series:
        sibling = next(s for s in series
                       if s.cell == line.cell and s.bin_s != line.bin_s)
        if line.bin_s == 60.0:
            assert line.median > sibling.median
