"""Tests for waveform-level cell acquisition (sync + PBCH)."""

import numpy as np
import pytest

from repro.core.acquisition import AcquisitionError, acquire_cell, \
    render_cell_broadcast
from repro.gnb.cell_config import SRSRAN_PROFILE
from repro.rrc.messages import Mib


def make_mib(sfn=100):
    return SRSRAN_PROFILE.build_mib(sfn)


def payload_len():
    return make_mib().encode().size


class TestRender:
    def test_burst_structure(self):
        samples = render_cell_broadcast(500, make_mib(), pad_before=50,
                                        pad_after=20)
        # zeros | PSS(127) | SSS(127) | PBCH(432) | zeros
        assert samples.size == 50 + 127 + 127 + 432 + 20
        assert np.allclose(samples[:50], 0)


class TestAcquire:
    def test_clean_acquisition(self):
        mib = make_mib(sfn=777)
        samples = render_cell_broadcast(SRSRAN_PROFILE.cell_id, mib,
                                        pad_before=200, pad_after=100)
        result = acquire_cell(samples, payload_len(), noise_var=1e-4)
        assert result is not None
        assert result.cell_id == SRSRAN_PROFILE.cell_id
        assert result.mib == mib
        assert result.sync.sample_offset == 200

    def test_acquisition_under_noise(self, rng):
        mib = make_mib()
        hits = 0
        for _ in range(8):
            samples = render_cell_broadcast(42, mib, pad_before=300,
                                            pad_after=100)
            noise_var = 10 ** (2 / 10)  # -2 dB
            noisy = samples + rng.normal(0, np.sqrt(noise_var / 2),
                                         samples.size) \
                + 1j * rng.normal(0, np.sqrt(noise_var / 2), samples.size)
            result = acquire_cell(noisy, payload_len(), noise_var)
            hits += result is not None and result.mib == mib
        assert hits >= 6

    def test_pure_noise_yields_nothing(self, rng):
        for _ in range(5):
            noise = rng.normal(0, 1, 1200) + 1j * rng.normal(0, 1, 1200)
            assert acquire_cell(noise, payload_len(), 1.0) is None

    def test_truncated_pbch_rejected(self):
        mib = make_mib()
        samples = render_cell_broadcast(7, mib, pad_before=0)
        # Cut off half the PBCH.
        assert acquire_cell(samples[:-300], payload_len(), 1e-4) is None

    def test_wrong_payload_length_fails_cleanly(self):
        samples = render_cell_broadcast(7, make_mib())
        # A wrong length hypothesis must fail the CRC, not crash.
        assert acquire_cell(samples, payload_len() + 4, 1e-4) is None

    def test_bad_args(self):
        with pytest.raises(AcquisitionError):
            acquire_cell(np.zeros(1000, dtype=complex), 0, 0.1)

    def test_waveform_bootstrap_session(self):
        """Full IQ session acquiring the cell from the SSB waveform:
        PSS/SSS correlation + PBCH polar decode instead of the message
        layer, then normal telemetry."""
        from repro import NRScope, Simulation, SRSRAN_PROFILE
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=1, seed=96,
                               fidelity="iq")
        scope = NRScope.attach(sim, snr_db=10.0,
                               waveform_bootstrap=True)
        sim.run(seconds=0.2)
        assert scope.acquisitions >= 1
        assert scope.searcher.synchronized
        assert scope.tracked_rntis
        assert scope.counters.dcis_decoded > 0

    def test_waveform_bootstrap_fails_when_deaf(self):
        from repro import NRScope, Simulation, SRSRAN_PROFILE
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=1, seed=96,
                               fidelity="iq")
        scope = NRScope.attach(sim, snr_db=-12.0,
                               waveform_bootstrap=True)
        sim.run(seconds=0.1)
        assert scope.acquisitions == 0
        assert not scope.searcher.synchronized

    def test_every_profile_cell_id_acquirable(self):
        from repro.gnb.cell_config import ALL_PROFILES
        for profile in ALL_PROFILES.values():
            mib = profile.build_mib(0)
            samples = render_cell_broadcast(profile.cell_id, mib,
                                            pad_before=64)
            result = acquire_cell(samples, mib.encode().size, 1e-4)
            assert result is not None
            assert result.cell_id == profile.cell_id
