"""Tests for repro.phy.dci: field layout, RIV coding, pack/unpack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.dci import (
    Dci,
    DciError,
    DciFormat,
    DciSizeConfig,
    dci_payload_size,
    field_layout,
    pack,
    riv_decode,
    riv_encode,
    unpack,
)

CFG = DciSizeConfig(n_prb_bwp=51)


def make_dci(**overrides):
    base = dict(format=DciFormat.DL_1_1, rnti=0x4296,
                freq_alloc_riv=riv_encode(0, 3, 51), time_alloc=2, mcs=27,
                ndi=0, rv=0, harq_id=11, dai=2, tpc=1,
                harq_feedback_timing=2, antenna_ports=7)
    base.update(overrides)
    return Dci(**base)


class TestRiv:
    def test_appendix_b_value(self):
        # f_alloc 0:2 in the sample grant = start 0, 3 PRBs.
        riv = riv_encode(0, 3, 51)
        assert riv_decode(riv, 51) == (0, 3)

    def test_full_band(self):
        riv = riv_encode(0, 51, 51)
        assert riv_decode(riv, 51) == (0, 51)

    def test_single_prb_each_position(self):
        for start in range(51):
            assert riv_decode(riv_encode(start, 1, 51), 51) == (start, 1)

    def test_rejects_out_of_bwp(self):
        with pytest.raises(DciError):
            riv_encode(50, 2, 51)
        with pytest.raises(DciError):
            riv_encode(-1, 1, 51)
        with pytest.raises(DciError):
            riv_encode(0, 0, 51)

    @given(st.integers(1, 270), st.data())
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, bwp, data):
        n = data.draw(st.integers(1, bwp))
        start = data.draw(st.integers(0, bwp - n))
        assert riv_decode(riv_encode(start, n, bwp), bwp) == (start, n)

    def test_riv_fits_field(self):
        cfg = DciSizeConfig(n_prb_bwp=51)
        max_riv = max(riv_encode(s, n, 51)
                      for n in range(1, 52) for s in range(0, 52 - n))
        assert max_riv < (1 << cfg.freq_alloc_bits)


class TestLayout:
    def test_sizes_in_paper_range(self):
        # Paper section 3.2.1: DCIs are 30-80 bits.
        for n_prb in (24, 51, 79, 106, 273):
            cfg = DciSizeConfig(n_prb_bwp=n_prb)
            for fmt in DciFormat:
                size = dci_payload_size(fmt, cfg)
                assert 30 <= size <= 80, (fmt, n_prb, size)

    def test_dl_larger_than_ul(self):
        assert dci_payload_size(DciFormat.DL_1_1, CFG) > \
            dci_payload_size(DciFormat.UL_0_1, CFG)

    def test_layout_starts_with_identifier(self):
        for fmt in DciFormat:
            layout = field_layout(fmt, CFG)
            assert layout[0] == ("_identifier", 1)

    def test_bwp_indicator_bits_included(self):
        with_bwp = DciSizeConfig(n_prb_bwp=51, bwp_indicator_bits=2)
        assert dci_payload_size(DciFormat.DL_1_1, with_bwp) == \
            dci_payload_size(DciFormat.DL_1_1, CFG) + 2

    def test_config_validation(self):
        with pytest.raises(DciError):
            DciSizeConfig(n_prb_bwp=0)
        with pytest.raises(DciError):
            DciSizeConfig(n_prb_bwp=51, bwp_indicator_bits=3)


class TestPackUnpack:
    def test_roundtrip_dl(self):
        dci = make_dci()
        bits = pack(dci, CFG)
        assert bits.size == dci_payload_size(DciFormat.DL_1_1, CFG)
        recovered = unpack(bits, DciFormat.DL_1_1, CFG, rnti=0x4296)
        assert recovered == dci

    def test_roundtrip_ul(self):
        dci = Dci(format=DciFormat.UL_0_1, rnti=0x17, freq_alloc_riv=100,
                  time_alloc=1, mcs=9, ndi=1, rv=0, harq_id=3, dai=1,
                  tpc=2, freq_hopping=0)
        bits = pack(dci, CFG)
        recovered = unpack(bits, DciFormat.UL_0_1, CFG, rnti=0x17)
        assert recovered.mcs == 9
        assert recovered.harq_id == 3
        assert recovered.format is DciFormat.UL_0_1

    def test_field_overflow_rejected(self):
        dci = make_dci(mcs=32)
        with pytest.raises(DciError):
            pack(dci, CFG)

    def test_unpack_wrong_size(self):
        with pytest.raises(DciError):
            unpack(np.zeros(10, dtype=np.uint8), DciFormat.DL_1_1, CFG, 1)

    def test_unpack_wrong_identifier(self):
        bits = pack(make_dci(), CFG)
        with pytest.raises(DciError):
            unpack(bits, DciFormat.UL_0_1,
                   DciSizeConfig(n_prb_bwp=_ul_matching_bwp()), 1)

    def test_describe_mentions_key_fields(self):
        text = make_dci().describe()
        assert "0x4296" in text
        assert "mcs=27" in text
        assert "harq_id=11" in text

    @given(st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_random_fields(self, seed):
        local = np.random.default_rng(seed)
        dci = make_dci(
            freq_alloc_riv=int(local.integers(0, 51 * 26)),
            time_alloc=int(local.integers(0, 16)),
            mcs=int(local.integers(0, 32)) % 32,
            ndi=int(local.integers(0, 2)),
            rv=int(local.integers(0, 4)),
            harq_id=int(local.integers(0, 16)),
            dai=int(local.integers(0, 4)),
        )
        bits = pack(dci, CFG)
        assert unpack(bits, DciFormat.DL_1_1, CFG, dci.rnti) == dci


def _ul_matching_bwp() -> int:
    """Find a BWP size where UL 0_1 matches DL 1_1 payload length for CFG.

    Needed to exercise the identifier-bit check: the sizes must agree for
    unpack to reach the identifier comparison.
    """
    target = dci_payload_size(DciFormat.DL_1_1, CFG)
    for n in range(1, 2000):
        if dci_payload_size(DciFormat.UL_0_1,
                            DciSizeConfig(n_prb_bwp=n)) == target:
            return n
    pytest.skip("no matching BWP size found")
