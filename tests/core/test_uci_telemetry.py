"""Tests for UCI sniffing (paper section 7 future work) and OLLA."""

import pytest

from repro import NRScope, Simulation, SRSRAN_PROFILE
from repro.core.decode_model import uci_bler, uci_decode_succeeds
from repro.core.uci_telemetry import UciObservation, UciTelemetry
from repro.gnb.gnb import GNodeB
from repro.radio.medium import lab_medium


class TestUciTelemetryStore:
    def obs(self, rnti=0x4601, slot=8, cqi=10, sr=False, acks=()):
        return UciObservation(slot_index=slot, time_s=slot * 5e-4,
                              rnti=rnti, cqi=cqi,
                              scheduling_request=sr, harq_ack=acks)

    def test_series_and_latest(self):
        store = UciTelemetry()
        store.add(self.obs(slot=8, cqi=10))
        store.add(self.obs(slot=16, cqi=12))
        assert store.latest_cqi(0x4601) == 12
        assert [c for _, c in store.cqi_series(0x4601)] == [10, 12]
        assert store.rntis() == [0x4601]

    def test_sr_count(self):
        store = UciTelemetry()
        store.add(self.obs(sr=True))
        store.add(self.obs(slot=16, sr=False))
        store.add(self.obs(slot=24, sr=True))
        assert store.scheduling_request_count(0x4601) == 2

    def test_nack_ratio(self):
        store = UciTelemetry()
        store.add(self.obs(acks=(1, 0)))
        store.add(self.obs(slot=16, acks=(1,)))
        assert store.nack_ratio(0x4601) == pytest.approx(1 / 3)
        assert store.nack_ratio(0x9999) == 0.0

    def test_forget(self):
        store = UciTelemetry()
        store.add(self.obs())
        store.forget(0x4601)
        assert store.for_rnti(0x4601) == []


class TestUciBlerModel:
    def test_waterfall(self):
        assert uci_bler(-10.0) > 0.9
        assert uci_bler(5.0) < 0.01

    def test_monotone(self):
        values = [uci_bler(s) for s in range(-10, 8)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-9

    def test_draws(self, rng):
        fails = sum(not uci_decode_succeeds(-3.0, rng)
                    for _ in range(3000))
        assert fails / 3000 == pytest.approx(uci_bler(-3.0), abs=0.04)


class TestUciEndToEnd:
    def run_session(self, seconds=1.5, snr_db=20.0, **scope_kwargs):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=51,
                               channel="pedestrian")
        scope = NRScope.attach(sim, snr_db=snr_db, **scope_kwargs)
        sim.run(seconds=seconds)
        return sim, scope

    def test_uci_reports_decoded(self):
        sim, scope = self.run_session()
        assert len(scope.uci) > 0
        for rnti in scope.tracked_rntis:
            series = scope.uci.cqi_series(rnti)
            assert series, f"no CQI reports for 0x{rnti:04x}"
            for _, cqi in series:
                assert 0 <= cqi <= 15

    def test_sniffed_cqi_matches_gnb_knowledge(self):
        """The CQIs NR-Scope hears are the same ones steering the
        scheduler, so the sniffed series must correlate with the MCS
        choices in the DCI stream."""
        sim, scope = self.run_session(seconds=2.0)
        for rnti in scope.tracked_rntis:
            cqis = [c for _, c in scope.uci.cqi_series(rnti)]
            mcss = scope.telemetry.mcs_distribution(rnti)
            if not cqis or not mcss:
                continue
            # Both track the same channel: means must roughly co-vary
            # (healthy channel: CQI ~13-15 implies mid/high MCS).
            assert (sum(cqis) / len(cqis) > 9) == \
                (sum(mcss) / len(mcss) > 8)

    def test_uci_disabled(self):
        sim, scope = self.run_session(decode_uci=False)
        assert len(scope.uci) == 0

    def test_weak_uplink_misses_reports(self):
        _, strong = self.run_session(snr_db=20.0)
        _, weak = self.run_session(snr_db=2.0)
        # 2 dB downlink minus the 6 dB uplink offset = -4 dB PUCCH:
        # many reports lost.
        assert len(weak.uci) < len(strong.uci)

    def test_sr_seen_for_backlogged_uplink(self):
        sim, scope = self.run_session(seconds=2.0)
        total_srs = sum(scope.uci.scheduling_request_count(r)
                        for r in scope.uci.rntis())
        assert total_srs > 0


class TestOlla:
    def run_gnb(self, olla, seconds=2.0, seed=53):
        sim = Simulation(SRSRAN_PROFILE,
                         gnb=GNodeB(SRSRAN_PROFILE, seed=seed,
                                    olla_target_bler=olla),
                         medium=lab_medium(), seed=seed)
        for i in range(4):
            ue = sim.make_ue(i, traffic="bulk", channel="vehicle",
                             mean_snr_db=15.0)
            sim.gnb.add_ue(ue)
        sim.run(seconds=seconds)
        records = [r for r in sim.gnb.log.downlink_records()
                   if r.search_space == "ue"]
        retx = sum(r.is_retransmission for r in records) / len(records)
        return retx

    def test_olla_reduces_retransmissions(self):
        # Fast fading + stale CQI reports keep the raw error rate well
        # above the 10% target; OLLA pulls it down as the per-UE offsets
        # converge (a few dB over a couple of seconds).
        without = self.run_gnb(olla=None, seconds=3.0)
        with_olla = self.run_gnb(olla=0.1, seconds=3.0)
        assert with_olla < without * 0.9