"""Coded PDSCH transport blocks for RRC-sized payloads.

TS 38.212 section 7.2 codes PDSCH transport blocks with LDPC; this
module provides the equivalent chain for the broadcast-sized payloads
NR-Scope must actually decode (SIB1 and the ~500-byte RRC Setup of
paper section 3.1.2): CRC24A over the transport block, segmentation
into code blocks each protected by CRC24B and a polar code (the
documented LDPC substitution — same role, same verification structure),
Gold-sequence scrambling and QAM mapping sized to the grant.

This is what gives the sniffer's one-off RRC Setup decode a real
signal-processing cost and a real failure mode; bulk user-plane data
stays at message level (DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.phy import polar
from repro.phy.crc import crc_attach, crc_check
from repro.phy.modulation import SCHEMES, demodulate_soft, modulate
from repro.phy.scrambling import pdsch_scrambling_init, scramble_bits

#: Maximum info bits per code block (payload + CRC24B must fit the
#: polar mother code with room for parity).
MAX_SEGMENT_PAYLOAD_BITS = 256

#: Coded bits per segment on the channel.
SEGMENT_E_BITS = 1024


class PdschError(ValueError):
    """Raised for malformed transport blocks or geometry mismatches."""


@dataclass(frozen=True)
class PdschGeometry:
    """Channel geometry for one transport block."""

    n_segments: int
    coded_bits: int
    n_symbols: int          # QAM symbols on the grant

    @classmethod
    def for_payload(cls, payload_bits: int,
                    modulation: str = "QPSK") -> "PdschGeometry":
        """Geometry implied by a payload size and modulation order."""
        if payload_bits <= 0:
            raise PdschError(f"empty transport block: {payload_bits}")
        with_tb_crc = payload_bits + 24
        n_segments = math.ceil(with_tb_crc / MAX_SEGMENT_PAYLOAD_BITS)
        coded = n_segments * SEGMENT_E_BITS
        qm = SCHEMES[modulation].bits_per_symbol
        return cls(n_segments=n_segments, coded_bits=coded,
                   n_symbols=math.ceil(coded / qm))


def encode_pdsch_transport_block(payload: np.ndarray, rnti: int,
                                 n_id: int,
                                 modulation: str = "QPSK") -> np.ndarray:
    """Transport block -> CRC24A -> segment -> polar -> scramble -> QAM."""
    bits = np.asarray(payload, dtype=np.uint8).ravel()
    if bits.size == 0:
        raise PdschError("empty transport block")
    with_crc = crc_attach(bits, "crc24a")
    geometry = PdschGeometry.for_payload(bits.size, modulation)
    per_segment = math.ceil(with_crc.size / geometry.n_segments)
    coded_parts = []
    for index in range(geometry.n_segments):
        chunk = with_crc[index * per_segment:(index + 1) * per_segment]
        padded = np.zeros(per_segment, dtype=np.uint8)
        padded[:chunk.size] = chunk
        block = crc_attach(padded, "crc24b")
        code = polar.construct(block.size, SEGMENT_E_BITS)
        coded_parts.append(polar.encode(block, code))
    coded = np.concatenate(coded_parts)
    scrambled = scramble_bits(coded, pdsch_scrambling_init(rnti, 0, n_id))
    qm = SCHEMES[modulation].bits_per_symbol
    if scrambled.size % qm:
        scrambled = np.concatenate(
            [scrambled, np.zeros(qm - scrambled.size % qm,
                                 dtype=np.uint8)])
    return modulate(scrambled, modulation)


def decode_pdsch_transport_block(symbols: np.ndarray, payload_len: int,
                                 rnti: int, n_id: int, noise_var: float,
                                 modulation: str = "QPSK") \
        -> np.ndarray | None:
    """Invert the transport-block chain; None on any CRC failure.

    Per-segment CRC24B gates each code block and the outer CRC24A gates
    the reassembled transport block, mirroring the double verification
    an LDPC receiver performs.
    """
    if payload_len <= 0:
        raise PdschError(f"invalid payload length: {payload_len}")
    geometry = PdschGeometry.for_payload(payload_len, modulation)
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    if syms.size < geometry.n_symbols:
        raise PdschError(
            f"grant too small: {syms.size} symbols for"
            f" {geometry.n_symbols}")
    qm = SCHEMES[modulation].bits_per_symbol
    llrs = demodulate_soft(syms[:geometry.n_symbols], modulation,
                           max(noise_var, 1e-12))
    seq = scramble_bits(
        np.zeros(llrs.size, dtype=np.uint8),
        pdsch_scrambling_init(rnti, 0, n_id)).astype(float)
    llrs = llrs * (1.0 - 2.0 * seq)

    with_crc_len = payload_len + 24
    per_segment = math.ceil(with_crc_len / geometry.n_segments)
    pieces = []
    for index in range(geometry.n_segments):
        segment_llrs = llrs[index * SEGMENT_E_BITS:
                            (index + 1) * SEGMENT_E_BITS]
        code = polar.construct(per_segment + 24, SEGMENT_E_BITS)
        block = polar.decode(segment_llrs, code)
        if not crc_check(block, "crc24b"):
            return None
        pieces.append(block[:-24])
    reassembled = np.concatenate(pieces)[:with_crc_len]
    if not crc_check(reassembled, "crc24a"):
        return None
    return reassembled[:payload_len]
