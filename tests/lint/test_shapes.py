"""Property tests for the dtype/shape lattice behind R010/R011.

The abstract interpreter is only sound if its lattice operations are:
``join`` must be a commutative, associative, idempotent least upper
bound consistent with ``leq``, and ``widen`` must sit above ``join``
(so loop iteration terminates at a post-fixpoint) and be monotone in
its second argument.  Hypothesis explores the full element space —
every chain dtype plus TOP/BOTTOM, and shapes mixing literal,
symbolic and unknown dims.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.shapes import (
    DTYPE_CHAIN,
    DIM_UNKNOWN,
    DType,
    Shape,
    Value,
    broadcast,
    dim_lit,
    dim_sym,
    dtype_named,
    join_value,
    parse_layouts,
    widen_dtype,
    widen_shape,
    widen_value,
)

dtypes = st.integers(min_value=-1, max_value=len(DTYPE_CHAIN)) \
    .map(DType)

dims = st.one_of(
    st.just(DIM_UNKNOWN),
    st.integers(min_value=0, max_value=4).map(dim_lit),
    st.sampled_from("NBEKLS").map(dim_sym),
)

shapes = st.one_of(
    st.just(Shape()),
    st.lists(dims, min_size=0, max_size=3).map(
        lambda ds: Shape(tuple(ds))),
)

values = st.builds(Value, dtype=dtypes, shape=shapes)


class TestDtypeLattice:
    @given(dtypes, dtypes)
    def test_join_commutes(self, a, b):
        assert a.join(b) == b.join(a)

    @given(dtypes, dtypes, dtypes)
    def test_join_associates(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(dtypes)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(dtypes, dtypes)
    def test_join_is_upper_bound(self, a, b):
        assert a.leq(a.join(b))
        assert b.leq(a.join(b))

    @given(dtypes, dtypes)
    def test_leq_join_consistency(self, a, b):
        assert a.leq(b) == (a.join(b) == b)

    @given(dtypes, dtypes)
    def test_meet_is_lower_bound(self, a, b):
        assert a.meet(b).leq(a)
        assert a.meet(b).leq(b)

    @given(dtypes, dtypes)
    def test_widen_bounds_join(self, old, new):
        assert old.join(new).leq(widen_dtype(old, new))

    @given(dtypes, dtypes, dtypes)
    def test_widen_monotone_in_new(self, old, a, b):
        if a.leq(b):
            assert widen_dtype(old, a).leq(widen_dtype(old, b))

    @given(dtypes, dtypes)
    def test_widen_stabilises(self, old, new):
        once = widen_dtype(old, new)
        assert widen_dtype(once, new) == once


class TestShapeLattice:
    @given(shapes, shapes)
    def test_join_commutes(self, a, b):
        assert a.join(b) == b.join(a)

    @given(shapes, shapes, shapes)
    def test_join_associates(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(shapes)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(shapes, shapes)
    def test_widen_stabilises(self, old, new):
        once = widen_shape(old, new)
        assert widen_shape(once, new) == once

    @given(shapes, shapes)
    def test_broadcast_commutes(self, a, b):
        shape_ab, conflicts_ab = broadcast(a, b)
        shape_ba, conflicts_ba = broadcast(b, a)
        assert shape_ab == shape_ba
        assert bool(conflicts_ab) == bool(conflicts_ba)

    @given(shapes)
    def test_broadcast_with_scalar_is_identity(self, a):
        shape, conflicts = broadcast(a, Shape(()))
        assert shape == a
        assert not conflicts


class TestValueLattice:
    @given(values, values)
    def test_join_commutes(self, a, b):
        assert join_value(a, b) == join_value(b, a)

    @given(values, values, values)
    def test_join_associates(self, a, b, c):
        assert join_value(join_value(a, b), c) \
            == join_value(a, join_value(b, c))

    @given(values, values)
    def test_widen_stabilises(self, old, new):
        once = widen_value(old, new)
        assert widen_value(once, new) == once


class TestParseLayouts:
    def test_parses_dims_and_dtype(self):
        layouts = parse_layouts("""Decode.

        Layout: llrs (B, E) float64
        Layout: return (B, K) uint8
        """)
        assert layouts["llrs"].dtype == dtype_named("float64")
        assert layouts["llrs"].shape == Shape((dim_sym("B"),
                                               dim_sym("E")))
        assert layouts["return"].dtype == dtype_named("uint8")

    def test_dtype_is_optional(self):
        layouts = parse_layouts("Layout: starts (N)")
        assert layouts["starts"].shape == Shape((dim_sym("N"),))
        assert not layouts["starts"].dtype.is_concrete

    def test_aliases_normalise(self):
        layouts = parse_layouts("Layout: starts (N) intp")
        assert layouts["starts"].dtype == dtype_named("int64")

    def test_ignores_malformed_lines(self):
        assert not parse_layouts("Layout: x (N*2) float64")
        assert not parse_layouts("no layouts here")
        assert not parse_layouts(None)
