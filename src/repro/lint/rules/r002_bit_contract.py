"""R002: bit-width contract symmetry between pack and unpack sides.

NR-Scope only works because the sniffer's unpack mirrors the gNB's pack
bit for bit (paper section 3.2.1); a single mis-sized field silently
corrupts every downstream metric while the CRC still passes on the gNB
side.  This rule statically checks the three codec idioms the repo
uses:

1. **Writer/reader pairs** — for every ``encode``/``decode_fields``,
   ``encode_into``/``decode_from``, ``encode``/``decode`` method pair
   (and ``pack``/``unpack`` or ``encode_x``/``decode_x`` function
   pair), the ordered sequence of ``writer.write(v, W)`` /
   ``write_signed`` / ``write_bool`` widths must equal the sequence of
   ``reader.read(W)`` / ``read_signed`` / ``read_bool`` widths, with
   signedness matched.  Nested ``encode_into``/``decode_from``
   delegations count as one opaque step on each side.  A leading
   ``write(_TAG_*, w)`` on the encode side is framing consumed by the
   message dispatcher and is ignored.  Writes inside a ``for`` loop
   over a literal tuple/list are multiplied by its length.
2. **Shared-layout pairs** — ``pack``/``unpack`` that both derive their
   widths from the same ``field_layout`` helper must *both* call it
   (one side hand-rolling widths is exactly the drift this rule
   exists to catch).
3. **Coded-channel pairs** — ``encode_x``/``decode_x`` function pairs
   must agree on their CRC polynomial names (``crc_attach`` vs
   ``crc_check``), rate-matched sizes (second argument of
   ``polar.construct``) and constellation (``modulate`` vs
   ``demodulate_soft``), compared as multisets because decoders invert
   the order.

When the module also defines the ``Dci`` dataclass, a ``DciSizeConfig``
and ``field_layout``, every layout entry is cross-checked: the field
name must exist on ``Dci`` and the width must be an integer literal or
a ``cfg.<attr>`` where ``<attr>`` is a ``DciSizeConfig`` field or
property (``unpack`` silently drops unknown names at runtime, so only
a static check sees that drift).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.astutil import (
    ancestors,
    call_order_key,
    dotted_name,
    int_value,
    parent_map,
    unparse,
)
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: (encode-side name, decode-side name) method pairs checked per class.
METHOD_PAIRS = (
    ("encode", "decode_fields"),
    ("encode", "decode"),
    ("encode_into", "decode_from"),
    ("pack", "unpack"),
)

_WRITE_WIDTH_ARG = {"write": 1, "write_signed": 1}
_READ_WIDTH_ARG = {"read": 0, "read_signed": 0}
_SIGNED = {"write_signed", "read_signed"}


@dataclass(frozen=True)
class _Event:
    """One step of a codec's bit contract, with its source anchor."""

    kind: str       # 'width' | 'nested' | 'layout'
    detail: str     # normalised width / signedness, or ''
    node: ast.AST
    is_tag: bool = False

    def describe(self) -> str:
        if self.kind == "width":
            width, signedness = self.detail[:-1], self.detail[-1]
            return f"{width} {'signed ' if signedness == 's' else ''}bits"
        if self.kind == "nested":
            return "nested encode_into/decode_from"
        return "field_layout-driven block"


def _norm_width(node: ast.AST) -> str:
    value = int_value(node)
    return str(value) if value is not None else unparse(node)


def _loop_multiplier(node: ast.AST,
                     parents: dict[ast.AST, ast.AST]) -> int:
    """How many times ``node`` runs due to literal-sequence for loops."""
    multiplier = 1
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, ast.For) and \
                isinstance(ancestor.iter, (ast.Tuple, ast.List)):
            multiplier *= max(len(ancestor.iter.elts), 1)
    return multiplier


def _collect_events(func: ast.FunctionDef) -> list[_Event]:
    """Ordered sequence events (widths, nesting, layouts) in ``func``."""
    parents = parent_map(func)
    raw: list[tuple[tuple[int, int], _Event, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        event: _Event | None = None
        if attr in _WRITE_WIDTH_ARG and len(node.args) == 2:
            value_arg, width_arg = node.args
            is_tag = isinstance(value_arg, ast.Name) and \
                value_arg.id.lstrip("_").startswith("TAG")
            event = _Event("width",
                           f"{_norm_width(width_arg)}"
                           f"{'s' if attr in _SIGNED else 'u'}",
                           node, is_tag=is_tag)
        elif attr in _READ_WIDTH_ARG and len(node.args) == 1:
            event = _Event("width",
                           f"{_norm_width(node.args[0])}"
                           f"{'s' if attr in _SIGNED else 'u'}",
                           node)
        elif attr == "write_bool" and len(node.args) == 1:
            event = _Event("width", "1u", node)
        elif attr == "read_bool" and not node.args:
            event = _Event("width", "1u", node)
        elif attr == "encode_into" and node.args:
            event = _Event("nested", "", node)
        elif attr == "decode_from" and node.args:
            event = _Event("nested", "", node)
        if event is not None:
            raw.append((call_order_key(node), event,
                        _loop_multiplier(node, parents)))
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and name.split(".")[-1] == "field_layout":
                raw.append((call_order_key(node),
                            _Event("layout", "", node), 1))
    raw.sort(key=lambda item: item[0])
    events: list[_Event] = []
    for _, event, multiplier in raw:
        events.extend([event] * multiplier)
    return events


def _collect_contract(func: ast.FunctionDef) -> list[tuple[str, str]]:
    """Order-independent contract facts: CRCs, rate-match sizes, QAM."""
    facts: list[tuple[str, str]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        leaf = name.split(".")[-1] if name else ""
        if leaf in ("crc_attach", "crc_check") and len(node.args) >= 2:
            crc = node.args[1]
            if isinstance(crc, ast.Constant) and isinstance(crc.value, str):
                facts.append(("crc", crc.value))
        elif leaf == "construct" and len(node.args) >= 2:
            facts.append(("ratematch", unparse(node.args[1])))
        elif leaf == "modulate" and len(node.args) >= 2:
            facts.append(("modulation", unparse(node.args[1])))
        elif leaf == "demodulate_soft" and len(node.args) >= 2:
            facts.append(("modulation", unparse(node.args[1])))
    return sorted(facts)


def _function_pairs(ctx: LintContext) \
        -> Iterator[tuple[str, ast.FunctionDef, ast.FunctionDef]]:
    """(label, encode-side, decode-side) pairs in one module."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            methods = {stmt.name: stmt for stmt in node.body
                       if isinstance(stmt, ast.FunctionDef)}
            for enc_name, dec_name in METHOD_PAIRS:
                if enc_name in methods and dec_name in methods:
                    yield (f"{node.name}.{enc_name}/{dec_name}",
                           methods[enc_name], methods[dec_name])
                    break
    toplevel = {stmt.name: stmt for stmt in ctx.tree.body
                if isinstance(stmt, ast.FunctionDef)}
    if "pack" in toplevel and "unpack" in toplevel:
        yield "pack/unpack", toplevel["pack"], toplevel["unpack"]
    for name, func in toplevel.items():
        if name.startswith("encode_"):
            partner = "decode_" + name[len("encode_"):]
            if partner in toplevel:
                yield f"{name}/{partner}", func, toplevel[partner]


@register
class BitContractRule(Rule):
    """Pack/unpack bit-width and coding-contract symmetry."""

    rule_id = "R002"
    title = "bit-width contract asymmetry between pack and unpack"

    def applies(self, rel: str) -> bool:
        return rel.startswith(("phy/", "rrc/")) or "/" not in rel

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for label, enc, dec in _function_pairs(ctx):
            yield from self._check_pair(ctx, label, enc, dec)
        yield from self._check_dci_layout(ctx)

    # -- writer/reader + layout + contract symmetry -------------------

    def _check_pair(self, ctx: LintContext, label: str,
                    enc: ast.FunctionDef,
                    dec: ast.FunctionDef) -> Iterator[Finding]:
        enc_events = [e for e in _collect_events(enc) if not e.is_tag]
        dec_events = _collect_events(dec)
        if enc_events or dec_events:
            yield from self._compare_sequences(
                ctx, label, enc, enc_events, dec_events)
        enc_facts = _collect_contract(enc)
        dec_facts = _collect_contract(dec)
        if enc_facts != dec_facts:
            missing = [f for f in enc_facts if f not in dec_facts]
            extra = [f for f in dec_facts if f not in enc_facts]
            detail = "; ".join(
                [f"encode-only {kind}={value}" for kind, value in missing]
                + [f"decode-only {kind}={value}" for kind, value in extra])
            yield self.finding(
                ctx, enc,
                f"{label}: coding contract mismatch ({detail})")

    def _compare_sequences(self, ctx: LintContext, label: str,
                           enc: ast.FunctionDef,
                           enc_events: list[_Event],
                           dec_events: list[_Event]) -> Iterator[Finding]:
        for index in range(max(len(enc_events), len(dec_events))):
            if index >= len(enc_events):
                event = dec_events[index]
                yield self.finding(
                    ctx, event.node,
                    f"{label}: unpack step {index + 1} "
                    f"({event.describe()}) has no matching pack step")
                return
            if index >= len(dec_events):
                event = enc_events[index]
                yield self.finding(
                    ctx, event.node,
                    f"{label}: pack step {index + 1} "
                    f"({event.describe()}) has no matching unpack step")
                return
            enc_event, dec_event = enc_events[index], dec_events[index]
            if (enc_event.kind, enc_event.detail) != \
                    (dec_event.kind, dec_event.detail):
                yield self.finding(
                    ctx, enc_event.node,
                    f"{label}: step {index + 1} packs "
                    f"{enc_event.describe()} but unpacks "
                    f"{dec_event.describe()} (line {dec_event.node.lineno})")
                return

    # -- Dci field_layout cross-check ---------------------------------

    def _check_dci_layout(self, ctx: LintContext) -> Iterator[Finding]:
        classes = {node.name: node for node in ast.walk(ctx.tree)
                   if isinstance(node, ast.ClassDef)}
        layout_fn = next(
            (stmt for stmt in ctx.tree.body
             if isinstance(stmt, ast.FunctionDef)
             and stmt.name == "field_layout"), None)
        if layout_fn is None or "Dci" not in classes or \
                "DciSizeConfig" not in classes:
            return
        dci_fields = _annotated_names(classes["Dci"])
        cfg_attrs = _annotated_names(classes["DciSizeConfig"]) \
            | _property_names(classes["DciSizeConfig"])
        for entry in ast.walk(layout_fn):
            if not (isinstance(entry, ast.Tuple) and len(entry.elts) == 2):
                continue
            name_node, width_node = entry.elts
            if not (isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)):
                continue
            name = name_node.value
            if not name.startswith("_") and name not in dci_fields:
                yield self.finding(
                    ctx, name_node,
                    f"field_layout entry {name!r} is not a Dci field; "
                    f"unpack() drops unknown names silently")
            if not _width_is_derived(width_node, cfg_attrs):
                yield self.finding(
                    ctx, width_node,
                    f"field_layout width for {name!r} "
                    f"({unparse(width_node)}) is neither a literal nor "
                    f"derived from DciSizeConfig")


def _annotated_names(cls: ast.ClassDef) -> set[str]:
    return {stmt.target.id for stmt in cls.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)}


def _property_names(cls: ast.ClassDef) -> set[str]:
    names = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and any(
                isinstance(dec, ast.Name) and dec.id == "property"
                for dec in stmt.decorator_list):
            names.add(stmt.name)
    return names


def _width_is_derived(node: ast.AST, cfg_attrs: set[str]) -> bool:
    if int_value(node) is not None:
        return True
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "cfg":
        return node.attr in cfg_attrs
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("min", "max"):
        return all(_width_is_derived(arg, cfg_attrs) for arg in node.args)
    return False
