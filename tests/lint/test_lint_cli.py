"""CLI-level tests: exit codes, formats, baseline workflow, repro.cli."""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main([str(REPO_SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_fixture_tree_exits_nonzero(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir)]) == 1
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_single_rule_selection(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir), "--select", "R005"]) == 1
        out = capsys.readouterr().out
        assert "R005" in out and "R001" not in out

    def test_bad_selection_exits_two(self, capsys):
        assert lint_main(["--select", "R999", str(REPO_SRC)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_empty_selection_exits_two(self, capsys):
        """An empty --select must not silently run zero rules."""
        assert lint_main(["--select", "", str(REPO_SRC)]) == 2
        assert "names no rules" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing")]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_format(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
        rules = {f["rule"] for f in payload["findings"]}
        assert "R004" in rules
        assert all({"path", "line", "snippet"} <= set(f)
                   for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_baseline_workflow(self, fixtures_dir, tmp_path, capsys):
        """write-baseline grandfathers everything; reruns go green;
        a new violation still fails."""
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(fixtures_dir), "--baseline",
                          str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

        extra = tmp_path / "tree" / "gnb"
        extra.mkdir(parents=True)
        (extra / "fresh.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(fixtures_dir), str(extra.parent),
                          "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_write_baseline_keeps_justifications(self, fixtures_dir,
                                                 tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        data = json.loads(baseline.read_text())
        data["entries"][0]["justification"] = "grandfathered: see PR 4"
        baseline.write_text(json.dumps(data))
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        rewritten = json.loads(baseline.read_text())
        assert any(e["justification"] == "grandfathered: see PR 4"
                   for e in rewritten["entries"])


class TestReproCliIntegration:
    def test_lint_subcommand_clean(self, capsys):
        assert repro_main(["lint", str(REPO_SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_subcommand_fails_on_fixtures(self, fixtures_dir,
                                               capsys):
        assert repro_main(["lint", str(fixtures_dir)]) == 1
        assert "R002" in capsys.readouterr().out
