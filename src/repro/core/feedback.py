"""The NR-Scope feedback service (paper sections 1 and 6).

The point of the telemetry is to reach application servers "without
involving the RAN": NR-Scope streams per-UE capacity/retransmission
feedback directly to a sender, beating the end-to-end path by up to half
an RTT.  This module is that delivery leg: subscribers register per
RNTI, and each telemetry tick fans out a compact feedback message with a
modelled one-way latency so transports can reason about staleness.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable


class FeedbackError(ValueError):
    """Raised for invalid subscriptions."""


@dataclass(frozen=True)
class FeedbackMessage:
    """One update to an application server about one UE."""

    sent_at_s: float
    arrives_at_s: float
    rnti: int
    throughput_bps: float
    spare_capacity_bps: float
    mcs_index: int
    retransmission_ratio: float

    @property
    def latency_s(self) -> float:
        """One-way delivery latency of this message."""
        return self.arrives_at_s - self.sent_at_s

    def to_json(self) -> str:
        """Wire rendering."""
        return json.dumps(asdict(self), separators=(",", ":"))


Subscriber = Callable[[FeedbackMessage], None]


class FeedbackService:
    """Fans telemetry out to registered application servers.

    ``uplink_latency_s`` models the sniffer-to-server sub-path; the
    paper's argument is that this beats the RAN's downlink queueing
    because the feedback never crosses the bottleneck.
    """

    def __init__(self, uplink_latency_s: float = 0.01) -> None:
        if uplink_latency_s < 0:
            raise FeedbackError("latency cannot be negative")
        self.uplink_latency_s = uplink_latency_s
        self._subscribers: dict[int, list[Subscriber]] = {}
        self.messages_sent = 0

    def subscribe(self, rnti: int, subscriber: Subscriber) -> None:
        """Register a server interested in one UE's feedback."""
        self._subscribers.setdefault(rnti, []).append(subscriber)

    def unsubscribe(self, rnti: int) -> None:
        """Drop all subscriptions for an RNTI."""
        self._subscribers.pop(rnti, None)

    @property
    def subscribed_rntis(self) -> list[int]:
        """RNTIs with at least one subscriber."""
        return sorted(self._subscribers)

    def publish(self, now_s: float, rnti: int, throughput_bps: float,
                spare_capacity_bps: float, mcs_index: int,
                retransmission_ratio: float) -> FeedbackMessage | None:
        """Send one update to every subscriber of ``rnti``.

        Returns the message, or None when nobody is listening (nothing
        is built or sent, keeping the service zero-cost when unused).
        """
        subscribers = self._subscribers.get(rnti)
        if not subscribers:
            return None
        message = FeedbackMessage(
            sent_at_s=now_s,
            arrives_at_s=now_s + self.uplink_latency_s,
            rnti=rnti, throughput_bps=throughput_bps,
            spare_capacity_bps=spare_capacity_bps, mcs_index=mcs_index,
            retransmission_ratio=retransmission_ratio)
        for subscriber in subscribers:
            subscriber(message)
        self.messages_sent += len(subscribers)
        return message
