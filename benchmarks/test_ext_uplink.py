"""Extension: uplink scheduling analysis from sniffed UCI (paper §7).

Not a paper figure — the paper names UCI decoding as future work; this
bench exercises the implemented version: SR-to-grant latency measured
passively, validated against ground truth.
"""

from repro.analysis.report import print_tables, series_table
from repro.experiments import ext_uplink


def test_ext_sr_to_grant_latency(once):
    analysis = once(ext_uplink.run, duration_s=4.0)
    result = ext_uplink.to_result(analysis)
    print()
    print_tables([
        ext_uplink.table(analysis),
        series_table("SR-to-grant latency CDF (sniffed)",
                     analysis.latency_cdf(), "latency ms", "CDF",
                     max_rows=8),
    ])
    print("summary:", {k: round(v, 2) for k, v in result.summary.items()})

    # Enough SR->grant pairs for the statistic to mean something.
    assert result.summary["n_pairs"] > 50
    # Control-plane latency is millisecond-scale (a few TTIs: the SR
    # rides an uplink slot, the grant the next downlink slot).
    assert result.summary["median_ms"] < 10.0
    # The passive view agrees with ground truth.
    assert abs(result.summary["median_ms"]
               - result.summary["truth_median_ms"]) < 2.0
