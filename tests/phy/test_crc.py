"""Tests for repro.phy.crc: 38.212 CRCs and RNTI scrambling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.crc import (
    CrcError,
    POLYNOMIALS,
    bits_to_rnti,
    crc_attach,
    crc_check,
    crc_remainder,
    recover_rnti,
    rnti_to_bits,
    scramble_crc_with_rnti,
)

ALL_CRCS = sorted(POLYNOMIALS)


def _bits(values):
    return np.array(values, dtype=np.uint8)


class TestCrcRemainder:
    def test_zero_input_gives_zero_crc(self):
        for name in ALL_CRCS:
            remainder = crc_remainder(np.zeros(40, dtype=np.uint8), name)
            assert remainder.sum() == 0, name

    def test_known_length(self):
        for name, (length, _) in POLYNOMIALS.items():
            assert crc_remainder(_bits([1, 0, 1]), name).size == length

    def test_single_one_is_polynomial_shift(self):
        # A single 1 followed by L zeros leaves the polynomial itself.
        length, poly = POLYNOMIALS["crc16"]
        remainder = crc_remainder(_bits([1] + [0] * 0), "crc16")
        # x^16 mod g(x) = g(x) - x^16, i.e. the low 16 bits of the poly.
        expected = [(poly >> (length - 1 - i)) & 1 for i in range(length)]
        assert list(remainder) == expected

    def test_rejects_non_binary(self):
        with pytest.raises(CrcError):
            crc_remainder(np.array([0, 2, 1], dtype=np.uint8), "crc16")

    def test_rejects_unknown_name(self):
        with pytest.raises(CrcError):
            crc_remainder(_bits([1]), "crc32")

    def test_rejects_2d_input(self):
        with pytest.raises(CrcError):
            crc_remainder(np.zeros((2, 2), dtype=np.uint8), "crc16")


class TestAttachCheck:
    @pytest.mark.parametrize("name", ALL_CRCS)
    def test_roundtrip(self, name, rng):
        payload = rng.integers(0, 2, 50).astype(np.uint8)
        assert crc_check(crc_attach(payload, name), name)

    @pytest.mark.parametrize("name", ALL_CRCS)
    def test_detects_any_single_bit_flip(self, name, rng):
        payload = rng.integers(0, 2, 30).astype(np.uint8)
        block = crc_attach(payload, name)
        for pos in range(block.size):
            corrupted = block.copy()
            corrupted[pos] ^= 1
            assert not crc_check(corrupted, name), f"flip at {pos}"

    def test_check_rejects_short_block(self):
        with pytest.raises(CrcError):
            crc_check(_bits([1, 0, 1]), "crc24a")

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip_crc24c(self, payload):
        assert crc_check(crc_attach(_bits(payload), "crc24c"), "crc24c")

    @given(st.lists(st.integers(0, 1), min_size=12, max_size=60),
           st.integers(0, 11))
    @settings(max_examples=30, deadline=None)
    def test_property_burst_error_detected(self, payload, start):
        block = crc_attach(_bits(payload), "crc16")
        corrupted = block.copy()
        corrupted[start:start + 3] ^= 1
        assert not crc_check(corrupted, "crc16")


class TestRntiBits:
    def test_roundtrip_extremes(self):
        for rnti in (0, 1, 0x4296, 0xFFFF):
            assert bits_to_rnti(rnti_to_bits(rnti)) == rnti

    def test_msb_first(self):
        bits = rnti_to_bits(0x8000)
        assert bits[0] == 1 and bits[1:].sum() == 0

    def test_out_of_range(self):
        with pytest.raises(CrcError):
            rnti_to_bits(0x10000)
        with pytest.raises(CrcError):
            rnti_to_bits(-1)

    def test_wrong_width(self):
        with pytest.raises(CrcError):
            bits_to_rnti(_bits([1, 0, 1]))


class TestRntiScrambling:
    def test_scramble_is_involution(self, rng):
        block = crc_attach(rng.integers(0, 2, 40).astype(np.uint8), "crc24c")
        once = scramble_crc_with_rnti(block, 0x1234)
        twice = scramble_crc_with_rnti(once, 0x1234)
        assert np.array_equal(twice, block)

    def test_scrambled_block_fails_plain_check(self, rng):
        block = crc_attach(rng.integers(0, 2, 40).astype(np.uint8), "crc24c")
        masked = scramble_crc_with_rnti(block, 0x1234)
        assert not crc_check(masked, "crc24c")

    def test_rnti_zero_is_identity(self, rng):
        block = crc_attach(rng.integers(0, 2, 40).astype(np.uint8), "crc24c")
        assert np.array_equal(scramble_crc_with_rnti(block, 0), block)

    @given(st.integers(1, 0xFFFF))
    @settings(max_examples=40, deadline=None)
    def test_property_recover_any_rnti(self, rnti):
        payload = _bits([1, 0, 1, 1, 0, 0, 1, 0] * 5)
        masked = scramble_crc_with_rnti(crc_attach(payload, "crc24c"), rnti)
        assert recover_rnti(masked) == rnti

    def test_recover_rejects_corruption_in_unmasked_bits(self, rng):
        block = crc_attach(rng.integers(0, 2, 40).astype(np.uint8), "crc24c")
        masked = scramble_crc_with_rnti(block, 0x4296)
        corrupted = masked.copy()
        corrupted[-20] ^= 1  # inside the 8 unmasked CRC bits
        assert recover_rnti(corrupted) is None

    def test_recover_on_unscrambled_block_returns_zero(self, rng):
        # An unscrambled (broadcast-style) block recovers RNTI 0.
        block = crc_attach(rng.integers(0, 2, 40).astype(np.uint8), "crc24c")
        assert recover_rnti(block) == 0
