"""Extension experiment: uplink scheduling analysis via UCI.

The paper's section 7 names UCI decoding as future work precisely for
this: "scheduling request and Channel Quality Indicator ... could be
useful for uplink data scheduling analysis".  With UCI decoding
implemented, this experiment measures the RAN's uplink control-plane
latency — the delay from a UE raising a scheduling request on the PUCCH
to the gNB's UL grant appearing on the PDCCH — entirely from sniffed
telemetry, and validates it against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import cdf_points
from repro.analysis.report import Table
from repro.experiments.common import FigureResult, run_session
from repro.gnb.cell_config import SRSRAN_PROFILE


@dataclass(frozen=True)
class SrGrantSample:
    """One matched (scheduling request -> uplink grant) pair."""

    rnti: int
    sr_time_s: float
    grant_time_s: float

    @property
    def latency_s(self) -> float:
        return self.grant_time_s - self.sr_time_s


@dataclass
class UplinkAnalysis:
    """Sniffer-side and ground-truth SR-to-grant measurements."""

    sniffed: list[SrGrantSample]
    truth: list[SrGrantSample]

    def sniffed_latencies_ms(self) -> list[float]:
        return [1e3 * s.latency_s for s in self.sniffed]

    def truth_latencies_ms(self) -> list[float]:
        return [1e3 * s.latency_s for s in self.truth]

    def latency_cdf(self) -> list[tuple[float, float]]:
        return cdf_points(self.sniffed_latencies_ms())


def _match_sr_to_grants(sr_times: dict[int, list[float]],
                        grant_times: dict[int, list[float]],
                        max_latency_s: float) -> list[SrGrantSample]:
    """Pair each SR with the first later UL grant for the same RNTI."""
    samples = []
    for rnti, srs in sr_times.items():
        grants = sorted(grant_times.get(rnti, []))
        cursor = 0
        for sr in sorted(srs):
            while cursor < len(grants) and grants[cursor] < sr:
                cursor += 1
            if cursor >= len(grants):
                break
            latency = grants[cursor] - sr
            if latency <= max_latency_s:
                samples.append(SrGrantSample(rnti=rnti, sr_time_s=sr,
                                             grant_time_s=grants[cursor]))
            cursor += 1
    return samples


def run(n_ues: int = 4, duration_s: float = 4.0, seed: int = 19,
        max_latency_s: float = 0.25) -> UplinkAnalysis:
    """One bursty-uplink session, analysed from both vantage points."""
    result = run_session(SRSRAN_PROFILE, n_ues=n_ues,
                         duration_s=duration_s, seed=seed,
                         traffic="onoff", channel="pedestrian",
                         rate_bps=1.5e6)
    scope = result.scope

    # Sniffer view: SRs from decoded UCI, grants from decoded UL DCIs.
    sniffed_srs: dict[int, list[float]] = {}
    for rnti in scope.uci.rntis():
        sniffed_srs[rnti] = [o.time_s for o in scope.uci.for_rnti(rnti)
                             if o.scheduling_request]
    sniffed_grants: dict[int, list[float]] = {}
    for record in scope.telemetry.records:
        if not record.downlink:
            sniffed_grants.setdefault(record.rnti, []) \
                .append(record.time_s)

    # Ground truth: every SR actually transmitted (the gNB's UCI log)
    # against every UL grant in the gNB's DCI log.
    truth_srs: dict[int, list[float]] = {}
    for record in result.gnb_log.uci_records:
        if record.report.scheduling_request:
            truth_srs.setdefault(record.rnti, []).append(record.time_s)
    truth_grants: dict[int, list[float]] = {}
    for record in result.gnb_log.uplink_records():
        truth_grants.setdefault(record.rnti, []).append(record.time_s)

    sniffed = _match_sr_to_grants(sniffed_srs, sniffed_grants,
                                  max_latency_s)
    truth = _match_sr_to_grants(truth_srs, truth_grants,
                                max_latency_s)
    return UplinkAnalysis(sniffed=sniffed, truth=truth)


def to_result(analysis: UplinkAnalysis) -> FigureResult:
    result = FigureResult(figure="ext-uplink")
    latencies = analysis.sniffed_latencies_ms()
    if latencies:
        result.add_series("sr-to-grant-cdf", analysis.latency_cdf())
        result.summary["n_pairs"] = float(len(latencies))
        result.summary["median_ms"] = float(np.median(latencies))
        result.summary["p95_ms"] = float(np.percentile(latencies, 95))
    truth = analysis.truth_latencies_ms()
    if truth:
        result.summary["truth_median_ms"] = float(np.median(truth))
    return result


def table(analysis: UplinkAnalysis) -> Table:
    latencies = analysis.sniffed_latencies_ms()
    rows = []
    if latencies:
        arr = np.asarray(latencies)
        rows.append(("sniffed", len(latencies), float(np.median(arr)),
                     float(np.percentile(arr, 95))))
    truth = analysis.truth_latencies_ms()
    if truth:
        arr = np.asarray(truth)
        rows.append(("ground truth", len(truth), float(np.median(arr)),
                     float(np.percentile(arr, 95))))
    return Table(
        title="EXT - SR-to-grant latency (uplink scheduling analysis)",
        columns=("view", "pairs", "median ms", "p95 ms"),
        rows=tuple(rows))
