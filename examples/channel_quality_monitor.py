#!/usr/bin/env python3
"""Channel-condition telemetry: MCS and retransmission behaviour.

Reproduces the paper's section 5.4.2 workflow as an application: UEs
experience different emulated channels (AWGN through dense urban), and
NR-Scope — knowing nothing about the channels — reads the consequences
off the air: the MCS the gNB selects and the HARQ retransmission ratio.
A service provider can use exactly this signal to adapt sending
strategy per user.

Run:  python examples/channel_quality_monitor.py
"""

from repro import AMARISOFT_PROFILE, NRScope, Simulation

CHANNELS = ("awgn", "pedestrian", "vehicle", "urban")
SESSION_S = 2.0
UES_PER_CHANNEL = 4


def classify(mean_mcs: float, retx_ratio: float) -> str:
    """The kind of verdict a server would act on."""
    if mean_mcs >= 20 and retx_ratio < 0.05:
        return "excellent - raise bitrate"
    if mean_mcs >= 12:
        return "good - hold"
    if retx_ratio > 0.15:
        return "poor - add FEC, lower bitrate"
    return "fair - probe carefully"


def main() -> None:
    print(f"{'channel':>12}  {'UE':>8}  {'mean MCS':>9}  {'retx %':>7}  "
          f"verdict")
    for index, channel in enumerate(CHANNELS):
        sim = Simulation.build(AMARISOFT_PROFILE,
                               n_ues=UES_PER_CHANNEL, seed=100 + index,
                               traffic="cbr", channel=channel,
                               ue_snr_db=16.0, rate_bps=1.5e6)
        scope = NRScope.attach(sim, snr_db=18.0)
        sim.run(seconds=SESSION_S)

        for rnti in scope.tracked_rntis:
            mcs = scope.telemetry.mcs_distribution(rnti)
            if not mcs:
                continue
            mean_mcs = sum(mcs) / len(mcs)
            retx = scope.telemetry.retransmission_ratio(rnti)
            print(f"{channel:>12}  0x{rnti:04x}  {mean_mcs:9.1f}  "
                  f"{100 * retx:7.2f}  {classify(mean_mcs, retx)}")


if __name__ == "__main__":
    main()
