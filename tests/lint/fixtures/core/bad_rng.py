"""R007 fixture: randomness nobody owns, in every flavour.

stdlib ``random``, legacy ``np.random`` global state, entropy-seeded
``default_rng()``, a draw chained on a discarded fresh generator, and —
the flow-aware case — a *seeded* generator constructed inside a
function reachable from a parallel stage.
"""

import random

import numpy as np


class Stage:
    def __init__(self, name, fn, parallel=False):
        self.name = name
        self.fn = fn
        self.parallel = parallel


def coin_flip():
    return random.random() < 0.5


def legacy_noise(n):
    return np.random.randn(n)


def entropy_seeded():
    return np.random.default_rng()


def one_shot_draw():
    return np.random.default_rng(7).random()


def decode_with_local_generator(payload):
    rng = np.random.default_rng(1234)
    return payload if rng is not None else None


STAGE = Stage("decode", decode_with_local_generator, parallel=True)
