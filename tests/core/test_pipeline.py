"""Tests for the Fig 4 worker-pool pipeline."""

import pytest

from repro.core.dci_decoder import GridDciDecoder
from repro.core.pipeline import PipelineError, SlotTask, WorkerPool, \
    process_slot_task, shard_ues
from repro.core.rach_sniffer import RachSniffer
from repro.gnb.cell_config import SRSRAN_PROFILE
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.pdcch import PdcchCandidate, encode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.rrc.messages import RrcSetup


def build_tracked(n_ues=3):
    """A tracked-UE table with real search spaces."""
    sniffer = RachSniffer(bwp_n_prb=51)
    setup = RrcSetup(tc_rnti=0x4601,
                     search_space=SRSRAN_PROFILE.search_space_config())
    sniffer.discover(0x4601, 0.0, setup)
    for i in range(1, n_ues):
        sniffer.discover(0x4601 + i, 0.0, None)
    return sniffer.tracked


def build_slot(tracked, slot_index=4):
    """Encode one real DCI per tracked UE into a grid."""
    grid = ResourceGrid(SRSRAN_PROFILE.n_prb)
    cfg = SRSRAN_PROFILE.dci_size_config()
    used = set()
    encoded = 0
    for rnti, ue in tracked.items():
        space = ue.search_space
        placed = False
        for start in space.candidate_cces(2, slot_index, rnti):
            cces = set(range(start, start + 2))
            if cces & used:
                continue
            dci = Dci(format=DciFormat.DL_1_1, rnti=rnti,
                      freq_alloc_riv=riv_encode(0, 4, 51), time_alloc=1,
                      mcs=10, ndi=0, rv=0, harq_id=0)
            encode_pdcch(dci, cfg, space.coreset,
                         PdcchCandidate(start, 2), grid,
                         n_id=SRSRAN_PROFILE.cell_id,
                         slot_index=slot_index)
            used |= cces
            placed = True
            encoded += 1
            break
        if not placed:
            continue
    return grid, encoded


def make_decoder():
    return GridDciDecoder(dci_cfg=SRSRAN_PROFILE.dci_size_config(),
                          n_id=SRSRAN_PROFILE.cell_id, noise_var=1e-3)


class TestSharding:
    def test_covers_all_ues(self):
        tracked = build_tracked(5)
        shards = shard_ues(tracked, 3)
        assert len(shards) == 3
        merged = {}
        for shard in shards:
            merged.update(shard)
        assert merged == tracked

    def test_balanced(self):
        shards = shard_ues(build_tracked(6), 3)
        assert all(len(s) == 2 for s in shards)

    def test_rejects_zero_shards(self):
        with pytest.raises(PipelineError):
            shard_ues({}, 0)


class TestProcessSlot:
    def test_single_thread_decodes_everything(self):
        tracked = build_tracked(3)
        grid, encoded = build_slot(tracked)
        result = process_slot_task(SlotTask(4, grid, tracked),
                                   make_decoder(), n_dci_threads=1)
        assert len(result.decoded) == encoded
        assert result.processing_time_s > 0

    def test_sharded_matches_single_thread(self):
        tracked = build_tracked(4)
        grid, encoded = build_slot(tracked)
        single = process_slot_task(SlotTask(4, grid, tracked),
                                   make_decoder(), n_dci_threads=1)
        sharded = process_slot_task(SlotTask(4, grid, tracked),
                                    make_decoder(), n_dci_threads=4)
        key = lambda d: (d.dci.rnti, d.dci.format.value)  # noqa: E731
        assert sorted(map(key, single.decoded)) == \
            sorted(map(key, sharded.decoded))


class TestWorkerPool:
    def test_processes_all_tasks(self):
        tracked = build_tracked(2)
        pool = WorkerPool(make_decoder(), n_workers=2)
        n_tasks = 6
        encoded_total = 0
        for i in range(n_tasks):
            grid, encoded = build_slot(tracked, slot_index=i + 1)
            encoded_total += encoded
            pool.submit(SlotTask(i + 1, grid, tracked))
        results = pool.drain(n_tasks)
        pool.shutdown()
        assert len(results) == n_tasks
        assert sum(len(r.decoded) for r in results) == encoded_total
        assert pool.statistics.slots_processed == n_tasks
        assert pool.statistics.mean_processing_us > 0

    def test_results_tagged_with_workers(self):
        tracked = build_tracked(1)
        pool = WorkerPool(make_decoder(), n_workers=3)
        for i in range(6):
            grid, _ = build_slot(tracked, slot_index=i + 1)
            pool.submit(SlotTask(i + 1, grid, tracked))
        results = pool.drain(6)
        pool.shutdown()
        assert all(r.worker_id >= 0 for r in results)

    def test_drain_timeout(self):
        pool = WorkerPool(make_decoder(), n_workers=1)
        pool.start()
        with pytest.raises(PipelineError):
            pool.drain(1, timeout_s=0.05)
        pool.shutdown()

    def test_rejects_zero_workers(self):
        with pytest.raises(PipelineError):
            WorkerPool(make_decoder(), n_workers=0)

    def test_shutdown_idempotent(self):
        pool = WorkerPool(make_decoder(), n_workers=1)
        pool.start()
        pool.shutdown()
        pool.shutdown()
