"""Fig 16: throughput error by UE scenario, and packet aggregation.

Paper results: (a-c) throughput estimation stays accurate across
static, blocked and moving UEs; (d) packets aggregate into a TTI far
more heavily when the flow competes for the cell than when capacity is
spare.
"""

from repro.analysis.report import print_tables
from repro.experiments import fig16_scenarios as fig16


def run_all():
    return (fig16.run_scenarios(duration_s=4.0),
            fig16.run_aggregation(duration_s=4.0))


def test_fig16_scenarios_and_aggregation(once):
    scenarios, aggregation = once(run_all)
    result = fig16.to_result(scenarios, aggregation)
    print()
    print_tables([fig16.scenario_table(scenarios),
                  fig16.aggregation_table(aggregation)])
    print("summary:", {k: round(v, 3) for k, v in result.summary.items()})

    # Shape (a-c): every scenario's median error stays in the tens of
    # kbps against multi-Mbps flows.
    for scenario in fig16.SCENARIOS:
        assert result.summary[f"{scenario}_median_kbps"] < 200.0
    # Shape (d): competition aggregates markedly more packets per TTI.
    assert result.summary["competing_mean_pkts"] > \
        2.0 * result.summary["spare_mean_pkts"]
    assert result.summary["spare_mean_pkts"] < 4.0
