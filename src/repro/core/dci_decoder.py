"""Per-slot DCI extraction for the tracked UE list (paper section 3.2.1).

Two backends share one interface:

* :class:`GridDciDecoder` (iq fidelity) - runs the real PDCCH decode
  chain over a captured resource grid: for every tracked RNTI it
  enumerates that UE's search-space candidates for the slot and attempts
  a polar decode + CRC check per format.
* :class:`RecordDciDecoder` (message fidelity) - walks the slot's DCI
  records and applies the calibrated decode-failure model, producing the
  same outputs orders of magnitude faster.

Both return :class:`DecodedDci` lists; everything downstream (grants,
HARQ tracking, throughput) is backend-agnostic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.decode_model import counter_uniform, decode_succeeds, \
    pdcch_bler
from repro.core.rach_sniffer import TrackedUe
from repro.phy.dci import Dci, DciError, DciFormat, DciSizeConfig, \
    dci_payload_size
from repro.phy.pdcch import PdcchCandidate, candidate_occupied, \
    try_decode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.gnb.gnb import DciRecord


class DciDecoderError(ValueError):
    """Raised for backend misuse."""


@dataclass(frozen=True)
class DecodedDci:
    """One successfully decoded DCI at the sniffer."""

    dci: Dci
    aggregation_level: int
    from_common_space: bool = False


class RecordDciDecoder:
    """Message-fidelity backend driven by the calibrated BLER model."""

    def __init__(self, sniffer_snr_db: float, seed: int = 0) -> None:
        self.sniffer_snr_db = sniffer_snr_db
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.attempts = 0
        self.misses = 0

    def decode_slot(self, records: list[DciRecord],
                    tracked: dict[int, TrackedUe]) -> list[DecodedDci]:
        """Decode this slot's UE-search-space DCIs for tracked RNTIs.

        Runs on the slot runtime's parallel stage, so each decision is a
        counter-based draw keyed on (seed, slot, rnti, CCE, level,
        direction) rather than a shared-RNG state advance: the outcome
        is identical whatever order and thread the slots run on.
        """
        decoded: list[DecodedDci] = []
        attempts = misses = 0
        for record in records:
            if record.search_space != "ue":
                continue
            if record.rnti not in tracked:
                continue
            attempts += 1
            level = record.candidate.aggregation_level
            draw = counter_uniform(
                self.seed, record.slot_index, record.rnti,
                record.candidate.first_cce, level,
                int(record.dci.format == DciFormat.DL_1_1))
            if draw >= pdcch_bler(self.sniffer_snr_db, level):
                decoded.append(DecodedDci(dci=record.dci,
                                          aggregation_level=level))
            else:
                misses += 1
        with self._lock:
            self.attempts += attempts
            self.misses += misses
        return decoded

    def decode_common(self, records: list[DciRecord]) \
            -> list[tuple[DciRecord, bool]]:
        """Attempt every common-search-space DCI (SIB1/MSG 4 scheduling).

        Returns (record, decoded?) pairs; the caller turns successful
        non-SI decodes into RNTI discoveries.
        """
        results = []
        for record in records:
            if record.search_space != "common":
                continue
            level = record.candidate.aggregation_level
            ok = decode_succeeds(self.sniffer_snr_db, level, self._rng)
            results.append((record, ok))
        return results


class GridDciDecoder:
    """IQ-fidelity backend: real polar decodes over a captured grid.

    Two receiver-side optimisations (both absent from the paper's tool,
    both ablatable for the Fig 12 comparison):

    * ``use_energy_gate`` skips candidates whose REs carry only noise.
    * CCE claiming: CCEs carry at most one DCI, so a decoded DCI
      disqualifies every other candidate touching its CCEs.
    """

    def __init__(self, dci_cfg: DciSizeConfig, n_id: int,
                 noise_var: float, use_energy_gate: bool = True,
                 use_cce_claiming: bool = True,
                 equalize: bool = False) -> None:
        if noise_var <= 0:
            raise DciDecoderError(
                f"noise variance must be positive: {noise_var}")
        self.dci_cfg = dci_cfg
        self.n_id = n_id
        self.noise_var = noise_var
        self.use_energy_gate = use_energy_gate
        self.use_cce_claiming = use_cce_claiming
        self.equalize = equalize
        self._lock = threading.Lock()
        self.attempts = 0

    def decode_slot(self, grid: ResourceGrid, slot_index: int,
                    tracked: dict[int, TrackedUe],
                    claimed: set[int] | None = None) -> list[DecodedDci]:
        """Search every tracked UE's candidates in the captured grid.

        ``claimed`` may be a set shared across DCI threads so shards
        benefit from each other's successful decodes; per-element set
        mutation is atomic under the GIL, so no lock is needed for this
        advisory filter.
        """
        decoded: list[DecodedDci] = []
        attempts = 0
        if claimed is None:
            claimed = set()
        for rnti in sorted(tracked):
            ue = tracked[rnti]
            space = ue.search_space
            for level, count in space.candidates_per_level.items():
                if count == 0:
                    continue
                for start in space.candidate_cces(level, slot_index, rnti):
                    cces = frozenset(range(start, start + level))
                    if self.use_cce_claiming and cces & claimed:
                        continue
                    candidate = PdcchCandidate(first_cce=start,
                                               aggregation_level=level)
                    if self.use_energy_gate and not candidate_occupied(
                            grid, space.coreset, candidate,
                            self.noise_var):
                        continue
                    for fmt in (DciFormat.DL_1_1, DciFormat.UL_0_1):
                        attempts += 1
                        dci = try_decode_pdcch(
                            grid, self.dci_cfg, space.coreset, candidate,
                            fmt, rnti, self.n_id, self.noise_var,
                            slot_index=slot_index,
                            equalize=self.equalize)
                        if dci is not None:
                            decoded.append(DecodedDci(
                                dci=dci, aggregation_level=level))
                            if self.use_cce_claiming:
                                claimed.update(cces)
                            break
        with self._lock:
            self.attempts += attempts
        return decoded

    def blind_decode_common(self, grid: ResourceGrid, slot_index: int,
                            common_space) -> list[DecodedDci]:
        """Blind-search the common space, recovering RNTIs via CRC XOR.

        Used for MSG 4 discovery: the payload length of format 1_1 under
        the cell's size config is known from SIB 1, so each candidate is
        decoded without an RNTI hypothesis and the CRC mask yields the
        TC-RNTI (paper section 3.1.2).
        """
        from repro.phy.pdcch import decode_candidate_bits, dci_recover_rnti
        from repro.phy.dci import unpack
        from repro.constants import DCI_CRC_LEN

        decoded: list[DecodedDci] = []
        payload_len = dci_payload_size(DciFormat.DL_1_1, self.dci_cfg)
        for level, count in common_space.candidates_per_level.items():
            if count == 0:
                continue
            for start in common_space.candidate_cces(level, slot_index):
                candidate = PdcchCandidate(first_cce=start,
                                           aggregation_level=level)
                if not candidate_occupied(grid, common_space.coreset,
                                          candidate, self.noise_var):
                    continue
                bits = decode_candidate_bits(
                    grid, common_space.coreset, candidate, payload_len,
                    self.n_id, self.noise_var)
                if bits is None:
                    continue
                rnti = dci_recover_rnti(bits)
                if rnti is None or rnti == 0:
                    continue
                try:
                    dci = unpack(bits[:-DCI_CRC_LEN], DciFormat.DL_1_1,
                                 self.dci_cfg, rnti)
                except DciError:
                    continue
                decoded.append(DecodedDci(dci=dci, aggregation_level=level,
                                          from_common_space=True))
        return decoded
