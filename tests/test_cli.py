"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCells:
    def test_lists_all_profiles(self, capsys):
        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        for name in ("srsran", "mosolab", "amarisoft", "tmobile-n25",
                     "tmobile-n71"):
            assert name in out


class TestSniff:
    def test_basic_session(self, capsys):
        assert main(["sniff", "--seconds", "0.5", "--ues", "1",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "cell srsran" in out
        assert "UE 0x" in out
        assert "Mbps DL" in out

    def test_profile_selection(self, capsys):
        assert main(["sniff", "--profile", "tmobile-n25",
                     "--seconds", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "FDD" in out

    def test_report_flag(self, capsys):
        assert main(["sniff", "--seconds", "0.5", "--ues", "2",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry session" in out
        assert "Per-UE telemetry" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        assert main(["sniff", "--seconds", "0.5", "--json",
                     str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert "rnti" in record and "tbs_bits" in record

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["sniff", "--profile", "fantasy"])

    def test_runtime_stats_prints_drops_column(self, capsys):
        assert main(["sniff", "--seconds", "0.3", "--ues", "1",
                     "--runtime-stats"]) == 0
        out = capsys.readouterr().out
        assert "runtime [inline]" in out
        assert "drops" in out

    def test_obs_jsonl_stream(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["sniff", "--seconds", "0.3", "--ues", "1",
                     "--obs", f"jsonl:{path}"]) == 0
        from repro.obs import validate_events
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert events
        assert validate_events(events) == []
        assert events[0]["name"] == "session.start"
        assert events[0]["run_id"] == "run-00000000"
        assert events[-1]["name"] == "session.end"

    def test_obs_counters_prints_exposition(self, capsys):
        assert main(["sniff", "--seconds", "0.3", "--ues", "1",
                     "--obs", "counters"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE nrscope_stage_span_duration_us histogram" in out

    def test_obs_bad_spec(self, capsys):
        assert main(["sniff", "--seconds", "0.1",
                     "--obs", "statsd:nowhere"]) == 2
        assert "unknown obs reporter" in capsys.readouterr().err


class TestObs:
    def _stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["sniff", "--seconds", "0.5", "--ues", "2",
                     "--snr-db", "6.0",
                     "--obs", f"jsonl:{path}"]) == 0
        return path

    def test_validate_ok(self, tmp_path, capsys):
        path = self._stream(tmp_path)
        capsys.readouterr()
        assert main(["obs", "validate", str(path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_validate_rejects_broken_stream(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"v":1,"seq":0,"run_id":"r","kind":"event","name":"a"}\n'
            '{"v":1,"seq":0,"run_id":"r","kind":"event","name":"b"}\n')
        assert main(["obs", "validate", str(path)]) == 1
        assert "seq" in capsys.readouterr().out

    def test_topn_reports_clusters(self, tmp_path, capsys):
        path = self._stream(tmp_path)
        capsys.readouterr()
        json_path = tmp_path / "topn.json"
        md_path = tmp_path / "topn.md"
        assert main(["obs", "topn", str(path), "--top", "5",
                     "--json", str(json_path),
                     "--md", str(md_path)]) == 0
        document = json.loads(json_path.read_text())
        assert document["v"] == 1
        assert document["failures_total"] >= 0
        assert "# Failure clusters (TopN)" in md_path.read_text()

    def test_topn_stdout_markdown(self, tmp_path, capsys):
        path = self._stream(tmp_path)
        capsys.readouterr()
        assert main(["obs", "topn", str(path)]) == 0
        assert "Failure clusters" in capsys.readouterr().out

    def test_missing_stream_errors(self, tmp_path, capsys):
        assert main(["obs", "topn",
                     str(tmp_path / "absent.jsonl")]) == 2
        assert "no such event stream" in capsys.readouterr().err


class TestFigure:
    def test_fig10(self, capsys):
        assert main(["figure", "fig10"]) == 0
        assert "active time" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main(["figure", "fig11"]) == 0
        assert "per second" in capsys.readouterr().out

    def test_quick_fig7(self, capsys):
        assert main(["figure", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 7a" in out and "Fig 7b" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSurvey:
    def test_survey_stats(self, capsys):
        assert main(["survey", "--seconds", "120"]) == 0
        out = capsys.readouterr().out
        assert "distinct UEs" in out
        assert "p90" in out
