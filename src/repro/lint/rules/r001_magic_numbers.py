"""R001: magic 3GPP numeric literals outside the constants modules.

Values like 1024 (SFN modulus), 0xFFFF (SI-RNTI / max RNTI) or the
38.212 CRC generator polynomials are load-bearing protocol facts.  When
one appears inline in an expression, the reader cannot tell a protocol
constant from an arbitrary number — and two call sites can silently
disagree.  They belong in ``constants.py`` / ``mcs_tables.py`` or in a
named module-level constant next to their single user.

Exemptions:

* ``constants.py`` and ``mcs_tables.py`` themselves (any directory, so
  fixtures can mirror the layout);
* the right-hand side of a module-level assignment whose targets are
  all ``UPPER_CASE`` names — that *is* naming the constant.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import constant_definition_spans, float_value, \
    int_value
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: value -> preferred spelling, from repro.constants / TS 38.212.
MAGIC_NUMBERS: dict[int, str] = {
    1023: "SFN_MODULO - 1 (frame numbers run 0..1023)",
    1024: "SFN_MODULO",
    65534: "P_RNTI",
    65535: "MAX_RNTI / SI_RNTI",
    65537: "the 38.213 Y_p modulus - give it a named constant",
    0x864CFB: "the CRC24A generator polynomial (phy.crc.POLYNOMIALS)",
    0x800063: "the CRC24B generator polynomial (phy.crc.POLYNOMIALS)",
    0xB2B117: "the CRC24C generator polynomial (phy.crc.POLYNOMIALS)",
    0x1021: "the CRC16 generator polynomial (phy.crc.POLYNOMIALS)",
    0x621: "the CRC11 generator polynomial (phy.crc.POLYNOMIALS)",
    1277992: "MAX_TBS_BITS",
}

#: Slot durations (TTI lengths) at 30/60 kHz SCS.  Spelling one inline
#: hard-codes the numerology; route through
#: ``phy.numerology.slot_duration_s`` or ``TTI_DURATION_S`` instead.
#: (1e-3 — the 15 kHz slot — is excluded: far too generic a float.)
MAGIC_FLOATS: dict[float, str] = {
    0.5e-3: "slot_duration_s(30) / TTI_DURATION_S[30]",
    0.25e-3: "slot_duration_s(60) / TTI_DURATION_S[60]",
}

#: Files allowed to spell these values out: the constants homes.
ALLOWED_BASENAMES = {"constants.py", "mcs_tables.py"}


@register
class MagicNumberRule(Rule):
    """Flag inline uses of protocol-defining numeric literals."""

    rule_id = "R001"
    title = "magic 3GPP numeric literal outside a constants module"

    def applies(self, rel: str) -> bool:
        return rel.rsplit("/", 1)[-1] not in ALLOWED_BASENAMES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        spans = constant_definition_spans(ctx.tree)

        def named(node: ast.AST) -> bool:
            line = node.lineno
            return any(start <= line <= end for start, end in spans)

        for node in ast.walk(ctx.tree):
            value = int_value(node)
            if value is not None and value in MAGIC_NUMBERS \
                    and not named(node):
                yield self.finding(
                    ctx, node,
                    f"magic 3GPP literal {value}: use "
                    f"{MAGIC_NUMBERS[value]} instead of spelling it "
                    f"inline")
                continue
            duration = float_value(node)
            if duration is not None and duration in MAGIC_FLOATS \
                    and not named(node):
                yield self.finding(
                    ctx, node,
                    f"magic slot duration {duration}: use "
                    f"{MAGIC_FLOATS[duration]} so the numerology stays "
                    f"in one place")
