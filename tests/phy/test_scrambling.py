"""Tests for repro.phy.scrambling: Gold sequences and channel seeds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.scrambling import (
    ScramblingError,
    clear_sequence_cache,
    gold_sequence,
    pdcch_scrambling_init,
    pdsch_scrambling_init,
    scramble_bits,
)


class TestGoldSequence:
    def test_deterministic(self):
        a = gold_sequence(12345, 100)
        b = gold_sequence(12345, 100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gold_sequence(1, 200)
        b = gold_sequence(2, 200)
        assert not np.array_equal(a, b)

    def test_prefix_consistency_with_cache(self):
        clear_sequence_cache()
        long = gold_sequence(777, 500)
        short = gold_sequence(777, 100)
        assert np.array_equal(long[:100], short)

    def test_roughly_balanced(self):
        # A scrambling sequence must look random: ~50% ones.
        seq = gold_sequence(0x5AD, 10000)
        assert 0.45 < seq.mean() < 0.55

    def test_low_autocorrelation(self):
        seq = gold_sequence(0xBEEF, 4096).astype(float) * 2 - 1
        shifted = np.roll(seq, 31)
        assert abs(np.mean(seq * shifted)) < 0.1

    def test_zero_length(self):
        assert gold_sequence(1, 0).size == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ScramblingError):
            gold_sequence(1, -1)
        with pytest.raises(ScramblingError):
            gold_sequence(1 << 31, 10)


class TestInits:
    def test_pdcch_init_formula(self):
        assert pdcch_scrambling_init(500) == 500
        assert pdcch_scrambling_init(500, 0x4296) == ((0x4296 << 16) + 500)

    def test_pdcch_init_range_checks(self):
        with pytest.raises(ScramblingError):
            pdcch_scrambling_init(1 << 16)
        with pytest.raises(ScramblingError):
            pdcch_scrambling_init(0, 1 << 16)

    def test_pdsch_init_distinct_per_codeword(self):
        a = pdsch_scrambling_init(0x17, 0, 500)
        b = pdsch_scrambling_init(0x17, 1, 500)
        assert a != b

    def test_pdsch_rejects_bad_codeword(self):
        with pytest.raises(ScramblingError):
            pdsch_scrambling_init(1, 2, 500)


class TestScrambleBits:
    def test_involution(self, rng):
        bits = rng.integers(0, 2, 333).astype(np.uint8)
        once = scramble_bits(bits, 999)
        assert np.array_equal(scramble_bits(once, 999), bits)

    def test_changes_bits(self, rng):
        bits = np.zeros(200, dtype=np.uint8)
        scrambled = scramble_bits(bits, 4321)
        assert scrambled.sum() > 50

    def test_rejects_2d(self):
        with pytest.raises(ScramblingError):
            scramble_bits(np.zeros((2, 3), dtype=np.uint8), 1)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 400))
    @settings(max_examples=30, deadline=None)
    def test_property_involution(self, c_init, length):
        bits = (np.arange(length) % 2).astype(np.uint8)
        assert np.array_equal(
            scramble_bits(scramble_bits(bits, c_init), c_init), bits)
