"""R012: obs emissions must conform to the declared event registry.

``obs validate`` checks streams after the fact; this rule checks the
*call sites* before the code ever runs.  Every
``<obs>.emit/count/timing/span(...)`` call and every deferred
``events.append((name, {...}))`` queue entry is collected
(:mod:`repro.lint.obsconform`) and verified against
:data:`repro.obs.events.KNOWN_EVENTS`:

* the event name must be a literal declared in the registry;
* the emitting method's kind must match the declaration (a counter
  emitted via ``.emit()`` clusters wrong in every downstream view);
* the declaration's required fields must all be passed;
* passed fields must be declared (spec extras or the shared
  ``OPTIONAL_FIELDS``) — a misspelled field silently vanishes from
  TopN grouping;
* string label fields (``stage``, ``reason``, ...) must not be built
  dynamically — they feed fixed-cardinality counter labels
  (DESIGN.md §7).

Forwarding relays (dynamic name plus ``**fields``, the runtime's
commit-time drain of the deferred queue) are exempt: they re-emit an
event that was declared and checked at its true origin.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.obsconform import check_module
from repro.lint.registry import Rule, register
from repro.obs.events import KNOWN_EVENTS


@register
class ObsConformanceRule(Rule):
    """Flag emission sites that violate the KNOWN_EVENTS registry."""

    rule_id = "R012"
    title = "obs emission violates the declared event registry"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for site, issues in check_module(ctx.tree, KNOWN_EVENTS):
            for issue in issues:
                node = ast.Constant(value=None)
                node.lineno = issue.lineno
                node.col_offset = issue.col
                yield self.finding(ctx, node, issue.detail)
