"""Tests for repro.phy.coreset: CORESETs, CCE mapping, search spaces."""

import pytest

from repro.phy.coreset import (
    Coreset,
    CoresetError,
    SearchSpace,
    coreset0_for_bandwidth,
)


def make_coreset(**overrides):
    base = dict(coreset_id=1, first_prb=0, n_prb=48, n_symbols=1)
    base.update(overrides)
    return Coreset(**base)


class TestCoreset:
    def test_counts(self):
        coreset = make_coreset()
        assert coreset.n_regs == 48
        assert coreset.n_cces == 8

    def test_two_symbol_counts(self):
        coreset = make_coreset(n_prb=24, n_symbols=2)
        assert coreset.n_regs == 48
        assert coreset.n_cces == 8

    def test_validation(self):
        with pytest.raises(CoresetError):
            make_coreset(n_prb=5)  # narrower than one CCE
        with pytest.raises(CoresetError):
            make_coreset(n_symbols=4)
        with pytest.raises(CoresetError):
            make_coreset(n_prb=49)  # REGs not multiple of 6

    def test_cce_regs_disjoint_and_complete(self):
        coreset = make_coreset()
        seen = set()
        for cce in range(coreset.n_cces):
            regs = coreset.cce_to_regs(cce)
            assert len(regs) == 6
            assert not seen & set(regs), "CCEs must not share REGs"
            seen.update(regs)
        assert seen == set(range(coreset.n_regs))

    def test_non_interleaved_is_contiguous(self):
        coreset = make_coreset(interleaved=False)
        assert coreset.cce_to_regs(0) == list(range(6))
        assert coreset.cce_to_regs(1) == list(range(6, 12))

    def test_interleaved_spreads(self):
        # Consecutive CCEs must land on non-adjacent REG bundles, unlike
        # the non-interleaved mapping (CCE 0 itself maps to bundle 0 in
        # both, so compare CCE 1).
        interleaved = make_coreset(interleaved=True)
        plain = make_coreset(interleaved=False)
        assert interleaved.cce_to_regs(1) != plain.cce_to_regs(1)

    def test_cce_out_of_range(self):
        with pytest.raises(CoresetError):
            make_coreset().cce_to_regs(8)

    def test_reg_positions(self):
        coreset = make_coreset(first_prb=10, n_prb=24, n_symbols=2)
        assert coreset.reg_to_position(0) == (10, 0)
        assert coreset.reg_to_position(1) == (10, 1)
        assert coreset.reg_to_position(2) == (11, 0)
        with pytest.raises(CoresetError):
            coreset.reg_to_position(48)


class TestSearchSpace:
    def _space(self, common=True, coreset=None):
        return SearchSpace(search_space_id=1,
                           coreset=coreset or make_coreset(),
                           is_common=common,
                           candidates_per_level={1: 4, 2: 4, 4: 2, 8: 1})

    def test_common_candidates_deterministic(self):
        space = self._space(common=True)
        a = space.candidate_cces(2, slot_index=0)
        b = space.candidate_cces(2, slot_index=0)
        assert a == b

    def test_candidates_aligned_to_level(self):
        space = self._space(common=True)
        for level in (1, 2, 4, 8):
            for start in space.candidate_cces(level, 3):
                assert start % level == 0
                assert start + level <= space.coreset.n_cces

    def test_ue_specific_requires_rnti(self):
        space = self._space(common=False)
        with pytest.raises(CoresetError):
            space.candidate_cces(2, 0, rnti=0)

    def test_ue_specific_varies_with_rnti(self):
        space = self._space(common=False)
        seen = {tuple(space.candidate_cces(2, 5, rnti=r))
                for r in range(0x100, 0x140)}
        assert len(seen) > 1

    def test_ue_specific_varies_with_slot(self):
        space = self._space(common=False)
        seen = {tuple(space.candidate_cces(2, s, rnti=0x4296))
                for s in range(16)}
        assert len(seen) > 1

    def test_level_larger_than_coreset_gives_nothing(self):
        space = self._space()
        assert space.candidate_cces(16, 0) == []

    def test_invalid_level_rejected(self):
        space = self._space()
        with pytest.raises(CoresetError):
            space.candidate_cces(3, 0)
        with pytest.raises(CoresetError):
            SearchSpace(1, make_coreset(), True, {5: 1})


class TestCoreset0:
    def test_wide_carrier(self):
        coreset = coreset0_for_bandwidth(51)
        assert coreset.n_prb == 48
        assert coreset.coreset_id == 0

    def test_narrow_carrier(self):
        coreset = coreset0_for_bandwidth(25)
        assert coreset.n_prb == 24
        assert coreset.n_symbols == 2

    def test_too_narrow(self):
        with pytest.raises(CoresetError):
            coreset0_for_bandwidth(20)
