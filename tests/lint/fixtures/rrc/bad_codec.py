"""R002 fixture: pack/unpack width drift in a bit codec."""


class Message:
    """Packs 7 bits, unpacks 6: the silent corruption R002 exists for."""

    def __init__(self, a, b):
        self.a = a
        self.b = b

    def encode(self, writer):
        writer.write(self.a, 4)
        writer.write(self.b, 7)
        return writer.to_bits()

    @classmethod
    def decode_fields(cls, reader):
        return cls(a=reader.read(4), b=reader.read(6))


def encode_channel(bits):
    return crc_attach(bits, "crc24a")  # noqa: F821 - fixture, never run


def decode_channel(bits):
    return crc_check(bits, "crc24b")  # noqa: F821 - fixture, never run
