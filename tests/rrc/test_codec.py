"""Tests for the RRC bit codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrc.codec import BitReader, BitWriter, CodecError


class TestBitWriter:
    def test_msb_first(self):
        bits = BitWriter().write(0b101, 3).to_bits()
        assert list(bits) == [1, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write(4, 2)
        with pytest.raises(CodecError):
            BitWriter().write(-1, 4)

    def test_signed_range(self):
        writer = BitWriter().write_signed(-110, 9)
        assert BitReader(writer.to_bits()).read_signed(9) == -110
        with pytest.raises(CodecError):
            BitWriter().write_signed(256, 9)

    def test_bool(self):
        bits = BitWriter().write_bool(True).write_bool(False).to_bits()
        assert list(bits) == [1, 0]

    def test_bytes_padding(self):
        data = BitWriter().write(0xFF, 8).write(1, 1).to_bytes_padded()
        assert data == bytes([0xFF, 0x80])

    def test_bit_count(self):
        writer = BitWriter().write(0, 5).write(1, 3)
        assert writer.bit_count == 8


class TestBitReader:
    def test_reads_from_bytes(self):
        reader = BitReader(bytes([0b10110000]))
        assert reader.read(4) == 0b1011

    def test_truncation_detected(self):
        reader = BitReader(np.array([1, 0, 1], dtype=np.uint8))
        with pytest.raises(CodecError):
            reader.read(4)

    def test_remaining(self):
        reader = BitReader(np.zeros(10, dtype=np.uint8))
        reader.read(3)
        assert reader.remaining == 7

    def test_rejects_non_binary(self):
        with pytest.raises(CodecError):
            BitReader(np.array([0, 3], dtype=np.uint8))

    @given(st.lists(st.tuples(st.integers(1, 24), st.data()), min_size=1,
                    max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_property_write_read_roundtrip(self, specs):
        writer = BitWriter()
        expected = []
        for width, data in specs:
            value = data.draw(st.integers(0, (1 << width) - 1))
            writer.write(value, width)
            expected.append((value, width))
        reader = BitReader(writer.to_bits())
        for value, width in expected:
            assert reader.read(width) == value
