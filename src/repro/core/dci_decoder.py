"""Per-slot DCI extraction for the tracked UE list (paper section 3.2.1).

Two backends share one interface:

* :class:`GridDciDecoder` (iq fidelity) - runs the real PDCCH decode
  chain over a captured resource grid: for every tracked RNTI it
  enumerates that UE's search-space candidates for the slot and attempts
  a polar decode + CRC check per format.
* :class:`RecordDciDecoder` (message fidelity) - walks the slot's DCI
  records and applies the calibrated decode-failure model, producing the
  same outputs orders of magnitude faster.

Both return :class:`DecodedDci` lists; everything downstream (grants,
HARQ tracking, throughput) is backend-agnostic.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import DCI_CRC_LEN
from repro.core.decode_model import counter_uniform, decode_succeeds, \
    pdcch_bler
from repro.core.rach_sniffer import TrackedUe
from repro.phy import polar
from repro.phy.coreset import SearchSpace
from repro.phy.dci import Dci, DciError, DciFormat, DciSizeConfig, \
    dci_payload_size, unpack
from repro.phy.modulation import QPSK, demodulate_soft_batch
from repro.phy.numerology import slots_per_frame
from repro.phy.pdcch import BITS_PER_CCE, PdcchCandidate, \
    candidate_energies_batch, candidate_occupied, dci_crc_check_batch, \
    estimate_channel, gather_candidates_batch, occupancy_threshold, \
    try_decode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.phy.scrambling import descramble_llrs, pdcch_scrambling_init
from repro.gnb.gnb import DciRecord


class DciDecoderError(ValueError):
    """Raised for backend misuse."""


@dataclass(frozen=True)
class DecodedDci:
    """One successfully decoded DCI at the sniffer."""

    dci: Dci
    aggregation_level: int
    from_common_space: bool = False


@lru_cache(maxsize=65536)
def _ue_entry_plan(space: SearchSpace, rnti: int, reduced_slot: int) \
        -> tuple[tuple[int, int, bool, int], ...]:
    """One UE's candidate skeleton: ``(level, start, valid, cce_bits)``.

    The 38.213 hash repeats every frame, so the per-slot enumeration a
    batched decode performs for *every* tracked UE collapses to one
    cache hit per UE after the first frame.  Keyed on the search space
    itself (hashable, with an insertion-order-sensitive hash) so the
    plan preserves the scalar path's exact iteration order.
    """
    plan: list[tuple[int, int, bool, int]] = []
    n_cce = space.coreset.n_cces
    for level, count in space.candidates_per_level.items():
        if count == 0:
            continue
        for start in space.candidate_cces(level, reduced_slot, rnti):
            plan.append((level, start, start + level <= n_cce,
                         ((1 << level) - 1) << start))
    return tuple(plan)


class RecordDciDecoder:
    """Message-fidelity backend driven by the calibrated BLER model."""

    def __init__(self, sniffer_snr_db: float, seed: int = 0) -> None:
        self.sniffer_snr_db = sniffer_snr_db
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.attempts = 0
        self.misses = 0

    def decode_slot(self, records: list[DciRecord],
                    tracked: dict[int, TrackedUe] | frozenset[int],
                    miss_log: list[tuple[int, int, int]] | None = None) \
            -> list[DecodedDci]:
        """Decode this slot's UE-search-space DCIs for tracked RNTIs.

        ``tracked`` only ever answers RNTI membership here, so it may
        be the live tracked-UE dict (inline/threaded) or the immutable
        ``frozenset`` of RNTIs a process payload ships (R009: the live
        table must not cross the pickle boundary).

        Runs on the slot runtime's parallel stage, so each decision is a
        counter-based draw keyed on (seed, slot, rnti, CCE, level,
        direction) rather than a shared-RNG state advance: the outcome
        is identical whatever order and thread the slots run on.

        ``miss_log``, when given, receives one ``(slot_index, rnti,
        level)`` tuple per missed decode in record order — the
        observability bus turns these into ``dci.miss`` events, and a
        payload executor ships them back over the wire.
        """
        decoded: list[DecodedDci] = []
        attempts = misses = 0
        for record in records:
            if record.search_space != "ue":
                continue
            if record.rnti not in tracked:
                continue
            attempts += 1
            level = record.candidate.aggregation_level
            draw = counter_uniform(
                self.seed, record.slot_index, record.rnti,
                record.candidate.first_cce, level,
                int(record.dci.format == DciFormat.DL_1_1))
            if draw >= pdcch_bler(self.sniffer_snr_db, level):
                decoded.append(DecodedDci(dci=record.dci,
                                          aggregation_level=level))
            else:
                misses += 1
                if miss_log is not None:
                    miss_log.append((record.slot_index, record.rnti,
                                     level))
        with self._lock:
            self.attempts += attempts
            self.misses += misses
        return decoded

    def decode_common(self, records: list[DciRecord]) \
            -> list[tuple[DciRecord, bool]]:
        """Attempt every common-search-space DCI (SIB1/MSG 4 scheduling).

        Returns (record, decoded?) pairs; the caller turns successful
        non-SI decodes into RNTI discoveries.
        """
        results = []
        for record in records:
            if record.search_space != "common":
                continue
            level = record.candidate.aggregation_level
            ok = decode_succeeds(self.sniffer_snr_db, level, self._rng)
            results.append((record, ok))
        return results

    def checkpoint_state(self) -> dict:
        """Picklable snapshot (the lock is rebuilt on restore)."""
        return {"sniffer_snr_db": self.sniffer_snr_db,
                "seed": self.seed,
                "rng_state": self._rng.bit_generator.state,
                "attempts": self.attempts, "misses": self.misses}

    @classmethod
    def from_state(cls, state: dict) -> "RecordDciDecoder":
        """Rebuild a decoder mid-stream from :meth:`checkpoint_state`."""
        decoder = cls(sniffer_snr_db=state["sniffer_snr_db"],
                      seed=state["seed"])
        decoder._rng.bit_generator.state = state["rng_state"]
        decoder.attempts = state["attempts"]
        decoder.misses = state["misses"]
        return decoder


class GridDciDecoder:
    """IQ-fidelity backend: real polar decodes over a captured grid.

    Two receiver-side optimisations (both absent from the paper's tool,
    both ablatable for the Fig 12 comparison):

    * ``use_energy_gate`` skips candidates whose REs carry only noise.
    * CCE claiming: CCEs carry at most one DCI, so a decoded DCI
      disqualifies every other candidate touching its CCEs.
    """

    def __init__(self, dci_cfg: DciSizeConfig, n_id: int,
                 noise_var: float, use_energy_gate: bool = True,
                 use_cce_claiming: bool = True,
                 equalize: bool = False) -> None:
        if noise_var <= 0:
            raise DciDecoderError(
                f"noise variance must be positive: {noise_var}")
        self.dci_cfg = dci_cfg
        self.n_id = n_id
        self.noise_var = noise_var
        self.use_energy_gate = use_energy_gate
        self.use_cce_claiming = use_cce_claiming
        self.equalize = equalize
        self._lock = threading.Lock()
        self.attempts = 0

    def decode_slot(self, grid: ResourceGrid, slot_index: int,
                    tracked: dict[int, TrackedUe],
                    claimed: set[int] | None = None) -> list[DecodedDci]:
        """Search every tracked UE's candidates in the captured grid.

        ``claimed`` may be a set shared across DCI threads so shards
        benefit from each other's successful decodes; per-element set
        mutation is atomic under the GIL, so no lock is needed for this
        advisory filter.
        """
        decoded: list[DecodedDci] = []
        attempts = 0
        if claimed is None:
            claimed = set()
        for rnti in sorted(tracked):
            ue = tracked[rnti]
            space = ue.search_space
            for level, count in space.candidates_per_level.items():
                if count == 0:
                    continue
                for start in space.candidate_cces(level, slot_index, rnti):
                    cces = frozenset(range(start, start + level))
                    if self.use_cce_claiming and cces & claimed:
                        continue
                    candidate = PdcchCandidate(first_cce=start,
                                               aggregation_level=level)
                    if self.use_energy_gate and not candidate_occupied(
                            grid, space.coreset, candidate,
                            self.noise_var):
                        continue
                    for fmt in (DciFormat.DL_1_1, DciFormat.UL_0_1):
                        attempts += 1
                        dci = try_decode_pdcch(
                            grid, self.dci_cfg, space.coreset, candidate,
                            fmt, rnti, self.n_id, self.noise_var,
                            slot_index=slot_index,
                            equalize=self.equalize)
                        if dci is not None:
                            decoded.append(DecodedDci(
                                dci=dci, aggregation_level=level))
                            if self.use_cce_claiming:
                                claimed.update(cces)
                            break
        with self._lock:
            self.attempts += attempts
        return decoded

    #: Wave sizing for the batched path.  Waves are cut by the
    #: CCE-claiming replay: a successful decode claims CCEs and may
    #: disqualify later candidates, so decoding *everything* up front
    #: wastes work proportional to the tracked-UE count.  A wave decodes
    #: the next chunk of still-eligible candidates under the claims
    #: known so far; wave members a new claim later skips are bounded
    #: waste (< one wave per success).  Waves grow geometrically: when
    #: claiming terminates the search early only a few small waves ran,
    #: while a gate-off full sweep quickly reaches the wide, fully
    #: amortized batches.
    BATCH_WAVE_INITIAL = 4
    BATCH_WAVE_MAX = 64
    #: Entries per lazy gather/energy chunk (Phase 2).
    BATCH_GATHER_CHUNK = 64

    def decode_slot_batch(self, grid: ResourceGrid, slot_index: int,
                          tracked: dict[int, TrackedUe],
                          claimed: set[int] | None = None) \
            -> list[DecodedDci]:
        """Batched :meth:`decode_slot`: same outputs, vectorized kernels.

        Candidates are stacked through the batched gather / demod /
        descramble / polar kernels in claim-aware waves, then the scalar
        control flow (CCE claiming, energy gate, per-format attempt
        accounting) is *replayed* over the precomputed blocks.  Decoded
        DCIs, claiming effects and the ``attempts`` counter are
        bit-identical to the per-candidate path (enforced by the
        equivalence tests); only the numpy dispatch count changes.
        """
        decoded: list[DecodedDci] = []
        attempts = 0
        if claimed is None:
            claimed = set()

        # Phase 1: enumerate candidates in exact scalar iteration order.
        # Each entry carries its CCE footprint as an int bitmask so the
        # replay's claim checks are single AND operations; the shared
        # ``claimed`` set stays the cross-shard interface.  Per-UE
        # skeletons come from the frame-periodic plan cache (the hash
        # only depends on the slot within its frame).
        reduced_slot = slot_index % slots_per_frame(30)
        entries: list[tuple[int, int, int, object, bool, int]] = []
        for rnti in sorted(tracked):
            space = tracked[rnti].search_space
            for level, start, valid, cce_bits in _ue_entry_plan(
                    space, rnti, reduced_slot):
                entries.append((rnti, level, start, space, valid,
                                cce_bits))
        if not entries:
            return decoded
        claimed_bits = 0
        for cce in claimed:
            claimed_bits |= 1 << cce

        # Phase 2: per-(CORESET, level) batched gather and energies,
        # computed lazily over chunks of consecutive entries.  Once
        # claiming saturates the CORESET the replay skips the tail on
        # claim bits alone, so at high tracked-UE counts most
        # candidates are never gathered at all (matching the scalar
        # path, which checks claims before touching the grid).  The
        # gathered rows are kept for the waves, so symbols leave the
        # grid exactly once.
        threshold = occupancy_threshold(self.noise_var)
        energies = np.zeros(len(entries), dtype=np.float64)
        values_by_idx: dict[int, np.ndarray] = {}
        c_init = pdcch_scrambling_init(self.n_id)
        gather_upto = 0

        def ensure_gathered(upto: int) -> None:
            """Gather + energy-measure entries up to at least ``upto``
            (one chunk ahead, grouped per (CORESET, level))."""
            nonlocal gather_upto
            if upto < gather_upto:
                return
            hi = min(len(entries),
                     max(upto + 1, gather_upto + self.BATCH_GATHER_CHUNK))
            chunk_groups: dict[tuple[object, int], list[int]] = {}
            for idx in range(gather_upto, hi):
                _, level, _, space, valid, _ = entries[idx]
                if valid:
                    chunk_groups.setdefault((space.coreset, level),
                                            []).append(idx)
            for (coreset, level), idxs in chunk_groups.items():
                starts = np.array([entries[i][2] for i in idxs],
                                  dtype=np.intp)
                values = gather_candidates_batch(grid, coreset, level,
                                                 starts)
                energies[idxs] = candidate_energies_batch(values)
                for row, i in enumerate(idxs):
                    values_by_idx[i] = values[row]
            gather_upto = hi

        def eligible(idx: int) -> bool:
            """Would the scalar path demodulate entry ``idx`` under the
            claims known right now?"""
            _, _, _, _, valid, cce_bits = entries[idx]
            if not valid:
                return False
            if self.use_cce_claiming and cce_bits & claimed_bits:
                return False
            if self.use_energy_gate:
                ensure_gathered(idx)
                if not energies[idx] > threshold:
                    return False
            return True

        blocks: dict[tuple[int, DciFormat], np.ndarray] = {}
        crc_ok: dict[tuple[int, DciFormat], bool] = {}
        demodulated: set[int] = set()
        wave_size = self.BATCH_WAVE_INITIAL

        def decode_wave(from_idx: int) -> None:
            """Batch-demodulate and polar-decode the next eligible
            chunk starting at ``from_idx`` (Phases 3+4, per wave)."""
            nonlocal wave_size
            wave: list[int] = []
            for idx in range(from_idx, len(entries)):
                if idx in demodulated or not eligible(idx):
                    continue
                ensure_gathered(idx)  # demod values when the gate is off
                wave.append(idx)
                if len(wave) >= wave_size:
                    break
            wave_size = min(wave_size * 2, self.BATCH_WAVE_MAX)
            demodulated.update(wave)
            # Phase 3: batched demod + descramble per (CORESET, level).
            wave_groups: dict[tuple[object, int], list[int]] = {}
            for idx in wave:
                _, level, _, space, _, _ = entries[idx]
                wave_groups.setdefault((space.coreset, level),
                                       []).append(idx)
            llrs_by_idx: dict[int, np.ndarray] = {}
            for (coreset, level), idxs in wave_groups.items():
                sub = np.stack([values_by_idx[i] for i in idxs])
                if self.equalize:
                    gains = np.array(
                        [estimate_channel(
                            grid, coreset,
                            PdcchCandidate(first_cce=entries[i][2],
                                           aggregation_level=level),
                            self.n_id, slot_index) for i in idxs],
                        dtype=np.complex128)
                    sub = sub / gains[:, None]
                    # Demodulating at unit noise then dividing per row
                    # is the scalar (d1-d0)/noise_var to the last bit:
                    # x/1.0 is exact, so each LLR still sees one
                    # division by its effective noise variance.
                    nv_eff = np.maximum(
                        self.noise_var / np.maximum(np.abs(gains) ** 2,
                                                    1e-9), 1e-12)
                    llrs = demodulate_soft_batch(sub, QPSK, 1.0)
                    llrs = llrs / nv_eff[:, None]
                else:
                    llrs = demodulate_soft_batch(
                        sub, QPSK, max(self.noise_var, 1e-12))
                llrs = descramble_llrs(llrs, c_init)
                for row, i in enumerate(idxs):
                    llrs_by_idx[i] = llrs[row]
            # Phase 4: batched polar per level — both DCI formats share
            # the level's mother code, so they ride one joint SC
            # traversal instead of one call per format.
            for (_, level), idxs in wave_groups.items():
                n_coded = level * BITS_PER_CCE
                fmts = []
                codes = []
                for fmt in (DciFormat.DL_1_1, DciFormat.UL_0_1):
                    k = dci_payload_size(fmt, self.dci_cfg) + DCI_CRC_LEN
                    if k <= n_coded:
                        fmts.append(fmt)
                        codes.append(polar.construct(k, n_coded))
                if not fmts:
                    continue
                matrix = np.stack([llrs_by_idx[i] for i in idxs])
                outs = polar.decode_batch_joint(matrix, tuple(codes))
                # The CRC verdicts ride along in one GF(2) matrix
                # product per format (identical booleans to the serial
                # per-attempt check the replay used to run).
                rntis = np.array([entries[i][0] for i in idxs],
                                 dtype=np.int64)
                for fmt, out in zip(fmts, outs):
                    oks = dci_crc_check_batch(out, rntis)
                    for row, i in enumerate(idxs):
                        blocks[(i, fmt)] = out[row]
                        crc_ok[(i, fmt)] = bool(oks[row])

        # Phase 5: replay the scalar control flow, decoding lazily in
        # claim-aware waves.
        for idx, (rnti, level, start, _, valid, cce_bits) \
                in enumerate(entries):
            if not valid:
                if not self.use_energy_gate:
                    attempts += 2  # both formats tried, both fail early
                continue
            if self.use_cce_claiming and cce_bits & claimed_bits:
                continue
            if self.use_energy_gate:
                ensure_gathered(idx)
                if not energies[idx] > threshold:
                    continue
            if idx not in demodulated:
                decode_wave(idx)
            for fmt in (DciFormat.DL_1_1, DciFormat.UL_0_1):
                attempts += 1
                block = blocks.get((idx, fmt))
                dci = None
                if block is not None and crc_ok[(idx, fmt)]:
                    try:
                        dci = unpack(block[:-DCI_CRC_LEN], fmt,
                                     self.dci_cfg, rnti)
                    except DciError:
                        dci = None
                if dci is not None:
                    decoded.append(DecodedDci(dci=dci,
                                              aggregation_level=level))
                    if self.use_cce_claiming:
                        claimed_bits |= cce_bits
                        claimed.update(range(start, start + level))
                    break
        with self._lock:
            self.attempts += attempts
        return decoded

    def blind_decode_common(self, grid: ResourceGrid, slot_index: int,
                            common_space) -> list[DecodedDci]:
        """Blind-search the common space, recovering RNTIs via CRC XOR.

        Used for MSG 4 discovery: the payload length of format 1_1 under
        the cell's size config is known from SIB 1, so each candidate is
        decoded without an RNTI hypothesis and the CRC mask yields the
        TC-RNTI (paper section 3.1.2).
        """
        from repro.phy.pdcch import decode_candidate_bits, dci_recover_rnti
        from repro.phy.dci import unpack
        from repro.constants import DCI_CRC_LEN

        decoded: list[DecodedDci] = []
        payload_len = dci_payload_size(DciFormat.DL_1_1, self.dci_cfg)
        for level, count in common_space.candidates_per_level.items():
            if count == 0:
                continue
            for start in common_space.candidate_cces(level, slot_index):
                candidate = PdcchCandidate(first_cce=start,
                                           aggregation_level=level)
                if not candidate_occupied(grid, common_space.coreset,
                                          candidate, self.noise_var):
                    continue
                bits = decode_candidate_bits(
                    grid, common_space.coreset, candidate, payload_len,
                    self.n_id, self.noise_var)
                if bits is None:
                    continue
                rnti = dci_recover_rnti(bits)
                if rnti is None or rnti == 0:
                    continue
                try:
                    dci = unpack(bits[:-DCI_CRC_LEN], DciFormat.DL_1_1,
                                 self.dci_cfg, rnti)
                except DciError:
                    continue
                decoded.append(DecodedDci(dci=dci, aggregation_level=level,
                                          from_common_space=True))
        return decoded

    def checkpoint_state(self) -> dict:
        """Picklable snapshot (the lock is rebuilt on restore)."""
        return {"dci_cfg": self.dci_cfg, "n_id": self.n_id,
                "noise_var": self.noise_var,
                "use_energy_gate": self.use_energy_gate,
                "use_cce_claiming": self.use_cce_claiming,
                "equalize": self.equalize, "attempts": self.attempts}

    @classmethod
    def from_state(cls, state: dict) -> "GridDciDecoder":
        """Rebuild a decoder mid-stream from :meth:`checkpoint_state`."""
        decoder = cls(dci_cfg=state["dci_cfg"], n_id=state["n_id"],
                      noise_var=state["noise_var"],
                      use_energy_gate=state["use_energy_gate"],
                      use_cce_claiming=state["use_cce_claiming"],
                      equalize=state["equalize"])
        decoder.attempts = state["attempts"]
        return decoder


# ---------------------------------------------------- process-pool jobs
# Module-level so spawned ProcessExecutor workers can unpickle them.
# Each job rebuilds its decoder from plain config (the module-level
# kernel caches stay warm per worker process) and ships the counters
# back for the parent to merge — worker-side decoder state is discarded.

def pack_grid_for_decode(grid: ResourceGrid,
                         tracked: dict[int, TrackedUe]) -> dict:
    """Slim picklable snapshot of the grid's PDCCH control region.

    The decode job only ever reads CORESET resource elements, and every
    tracked CORESET sits in the slot's first few symbols — so the
    payload ships just those columns (2 of 14 symbols for the lab
    cells) instead of the whole carrier grid.  The worker rebuilds a
    full-size grid with zeros elsewhere; those REs are never read, so
    the decode stays byte-identical.
    """
    n_symbols = 0
    for ue in tracked.values():
        coreset = ue.search_space.coreset
        n_symbols = max(n_symbols,
                        coreset.first_symbol + coreset.n_symbols)
    n_symbols = min(grid.data.shape[1], n_symbols)
    return {"n_prb": grid.n_prb, "n_control_symbols": n_symbols,
            "data": np.ascontiguousarray(grid.data[:, :n_symbols]),
            "occupancy": np.ascontiguousarray(
                grid.occupancy[:, :n_symbols])}


def unpack_grid_for_decode(packed: dict) -> ResourceGrid:
    """Worker-side inverse of :func:`pack_grid_for_decode`."""
    grid = ResourceGrid(n_prb=packed["n_prb"])
    n_symbols = packed["n_control_symbols"]
    grid.data[:, :n_symbols] = packed["data"]
    grid.occupancy[:, :n_symbols] = packed["occupancy"]
    return grid


class _DecodeUe:
    """Worker-side stand-in for :class:`TrackedUe`.

    The grid decode paths only read ``search_space``; shipping the
    session bookkeeping (grant config, activity timestamps) across the
    process boundary every slot would dominate the payload cost.
    """

    __slots__ = ("search_space",)

    def __init__(self, search_space: SearchSpace) -> None:
        self.search_space = search_space


@lru_cache(maxsize=8)
def _packed_spaces(items: tuple) -> bytes:
    """Pickle an ``(rnti, search_space)`` tuple once per tracked-table
    generation — the table only changes when a UE joins or leaves, so
    steady-state packs are one hash lookup (spaces are hashable)."""
    return pickle.dumps(dict(items), protocol=pickle.HIGHEST_PROTOCOL)


def pack_tracked_for_decode(tracked: dict[int, TrackedUe]) -> bytes:
    """Content-addressed search-space blob for the decode payload."""
    return _packed_spaces(tuple(
        (rnti, tracked[rnti].search_space) for rnti in sorted(tracked)))


#: Worker-side blob -> decode table cache, content-addressed by the
#: pickled bytes so a stale entry is impossible by construction.
_SPACES_CACHE: dict[bytes, dict[int, _DecodeUe]] = {}


def _tracked_from_blob(blob: bytes) -> dict[int, _DecodeUe]:
    cached = _SPACES_CACHE.get(blob)
    if cached is None:
        cached = {rnti: _DecodeUe(space)
                  for rnti, space in pickle.loads(blob).items()}
        while len(_SPACES_CACHE) >= 8:
            _SPACES_CACHE.pop(next(iter(_SPACES_CACHE)))
        _SPACES_CACHE[blob] = cached
    return cached


def grid_decode_job(payload: dict) -> tuple[list[DecodedDci], int]:
    """One slot's iq-fidelity decode, picklable for a worker process.

    Replays the exact inline path — including round-robin UE sharding
    with per-shard claim sets, so the decoded-DCI order matches the
    inline concatenation order byte for byte.  ``grid`` and ``tracked``
    may arrive in their slim wire forms (see
    :func:`pack_grid_for_decode` / :func:`pack_tracked_for_decode`) or
    as the full in-process objects.
    """
    from repro.core.runtime import sharded_grid_decode

    grid = payload["grid"]
    if not isinstance(grid, ResourceGrid):
        grid = unpack_grid_for_decode(grid)
    tracked = payload["tracked"]
    if isinstance(tracked, bytes):
        tracked = _tracked_from_blob(tracked)
    decoder = GridDciDecoder(
        dci_cfg=payload["dci_cfg"], n_id=payload["n_id"],
        noise_var=payload["noise_var"],
        use_energy_gate=payload["use_energy_gate"],
        use_cce_claiming=payload["use_cce_claiming"],
        equalize=payload["equalize"])
    decoded = sharded_grid_decode(
        decoder, grid, payload["slot_index"],
        tracked, payload["n_shards"],
        batch=payload["batch"])
    return decoded, decoder.attempts


def record_decode_job(payload: dict) \
        -> tuple[list[DecodedDci], int, int, list[tuple[int, int, int]]]:
    """One slot's message-fidelity decode, picklable for a worker.

    The decode decisions are counter-keyed on (seed, slot, rnti, CCE,
    level, direction), so a fresh decoder with the session seed draws
    the identical stream in any process.  ``payload["tracked"]`` is
    the slim ``frozenset`` of tracked RNTIs (membership is all the
    record decode needs — see :meth:`RecordDciDecoder.decode_slot`).

    When ``payload["collect_misses"]`` is set, the fourth element
    carries the per-miss ``(slot, rnti, level)`` log back over the wire
    so the parent emits the same ``dci.miss`` events an inline session
    would, in the same commit order.
    """
    decoder = RecordDciDecoder(sniffer_snr_db=payload["snr_db"],
                               seed=payload["seed"])
    miss_log: list[tuple[int, int, int]] = []
    decoded = decoder.decode_slot(
        payload["records"], payload["tracked"],
        miss_log if payload.get("collect_misses") else None)
    return decoded, decoder.attempts, decoder.misses, miss_log
