"""Command-line interface: ``python -m repro.cli <command>``.

Mirrors how the released NR-Scope tool is driven from a terminal:

* ``sniff``    - run a telemetry session against a simulated cell and
  stream/emit the decoded telemetry (optionally as a JSONL log file,
  the paper Fig 4 "log file" output).
* ``cells``    - list the built-in cell profiles (section 5.1 testbeds).
* ``figure``   - regenerate one paper figure's table on stdout.
* ``survey``   - commercial-cell population survey (sections 5.3.1/6).
* ``bench``    - repeatable perf benchmarks (``bench fig12`` writes
  ``BENCH_fig12.json``, the executor x batch-kernel sweep).
* ``obs``      - observability-stream tooling: ``obs topn`` clusters a
  session's failure events, ``obs validate`` checks a stream against
  the event schema.
* ``lint``     - the nrlint 3GPP bit-contract/determinism static
  analysis (also available as ``python -m repro.lint``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import print_tables
from repro.core.scope import NRScope
from repro.gnb.cell_config import ALL_PROFILES
from repro.simulation import Simulation


class CliError(ValueError):
    """Raised for invalid command-line usage."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NR-Scope reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sniff = sub.add_parser("sniff", help="run one telemetry session")
    sniff.add_argument("--profile", default="srsran",
                       choices=sorted(ALL_PROFILES))
    sniff.add_argument("--ues", type=int, default=2)
    sniff.add_argument("--seconds", type=float, default=2.0)
    sniff.add_argument("--seed", type=int, default=0)
    sniff.add_argument("--traffic", default="mixed")
    sniff.add_argument("--channel", default="pedestrian")
    sniff.add_argument("--snr-db", type=float, default=18.0,
                       help="sniffer receive SNR")
    sniff.add_argument("--fidelity", default="message",
                       choices=["message", "iq"])
    sniff.add_argument("--json", metavar="PATH", default=None,
                       help="write the telemetry log as JSON lines")
    sniff.add_argument("--report", action="store_true",
                       help="print the full per-UE session report")
    sniff.add_argument("--executor", default="inline",
                       help="slot runtime executor: "
                            "inline | threaded[:N] | process[:N]")
    sniff.add_argument("--workers", type=int, default=4,
                       help="slot workers for the threaded executor")
    sniff.add_argument("--dci-threads", type=int, default=1,
                       help="DCI decode shards per slot")
    sniff.add_argument("--no-batch", action="store_true",
                       help="disable the batched PHY kernels "
                            "(per-candidate scalar decode)")
    sniff.add_argument("--runtime-stats", action="store_true",
                       help="print per-stage runtime statistics "
                            "(timings and drop counts, via the obs "
                            "bus counters)")
    sniff.add_argument("--obs", action="append", default=[],
                       metavar="SPEC",
                       help="enable the observability bus with a "
                            "reporter: jsonl:PATH | counters | "
                            "ring[:N] (repeatable)")

    sub.add_parser("cells", help="list built-in cell profiles")

    obs = sub.add_parser("obs", help="observability-stream tooling")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    topn = obs_sub.add_parser(
        "topn", help="cluster a stream's failure events (TopN report)")
    topn.add_argument("events", metavar="EVENTS",
                      help="JSONL stream written by sniff --obs jsonl:")
    topn.add_argument("--top", type=int, default=10,
                      help="clusters to keep (default 10)")
    topn.add_argument("--json", metavar="PATH", default=None,
                      help="write the report as a JSON document")
    topn.add_argument("--md", metavar="PATH", default=None,
                      help="write the markdown table to a file "
                           "(default: stdout)")
    validate = obs_sub.add_parser(
        "validate", help="check a stream against the event schema")
    validate.add_argument("events", metavar="EVENTS",
                          help="JSONL stream to validate")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name",
                        choices=["fig7", "fig8", "fig10", "fig11",
                                 "fig12", "fig13", "fig15"])
    figure.add_argument("--quick", action="store_true",
                        help="shorter sessions (coarser statistics)")

    survey = sub.add_parser("survey",
                            help="commercial-cell population survey")
    survey.add_argument("--seconds", type=float, default=600.0)
    survey.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench",
                           help="run a repeatable perf benchmark")
    bench.add_argument("name", choices=["fig12"])
    bench.add_argument("--quick", action="store_true",
                       help="tiny sweep (CI smoke; not a real "
                            "measurement)")
    bench.add_argument("--out", metavar="PATH",
                       default="BENCH_fig12.json",
                       help="output JSON document path")
    bench.add_argument("--slots", type=int, default=None,
                       help="timed slots per point (default 20, "
                            "quick 2)")

    from repro.lint.cli import add_arguments as add_lint_arguments
    lint = sub.add_parser("lint",
                          help="run the nrlint static-analysis pass")
    add_lint_arguments(lint)
    return parser


def cmd_sniff(args: argparse.Namespace) -> int:
    from repro.obs import CounterReporter, ObsContext, ReporterError, \
        reporters_from_specs

    profile = ALL_PROFILES[args.profile]
    try:
        reporters = reporters_from_specs(args.obs)
    except ReporterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counter_rep = next((r for r in reporters
                        if isinstance(r, CounterReporter)), None)
    show_counters = counter_rep is not None
    if args.runtime_stats and counter_rep is None:
        # The drops column is sourced from the bus counters, so the
        # stats flag quietly rides a counter reporter along.
        counter_rep = CounterReporter()
        reporters.append(counter_rep)
    obs = ObsContext.create(reporters, run_id=f"run-{args.seed:08x}")

    sim = Simulation.build(profile, n_ues=args.ues, seed=args.seed,
                           traffic=args.traffic, channel=args.channel,
                           fidelity=args.fidelity)
    scope = NRScope.attach(sim, snr_db=args.snr_db,
                           executor=args.executor,
                           n_workers=args.workers,
                           n_dci_threads=args.dci_threads,
                           batch_kernels=not args.no_batch,
                           obs=obs)
    sim.run(seconds=args.seconds)
    scope.close()
    obs.close()

    print(f"cell {profile.name}: band {profile.band}, "
          f"{profile.n_prb} PRB @ {profile.scs_khz} kHz, "
          f"{'TDD' if profile.is_tdd else 'FDD'}")
    print(f"observed {scope.counters.slots_observed} slots, decoded "
          f"{scope.counters.dcis_decoded} DCIs, "
          f"{scope.counters.msg4_seen} UEs via RACH "
          f"({scope.counters.msg4_missed} missed)")
    now = sim.now_s
    for rnti in scope.tracked_rntis:
        bits = scope.telemetry.bits_between(rnti, 0.0, now)
        retx = scope.telemetry.retransmission_ratio(rnti)
        srs = scope.uci.scheduling_request_count(rnti)
        cqi = scope.uci.latest_cqi(rnti)
        print(f"  UE 0x{rnti:04x}: {bits / now / 1e6:7.2f} Mbps DL, "
              f"retx {retx:6.2%}, CQI {cqi if cqi is not None else '-'}, "
              f"{srs} SRs")
    if args.runtime_stats:
        stats = scope.runtime_stats
        print(f"runtime [{stats.executor}]: "
              f"{stats.slots_completed}/{stats.slots_submitted} slots, "
              f"{stats.slots_dropped} dropped "
              f"({stats.dcis_dropped} DCIs), "
              f"{stats.budget_overruns} over budget")
        for stage in stats.stages:
            drops = int(counter_rep.value("stage.drop",
                                          stage=stage.name)) \
                if counter_rep is not None else stage.drops
            print(f"  {stage.name:<8} {stage.calls:6d} calls, "
                  f"mean {stage.mean_us:9.1f} us, "
                  f"max {1e6 * stage.max_s:9.1f} us, "
                  f"drops {drops:4d}")
    if show_counters and counter_rep is not None:
        print()
        print(counter_rep.render_text(), end="")
    if args.report:
        from repro.analysis.summary import build_session_report
        print()
        print(build_session_report(scope, args.seconds).render())
    if args.json:
        count = scope.telemetry.write_jsonl(args.json)
        print(f"wrote {count} telemetry records to {args.json}")
    return 0


def cmd_cells(args: argparse.Namespace) -> int:
    print(f"{'name':<14}{'band':<6}{'duplex':<8}{'SCS':<6}{'BW MHz':<8}"
          f"{'PRB':<5}{'BWP':<4}{'MCS table'}")
    for name in sorted(ALL_PROFILES):
        p = ALL_PROFILES[name]
        print(f"{p.name:<14}{p.band:<6}"
              f"{'TDD' if p.is_tdd else 'FDD':<8}"
              f"{p.scs_khz:<6}{p.bandwidth_hz / 1e6:<8.0f}"
              f"{p.n_prb:<5}{p.bwp_id:<4}{p.mcs_table}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    quick = 1.0 if args.quick else 4.0
    if args.name == "fig7":
        from repro.experiments import fig07_dci_miss as fig7
        srsran, amarisoft = fig7.run(duration_s=quick)
        print_tables([fig7.table(srsran, "Fig 7a - srsRAN"),
                      fig7.table(amarisoft, "Fig 7b - Amarisoft")])
    elif args.name == "fig8":
        from repro.experiments import fig08_reg_error as fig8
        srsran, amarisoft = fig8.run(duration_s=quick)
        print_tables([fig8.table(srsran, "Fig 8a - srsRAN"),
                      fig8.table(amarisoft, "Fig 8b - Amarisoft")])
    elif args.name == "fig10":
        from repro.experiments import fig10_active_time as fig10
        print_tables([fig10.table(fig10.run())])
    elif args.name == "fig11":
        from repro.experiments import fig11_ue_counts as fig11
        print_tables([fig11.table(fig11.run())])
    elif args.name == "fig12":
        from repro.experiments import fig12_processing as fig12
        if args.quick:
            rows = fig12.run(ue_counts=(1, 4, 8), n_slots=1)
        else:
            rows = fig12.run()
        print_tables([fig12.table(rows)])
    elif args.name == "fig13":
        from repro.experiments import fig13_coverage as fig13
        print_tables([fig13.table(
            fig13.run(duration_s=max(quick / 4, 0.5)))])
    elif args.name == "fig15":
        from repro.experiments import fig15_mcs_retx as fig15
        print_tables([fig15.table(
            fig15.run(n_ues=8, duration_s=max(quick / 2, 1.0)))])
    else:  # pragma: no cover - argparse restricts choices
        raise CliError(f"unknown figure: {args.name}")
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.ue.population import ComeAndGoProcess, \
        TMOBILE_CELL1_PROFILES, active_counts

    profile = TMOBILE_CELL1_PROFILES["afternoon"]
    sessions = ComeAndGoProcess(profile, seed=args.seed) \
        .generate(args.seconds)
    holdings = np.array([s.holding_s for s in sessions])
    per_minute = active_counts(sessions, args.seconds, 60.0)
    print(f"window: {args.seconds:.0f} s, distinct UEs: {len(sessions)}")
    print(f"holding time: median {np.median(holdings):.1f} s, "
          f"p90 {np.percentile(holdings, 90):.1f} s")
    print(f"active per minute: median {np.median(per_minute):.0f}, "
          f"max {per_minute.max()}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.name != "fig12":  # pragma: no cover - argparse restricts
        raise CliError(f"unknown bench: {args.name}")
    from repro.experiments import bench_fig12
    doc = bench_fig12.main(out_path=args.out, quick=args.quick,
                           n_slots=args.slots)
    print(bench_fig12.render(doc))
    print(f"wrote {args.out}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import KNOWN_EVENTS, SCHEMA_VERSION, \
        cluster_failures, load_events, render_markdown, \
        report_to_json, validate_events
    from repro.obs.topn import TopnError

    try:
        events = load_events(args.events)
    except TopnError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.obs_command == "validate":
        problems = validate_events(events, registry=KNOWN_EVENTS)
        if problems:
            for index, problem in problems[:20]:
                print(f"event {index}: {problem}")
            if len(problems) > 20:
                print(f"... and {len(problems) - 20} more")
            print(f"invalid: {len(problems)} problems in "
                  f"{len(events)} events")
            return 1
        print(f"ok: {len(events)} events, schema v{SCHEMA_VERSION}")
        return 0

    try:
        report = cluster_failures(events, top_n=args.top)
    except TopnError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        document = json.dumps(report_to_json(report), indent=2,
                              sort_keys=True)
        Path(args.json).write_text(document + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    markdown = render_markdown(report)
    if args.md:
        Path(args.md).write_text(markdown, encoding="utf-8")
        print(f"wrote {args.md}")
    else:
        print(markdown, end="")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as run_lint
    return run_lint(args)


_COMMANDS = {"sniff": cmd_sniff, "cells": cmd_cells,
             "figure": cmd_figure, "survey": cmd_survey,
             "bench": cmd_bench, "obs": cmd_obs, "lint": cmd_lint}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
