"""Static conformance of obs emission sites against the event registry.

The observability bus (PR 8) validates *streams* at the edge — ``obs
validate`` checks envelopes, and now event names against
:data:`repro.obs.events.KNOWN_EVENTS` — but a conformance bug only
surfaces when the mis-emitting code path actually runs under ``--obs``.
This module closes the gap statically: it collects every emission call
site in a module and checks each against the declared registry, so a
typo'd name, a counter emitted as an event, or a high-cardinality
label value fails lint (rule R012) before it ever reaches a stream.

Two emission shapes are recognised:

* **direct calls** — ``<receiver>.emit/count/timing/span(name, ...)``
  where some segment of the receiver chain contains ``obs`` (matching
  ``self._obs``, a bare ``obs``, ``base_obs``...).  The method fixes
  the event kind (``emit`` → event, ``count`` → counter, ``timing`` /
  ``span`` → span) unless an explicit ``_kind=`` literal overrides it;
* **deferred queues** — ``events.append((name, {...}))``, the pattern
  the slot runtime drains at commit (``ctx.events``); entries replay
  through ``ObsContext.emit`` so they are events by construction.

A *relay* — a call that forwards an already-built event, spelled with
a dynamic name **and** a ``**fields`` expansion (the runtime's
commit-time drain) — is exempt: it emits someone else's declaration.
Any other dynamic name is flagged: names must be grep-able literals.

Per DESIGN.md §7, string label fields feed fixed-cardinality counter
labels; an f-string / ``str(...)`` / ``.format(...)`` value there is
unbounded cardinality and gets flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping

from repro.lint.astutil import dotted_name
from repro.obs.events import OPTIONAL_FIELDS, EventSpec

#: Emission method -> the event kind it produces.
_METHOD_KINDS: dict[str, str] = {
    "emit": "event",
    "count": "counter",
    "timing": "span",
    "span": "span",
}

#: Fields the bus itself supplies per kind; specs never list them and
#: call sites need not pass them.
_IMPLICIT_FIELDS: dict[str, frozenset[str]] = {
    "event": frozenset(),
    "counter": frozenset(("value",)),
    "span": frozenset(("duration_us",)),
}

#: String fields used as counter labels: their value sets must stay
#: small and closed (DESIGN.md §7), so dynamically built strings are
#: cardinality bombs.
_LABEL_FIELDS = frozenset(("stage", "reason", "outcome", "cell",
                           "fidelity", "executor"))


@dataclass(frozen=True)
class ConformanceIssue:
    """One statically detected schema violation at an emission site."""

    kind: str       #: ``dynamic-name`` | ``unknown-name`` |
                    #: ``kind-mismatch`` | ``missing-field`` |
                    #: ``undeclared-field`` | ``label-cardinality``
    lineno: int
    col: int
    detail: str


@dataclass
class EmissionSite:
    """One collected obs emission call site."""

    name: str | None        #: literal event name; None = dynamic
    kind: str               #: event | counter | span
    method: str             #: emit | count | timing | span | append
    lineno: int
    col: int
    fields: tuple[str, ...] = ()
    #: a ``**`` expansion makes the field set statically unknowable
    has_splat: bool = False
    #: field name -> value node, for label-cardinality checks
    field_values: dict[str, ast.expr] = field(default_factory=dict)


def _receiver_is_obs(func: ast.Attribute) -> bool:
    name = dotted_name(func.value)
    if name is None:
        return False
    return any("obs" in segment.lower()
               for segment in name.split("."))


def _receiver_is_deferred_queue(func: ast.Attribute) -> bool:
    name = dotted_name(func.value)
    if name is None:
        return False
    return name.split(".")[-1] == "events"


def _is_dynamic_string(node: ast.expr) -> bool:
    """A string value built at runtime (unbounded label cardinality)."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "format":
            return True
        if isinstance(func, ast.Name) and func.id == "str":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "join":
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return True      # "..." % (...)
    return False


def _collect_direct(call: ast.Call, func: ast.Attribute) \
        -> EmissionSite | None:
    method = func.attr
    kind = _METHOD_KINDS[method]
    name: str | None = None
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        name = call.args[0].value
    has_splat = False
    fields: list[str] = []
    values: dict[str, ast.expr] = {}
    for kw in call.keywords:
        if kw.arg is None:
            has_splat = True
            continue
        if kw.arg == "_kind":
            if isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                kind = kw.value.value
            continue
        fields.append(kw.arg)
        values[kw.arg] = kw.value
    return EmissionSite(
        name=name, kind=kind, method=method,
        lineno=call.lineno, col=call.col_offset,
        fields=tuple(fields), has_splat=has_splat,
        field_values=values)


def _collect_deferred(call: ast.Call) -> EmissionSite | None:
    """``events.append((name, {...}))`` — replayed as an event."""
    if len(call.args) != 1 or not isinstance(call.args[0], ast.Tuple) \
            or len(call.args[0].elts) != 2:
        return None
    name_node, payload = call.args[0].elts
    name: str | None = None
    if isinstance(name_node, ast.Constant) \
            and isinstance(name_node.value, str):
        name = name_node.value
    fields: list[str] = []
    values: dict[str, ast.expr] = {}
    has_splat = not isinstance(payload, ast.Dict)
    if isinstance(payload, ast.Dict):
        for key, value in zip(payload.keys, payload.values):
            if isinstance(key, ast.Constant) \
                    and isinstance(key.value, str):
                fields.append(key.value)
                values[key.value] = value
            else:
                has_splat = True       # dynamic key / ** merge
    return EmissionSite(
        name=name, kind="event", method="append",
        lineno=call.lineno, col=call.col_offset,
        fields=tuple(fields), has_splat=has_splat,
        field_values=values)


def collect_emissions(tree: ast.Module) -> list[EmissionSite]:
    """Every obs emission site of one module, in source order.

    Relays (dynamic name + ``**fields`` expansion) are *not* returned:
    they forward an event declared and checked at its true origin.
    """
    sites: list[EmissionSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        func = node.func
        site: EmissionSite | None = None
        if func.attr in _METHOD_KINDS and _receiver_is_obs(func):
            site = _collect_direct(node, func)
        elif func.attr == "append" \
                and _receiver_is_deferred_queue(func):
            site = _collect_deferred(node)
        if site is None:
            continue
        if site.name is None and site.has_splat:
            continue        # relay: forwards an already-built event
        sites.append(site)
    sites.sort(key=lambda s: (s.lineno, s.col))
    return sites


def check_site(site: EmissionSite,
               registry: Mapping[str, EventSpec]) \
        -> list[ConformanceIssue]:
    """Conformance of one emission site against the registry."""
    issues: list[ConformanceIssue] = []

    def issue(kind: str, detail: str) -> None:
        issues.append(ConformanceIssue(kind=kind, lineno=site.lineno,
                                       col=site.col, detail=detail))

    if site.name is None:
        issue("dynamic-name",
              "event name is built at runtime — emit literal names "
              "declared in KNOWN_EVENTS (repro/obs/events.py) so "
              "streams stay grep-able; forwarding relays must splat "
              "**fields")
        return issues
    spec = registry.get(site.name)
    if spec is None:
        issue("unknown-name",
              f"event {site.name!r} is not declared in KNOWN_EVENTS "
              f"(repro/obs/events.py) — declare it (name, kind, "
              f"required fields) before emitting")
        return issues
    if site.kind != spec.kind:
        issue("kind-mismatch",
              f"event {site.name!r} is declared kind {spec.kind!r} "
              f"but this site emits kind {site.kind!r} "
              f"(via .{site.method}())")
    implicit = _IMPLICIT_FIELDS.get(site.kind, frozenset())
    if not site.has_splat:
        present = set(site.fields) | set(implicit)
        for required in spec.required:
            if required not in present:
                issue("missing-field",
                      f"event {site.name!r} requires field "
                      f"{required!r} (KNOWN_EVENTS) but this site "
                      f"never passes it")
        declared = set(OPTIONAL_FIELDS) | set(spec.fields) \
            | set(spec.required) | implicit
        for name in site.fields:
            if name not in declared:
                issue("undeclared-field",
                      f"field {name!r} is not declared for event "
                      f"{site.name!r} — add it to the event's spec "
                      f"or OPTIONAL_FIELDS (repro/obs/events.py)")
    for name, value in site.field_values.items():
        if name in _LABEL_FIELDS and _is_dynamic_string(value):
            issue("label-cardinality",
                  f"label field {name!r} is built dynamically — "
                  f"label values feed fixed-cardinality counters "
                  f"(DESIGN.md §7); use a closed set of literals")
    return issues


def check_module(tree: ast.Module,
                 registry: Mapping[str, EventSpec]) \
        -> list[tuple[EmissionSite, list[ConformanceIssue]]]:
    """Collect and check every emission site of one module."""
    out: list[tuple[EmissionSite, list[ConformanceIssue]]] = []
    for site in collect_emissions(tree):
        out.append((site, check_site(site, registry)))
    return out
