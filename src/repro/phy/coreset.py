"""CORESETs, CCE-to-REG mapping and PDCCH search spaces.

(TS 38.211 section 7.3.2.2 and TS 38.213 section 10.1.)

A CORESET is the time-frequency region that carries PDCCH; a search space
tells a UE — and therefore a sniffer — which control channel element (CCE)
candidates may hold its DCI at each aggregation level.  NR-Scope learns
CORESET 0 from the MIB and each UE's dedicated CORESET/search space from
MSG 4 (paper section 3.1), after which it only has to check a handful of
candidate positions per slot instead of blind-searching the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.constants import AGGREGATION_LEVELS, N_REG_PER_CCE
from repro.phy.numerology import slots_per_frame


class CoresetError(ValueError):
    """Raised for inconsistent CORESET or search-space configuration."""


@dataclass(frozen=True)
class Coreset:
    """A control resource set: frequency span x 1-3 OFDM symbols."""

    coreset_id: int
    first_prb: int
    n_prb: int
    n_symbols: int = 1
    first_symbol: int = 0
    interleaved: bool = True
    reg_bundle_size: int = 6
    interleaver_size: int = 2
    shift_index: int = 0

    def __post_init__(self) -> None:
        if self.n_prb < N_REG_PER_CCE:
            raise CoresetError(
                f"CORESET narrower than one CCE: {self.n_prb} PRB")
        if not 1 <= self.n_symbols <= 3:
            raise CoresetError(
                f"CORESET duration must be 1-3 symbols: {self.n_symbols}")
        if not 0 <= self.first_symbol <= 3:
            raise CoresetError(
                f"CORESET must sit in the control region: first symbol"
                f" {self.first_symbol}")
        if self.n_regs % N_REG_PER_CCE:
            raise CoresetError(
                f"REG count {self.n_regs} not a multiple of {N_REG_PER_CCE}")
        if self.interleaved:
            bundles = self.n_regs // self.reg_bundle_size
            if bundles % self.interleaver_size:
                raise CoresetError(
                    "interleaver size must divide the REG bundle count")

    @property
    def n_regs(self) -> int:
        """Total resource element groups in the CORESET."""
        return self.n_prb * self.n_symbols

    @property
    def n_cces(self) -> int:
        """Control channel elements available per slot."""
        return self.n_regs // N_REG_PER_CCE

    def cce_to_regs(self, cce_index: int) -> list[int]:
        """REG indices (time-first numbering) composing one CCE.

        Non-interleaved mapping assigns consecutive REG bundles; the
        interleaved mapping applies the 38.211 block interleaver
        ``f(x) = (R * c + r + n_shift) mod (N_regs / L)`` over bundles.
        """
        if not 0 <= cce_index < self.n_cces:
            raise CoresetError(
                f"CCE {cce_index} out of range (0..{self.n_cces - 1})")
        bundle = self.reg_bundle_size
        bundles_per_cce = max(1, N_REG_PER_CCE // bundle)
        n_bundles = self.n_regs // bundle
        regs: list[int] = []
        for j in range(bundles_per_cce):
            x = cce_index * bundles_per_cce + j
            if self.interleaved:
                rows = self.interleaver_size
                cols = n_bundles // rows
                r, c = x % rows, x // rows
                mapped = (c + r * cols + self.shift_index) % n_bundles
            else:
                mapped = x
            regs.extend(range(mapped * bundle, (mapped + 1) * bundle))
        return regs

    def reg_to_position(self, reg_index: int) -> tuple[int, int]:
        """Map a REG index to ``(prb, symbol)`` within the carrier grid.

        REGs are numbered time-first (symbol varies fastest), per 38.211
        section 7.3.2.2.
        """
        if not 0 <= reg_index < self.n_regs:
            raise CoresetError(f"REG {reg_index} out of range")
        prb_offset, symbol = divmod(reg_index, self.n_symbols)
        return self.first_prb + prb_offset, self.first_symbol + symbol


@dataclass(frozen=True)
class SearchSpace:
    """A PDCCH search space: candidate counts per aggregation level."""

    search_space_id: int
    coreset: Coreset
    is_common: bool
    candidates_per_level: dict[int, int]
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for level in self.candidates_per_level:
            if level not in AGGREGATION_LEVELS:
                raise CoresetError(f"invalid aggregation level {level}")
        # The candidate dict makes the generated hash unusable; a
        # precomputed one keyed on the *insertion-ordered* level table
        # lets decoders memoize per-space candidate plans.  Two spaces
        # that enumerate levels in different orders hash apart on
        # purpose: plan caches must never merge entries whose scalar
        # iteration order differs.
        object.__setattr__(self, "_hash", hash(
            (self.search_space_id, self.coreset, self.is_common,
             tuple(self.candidates_per_level.items()))))

    def __hash__(self) -> int:
        return self._hash

    def candidate_cces(self, level: int, slot_index: int,
                       rnti: int = 0) -> list[int]:
        """First-CCE indices of each candidate (38.213 section 10.1).

        Common search spaces hash from ``Y = 0``; UE-specific ones derive a
        per-slot ``Y`` from the C-RNTI so that different UEs' candidates
        spread across the CORESET.  The sniffer reruns this exact hash for
        every tracked RNTI to know where to attempt decodes.
        """
        if level not in AGGREGATION_LEVELS:
            raise CoresetError(f"invalid aggregation level {level}")
        n_candidates = self.candidates_per_level.get(level, 0)
        n_cce = self.coreset.n_cces
        if level > n_cce:
            return []
        y = 0 if self.is_common else _yp(rnti, self.coreset.coreset_id,
                                         slot_index)
        return list(_candidate_starts(level, n_candidates, n_cce, y))


@lru_cache(maxsize=65536)
def _candidate_starts(level: int, n_candidates: int, n_cce: int,
                      y: int) -> tuple[int, ...]:
    """The 38.213 candidate hash, memoized on its scalar inputs.

    The sniffer reruns the hash for every tracked RNTI every slot; the
    blind-decode loop calls this hundreds of times per slot at scale,
    so the pure arithmetic is cached (``Y`` already folds in the RNTI
    and slot, keeping the key small and the hit rate high).
    """
    starts = []
    for m in range(n_candidates):
        base = (y + (m * n_cce) // (level * max(n_candidates, 1))) \
            % (n_cce // level)
        starts.append(level * base)
    return tuple(starts)


# Coefficients A_p from 38.213 Table 10.1-1, selected by coreset_id mod 3.
_YP_COEFFICIENTS = (39827, 39829, 39839)
_YP_MODULUS = 65537


def _yp(rnti: int, coreset_id: int, slot_index: int,
        scs_khz: int = 30) -> int:
    """Per-slot UE-specific search-space hash Y_{p,n} (38.213 10.1).

    The recursion depth follows the slot number within its frame, so
    the reduction uses the numerology's slots-per-frame count (the
    paper's lab cells all run 30 kHz).  The value only depends on the
    slot *within* the frame, so the modular-multiplication chain is
    memoized on the reduced slot number.
    """
    if rnti <= 0:
        raise CoresetError("UE-specific search space needs a positive RNTI")
    return _yp_reduced(rnti, coreset_id,
                       slot_index % slots_per_frame(scs_khz))


@lru_cache(maxsize=65536)
def _yp_reduced(rnti: int, coreset_id: int, reduced_slot: int) -> int:
    a_p = _YP_COEFFICIENTS[coreset_id % 3]
    y = rnti
    for _ in range(reduced_slot + 1):
        y = (a_p * y) % _YP_MODULUS
    return y


def coreset0_for_bandwidth(n_prb_carrier: int) -> Coreset:
    """A CORESET 0 covering the initial BWP, as MIB-configured cells use.

    Mirrors the common 38.213 Table 13-* configurations: CORESET 0 spans
    24/48 PRBs over 1-2 symbols depending on carrier width.
    """
    if n_prb_carrier >= 48:
        return Coreset(coreset_id=0, first_prb=0, n_prb=48, n_symbols=1,
                       interleaved=True)
    if n_prb_carrier >= 24:
        return Coreset(coreset_id=0, first_prb=0, n_prb=24, n_symbols=2,
                       interleaved=True)
    raise CoresetError(
        f"carrier too narrow for CORESET 0: {n_prb_carrier} PRB")
