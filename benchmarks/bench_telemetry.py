#!/usr/bin/env python
"""Standalone runner for the columnar-telemetry bench.

Equivalent to ``python -m repro.cli bench telemetry``; kept here so the
benchmarks/ directory is the one place to look for perf entry points.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--quick]
        [--out BENCH_telemetry.json] [--records N]
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--records", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.experiments import bench_telemetry
    doc = bench_telemetry.main(out_path=args.out, quick=args.quick,
                               n_records=args.records)
    print(bench_telemetry.render(doc))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
