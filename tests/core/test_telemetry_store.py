"""Tests for the columnar telemetry store.

The reference implementations here replicate the seed's per-record
loops (object list + Python accumulation) so every vectorized kernel
is checked for *exact* agreement — including hypothesis-generated
record batches and a seeded end-to-end sniff session.
"""

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.telemetry import TelemetryLog, TelemetryRecord
from repro.core.telemetry_store import DEFAULT_CHUNK_ROWS, \
    RECORD_DTYPE, RECORD_FIELDS, TelemetryStore, TelemetryStoreError, \
    window_count, window_edges


def make_row(slot=0, time_s=0.0, rnti=0x4601, downlink=True, tbs=1000,
             n_prb=4, n_symbols=12, mcs=10, harq=0, ndi=0, rv=0,
             retx=False, level=2):
    return dict(slot_index=slot, time_s=time_s, rnti=rnti,
                downlink=downlink, tbs_bits=tbs, n_prb=n_prb,
                n_symbols=n_symbols, mcs_index=mcs, harq_id=harq,
                ndi=ndi, rv=rv, is_retransmission=retx,
                aggregation_level=level)


def fill(store: TelemetryStore, rows) -> TelemetryStore:
    for row in rows:
        store.append(**row)
    return store


# ------------------------------------------------ reference semantics
# The seed's loops, kept as executable documentation of the query
# semantics every kernel must reproduce exactly.

def ref_bits_between(rows, rnti, start_s, end_s, downlink=True,
                     count_retransmissions=False):
    total = 0
    for row in rows:
        if row["rnti"] != rnti or row["downlink"] != downlink:
            continue
        if not (start_s <= row["time_s"] < end_s):
            continue
        if row["is_retransmission"] and not count_retransmissions:
            continue
        total += row["tbs_bits"]
    return total


def ref_bitrate_series(rows, rnti, window_s, end_time_s):
    n = max(0, int(math.floor((end_time_s + 1e-9) / window_s)))
    return [((k + 1) * window_s,
             ref_bits_between(rows, rnti, k * window_s,
                              (k + 1) * window_s) / window_s)
            for k in range(n)]


def ref_mcs_distribution(rows, rnti=None, downlink=True):
    return [row["mcs_index"] for row in rows
            if row["downlink"] == downlink
            and not row["is_retransmission"]
            and (rnti is None or row["rnti"] == rnti)]


def ref_retransmission_ratio(rows, rnti=None, downlink=True):
    relevant = [row for row in rows if row["downlink"] == downlink
                and (rnti is None or row["rnti"] == rnti)]
    if not relevant:
        return 0.0
    return sum(bool(r["is_retransmission"])
               for r in relevant) / len(relevant)


row_strategy = st.builds(
    make_row,
    slot=st.integers(0, 10_000),
    time_s=st.floats(0.0, 8.0, allow_nan=False, width=32),
    rnti=st.sampled_from([0x4601, 0x4602, 0x4603, 0x9999]),
    downlink=st.booleans(),
    tbs=st.integers(0, 2_000_000),
    n_prb=st.integers(1, 51),
    n_symbols=st.sampled_from([4, 7, 12, 14]),
    mcs=st.integers(0, 27),
    harq=st.integers(0, 15),
    ndi=st.integers(0, 1),
    rv=st.integers(0, 3),
    retx=st.booleans(),
    level=st.sampled_from([1, 2, 4, 8, 16]))


class TestStoreBasics:
    def test_empty(self):
        store = TelemetryStore()
        assert len(store) == 0
        assert store.table().shape == (0,)
        assert store.rntis() == []
        assert store.bits_between(1, 0.0, 1.0) == 0
        assert store.mcs_distribution() == []
        assert store.retransmission_ratio() == 0.0

    def test_append_and_table_order(self):
        store = fill(TelemetryStore(), [
            make_row(slot=i, time_s=i * 0.5e-3, tbs=100 + i)
            for i in range(10)])
        assert len(store) == 10
        assert store.table()["tbs_bits"].tolist() == \
            [100 + i for i in range(10)]

    def test_chunk_sealing_preserves_order(self):
        rows = [make_row(slot=i, time_s=i * 1e-3, tbs=i)
                for i in range(11)]
        small = fill(TelemetryStore(chunk_rows=4), rows)
        large = fill(TelemetryStore(), rows)
        assert small.table().tolist() == large.table().tolist()
        assert small.chunk_rows == 4
        assert large.chunk_rows == DEFAULT_CHUNK_ROWS

    def test_bad_chunk_rows(self):
        with pytest.raises(TelemetryStoreError):
            TelemetryStore(chunk_rows=0)

    def test_column_unknown_name(self):
        with pytest.raises(TelemetryStoreError):
            TelemetryStore().column("nope")

    def test_record_fields_match_dtype(self):
        assert RECORD_FIELDS == tuple(RECORD_DTYPE.names)

    def test_rows_for_rnti_tracks_appends(self):
        store = fill(TelemetryStore(), [make_row(rnti=1), make_row(rnti=2)])
        assert store.rows_for_rnti(1).tolist() == [0]
        store.append(**make_row(rnti=1, slot=2))
        # The index cache must refresh after the append.
        assert store.rows_for_rnti(1).tolist() == [0, 2]
        assert store.rntis() == [1, 2]

    def test_out_of_range_value_fails_loudly(self):
        store = TelemetryStore()
        with pytest.raises(OverflowError):
            store.append(**make_row(rnti=2**40))


class TestWindowing:
    def test_window_count_matches_seed_loop(self):
        # The seed's `while t < end: t += w` count, for drift-free
        # values of the accumulation.
        for end, w in [(1.0, 0.2), (0.9999, 0.2), (0.2, 0.2),
                       (0.0, 0.2), (10.0, 0.3), (2.5, 0.5)]:
            n = 0
            t = 0.0
            while t + w <= end + 1e-9:
                n += 1
                t = n * w  # drift-free accumulation
            assert window_count(end, w) == n, (end, w)

    def test_window_count_rejects_bad_window(self):
        with pytest.raises(TelemetryStoreError):
            window_count(1.0, 0.0)

    def test_edges_bitwise_match_python_multiplication(self):
        edges = window_edges(1000, 0.2)
        for k in (0, 1, 3, 7, 500, 999, 1000):
            assert edges[k] == k * 0.2

    def test_series_edges_are_exact_multiples(self):
        store = fill(TelemetryStore(), [
            make_row(slot=i, time_s=i * 0.05, tbs=100)
            for i in range(100)])
        series = store.bitrate_series(0x4601, 0.2, 5.0)
        assert len(series) == 25
        for k, (edge, _) in enumerate(series):
            assert edge == (k + 1) * 0.2  # exact, not approximate

    def test_edge_record_lands_in_right_window(self):
        # A record exactly on an edge belongs to the *later* window:
        # [k*w, (k+1)*w).
        store = fill(TelemetryStore(),
                     [make_row(time_s=0.2, tbs=800)])
        series = store.bitrate_series(0x4601, 0.2, 0.4)
        assert series[0][1] == 0.0
        assert series[1][1] == pytest.approx(800 / 0.2)


class TestKernelsAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(row_strategy, max_size=60),
           chunk_rows=st.sampled_from([3, 7, DEFAULT_CHUNK_ROWS]))
    def test_all_queries_match_reference(self, rows, chunk_rows):
        store = fill(TelemetryStore(chunk_rows=chunk_rows), rows)
        rntis = sorted({row["rnti"] for row in rows})
        assert store.rntis() == rntis
        for rnti in rntis + [0x1111]:
            for start, end in [(0.0, 9.0), (1.0, 3.0), (4.0, 4.0)]:
                for retx in (False, True):
                    assert store.bits_between(
                        rnti, start, end,
                        count_retransmissions=retx) == \
                        ref_bits_between(rows, rnti, start, end,
                                         count_retransmissions=retx)
            assert store.bitrate_series(rnti, 0.7, 8.0) == \
                ref_bitrate_series(rows, rnti, 0.7, 8.0)
            assert store.mcs_distribution(rnti) == \
                ref_mcs_distribution(rows, rnti)
            assert store.retransmission_ratio(rnti) == \
                ref_retransmission_ratio(rows, rnti)
        assert store.mcs_distribution() == ref_mcs_distribution(rows)
        assert store.retransmission_ratio() == \
            ref_retransmission_ratio(rows)

    @settings(max_examples=30, deadline=None)
    @given(rows=st.lists(row_strategy, max_size=40))
    def test_activity_matrix_matches_per_rnti_loop(self, rows):
        store = fill(TelemetryStore(), rows)
        rntis = sorted({row["rnti"] for row in rows}) + [0x1111]
        bin_s, end_s = 0.5, 8.0
        matrix = store.activity_matrix(rntis, bin_s, end_s)
        n_bins = max(1, int(round(end_s / bin_s)))
        assert matrix.shape == (len(rntis), n_bins)
        for i, rnti in enumerate(rntis):
            expected = np.zeros(n_bins)
            for row in rows:
                if row["rnti"] != rnti or not row["downlink"] \
                        or row["is_retransmission"]:
                    continue
                b = min(int(row["time_s"] / bin_s), n_bins - 1)
                expected[b] += row["tbs_bits"]
            assert np.array_equal(matrix[i], expected)

    def test_time_extents(self):
        store = fill(TelemetryStore(), [
            make_row(rnti=7, time_s=0.25), make_row(rnti=7, time_s=1.5),
            make_row(rnti=9, time_s=0.5)])
        assert store.time_extents(7) == (0.25, 1.5)
        assert store.time_extents(9) == (0.5, 0.5)
        assert store.time_extents(1234) is None


class TestPersistence:
    def test_segments_roundtrip(self, tmp_path):
        rows = [make_row(slot=i, time_s=i * 1e-3, tbs=i, rnti=5 + i % 3)
                for i in range(11)]
        store = fill(TelemetryStore(chunk_rows=4), rows)
        store.write_segments(tmp_path / "seg")
        loaded = TelemetryStore.read_segments(tmp_path / "seg")
        assert loaded.table().tolist() == store.table().tolist()
        assert loaded.rntis() == store.rntis()

    def test_segments_reject_foreign_dtype(self, tmp_path):
        store = fill(TelemetryStore(chunk_rows=4),
                     [make_row() for _ in range(3)])
        store.write_segments(tmp_path / "seg")
        manifest = (tmp_path / "seg" / "manifest.json")
        text = manifest.read_text().replace("slot_index", "slot_xndex")
        manifest.write_text(text)
        with pytest.raises(TelemetryStoreError):
            TelemetryStore.read_segments(tmp_path / "seg")

    def test_pickle_roundtrip_keeps_rows_and_queries(self):
        rows = [make_row(slot=i, time_s=i * 0.1, tbs=50 * i,
                         retx=i % 3 == 0) for i in range(10)]
        store = fill(TelemetryStore(chunk_rows=4), rows)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.table().tolist() == store.table().tolist()
        assert clone.bitrate_series(0x4601, 0.3, 1.0) == \
            store.bitrate_series(0x4601, 0.3, 1.0)
        # The clone must stay appendable (head chunk rebuilt).
        clone.append(**make_row(slot=99))
        assert len(clone) == len(store) + 1


class TestFacadeEquivalence:
    def test_jsonl_bytes_identical_to_record_loop(self, tmp_path):
        log = TelemetryLog()
        for i in range(25):
            log.add(TelemetryRecord(
                slot_index=i, time_s=i * 5e-4, rnti=0x4601 + i % 3,
                downlink=i % 4 != 0, tbs_bits=999 + i, n_prb=4,
                n_symbols=12, mcs_index=i % 28, harq_id=i % 16,
                ndi=i % 2, rv=0, is_retransmission=i % 5 == 0,
                aggregation_level=2))
        path = tmp_path / "log.jsonl"
        log.write_jsonl(path)
        expected = "".join(r.to_json() + "\n" for r in log.records)
        assert path.read_text(encoding="utf-8") == expected
        reloaded = TelemetryLog.read_jsonl(path)
        assert reloaded.records == log.records

    def test_seeded_session_queries_match_record_loops(self):
        from repro.core.scope import NRScope
        from repro.gnb.cell_config import SRSRAN_PROFILE
        from repro.simulation import Simulation

        sim = Simulation.build(SRSRAN_PROFILE, n_ues=3, seed=7)
        scope = NRScope.attach(sim, snr_db=15.0)
        sim.run(seconds=1.0)
        telemetry = scope.telemetry
        rows = [dict(slot_index=r.slot_index, time_s=r.time_s,
                     rnti=r.rnti, downlink=r.downlink,
                     tbs_bits=r.tbs_bits,
                     is_retransmission=r.is_retransmission,
                     mcs_index=r.mcs_index)
                for r in telemetry.records]
        assert len(rows) > 100
        now = sim.now_s
        for rnti in telemetry.rntis():
            assert telemetry.bits_between(rnti, 0.0, now) == \
                ref_bits_between(rows, rnti, 0.0, now)
            assert telemetry.bitrate_series(rnti, 0.2, now) == \
                ref_bitrate_series(rows, rnti, 0.2, now)
            assert telemetry.mcs_distribution(rnti) == \
                ref_mcs_distribution(rows, rnti)
            assert telemetry.retransmission_ratio(rnti) == \
                ref_retransmission_ratio(rows, rnti)
