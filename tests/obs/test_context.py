"""Tests for the ObsContext / no-op singleton pair."""

import pytest

from repro.obs import OBS_NOOP, ObsContext, RingReporter, \
    validate_events


class TestNoOp:
    def test_create_without_reporters_is_the_singleton(self):
        assert ObsContext.create() is OBS_NOOP
        assert ObsContext.create(()) is OBS_NOOP

    def test_falsy_and_disabled(self):
        assert not OBS_NOOP
        assert OBS_NOOP.enabled is False

    def test_bind_returns_self(self):
        assert OBS_NOOP.bind(cell="a") is OBS_NOOP

    def test_all_methods_are_no_ops(self):
        OBS_NOOP.emit("x", rnti=1)
        OBS_NOOP.count("x", value=2)
        OBS_NOOP.timing("x", 0.5)
        with OBS_NOOP.span("x"):
            pass
        OBS_NOOP.close()


class TestEnabled:
    def make(self, **kwargs):
        ring = RingReporter()
        obs = ObsContext.create([ring], run_id="r1", **kwargs)
        return obs, ring

    def test_truthy_and_enabled(self):
        obs, _ = self.make()
        assert obs
        assert obs.enabled
        assert obs.run_id == "r1"

    def test_envelope_fields(self):
        obs, ring = self.make()
        obs.emit("dci.miss", rnti=0x4601, slot=7)
        [event] = ring.events
        assert event["kind"] == "event"
        assert event["name"] == "dci.miss"
        assert event["run_id"] == "r1"
        assert event["seq"] == 0
        assert event["rnti"] == 0x4601

    def test_seq_is_strictly_increasing(self):
        obs, ring = self.make()
        for i in range(5):
            obs.emit("e", slot=i)
        assert [e["seq"] for e in ring.events] == list(range(5))
        assert validate_events(ring.events) == []

    def test_count_and_timing_kinds(self):
        obs, ring = self.make()
        obs.count("dci.decoded", value=3)
        obs.timing("stage.span", 0.001, stage="dci")
        counter, span = ring.events
        assert counter["kind"] == "counter" and counter["value"] == 3
        assert span["kind"] == "span"
        assert span["duration_us"] == pytest.approx(1000.0)

    def test_span_contextmanager_measures(self):
        obs, ring = self.make()
        with obs.span("stage.span", stage="x"):
            pass
        [event] = ring.events
        assert event["duration_us"] >= 0.0

    def test_bind_adds_constant_labels_shares_seq(self):
        obs, ring = self.make()
        child = obs.bind(cell="srsran")
        obs.emit("a")
        child.emit("b")
        first, second = ring.events
        assert "cell" not in first
        assert second["cell"] == "srsran"
        assert second["seq"] == first["seq"] + 1
        assert validate_events(ring.events) == []

    def test_explicit_fields_override_labels(self):
        obs, ring = self.make()
        child = obs.bind(cell="a")
        child.emit("x", cell="b")
        assert ring.events[0]["cell"] == "b"

    def test_reporter_exceptions_are_swallowed(self):
        class Broken:
            def emit(self, event):
                raise RuntimeError("boom")

            def close(self):
                pass

        ring = RingReporter()
        obs = ObsContext.create([Broken(), ring], run_id="r1")
        obs.emit("x")
        assert obs.reporter_errors == 1
        assert len(ring.events) == 1

    def test_default_run_id_is_generated(self):
        obs = ObsContext.create([RingReporter()])
        assert len(obs.run_id) == 12
