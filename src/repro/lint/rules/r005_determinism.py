"""R005: unseeded randomness or wall-clock reads in simulation code.

Every figure in EXPERIMENTS.md is reproduced from a seed; the gNB, UE
population and simulation core must be bit-reproducible runs of
``np.random.default_rng(seed)``.  A single ``random.random()``,
``np.random.rand()`` (legacy global state) or ``time.time()`` in those
paths makes every regression diff a coin flip.

Flags, inside ``gnb/``, ``ue/`` and ``simulation.py``:

* any use of the stdlib ``random`` module (including ``from random
  import ...``);
* legacy ``np.random.<fn>()`` global-state calls;
* ``np.random.default_rng()`` with no arguments or an explicit
  ``None`` seed;
* wall-clock reads: ``time.time``/``time_ns``/``monotonic``/
  ``perf_counter`` and ``datetime.now``/``utcnow``/``today``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Package-relative prefixes/names that must stay deterministic.
DETERMINISTIC_PREFIXES = ("gnb/", "ue/")
DETERMINISTIC_BASENAMES = {"simulation.py"}

#: Legacy numpy global-state entry points.
LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "normal", "uniform", "poisson",
    "exponential", "standard_normal", "binomial",
}

#: Wall-clock call suffixes (matched against the dotted call name).
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
}


@register
class DeterminismRule(Rule):
    """Flag nondeterminism sources inside the simulation core."""

    rule_id = "R005"
    title = "unseeded randomness or wall clock in deterministic code"

    def applies(self, rel: str) -> bool:
        return rel.startswith(DETERMINISTIC_PREFIXES) or \
            rel.rsplit("/", 1)[-1] in DETERMINISTIC_BASENAMES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx, node,
                    "stdlib 'random' in deterministic simulation code: "
                    "thread a seeded np.random.default_rng through instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: LintContext,
                    node: ast.Call) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # stdlib random module: random.<anything>()
        if parts[0] == "random" and len(parts) > 1:
            yield self.finding(
                ctx, node,
                f"'{name}()' uses unseeded global randomness: thread a "
                f"seeded np.random.default_rng through instead")
            return
        # numpy legacy global state: np.random.rand() etc.
        if len(parts) >= 3 and parts[-2] == "random" \
                and parts[-1] in LEGACY_NP_RANDOM:
            yield self.finding(
                ctx, node,
                f"'{name}()' drives numpy's global RNG state: use a "
                f"seeded np.random.default_rng instead")
            return
        if parts[-1] == "default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "default_rng() without a seed is entropy-seeded and "
                    "breaks run-to-run reproducibility")
            elif node.args and isinstance(node.args[0], ast.Constant) \
                    and node.args[0].value is None:
                yield self.finding(
                    ctx, node,
                    "default_rng(None) is entropy-seeded and breaks "
                    "run-to-run reproducibility")
            return
        suffix = ".".join(parts[-2:]) if len(parts) >= 2 else name
        if suffix in WALL_CLOCK_CALLS:
            yield self.finding(
                ctx, node,
                f"'{name}()' reads the wall clock inside deterministic "
                f"simulation code: derive time from the SlotClock")
