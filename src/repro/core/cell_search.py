"""Cell search and common-parameter acquisition (paper section 3.1.1).

NR-Scope's first job is to mimic a UE's cell discovery: decode the MIB
for frame timing and the CORESET 0 pointer, follow it to SIB 1, and
extract every common parameter later stages need — carrier width, SCS,
TDD pattern, RACH configuration, PDCCH geometry.  The result is a
:class:`CellKnowledge` that the RACH sniffer and DCI decoder read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.coreset import Coreset, SearchSpace
from repro.phy.dci import DciSizeConfig
from repro.phy.grant import GrantConfig
from repro.rrc.messages import Mib, Sib1

#: Broadcast channels survive to much lower SNR than the PDCCH thanks to
#: heavy repetition; below this the sniffer cannot even find the cell.
BROADCAST_SNR_FLOOR_DB = -6.0


class CellSearchError(ValueError):
    """Raised when acquisition is attempted out of order."""


@dataclass
class CellKnowledge:
    """Everything NR-Scope has learned about the cell so far."""

    sfn: int
    scs_khz: int
    n_prb: int | None = None
    is_tdd: bool | None = None
    sib1: Sib1 | None = None
    coreset0: Coreset | None = None
    bwp_id: int = 0

    @property
    def is_complete(self) -> bool:
        """True once both MIB and SIB 1 have been decoded."""
        return self.sib1 is not None

    def dci_size_config(self) -> DciSizeConfig:
        """DCI field widths implied by the acquired configuration."""
        if self.n_prb is None:
            raise CellSearchError("SIB 1 not yet acquired")
        return DciSizeConfig(n_prb_bwp=self.n_prb,
                             bwp_indicator_bits=1 if self.bwp_id else 0)

    def common_search_space(self) -> SearchSpace:
        """The type-0 common search space (SIB1 and MSG 4 DCIs)."""
        if self.coreset0 is None:
            raise CellSearchError("CORESET 0 not yet derived")
        return SearchSpace(search_space_id=0, coreset=self.coreset0,
                           is_common=True,
                           candidates_per_level={4: 2, 8: 1})

    def base_grant_config(self, mcs_table: str = "qam64",
                          n_layers: int = 1) -> GrantConfig:
        """A grant config for broadcast-style PDSCH translations."""
        if self.n_prb is None:
            raise CellSearchError("SIB 1 not yet acquired")
        return GrantConfig(bwp_n_prb=self.n_prb, mcs_table=mcs_table,
                           n_layers=n_layers)


class CellSearcher:
    """Consumes broadcast messages until the cell picture is complete."""

    def __init__(self, sniffer_snr_db: float) -> None:
        self.sniffer_snr_db = sniffer_snr_db
        self.knowledge: CellKnowledge | None = None
        self.mib_decodes = 0
        self.sib1_decodes = 0

    @property
    def synchronized(self) -> bool:
        """True once MIB+SIB1 are in hand and telemetry can start."""
        return self.knowledge is not None and self.knowledge.is_complete

    def _can_hear_broadcast(self) -> bool:
        return self.sniffer_snr_db >= BROADCAST_SNR_FLOOR_DB

    def on_mib(self, mib: Mib) -> bool:
        """Process a MIB broadcast; returns True when it was decoded."""
        if not self._can_hear_broadcast() or mib.cell_barred:
            return False
        self.mib_decodes += 1
        if self.knowledge is None:
            self.knowledge = CellKnowledge(sfn=mib.sfn,
                                           scs_khz=mib.scs_common_khz)
        else:
            self.knowledge.sfn = mib.sfn
        return True

    def on_sib1(self, sib1: Sib1) -> bool:
        """Process a SIB 1; returns True when the cell picture completed."""
        if not self._can_hear_broadcast():
            return False
        if self.knowledge is None:
            # SIB1 before any MIB: cannot have found CORESET 0 yet.
            return False
        self.sib1_decodes += 1
        knowledge = self.knowledge
        knowledge.sib1 = sib1
        knowledge.n_prb = sib1.n_prb_carrier
        knowledge.is_tdd = sib1.is_tdd
        knowledge.bwp_id = sib1.initial_bwp_id
        knowledge.coreset0 = Coreset(
            coreset_id=0, first_prb=0, n_prb=sib1.pdcch_coreset_prbs,
            n_symbols=sib1.pdcch_coreset_symbols, first_symbol=0,
            interleaved=True)
        return True
