"""Tests for the fair-share spare capacity estimator (Fig 14)."""

import pytest

from repro.core.spare_capacity import SpareCapacityError, \
    SpareCapacityEstimator, TtiUsage
from repro.phy.grant import GrantConfig


def make_estimator(n_prb=51, mcs_table="qam256"):
    return SpareCapacityEstimator(
        grant_config=GrantConfig(bwp_n_prb=n_prb, mcs_table=mcs_table),
        n_prb_carrier=n_prb)


def usage(slot=0, used=None, mcs=None):
    used = used or {}
    return TtiUsage(slot_index=slot, time_s=slot * 0.5e-3,
                    used_prbs=sum(used.values()), per_ue_prbs=used,
                    per_ue_mcs=mcs or {r: 10 for r in used})


class TestSpareShares:
    def test_even_split(self):
        estimator = make_estimator()
        shares = estimator.observe_tti(usage(used={1: 10, 2: 11}))
        assert len(shares) == 2
        spare_total = 51 - 21
        assert all(s.spare_prbs == spare_total // 2 for s in shares)

    def test_idle_known_ue_gets_share(self):
        estimator = make_estimator()
        shares = estimator.observe_tti(usage(used={1: 10}),
                                       known_rntis=[1, 2])
        assert {s.rnti for s in shares} == {1, 2}
        idle = next(s for s in shares if s.rnti == 2)
        assert idle.used_prbs == 0
        assert idle.used_bits == 0
        assert idle.spare_prbs == (51 - 10) // 2

    def test_same_prbs_different_mcs_different_bits(self):
        """Fig 14a's key observation: equal spare PRBs price differently
        because the UEs run different modulation and coding rates."""
        estimator = make_estimator()
        shares = estimator.observe_tti(
            usage(used={1: 10, 2: 10}, mcs={1: 27, 2: 5}))
        by_rnti = {s.rnti: s for s in shares}
        assert by_rnti[1].spare_prbs == by_rnti[2].spare_prbs
        assert by_rnti[1].spare_bits > by_rnti[2].spare_bits

    def test_idle_ue_uses_last_seen_mcs(self):
        estimator = make_estimator()
        estimator.observe_tti(usage(slot=0, used={1: 5}, mcs={1: 20}))
        shares = estimator.observe_tti(usage(slot=1), known_rntis=[1])
        rich = shares[0].spare_bits
        estimator2 = make_estimator()
        estimator2.observe_tti(usage(slot=0, used={1: 5}, mcs={1: 2}))
        poor = estimator2.observe_tti(usage(slot=1),
                                      known_rntis=[1])[0].spare_bits
        assert rich > poor

    def test_full_carrier_leaves_nothing(self):
        estimator = make_estimator()
        shares = estimator.observe_tti(usage(used={1: 51}))
        assert shares[0].spare_prbs == 0
        assert shares[0].spare_bits == 0

    def test_no_ues_no_shares(self):
        estimator = make_estimator()
        assert estimator.observe_tti(usage()) == []

    def test_overflow_rejected(self):
        estimator = make_estimator(n_prb=10)
        with pytest.raises(SpareCapacityError):
            estimator.observe_tti(usage(used={1: 11}))


class TestSeries:
    def test_spare_rate_series(self):
        estimator = make_estimator()
        for slot in range(5):
            estimator.observe_tti(usage(slot=slot, used={1: 10}))
        series = estimator.spare_rate_series(1, slot_duration_s=0.5e-3)
        assert len(series) == 5
        times = [t for t, _ in series]
        assert times == sorted(times)
        assert all(rate > 0 for _, rate in series)

    def test_prb_series(self):
        estimator = make_estimator()
        estimator.observe_tti(usage(slot=3, used={1: 10, 2: 5}))
        rows = estimator.prb_series(1)
        assert rows == [(3, 10, (51 - 15) // 2)]
