"""Tests for repro.phy.numerology: SCS, slot timing, SlotClock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.numerology import (
    NumerologyError,
    SlotClock,
    frames_elapsed,
    mu_for_scs,
    prb_count_for_bandwidth,
    slot_duration_s,
    slots_per_frame,
    symbol_duration_s,
)


class TestScs:
    def test_mu_values(self):
        assert mu_for_scs(15) == 0
        assert mu_for_scs(30) == 1
        assert mu_for_scs(60) == 2

    def test_rejects_unsupported(self):
        for bad in (120, 7, 0, -15):
            with pytest.raises(NumerologyError):
                mu_for_scs(bad)

    def test_slots_per_frame(self):
        assert slots_per_frame(15) == 10
        assert slots_per_frame(30) == 20
        assert slots_per_frame(60) == 40

    def test_tti_durations_match_paper(self):
        # Paper section 3: TTIs of 1, 0.5 and 0.25 ms.
        assert slot_duration_s(15) == pytest.approx(1e-3)
        assert slot_duration_s(30) == pytest.approx(0.5e-3)
        assert slot_duration_s(60) == pytest.approx(0.25e-3)

    def test_symbol_duration(self):
        assert symbol_duration_s(30) == pytest.approx(0.5e-3 / 14)


class TestPrbCount:
    def test_paper_configurations(self):
        # 20 MHz @ 30 kHz SCS: around 51 PRB (38.101 gives exactly 51).
        assert prb_count_for_bandwidth(20e6, 30) == pytest.approx(52, abs=2)
        # 10 MHz @ 15 kHz: around 52 PRB.
        assert prb_count_for_bandwidth(10e6, 15) == pytest.approx(52, abs=2)
        # 15 MHz @ 15 kHz: around 79 PRB.
        assert prb_count_for_bandwidth(15e6, 15) == pytest.approx(79, abs=2)

    def test_rejects_tiny_bandwidth(self):
        with pytest.raises(NumerologyError):
            prb_count_for_bandwidth(100e3, 30)

    def test_rejects_negative(self):
        with pytest.raises(NumerologyError):
            prb_count_for_bandwidth(-1.0, 15)


class TestSlotClock:
    def test_zero(self):
        clock = SlotClock(0, 0, 30)
        assert clock.index == 0
        assert clock.time_s == 0.0

    def test_advance_within_frame(self):
        clock = SlotClock(0, 0, 30).advance(7)
        assert (clock.sfn, clock.slot) == (0, 7)

    def test_advance_across_frames(self):
        clock = SlotClock(0, 19, 30).advance(1)
        assert (clock.sfn, clock.slot) == (1, 0)

    def test_advance_across_sfn_wrap(self):
        clock = SlotClock(1023, 19, 30).advance(1)
        assert (clock.sfn, clock.slot, clock.epoch) == (0, 0, 1)
        assert clock.index == 1024 * 20

    def test_time_matches_index(self):
        clock = SlotClock.from_index(4321, 30)
        assert clock.time_s == pytest.approx(4321 * 0.5e-3)

    def test_subframe(self):
        assert SlotClock(0, 3, 30).subframe == 1
        assert SlotClock(0, 3, 15).subframe == 3

    def test_ordering(self):
        assert SlotClock(0, 3, 30) < SlotClock(1, 0, 30)

    def test_invalid_indices(self):
        with pytest.raises(NumerologyError):
            SlotClock(1024, 0, 30)
        with pytest.raises(NumerologyError):
            SlotClock(0, 20, 30)
        with pytest.raises(NumerologyError):
            SlotClock(0, 0, 30).advance(-1)

    @given(st.integers(0, 10**7), st.sampled_from([15, 30, 60]))
    @settings(max_examples=50, deadline=None)
    def test_property_from_index_roundtrip(self, index, scs):
        assert SlotClock.from_index(index, scs).index == index

    @given(st.integers(0, 10**5), st.integers(0, 10**4))
    @settings(max_examples=30, deadline=None)
    def test_property_advance_additive(self, a, b):
        lhs = SlotClock.from_index(a, 30).advance(b)
        assert lhs.index == a + b


class TestFramesElapsed:
    def test_ten_minutes(self):
        # A 10-minute paper telemetry session spans 60000 frames.
        assert frames_elapsed(600.0) == 60000

    def test_rejects_negative(self):
        with pytest.raises(NumerologyError):
            frames_elapsed(-1.0)
