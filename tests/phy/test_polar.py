"""Tests for repro.phy.polar: construction, encode/decode, rate matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import polar


class TestReliabilityOrder:
    def test_is_permutation(self):
        for n in range(1, 10):
            order = polar.reliability_order(n)
            assert sorted(order) == list(range(1 << n))

    def test_extremes(self):
        # Index 0 (all-zero weight) is always least reliable; the all-ones
        # index is always most reliable.
        for n in range(2, 10):
            order = polar.reliability_order(n)
            assert order[0] == 0
            assert order[-1] == (1 << n) - 1

    def test_out_of_range(self):
        with pytest.raises(polar.PolarError):
            polar.reliability_order(11)


class TestConstruct:
    def test_basic_dimensions(self):
        code = polar.construct(70, 216)
        assert code.block_len == 256
        assert code.info_len == 70
        assert code.rate_matched_len == 216
        assert len(code.info_indices) == 70
        assert len(code.shortened_outputs) == 256 - 216

    def test_repetition_regime(self):
        code = polar.construct(40, 600)
        assert code.block_len == 512
        assert code.shortened_outputs == ()

    def test_info_avoids_shortened(self):
        code = polar.construct(30, 100)
        assert not set(code.info_indices) & set(code.shortened_outputs)

    def test_rejects_k_greater_than_e(self):
        with pytest.raises(polar.PolarError):
            polar.construct(100, 50)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(polar.PolarError):
            polar.construct(0, 100)

    def test_code_rate(self):
        code = polar.construct(54, 108)
        assert code.code_rate == pytest.approx(0.5)


class TestTransform:
    def test_involution(self, rng):
        # The Arikan transform is its own inverse over GF(2).
        u = rng.integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(polar._transform(polar._transform(u)), u)

    def test_linear(self, rng):
        a = rng.integers(0, 2, 32).astype(np.uint8)
        b = rng.integers(0, 2, 32).astype(np.uint8)
        lhs = polar._transform(a ^ b)
        rhs = polar._transform(a) ^ polar._transform(b)
        assert np.array_equal(lhs, rhs)


class TestEncodeDecode:
    def test_noiseless_roundtrip(self, rng):
        code = polar.construct(46 + 24, 108 * 2)
        info = rng.integers(0, 2, code.info_len).astype(np.uint8)
        coded = polar.encode(info, code)
        assert coded.size == code.rate_matched_len
        llrs = (1.0 - 2.0 * coded.astype(float)) * 8.0
        assert np.array_equal(polar.decode(llrs, code), info)

    def test_noiseless_roundtrip_repetition(self, rng):
        code = polar.construct(30, 540)
        info = rng.integers(0, 2, 30).astype(np.uint8)
        coded = polar.encode(info, code)
        llrs = (1.0 - 2.0 * coded.astype(float)) * 8.0
        assert np.array_equal(polar.decode(llrs, code), info)

    def test_encode_rejects_wrong_size(self):
        code = polar.construct(40, 108)
        with pytest.raises(polar.PolarError):
            polar.encode(np.zeros(39, dtype=np.uint8), code)

    def test_decode_rejects_wrong_size(self):
        code = polar.construct(40, 108)
        with pytest.raises(polar.PolarError):
            polar.decode(np.zeros(100), code)

    def test_shortened_outputs_transmit_zero(self, rng):
        code = polar.construct(40, 100)
        info = rng.integers(0, 2, 40).astype(np.uint8)
        u = np.zeros(code.block_len, dtype=np.uint8)
        u[list(code.info_indices)] = info
        x = polar._transform(u)
        assert x[list(code.shortened_outputs)].sum() == 0

    @given(st.integers(0, 2**20 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_noiseless_roundtrip(self, seed):
        local = np.random.default_rng(seed)
        k = int(local.integers(12, 80))
        e = int(local.integers(k + 4, 400))
        code = polar.construct(k, e)
        info = local.integers(0, 2, k).astype(np.uint8)
        llrs = (1.0 - 2.0 * polar.encode(info, code).astype(float)) * 6.0
        assert np.array_equal(polar.decode(llrs, code), info)

    def test_bler_improves_with_snr(self, rng):
        """Decoding must succeed more often at higher SNR (waterfall)."""
        code = polar.construct(64, 216)
        successes = {}
        for snr_db in (-4.0, 2.0):
            noise_var = 10 ** (-snr_db / 10)
            ok = 0
            for _ in range(40):
                info = rng.integers(0, 2, 64).astype(np.uint8)
                coded = polar.encode(info, code).astype(float)
                tx = 1.0 - 2.0 * coded
                noisy = tx + rng.normal(0, np.sqrt(noise_var), tx.size)
                llrs = 2.0 * noisy / noise_var
                ok += np.array_equal(polar.decode(llrs, code), info)
            successes[snr_db] = ok
        assert successes[2.0] > successes[-4.0]
        assert successes[2.0] >= 38  # near-certain at 2 dB Eb/N0-ish


class TestDecodeErrorBehaviour:
    def test_all_zero_llrs_decode_to_something(self):
        # Zero LLRs (pure noise) must not crash; output is arbitrary bits.
        code = polar.construct(40, 108)
        out = polar.decode(np.zeros(108), code)
        assert out.size == 40
        assert set(np.unique(out)) <= {0, 1}
