"""Abstract dtype/shape interpretation for the batched PHY dataflow.

The batched kernels (PR 7) promise bit-identity with their scalar
twins, and that promise has two silent failure modes the runtime never
reports: a dtype that *widens* somewhere along the chain (a float32 LLR
matrix meeting a float64 scratch buffer quietly runs the rest of the
decode in float64 — different rounding, double the memory traffic) and
a broadcast that *reinterprets* the ``(N, B)`` candidate/bit layout (a
per-candidate ``(N,)`` vector aligned against the bit axis "works"
whenever ``N == B`` numerically and corrupts every row otherwise).
This module gives nrlint a small abstract domain to see both statically:

* **DType** — a finite chain lattice ``bool < uint8 < int8 < ... <
  float32 < float64 < complex64 < complex128`` with ``BOTTOM``/``TOP``.
  The total order is a deliberate, documented approximation of numpy's
  promotion partial order: ``join`` is ``max``, so the lattice laws
  (commutative, associative, idempotent joins; antisymmetric order)
  hold by construction and are property-tested.  The linter only ever
  *compares* widths within one kind (32 vs 64-bit float/complex), where
  the chain agrees with numpy exactly.
* **Dim** — a symbolic dimension: an integer literal, a declared symbol
  (``N``, ``B``, ``L``), or unknown.  Two distinct symbols are claimed
  distinct; unknown matches anything (conservative silence).
* **Shape** — a tuple of dims or unknown rank; **Value** — a (dtype,
  shape) pair, the abstract element propagated through expressions.

Functions declare their contract with ``Layout:`` docstring lines::

    Layout: llrs (N, B) float64
    Layout: return (N, K) uint8

which seed the interpreter's environment (and double as reviewable
documentation of the wire format).  :func:`analyze_module` runs a
forward pass per function — assignments, branches joined, loops run
twice through :func:`widen_value` — and records
:class:`ShapeIssue` entries that rules R010 (upcasts, scalar/``_batch``
return-dtype drift) and R011 (symbol-conflicting broadcasts) turn into
findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.astutil import dotted_name

# --------------------------------------------------------------- dtype

#: The dtype chain, narrowest to widest.  ``join`` is max-by-index.
DTYPE_CHAIN: tuple[str, ...] = (
    "bool", "uint8", "int8", "uint16", "int16", "uint32", "int32",
    "uint64", "int64", "float16", "float32", "float64",
    "complex64", "complex128",
)

_LEVELS: dict[str, int] = {name: i for i, name in enumerate(DTYPE_CHAIN)}

#: Spellings normalised onto the chain (python builtins, numpy aliases).
_DTYPE_ALIASES: dict[str, str] = {
    "bool_": "bool", "int": "int64", "intp": "int64", "intc": "int32",
    "long": "int64", "longlong": "int64", "byte": "int8",
    "ubyte": "uint8", "uint": "uint64",
    "float": "float64", "float_": "float64", "double": "float64",
    "single": "float32", "half": "float16",
    "complex": "complex128", "cfloat": "complex128",
    "cdouble": "complex128", "csingle": "complex64",
}


@dataclass(frozen=True)
class DType:
    """One element of the dtype chain lattice (plus TOP and BOTTOM)."""

    level: int  #: -1 = BOTTOM, len(DTYPE_CHAIN) = TOP

    @property
    def name(self) -> str:
        if self.level < 0:
            return "<bottom>"
        if self.level >= len(DTYPE_CHAIN):
            return "<unknown>"
        return DTYPE_CHAIN[self.level]

    @property
    def is_concrete(self) -> bool:
        return 0 <= self.level < len(DTYPE_CHAIN)

    @property
    def kind(self) -> str:
        """``b`` bool, ``i`` integer, ``f`` float, ``c`` complex, ``?``."""
        if not self.is_concrete:
            return "?"
        name = self.name
        if name == "bool":
            return "b"
        if name.startswith(("uint", "int")):
            return "i"
        if name.startswith("float"):
            return "f"
        return "c"

    def leq(self, other: "DType") -> bool:
        """The lattice partial order (here total: chain position)."""
        return self.level <= other.level

    def join(self, other: "DType") -> "DType":
        """Least upper bound."""
        return self if other.level <= self.level else other

    def meet(self, other: "DType") -> "DType":
        """Greatest lower bound."""
        return self if self.level <= other.level else other


DTYPE_BOTTOM = DType(-1)
DTYPE_TOP = DType(len(DTYPE_CHAIN))


def dtype_named(name: str) -> DType:
    """Look a dtype up by (possibly aliased) name; TOP when unknown."""
    leaf = name.split(".")[-1]
    leaf = _DTYPE_ALIASES.get(leaf, leaf)
    level = _LEVELS.get(leaf)
    return DTYPE_TOP if level is None else DType(level)


def widen_dtype(old: DType, new: DType) -> "DType":
    """Loop widening: keep ``old`` if ``new`` fits under it, else TOP.

    Always an upper bound of ``join(old, new)`` and monotone in ``new``,
    so two body passes suffice for termination.
    """
    return old if new.leq(old) else DTYPE_TOP


# ---------------------------------------------------------------- dims

@dataclass(frozen=True)
class Dim:
    """A literal, symbolic, or unknown dimension."""

    size: int | None = None
    symbol: str | None = None

    @property
    def known(self) -> bool:
        return self.size is not None or self.symbol is not None

    def render(self) -> str:
        if self.size is not None:
            return str(self.size)
        if self.symbol is not None:
            return self.symbol
        return "?"

    def join(self, other: "Dim") -> "Dim":
        return self if self == other else DIM_UNKNOWN


DIM_UNKNOWN = Dim()


def dim_lit(size: int) -> Dim:
    """A literal dimension."""
    return Dim(size=size)


def dim_sym(symbol: str) -> Dim:
    """A declared symbolic dimension."""
    return Dim(symbol=symbol)


# -------------------------------------------------------------- shapes

@dataclass(frozen=True)
class Shape:
    """A tuple of dims, or unknown rank (``dims is None``)."""

    dims: tuple[Dim, ...] | None = None

    @property
    def known_rank(self) -> bool:
        return self.dims is not None

    def render(self) -> str:
        if self.dims is None:
            return "(?)"
        return "(" + ", ".join(d.render() for d in self.dims) + ")"

    def join(self, other: "Shape") -> "Shape":
        if self.dims is None or other.dims is None \
                or len(self.dims) != len(other.dims):
            return SHAPE_UNKNOWN
        return Shape(tuple(a.join(b)
                           for a, b in zip(self.dims, other.dims)))


SHAPE_UNKNOWN = Shape()
SHAPE_SCALAR = Shape(())


def widen_shape(old: Shape, new: Shape) -> Shape:
    """Loop widening for shapes: join (finite lattice per rank)."""
    return old.join(new)


def broadcast(a: Shape, b: Shape) -> tuple[Shape, list[str]]:
    """Numpy-style broadcast of two shapes.

    Returns the result shape plus conflict strings for axis pairs
    where two *known* dims disagree and neither is a literal 1 —
    either a guaranteed runtime error (literal mismatch) or, worse, a
    symbol mismatch (``N`` against ``B``) that silently "works" when
    the sizes coincide and reinterprets the layout.
    """
    if a.dims is None or b.dims is None:
        return SHAPE_UNKNOWN, []
    conflicts: list[str] = []
    out: list[Dim] = []
    rank = max(len(a.dims), len(b.dims))
    for axis in range(1, rank + 1):
        da = a.dims[-axis] if axis <= len(a.dims) else dim_lit(1)
        db = b.dims[-axis] if axis <= len(b.dims) else dim_lit(1)
        if da == db:
            out.append(da)
        elif da.size == 1:
            out.append(db)
        elif db.size == 1:
            out.append(da)
        elif da.known and db.known:
            conflicts.append(
                f"axis -{axis}: {da.render()} vs {db.render()}")
            out.append(DIM_UNKNOWN)
        else:
            out.append(DIM_UNKNOWN)
    return Shape(tuple(reversed(out))), conflicts


# -------------------------------------------------------------- values

@dataclass(frozen=True)
class Value:
    """The abstract element: a (dtype, shape) pair."""

    dtype: DType = DTYPE_TOP
    shape: Shape = SHAPE_UNKNOWN

    @property
    def is_array(self) -> bool:
        """Known to have rank >= 1."""
        return self.shape.dims is not None and len(self.shape.dims) >= 1

    @property
    def is_scalar(self) -> bool:
        return self.shape.dims is not None and len(self.shape.dims) == 0

    def with_dtype(self, dtype: DType) -> "Value":
        return Value(dtype=dtype, shape=self.shape)

    def with_shape(self, shape: Shape) -> "Value":
        return Value(dtype=self.dtype, shape=shape)

    def render(self) -> str:
        return f"{self.shape.render()} {self.dtype.name}"


VALUE_UNKNOWN = Value()


def join_value(a: Value, b: Value) -> Value:
    """Pairwise lattice join."""
    return Value(dtype=a.dtype.join(b.dtype), shape=a.shape.join(b.shape))


def widen_value(old: Value, new: Value) -> Value:
    """Pairwise widening for loop fixpoints."""
    return Value(dtype=widen_dtype(old.dtype, new.dtype),
                 shape=widen_shape(old.shape, new.shape))


# ------------------------------------------------- layout declarations

#: ``Layout: name (N, B) float64`` docstring lines; the dtype is
#: optional, ``return`` declares the return contract.
_LAYOUT_RE = re.compile(
    r"^\s*Layout:\s*(?P<name>\w+)\s*"
    r"\((?P<dims>[^)]*)\)\s*(?P<dtype>[\w.]+)?\s*$",
    re.MULTILINE)


def parse_layouts(docstring: str | None) -> dict[str, Value]:
    """Extract declared layouts from a function docstring."""
    if not docstring:
        return {}
    layouts: dict[str, Value] = {}
    for match in _LAYOUT_RE.finditer(docstring):
        dims: list[Dim] = []
        text = match.group("dims").strip()
        ok = True
        if text:
            for token in text.split(","):
                token = token.strip()
                if not token:
                    continue
                if token.isdigit():
                    dims.append(dim_lit(int(token)))
                elif token.isidentifier():
                    dims.append(dim_sym(token))
                else:
                    ok = False
                    break
        if not ok:
            continue
        dtype = DTYPE_TOP
        dtype_text = match.group("dtype")
        if dtype_text:
            dtype = dtype_named(dtype_text)
        layouts[match.group("name")] = Value(dtype=dtype,
                                             shape=Shape(tuple(dims)))
    return layouts


# --------------------------------------------------------- the issues

@dataclass(frozen=True)
class ShapeIssue:
    """One interpreter observation a rule may turn into a finding."""

    kind: str       #: ``upcast`` | ``broadcast`` | ``return-drift``
    lineno: int
    col: int
    detail: str


@dataclass
class FunctionShapes:
    """Interpretation result for one function."""

    name: str
    qualname: str           #: ``fn`` or ``Class.fn``
    lineno: int
    layouts: dict[str, Value] = field(default_factory=dict)
    returns: list[Value] = field(default_factory=list)
    issues: list[ShapeIssue] = field(default_factory=list)

    @property
    def return_value(self) -> Value:
        """Join of every return site (unknown when none was inferable)."""
        if not self.returns:
            return VALUE_UNKNOWN
        out = self.returns[0]
        for value in self.returns[1:]:
            out = join_value(out, value)
        return out


# ------------------------------------------------- dtype helper tables

_SMALL_FLOATS = frozenset(("float16", "float32", "complex64"))
_BIG_FLOATS = frozenset(("float64", "complex128"))

#: abs()/.real/.imag of a complex dtype drops to its float half.
_COMPLEX_TO_FLOAT = {"complex64": "float32", "complex128": "float64"}

_ALLOCATORS = frozenset(("zeros", "ones", "empty", "full"))
_LIKE_ALLOCATORS = frozenset(("zeros_like", "ones_like", "empty_like",
                              "full_like"))
_CASTERS = frozenset(("asarray", "array", "ascontiguousarray",
                      "asfortranarray"))
_REDUCERS = frozenset(("sum", "mean", "amin", "amax", "min", "max",
                       "prod", "median", "std", "var"))
_ELEMENTWISE = frozenset(("negative", "positive", "conj", "conjugate",
                          "exp", "log", "sin", "cos", "tanh", "sign",
                          "floor", "ceil", "round", "clip"))


def _float_result(dtype: DType) -> DType:
    """The dtype a true-division / sqrt-style op produces."""
    if dtype.kind in ("b", "i"):
        return dtype_named("float64")
    return dtype


def _scalar_array_dtype(scalar: DType, array: DType) -> DType:
    """Numpy scalar-vs-array promotion: the array's width wins.

    A python float scalar does not upcast a float32 array; a complex
    scalar raises the *kind* but keeps the array's width class.
    """
    if not scalar.is_concrete or not array.is_concrete:
        return DTYPE_TOP
    kinds = "bifc"
    if kinds.index(scalar.kind) <= kinds.index(array.kind):
        return array
    if scalar.kind == "f":
        if array.name in ("float16", "float32"):
            return array
        return dtype_named("float64")
    # complex scalar: raise the array's kind, keep its width class
    if array.name in ("float16", "float32"):
        return dtype_named("complex64")
    return dtype_named("complex128")


def _dtype_from_expr(node: ast.expr | None) -> DType:
    """A dtype literal (``np.float32``, ``"uint8"``, ``float``)."""
    if node is None:
        return DTYPE_TOP
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return dtype_named(node.value)
    name = dotted_name(node)
    if name is not None:
        return dtype_named(name)
    return DTYPE_TOP


# --------------------------------------------------- the interpreter

class _Interpreter:
    """One forward abstract-interpretation pass over a function body."""

    def __init__(self, shapes: FunctionShapes,
                 module: "ModuleShapes | None" = None) -> None:
        self.shapes = shapes
        self.module = module
        self.env: dict[str, Value] = {}
        #: scalar ints bound from ``a, b = x.shape`` unpacking.
        self.dim_env: dict[str, Dim] = {}
        self.issues: list[ShapeIssue] = shapes.issues

    # ------------------------------------------------------ plumbing
    def _issue(self, kind: str, node: ast.AST, detail: str) -> None:
        entry = ShapeIssue(kind=kind,
                           lineno=getattr(node, "lineno", 0),
                           col=getattr(node, "col_offset", 0),
                           detail=detail)
        if entry not in self.issues:
            self.issues.append(entry)

    def _dim_of(self, node: ast.expr) -> Dim:
        """A dimension-valued expression (reshape args, allocator dims)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            if node.value >= 0:
                return dim_lit(node.value)
            return DIM_UNKNOWN
        if isinstance(node, ast.Name):
            return self.dim_env.get(node.id, DIM_UNKNOWN)
        return DIM_UNKNOWN

    def _shape_from_arg(self, node: ast.expr) -> Shape:
        """An allocator's shape argument: int, name, or tuple thereof."""
        if isinstance(node, (ast.Tuple, ast.List)):
            return Shape(tuple(self._dim_of(e) for e in node.elts))
        dim = self._dim_of(node)
        return Shape((dim,))

    # ------------------------------------------------------ execution
    def run(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            declared = self.shapes.layouts.get(arg.arg)
            if declared is not None:
                self.env[arg.arg] = declared
                continue
            ann = arg.annotation
            ann_name = dotted_name(ann) if ann is not None else None
            if ann_name is not None:
                leaf = ann_name.split(".")[-1]
                if leaf in ("float", "int", "bool", "complex"):
                    self.env[arg.arg] = Value(
                        dtype=dtype_named(leaf), shape=SHAPE_SCALAR)
        self._exec_block(node.body)

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                synthetic = ast.BinOp(
                    left=ast.copy_location(
                        ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt),
                    op=stmt.op, right=stmt.value)
                ast.copy_location(synthetic, stmt)
                ast.fix_missing_locations(synthetic)
                self.env[stmt.target.id] = self.eval(synthetic)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval(stmt.value)
                self.shapes.returns.append(value)
                self._check_return(stmt, value)
        elif isinstance(stmt, ast.If):
            base = dict(self.env)
            self._exec_block(stmt.body)
            then_env = self.env
            self.env = dict(base)
            self._exec_block(stmt.orelse)
            self._merge_env(then_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = VALUE_UNKNOWN
            self._exec_loop(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._exec_loop(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)

    def _exec_loop(self, body: list[ast.stmt]) -> None:
        before = dict(self.env)
        self._exec_block(body)
        widened: dict[str, Value] = {}
        for name, new in self.env.items():
            old = before.get(name, new)
            widened[name] = widen_value(old, new)
        self.env = widened
        self._exec_block(body)

    def _merge_env(self, other: dict[str, Value]) -> None:
        merged: dict[str, Value] = {}
        for name in set(self.env) | set(other):
            a = self.env.get(name, VALUE_UNKNOWN)
            b = other.get(name, VALUE_UNKNOWN)
            merged[name] = join_value(a, b)
        self.env = merged

    def _bind(self, target: ast.expr, value: Value,
              source: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # ``batch, n = arr.shape`` binds symbolic dims by name so a
            # later ``reshape(batch, ...)`` keeps the symbol.
            dims: tuple[Dim, ...] | None = None
            if isinstance(source, ast.Attribute) \
                    and source.attr == "shape":
                base = self.eval(source.value)
                dims = base.shape.dims
            for i, element in enumerate(target.elts):
                if not isinstance(element, ast.Name):
                    continue
                if dims is not None and i < len(dims):
                    self.dim_env[element.id] = dims[i]
                    self.env[element.id] = Value(
                        dtype=dtype_named("int64"), shape=SHAPE_SCALAR)
                else:
                    self.env[element.id] = VALUE_UNKNOWN

    def _check_return(self, stmt: ast.Return, value: Value) -> None:
        declared = self.shapes.layouts.get("return")
        if declared is None:
            return
        if declared.dtype.is_concrete and value.dtype.is_concrete \
                and declared.dtype != value.dtype:
            self._issue(
                "return-drift", stmt,
                f"declared 'Layout: return ... {declared.dtype.name}' "
                f"but this return is inferred {value.dtype.name}")

    # ----------------------------------------------------- expressions
    def eval(self, node: ast.expr) -> Value:
        """Abstract value of an expression (never raises)."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, VALUE_UNKNOWN)
        if isinstance(node, ast.Constant):
            return self._eval_constant(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(node.op, ast.Not):
                return Value(dtype=dtype_named("bool"), shape=inner.shape)
            return inner
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Compare):
            # elementwise comparison keeps the broadcast shape
            left = self.eval(node.left)
            shape = left.shape
            for comp in node.comparators:
                right = self.eval(comp)
                shape, conflicts = broadcast(shape, right.shape)
                self._report_conflicts(node, left, right, conflicts)
            return Value(dtype=dtype_named("bool"), shape=shape)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join_value(self.eval(node.body),
                              self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.eval(element)
            return VALUE_UNKNOWN
        if isinstance(node, ast.BoolOp):
            out = VALUE_UNKNOWN
            for value_node in node.values:
                out = join_value(out, self.eval(value_node))
            return out
        return VALUE_UNKNOWN

    def _eval_constant(self, node: ast.Constant) -> Value:
        value = node.value
        if isinstance(value, bool):
            return Value(dtype=dtype_named("bool"), shape=SHAPE_SCALAR)
        if isinstance(value, int):
            return Value(dtype=dtype_named("int64"), shape=SHAPE_SCALAR)
        if isinstance(value, float):
            return Value(dtype=dtype_named("float64"), shape=SHAPE_SCALAR)
        if isinstance(value, complex):
            return Value(dtype=dtype_named("complex128"),
                         shape=SHAPE_SCALAR)
        return VALUE_UNKNOWN

    def _report_conflicts(self, node: ast.AST, left: Value, right: Value,
                          conflicts: list[str]) -> None:
        for conflict in conflicts:
            self._issue(
                "broadcast", node,
                f"broadcast misaligns declared layouts "
                f"{left.shape.render()} against {right.shape.render()} "
                f"({conflict})")

    def _combine(self, node: ast.AST, left: Value, right: Value,
                 divide: bool = False) -> Value:
        """Elementwise binary combination with upcast/broadcast checks."""
        shape, conflicts = broadcast(left.shape, right.shape)
        self._report_conflicts(node, left, right, conflicts)
        a, b = left.dtype, right.dtype
        if left.is_scalar and right.is_array:
            dtype = _scalar_array_dtype(a, b)
        elif right.is_scalar and left.is_array:
            dtype = _scalar_array_dtype(b, a)
        else:
            dtype = a.join(b)
            if left.is_array and right.is_array \
                    and a.is_concrete and b.is_concrete:
                small, big = (a, b) if a.leq(b) else (b, a)
                if small.name in _SMALL_FLOATS \
                        and big.name in _BIG_FLOATS:
                    self._issue(
                        "upcast", node,
                        f"{small.name} operand silently upcasts to "
                        f"{big.name} — pin one side's dtype so the "
                        f"batched path keeps the scalar path's "
                        f"precision")
        if divide:
            dtype = _float_result(dtype)
        return Value(dtype=dtype, shape=shape)

    def _eval_binop(self, node: ast.BinOp) -> Value:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return self._matmul(left, right)
        return self._combine(node, left, right,
                             divide=isinstance(node.op, ast.Div))

    def _matmul(self, left: Value, right: Value) -> Value:
        dtype = left.dtype.join(right.dtype)
        a, b = left.shape.dims, right.shape.dims
        if a is not None and b is not None \
                and len(a) >= 1 and len(b) >= 1:
            if len(a) >= 2 and len(b) >= 2:
                return Value(dtype=dtype,
                             shape=Shape(a[:-1] + b[-1:]))
            if len(a) >= 2 and len(b) == 1:
                return Value(dtype=dtype, shape=Shape(a[:-1]))
            if len(a) == 1 and len(b) >= 2:
                return Value(dtype=dtype, shape=Shape(b[-1:]))
            return Value(dtype=dtype, shape=SHAPE_SCALAR)
        return Value(dtype=dtype, shape=SHAPE_UNKNOWN)

    def _reduce(self, value: Value, axis_node: ast.expr | None,
                float_result: bool = False) -> Value:
        dtype = value.dtype
        if float_result:
            dtype = _float_result(dtype)
        dims = value.shape.dims
        if dims is None:
            return Value(dtype=dtype, shape=SHAPE_UNKNOWN)
        if axis_node is None:
            return Value(dtype=dtype, shape=SHAPE_SCALAR)
        if isinstance(axis_node, ast.Constant) \
                and isinstance(axis_node.value, int) \
                and not isinstance(axis_node.value, bool):
            axis = axis_node.value
            if -len(dims) <= axis < len(dims):
                axis %= len(dims)
                return Value(dtype=dtype, shape=Shape(
                    dims[:axis] + dims[axis + 1:]))
        return Value(dtype=dtype, shape=SHAPE_UNKNOWN)

    def _keyword(self, node: ast.Call, name: str) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _eval_call(self, node: ast.Call) -> Value:
        name = dotted_name(node.func)
        # numpy-namespace intrinsics (np.zeros, np.mean, ...)
        if name is not None and "." in name:
            head = name.split(".", 1)[0]
            if head in ("np", "numpy"):
                return self._eval_numpy(node, name.split(".")[-1])
        # module-local helper: propagate its inferred return dtype/rank
        if name is not None and "." not in name \
                and self.module is not None:
            summary = self.module.summary_of(name)
            if summary is not None:
                for arg in node.args:
                    self.eval(arg)
                ret = summary.return_value
                return Value(dtype=ret.dtype,
                             shape=_strip_symbols(ret.shape))
        # array methods (x.astype, x.reshape, x.sum, ...)
        if isinstance(node.func, ast.Attribute):
            return self._eval_method(node, node.func)
        for arg in node.args:
            self.eval(arg)
        return VALUE_UNKNOWN

    def _eval_numpy(self, node: ast.Call, leaf: str) -> Value:
        args = node.args
        if leaf in _ALLOCATORS:
            dtype_slot = 2 if leaf == "full" else 1
            dtype = _dtype_from_expr(self._keyword(node, "dtype"))
            if not dtype.is_concrete and len(args) > dtype_slot:
                dtype = _dtype_from_expr(args[dtype_slot])
            if not dtype.is_concrete \
                    and self._keyword(node, "dtype") is None \
                    and len(args) <= dtype_slot:
                dtype = dtype_named("float64")
            shape = self._shape_from_arg(args[0]) if args \
                else SHAPE_UNKNOWN
            return Value(dtype=dtype, shape=shape)
        if leaf in _LIKE_ALLOCATORS:
            base = self.eval(args[0]) if args else VALUE_UNKNOWN
            dtype = _dtype_from_expr(self._keyword(node, "dtype"))
            if dtype.is_concrete:
                return base.with_dtype(dtype)
            return base
        if leaf in _CASTERS:
            base = self.eval(args[0]) if args else VALUE_UNKNOWN
            dtype = _dtype_from_expr(self._keyword(node, "dtype"))
            if not dtype.is_concrete and len(args) >= 2:
                dtype = _dtype_from_expr(args[1])
            if dtype.is_concrete:
                return base.with_dtype(dtype)
            return base
        if leaf in _REDUCERS:
            base = self.eval(args[0]) if args else VALUE_UNKNOWN
            axis = self._keyword(node, "axis")
            if axis is None and len(args) >= 2:
                axis = args[1]
            return self._reduce(base, axis,
                                float_result=leaf in ("mean", "std",
                                                      "var", "median"))
        if leaf in ("abs", "absolute"):
            base = self.eval(args[0]) if args else VALUE_UNKNOWN
            mapped = _COMPLEX_TO_FLOAT.get(base.dtype.name)
            if mapped is not None:
                return base.with_dtype(dtype_named(mapped))
            return base
        if leaf == "sqrt":
            base = self.eval(args[0]) if args else VALUE_UNKNOWN
            return base.with_dtype(_float_result(base.dtype))
        if leaf in ("maximum", "minimum"):
            if len(args) >= 2:
                return self._combine(node, self.eval(args[0]),
                                     self.eval(args[1]))
            return VALUE_UNKNOWN
        if leaf == "where" and len(args) == 3:
            self.eval(args[0])
            return self._combine(node, self.eval(args[1]),
                                 self.eval(args[2]))
        if leaf == "arange":
            dtype = _dtype_from_expr(self._keyword(node, "dtype"))
            if not dtype.is_concrete:
                has_float = any(
                    isinstance(a, ast.Constant)
                    and isinstance(a.value, float) for a in args)
                dtype = dtype_named("float64" if has_float else "int64")
            return Value(dtype=dtype, shape=Shape((DIM_UNKNOWN,)))
        if leaf == "stack":
            if args and isinstance(args[0], (ast.List, ast.Tuple)):
                elements = [self.eval(e) for e in args[0].elts]
                if elements:
                    joined = elements[0]
                    for element in elements[1:]:
                        joined = join_value(joined, element)
                    if joined.shape.dims is not None:
                        return Value(
                            dtype=joined.dtype,
                            shape=Shape((dim_lit(len(elements)),)
                                        + joined.shape.dims))
                    return Value(dtype=joined.dtype,
                                 shape=SHAPE_UNKNOWN)
            return VALUE_UNKNOWN
        if leaf in ("dot", "matmul") and len(args) >= 2:
            return self._matmul(self.eval(args[0]), self.eval(args[1]))
        if leaf == "reshape" and args:
            base = self.eval(args[0])
            if len(args) >= 2:
                return base.with_shape(self._reshape_target(args[1:]))
            return base.with_shape(SHAPE_UNKNOWN)
        if leaf in ("ravel", "concatenate", "tile", "repeat"):
            base = self.eval(args[0]) if args else VALUE_UNKNOWN
            if leaf == "ravel":
                return base.with_shape(Shape((DIM_UNKNOWN,)))
            return base.with_shape(SHAPE_UNKNOWN)
        if leaf in _ELEMENTWISE:
            return self.eval(args[0]) if args else VALUE_UNKNOWN
        for arg in args:
            self.eval(arg)
        return VALUE_UNKNOWN

    def _reshape_target(self, args: list[ast.expr]) -> Shape:
        if len(args) == 1 and isinstance(args[0], (ast.Tuple, ast.List)):
            args = list(args[0].elts)
        dims: list[Dim] = []
        for arg in args:
            if isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, int) \
                    and not isinstance(arg.value, bool):
                if arg.value == -1:
                    dims.append(DIM_UNKNOWN)
                else:
                    dims.append(dim_lit(arg.value))
            else:
                dims.append(self._dim_of(arg))
        return Shape(tuple(dims))

    def _eval_method(self, node: ast.Call,
                     func: ast.Attribute) -> Value:
        base = self.eval(func.value)
        method = func.attr
        args = node.args
        if method == "astype" and args:
            return base.with_dtype(_dtype_from_expr(args[0]))
        if method == "reshape":
            return base.with_shape(self._reshape_target(list(args)))
        if method in ("ravel", "flatten"):
            return base.with_shape(Shape((DIM_UNKNOWN,)))
        if method in ("copy", "conj", "conjugate", "clip", "round"):
            return base
        if method in _REDUCERS:
            axis = self._keyword(node, "axis")
            if axis is None and args:
                axis = args[0]
            return self._reduce(base, axis,
                                float_result=method in ("mean", "std",
                                                        "var"))
        if method == "transpose":
            if base.shape.dims is not None and not args:
                return base.with_shape(
                    Shape(tuple(reversed(base.shape.dims))))
            return base.with_shape(SHAPE_UNKNOWN)
        for arg in args:
            self.eval(arg)
        return VALUE_UNKNOWN

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        if node.attr == "T":
            base = self.eval(node.value)
            if base.shape.dims is not None:
                return base.with_shape(
                    Shape(tuple(reversed(base.shape.dims))))
            return base.with_shape(SHAPE_UNKNOWN)
        if node.attr in ("real", "imag"):
            base = self.eval(node.value)
            mapped = _COMPLEX_TO_FLOAT.get(base.dtype.name)
            if mapped is not None:
                return base.with_dtype(dtype_named(mapped))
            return base
        if node.attr == "size":
            return Value(dtype=dtype_named("int64"), shape=SHAPE_SCALAR)
        return VALUE_UNKNOWN

    def _eval_subscript(self, node: ast.Subscript) -> Value:
        base = self.eval(node.value)
        dims = base.shape.dims
        if dims is None:
            return base.with_shape(SHAPE_UNKNOWN)
        index = node.slice
        elements = list(index.elts) if isinstance(index, ast.Tuple) \
            else [index]
        out: list[Dim] = []
        axis = 0
        for element in elements:
            if isinstance(element, ast.Constant) \
                    and element.value is None:
                out.append(dim_lit(1))
                continue
            if axis >= len(dims):
                return base.with_shape(SHAPE_UNKNOWN)
            if isinstance(element, ast.Slice):
                if element.lower is None and element.upper is None \
                        and element.step is None:
                    out.append(dims[axis])
                else:
                    out.append(DIM_UNKNOWN)
                axis += 1
            elif isinstance(element, ast.Constant) \
                    and isinstance(element.value, int) \
                    and not isinstance(element.value, bool):
                axis += 1          # integer index drops the axis
            else:
                return base.with_shape(SHAPE_UNKNOWN)
        out.extend(dims[axis:])
        return base.with_shape(Shape(tuple(out)))


def _strip_symbols(shape: Shape) -> Shape:
    """Drop a callee's local symbols when propagating its return shape:
    the caller's ``N`` is not the callee's ``N``."""
    if shape.dims is None:
        return SHAPE_UNKNOWN
    return Shape(tuple(d if d.size is not None else DIM_UNKNOWN
                       for d in shape.dims))


# ---------------------------------------------------- module analysis

class ModuleShapes:
    """Shape interpretation of every function in one module."""

    def __init__(self, tree: ast.Module) -> None:
        self._defs: dict[str, tuple[
            ast.FunctionDef | ast.AsyncFunctionDef, str]] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._defs[stmt.name] = (stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qualname = f"{stmt.name}.{item.name}"
                        self._defs[qualname] = (item, qualname)
        self._summaries: dict[str, FunctionShapes] = {}
        self._in_progress: set[str] = set()
        for qualname in self._defs:
            self.summary_of(qualname)

    @property
    def functions(self) -> dict[str, FunctionShapes]:
        """Every interpreted function, keyed by (class-qualified) name."""
        return self._summaries

    def summary_of(self, qualname: str) -> FunctionShapes | None:
        """The (memoised) interpretation of one function, by name.

        Bare names also match a unique method (so a module-level call
        to a local helper resolves).  Recursion yields unknown.
        """
        if qualname not in self._defs:
            return None
        if qualname in self._summaries:
            return self._summaries[qualname]
        if qualname in self._in_progress:
            return None
        node, _ = self._defs[qualname]
        shapes = FunctionShapes(
            name=qualname.rsplit(".", 1)[-1], qualname=qualname,
            lineno=node.lineno,
            layouts=parse_layouts(ast.get_docstring(node)))
        self._in_progress.add(qualname)
        try:
            _Interpreter(shapes, module=self).run(node)
        finally:
            self._in_progress.discard(qualname)
        self._summaries[qualname] = shapes
        return shapes

    def batch_twins(self) -> list[tuple[FunctionShapes, FunctionShapes]]:
        """Every (scalar, ``_batch``) function pair of the module."""
        pairs: list[tuple[FunctionShapes, FunctionShapes]] = []
        for qualname, batch in sorted(self._summaries.items()):
            if not qualname.endswith("_batch"):
                continue
            scalar = self._summaries.get(qualname[:-len("_batch")])
            if scalar is not None:
                pairs.append((scalar, batch))
        return pairs


def analyze_module(tree: ast.Module) -> ModuleShapes:
    """Interpret every function of a parsed module."""
    return ModuleShapes(tree)
