"""The Fig-12 hot-path bench: the repository's perf trajectory anchor.

Measures the production slot pipeline (OFDM demod backbone + per-UE
PDCCH blind decode) over the Fig 12 workload at several tracked-UE
counts, across the executor x kernel matrix:

* executors — ``inline`` (scalar baseline), ``threaded:4`` (the paper's
  worker pool, GIL-bound in Python), ``process:4`` (true multi-core via
  picklable decode jobs);
* kernels — ``scalar`` (per-candidate Python loop) vs ``batched``
  (stacked numpy gather/demod/descramble/polar, bit-identical outputs).

``mean_slot_us`` is wall-clock over the submitted slots divided by the
slot count — it credits cross-slot pipelining, which is exactly what a
multi-core executor buys.  ``p95_slot_us`` is the 95th percentile of
per-slot decode compute time.  Every config must decode the identical
DCI count per slot (checked here), so the speedups compare equal work.

The result is written to ``BENCH_fig12.json`` (schema
``bench-fig12/v1``) so each subsequent PR can diff the trajectory; CI
runs a tiny config and validates the schema with :func:`validate_bench`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.runtime import build_executor
from repro.experiments.common import ExperimentError
from repro.experiments.fig12_processing import build_runtime, \
    build_workload
from repro.gnb.cell_config import AMARISOFT_PROFILE, CellProfile

SCHEMA = "bench-fig12/v1"

#: The measured matrix: (executor spec, batched kernels?).
CONFIGS: tuple[tuple[str, bool], ...] = (
    ("inline", False),
    ("inline", True),
    ("threaded:4", False),
    ("threaded:4", True),
    ("process:4", False),
    ("process:4", True),
)

UE_COUNTS = (1, 8, 32, 128)
QUICK_UE_COUNTS = (1, 4)

#: The acceptance comparison: batched process:4 over scalar inline.
BASELINE = ("inline", False)
CONTENDER = ("process:4", True)


def config_label(spec: str, batch: bool) -> str:
    return f"{'batched' if batch else 'scalar'}-{spec}"


@dataclass(frozen=True)
class BenchPoint:
    """One (config, UE count) measurement."""

    n_ues: int
    mean_slot_us: float
    p95_slot_us: float
    decoded_per_slot: int


@dataclass
class BenchConfig:
    """One executor/kernel combination's sweep."""

    executor: str
    batch: bool
    points: list[BenchPoint] = field(default_factory=list)

    @property
    def label(self) -> str:
        return config_label(self.executor, self.batch)

    def point(self, n_ues: int) -> BenchPoint:
        for p in self.points:
            if p.n_ues == n_ues:
                return p
        raise ExperimentError(f"{self.label} has no {n_ues}-UE point")


def measure_point(profile: CellProfile, spec: str, batch: bool,
                  n_ues: int, n_slots: int,
                  warmup_slots: int | None = None) -> BenchPoint:
    """Run one config at one UE count over ``n_slots`` identical slots.

    Warm-up slots bring up executor workers (process spawn, cache fill)
    before the timed window; stats are reset in between.  Pool
    executors get enough warm-up slots for *every* worker to spawn and
    fill its kernel caches — with too few, the round-robin leaves some
    workers cold and their first-job compile cost lands inside the
    timed window.
    """
    workload = build_workload(profile, n_ues)
    executor = build_executor(spec)
    if warmup_slots is None:
        warmup_slots = 1 + 3 * getattr(executor, "n_workers", 0)
    latencies: list[float] = []
    decoded_counts: list[int] = []
    runtime = build_runtime(workload, executor, batch=batch,
                            latencies=latencies,
                            decoded_counts=decoded_counts)
    for _ in range(warmup_slots):
        runtime.submit(None)
    runtime.flush()
    runtime.reset_stats()
    latencies.clear()
    decoded_counts.clear()
    start = time.perf_counter()
    for _ in range(n_slots):
        runtime.submit(None)
    runtime.flush()
    wall_s = time.perf_counter() - start
    runtime.close()
    stats = runtime.stats()
    if stats.slots_dropped:
        raise ExperimentError(
            f"{config_label(spec, batch)} dropped "
            f"{stats.slots_dropped} slots at queue depth; the bench "
            f"must measure a drop-free run")
    counts = set(decoded_counts)
    if len(counts) != 1:
        raise ExperimentError(
            f"{config_label(spec, batch)} decoded varying DCI counts "
            f"over identical slots: {sorted(counts)}")
    return BenchPoint(
        n_ues=n_ues,
        mean_slot_us=1e6 * wall_s / n_slots,
        p95_slot_us=float(np.percentile(np.array(latencies), 95)) * 1e6,
        decoded_per_slot=decoded_counts[0])


def run(profile: CellProfile = AMARISOFT_PROFILE,
        ue_counts: tuple[int, ...] = UE_COUNTS,
        n_slots: int = 20,
        configs: tuple[tuple[str, bool], ...] = CONFIGS) \
        -> list[BenchConfig]:
    """The full sweep, with the cross-config equal-work check."""
    results = [BenchConfig(executor=spec, batch=batch)
               for spec, batch in configs]
    for n_ues in ue_counts:
        for cfg in results:
            cfg.points.append(measure_point(
                profile, cfg.executor, cfg.batch, n_ues, n_slots))
        decoded = {cfg.label: cfg.point(n_ues).decoded_per_slot
                   for cfg in results}
        if len(set(decoded.values())) != 1:
            raise ExperimentError(
                f"configs disagree on decoded DCIs at {n_ues} UEs: "
                f"{decoded} — the kernels are supposed to be "
                f"bit-identical")
    return results


def speedups(results: list[BenchConfig],
             ue_counts: tuple[int, ...]) -> dict[str, dict[str, float]]:
    """Mean-slot-time ratios of every config over the scalar-inline
    baseline, per UE count (>1 means faster than the baseline)."""
    by_key = {(c.executor, c.batch): c for c in results}
    base = by_key.get(BASELINE)
    out: dict[str, dict[str, float]] = {}
    if base is None:
        return out
    for n_ues in ue_counts:
        ref = base.point(n_ues).mean_slot_us
        out[str(n_ues)] = {
            cfg.label: ref / max(cfg.point(n_ues).mean_slot_us, 1e-9)
            for cfg in results if (cfg.executor, cfg.batch) != BASELINE}
    return out


def to_document(results: list[BenchConfig],
                ue_counts: tuple[int, ...], n_slots: int,
                profile: CellProfile) -> dict:
    """The ``BENCH_fig12.json`` document (schema ``bench-fig12/v1``)."""
    return {
        "schema": SCHEMA,
        "profile": profile.name,
        "n_slots": n_slots,
        "ue_counts": list(ue_counts),
        "configs": [
            {
                "executor": cfg.executor,
                "batch": cfg.batch,
                "label": cfg.label,
                "results": [
                    {
                        "n_ues": p.n_ues,
                        "mean_slot_us": round(p.mean_slot_us, 1),
                        "p95_slot_us": round(p.p95_slot_us, 1),
                        "decoded_per_slot": p.decoded_per_slot,
                    }
                    for p in cfg.points
                ],
            }
            for cfg in results
        ],
        "speedup_vs_scalar_inline": {
            count: {label: round(ratio, 2)
                    for label, ratio in per_config.items()}
            for count, per_config in
            speedups(results, ue_counts).items()
        },
    }


def validate_bench(doc: dict) -> None:
    """Raise :class:`ExperimentError` unless ``doc`` is a well-formed
    ``bench-fig12/v1`` document (the CI bench-smoke gate)."""
    if doc.get("schema") != SCHEMA:
        raise ExperimentError(f"bad schema: {doc.get('schema')!r}")
    for key in ("profile", "n_slots", "ue_counts", "configs",
                "speedup_vs_scalar_inline"):
        if key not in doc:
            raise ExperimentError(f"missing key: {key!r}")
    ue_counts = doc["ue_counts"]
    if not isinstance(ue_counts, list) or not ue_counts:
        raise ExperimentError("ue_counts must be a non-empty list")
    if not isinstance(doc["configs"], list) or not doc["configs"]:
        raise ExperimentError("configs must be a non-empty list")
    for cfg in doc["configs"]:
        for key in ("executor", "batch", "label", "results"):
            if key not in cfg:
                raise ExperimentError(
                    f"config missing key {key!r}: {cfg}")
        seen = [r.get("n_ues") for r in cfg["results"]]
        if seen != ue_counts:
            raise ExperimentError(
                f"{cfg['label']} covers UE counts {seen}, "
                f"expected {ue_counts}")
        for res in cfg["results"]:
            for key in ("mean_slot_us", "p95_slot_us",
                        "decoded_per_slot"):
                value = res.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ExperimentError(
                        f"{cfg['label']} n_ues={res.get('n_ues')}: "
                        f"bad {key}: {value!r}")
    for per_config in doc["speedup_vs_scalar_inline"].values():
        for label, ratio in per_config.items():
            if not isinstance(ratio, (int, float)) or ratio <= 0:
                raise ExperimentError(
                    f"bad speedup for {label}: {ratio!r}")


def render(doc: dict) -> str:
    """Human-readable summary of a bench document."""
    lines = [f"BENCH fig12 [{doc['profile']}] "
             f"({doc['n_slots']} slots per point)"]
    header = "config".ljust(22) + "".join(
        f"{n:>12}" for n in doc["ue_counts"])
    lines.append(header + "   (mean us/slot)")
    for cfg in doc["configs"]:
        cells = "".join(f"{r['mean_slot_us']:12.0f}"
                        for r in cfg["results"])
        lines.append(cfg["label"].ljust(22) + cells)
    top = str(doc["ue_counts"][-1])
    contender = config_label(*CONTENDER)
    ratio = doc["speedup_vs_scalar_inline"].get(top, {}).get(contender)
    if ratio is not None:
        lines.append(f"speedup at {top} UEs, {contender} vs "
                     f"{config_label(*BASELINE)}: {ratio:.2f}x")
    return "\n".join(lines)


def main(out_path: str = "BENCH_fig12.json", quick: bool = False,
         n_slots: int | None = None) -> dict:
    """Run the sweep and write the JSON document; returns it."""
    ue_counts = QUICK_UE_COUNTS if quick else UE_COUNTS
    slots = n_slots if n_slots is not None else (2 if quick else 20)
    results = run(ue_counts=ue_counts, n_slots=slots)
    doc = to_document(results, ue_counts, slots, AMARISOFT_PROFILE)
    validate_bench(doc)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return doc
