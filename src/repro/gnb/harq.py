"""gNB-side HARQ entities (TS 38.321 section 5.4.1/5.3.2).

Each UE gets up to 16 HARQ processes.  The protocol detail NR-Scope
exploits (paper section 3.2.2): when the gNB sends *new* data on a
process it toggles that process's new-data indicator (NDI); a
retransmission keeps the NDI and bumps the redundancy version.  A sniffer
tracking per-process NDIs therefore sees every retransmission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import N_HARQ_PROCESSES


class HarqError(ValueError):
    """Raised for protocol violations (e.g. retransmitting an idle process)."""


#: Redundancy version sequence for successive retransmissions (38.214).
RV_SEQUENCE = (0, 2, 3, 1)


@dataclass
class HarqProcess:
    """One stop-and-wait process."""

    process_id: int
    ndi: int = 0
    active: bool = False
    tbs_bits: int = 0
    retx_count: int = 0

    def start_new(self, tbs_bits: int) -> int:
        """Load new data; toggles and returns the NDI to signal."""
        if tbs_bits <= 0:
            raise HarqError(f"TBS must be positive: {tbs_bits}")
        self.ndi ^= 1
        self.active = True
        self.tbs_bits = tbs_bits
        self.retx_count = 0
        return self.ndi

    def retransmit(self) -> tuple[int, int]:
        """Signal a retransmission; returns (ndi, rv)."""
        if not self.active:
            raise HarqError(
                f"process {self.process_id} has nothing to retransmit")
        self.retx_count += 1
        rv = RV_SEQUENCE[min(self.retx_count, len(RV_SEQUENCE) - 1)]
        return self.ndi, rv

    def ack(self) -> None:
        """The UE decoded the block: the process frees up."""
        self.active = False
        self.tbs_bits = 0


@dataclass
class HarqEntity:
    """All HARQ processes of one UE plus retransmission bookkeeping."""

    n_processes: int = N_HARQ_PROCESSES
    max_retx: int = 4
    processes: list[HarqProcess] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.n_processes <= N_HARQ_PROCESSES:
            raise HarqError(
                f"process count out of range: {self.n_processes}")
        if not self.processes:
            self.processes = [HarqProcess(i) for i in range(self.n_processes)]
        self.total_transmissions = 0
        self.total_retransmissions = 0
        self.dropped_blocks = 0

    def free_process(self, exclude: set[int] | None = None) \
            -> HarqProcess | None:
        """An idle process, or None when all await feedback.

        ``exclude`` holds process ids already used this TTI: feedback
        takes several slots on the air, so a process cannot carry two
        transport blocks in one slot even if the simulator's feedback
        model has already freed it.
        """
        for process in self.processes:
            if process.active:
                continue
            if exclude and process.process_id in exclude:
                continue
            return process
        return None

    def pending_retransmissions(self) -> list[HarqProcess]:
        """Processes holding NACKed data, oldest failures first."""
        return [p for p in self.processes if p.active and p.retx_count > 0]

    def transmit_new(self, tbs_bits: int,
                     exclude: set[int] | None = None) \
            -> tuple[int, int, int] | None:
        """Schedule new data; returns (harq_id, ndi, rv) or None if full."""
        process = self.free_process(exclude)
        if process is None:
            return None
        ndi = process.start_new(tbs_bits)
        self.total_transmissions += 1
        return process.process_id, ndi, 0

    def handle_feedback(self, harq_id: int, ack: bool) -> str:
        """Apply the UE's ACK/NACK; returns the action taken.

        Returns ``"acked"``, ``"retransmit"`` (data stays pending) or
        ``"dropped"`` (max retransmissions exhausted).
        """
        process = self._process(harq_id)
        if ack:
            process.ack()
            return "acked"
        if process.retx_count >= self.max_retx:
            process.ack()
            self.dropped_blocks += 1
            return "dropped"
        return "retransmit"

    def transmit_retx(self, harq_id: int) -> tuple[int, int, int]:
        """Emit the retransmission for a NACKed process."""
        process = self._process(harq_id)
        ndi, rv = process.retransmit()
        self.total_transmissions += 1
        self.total_retransmissions += 1
        return process.process_id, ndi, rv

    def _process(self, harq_id: int) -> HarqProcess:
        if not 0 <= harq_id < len(self.processes):
            raise HarqError(f"HARQ id out of range: {harq_id}")
        return self.processes[harq_id]

    @property
    def retransmission_ratio(self) -> float:
        """Fraction of transmissions that were retransmissions (Fig 15)."""
        if self.total_transmissions == 0:
            return 0.0
        return self.total_retransmissions / self.total_transmissions
