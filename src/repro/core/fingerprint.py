"""RAN fingerprinting from passive telemetry (paper section 6, Security).

"The RRC messages and the resource allocation patterns that NR-Scope
reveals can aid security assessments of the RAN, particularly to
identify surveillance equipment and RAN vendors."  This module turns a
telemetry session into a behavioural fingerprint:

* configuration facts (MCS table, carrier width, TDD pattern, BWP)
  read from the broadcast/RRC plane, and
* scheduling *behaviour* — the distribution of TDRA rows, aggregation
  levels, grant sizes and inter-grant fairness — which differs between
  scheduler implementations even under identical configuration.

``classify_scheduler`` separates round-robin from proportional-fair
gNBs from the DCI stream alone, and ``anomaly_score`` flags cells whose
control plane looks active while carrying no user traffic — the
IMSI-catcher-shaped anomaly a security assessment hunts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.telemetry import TelemetryLog


class FingerprintError(ValueError):
    """Raised for sessions too thin to fingerprint."""


@dataclass(frozen=True)
class RanFingerprint:
    """Behavioural summary of one observed cell."""

    n_dcis: int
    n_ues: int
    mcs_mean: float
    tdra_distribution: dict[int, float]
    aggregation_distribution: dict[int, float]
    mean_grant_prbs: float
    grant_size_cv: float          # coefficient of variation
    service_share_cv: float       # per-UE share dispersion
    retransmission_ratio: float

    def as_vector(self) -> np.ndarray:
        """Fixed-length numeric embedding for distance comparisons."""
        tdra = [self.tdra_distribution.get(row, 0.0) for row in range(16)]
        aggregation = [self.aggregation_distribution.get(level, 0.0)
                       for level in (1, 2, 4, 8, 16)]
        return np.array([self.mcs_mean / 28.0, self.mean_grant_prbs / 51.0,
                         self.grant_size_cv, self.service_share_cv,
                         self.retransmission_ratio]
                        + tdra + aggregation)


def fingerprint_session(telemetry: TelemetryLog,
                        min_dcis: int = 50) -> RanFingerprint:
    """Condense a telemetry log into a :class:`RanFingerprint`.

    One vectorized pass over the columnar store — no per-record Python
    objects are materialised.
    """
    table = telemetry.store.table()
    dl = table[table["downlink"] == 1]
    if len(dl) < min_dcis:
        raise FingerprintError(
            f"need >= {min_dcis} downlink DCIs, have {len(dl)}")
    new_data = dl[dl["is_retransmission"] == 0]

    def distribution(values) -> dict:
        unique, counts = np.unique(np.asarray(values), return_counts=True)
        total = counts.sum()
        return {int(v): float(c) / total for v, c in zip(unique, counts)}

    # TDRA rows are not carried in TelemetryRecord directly; recover the
    # row from the symbol count (unique within the shared table's rows
    # used by the scheduler: 4, 7 and 12 symbols).
    symbol_rows = {4: 7, 7: 5, 12: 1, 14: 0}
    symbols = new_data["n_symbols"]
    tdra = np.full(len(new_data), 15, dtype=np.int64)
    for n_symbols, row in symbol_rows.items():
        tdra[symbols == n_symbols] = row

    # Per-UE new-data bit shares, grouped in one bincount; ordered by
    # first appearance like the seed's insertion-ordered dict.
    rntis, first_row, inverse = np.unique(
        new_data["rnti"], return_index=True, return_inverse=True)
    sums = np.bincount(inverse, weights=new_data["tbs_bits"])
    shares = sums[np.argsort(first_row, kind="stable")]
    share_cv = float(shares.std() / shares.mean()) if shares.size > 1 \
        else 0.0

    grant_sizes = new_data["n_prb"].astype(float)
    return RanFingerprint(
        n_dcis=len(dl),
        n_ues=len(rntis),
        mcs_mean=float(np.mean(new_data["mcs_index"])),
        tdra_distribution=distribution(tdra),
        aggregation_distribution=distribution(dl["aggregation_level"]),
        mean_grant_prbs=float(grant_sizes.mean()),
        grant_size_cv=float(grant_sizes.std()
                            / max(grant_sizes.mean(), 1e-9)),
        service_share_cv=share_cv,
        retransmission_ratio=float(
            np.mean(dl["is_retransmission"] != 0)))


def fingerprint_distance(a: RanFingerprint, b: RanFingerprint) -> float:
    """Euclidean distance between fingerprint embeddings."""
    return float(np.linalg.norm(a.as_vector() - b.as_vector()))


@dataclass
class FingerprintLibrary:
    """Known-cell reference fingerprints for nearest-match attribution."""

    references: dict[str, RanFingerprint] = field(default_factory=dict)

    def add(self, label: str, fingerprint: RanFingerprint) -> None:
        """Register a labelled reference."""
        self.references[label] = fingerprint

    def identify(self, observed: RanFingerprint) \
            -> tuple[str, float]:
        """Nearest reference label and its distance."""
        if not self.references:
            raise FingerprintError("empty fingerprint library")
        scored = [(fingerprint_distance(observed, ref), label)
                  for label, ref in self.references.items()]
        distance, label = min(scored)
        return label, distance


def classify_scheduler(per_slot_interleaving: list[int]) -> str:
    """Heuristic RR-vs-PF verdict from grant interleaving.

    ``per_slot_interleaving`` is, per observation window, how many
    distinct UEs were served before any UE was served twice.  Round
    robin rotates strictly (high values); proportional fair repeats the
    currently-best UE (lower values).
    """
    if not per_slot_interleaving:
        raise FingerprintError("no interleaving samples")
    mean_run = float(np.mean(per_slot_interleaving))
    return "round-robin" if mean_run >= 1.8 else "proportional-fair"


def interleaving_runs(telemetry: TelemetryLog,
                      max_samples: int = 500) -> list[int]:
    """Distinct-UEs-before-repeat run lengths from the DL DCI stream."""
    table = telemetry.store.table()
    mask = (table["downlink"] == 1) & (table["is_retransmission"] == 0)
    runs: list[int] = []
    seen: set[int] = set()
    for rnti in table["rnti"][mask].tolist():
        if rnti in seen:
            runs.append(len(seen))
            seen = {rnti}
        else:
            seen.add(rnti)
        if len(runs) >= max_samples:
            break
    return runs


def anomaly_score(telemetry: TelemetryLog, duration_s: float,
                  msg4_count: int) -> float:
    """A 0..1 'surveillance-shaped' score for an observed cell.

    Cells that attract many attachments (MSG 4s) while moving almost no
    user data are the classic catcher signature: the score is the
    attachment rate discounted by per-attachment payload.
    """
    if duration_s <= 0:
        raise FingerprintError("duration must be positive")
    table = telemetry.store.table()
    mask = (table["downlink"] == 1) & (table["is_retransmission"] == 0)
    total_bits = int(table["tbs_bits"][mask].sum())
    attach_rate = msg4_count / duration_s
    if msg4_count == 0:
        return 0.0
    bits_per_attachment = total_bits / msg4_count
    # ~1 MB per attachment is ordinary usage; <10 kB is suspicious.
    payload_factor = 1.0 / (1.0 + bits_per_attachment / 8e4)
    rate_factor = min(attach_rate / 0.5, 1.0)
    return float(payload_factor * rate_factor)
