"""Tests for the come-and-go population process (paper section 5.3.1)."""

import numpy as np
import pytest

from repro.ue.population import (
    ComeAndGoProcess,
    PopulationError,
    PopulationProfile,
    Session,
    TMOBILE_CELL1_PROFILES,
    TMOBILE_CELL2_PROFILES,
    active_counts,
    holding_time_ccdf,
)


class TestProfileCalibration:
    def test_cell1_distinct_counts(self):
        # Paper: 400-600 distinct UEs per 10 minutes in cell 1.
        for profile in TMOBILE_CELL1_PROFILES.values():
            assert 350 <= profile.expected_distinct(600.0) <= 650

    def test_cell2_distinct_counts(self):
        # Paper: 100-200 distinct UEs per 10 minutes in cell 2.
        for profile in TMOBILE_CELL2_PROFILES.values():
            assert 80 <= profile.expected_distinct(600.0) <= 250

    def test_holding_median_below_p90(self):
        profile = PopulationProfile("x", 1.0)
        assert profile.holding_median_s < profile.holding_p90_s


class TestProcess:
    def test_ninety_percent_under_35s(self):
        # The paper's headline: 90% of UEs stay < 35 s.
        process = ComeAndGoProcess(PopulationProfile("x", 1.0), seed=1)
        sessions = process.generate(duration_s=5000.0)
        holdings = np.array([s.holding_s for s in sessions])
        frac = (holdings < 35.0).mean()
        assert frac == pytest.approx(0.9, abs=0.03)

    def test_distinct_count_matches_rate(self):
        profile = TMOBILE_CELL1_PROFILES["afternoon"]
        process = ComeAndGoProcess(profile, seed=2)
        sessions = process.generate(duration_s=600.0)
        assert 500 <= len(sessions) <= 700

    def test_ids_sequential_from_offset(self):
        process = ComeAndGoProcess(PopulationProfile("x", 5.0), seed=3)
        sessions = process.generate(10.0, first_ue_id=100)
        assert sessions[0].ue_id == 100
        ids = [s.ue_id for s in sessions]
        assert ids == list(range(100, 100 + len(ids)))

    def test_rejects_bad_params(self):
        with pytest.raises(PopulationError):
            ComeAndGoProcess(PopulationProfile("x", 0.0))
        with pytest.raises(PopulationError):
            ComeAndGoProcess(PopulationProfile("x", 1.0)).generate(0.0)


class TestSession:
    def test_activity_window(self):
        session = Session(ue_id=1, arrival_s=10.0, holding_s=5.0)
        assert session.departure_s == 15.0
        assert session.active_at(10.0)
        assert session.active_at(14.999)
        assert not session.active_at(15.0)
        assert not session.active_at(9.999)


class TestStatistics:
    def test_active_counts_shape(self):
        sessions = [Session(0, 0.0, 10.0), Session(1, 5.0, 10.0)]
        counts = active_counts(sessions, duration_s=20.0, bin_s=1.0)
        assert counts.shape == (20,)
        assert counts[0] == 1      # only UE 0
        assert counts[7] == 2      # both active
        assert counts[16] == 0     # both gone

    def test_per_minute_counts_exceed_per_second(self):
        process = ComeAndGoProcess(TMOBILE_CELL1_PROFILES["afternoon"],
                                   seed=4)
        sessions = process.generate(600.0)
        per_second = active_counts(sessions, 600.0, 1.0)
        per_minute = active_counts(sessions, 600.0, 60.0)
        assert per_minute.mean() > per_second.mean()
        # Paper Fig 11: under ~60 UEs for most one-minute periods.
        assert np.median(per_minute) < 80

    def test_ccdf(self):
        sessions = [Session(i, 0.0, float(h))
                    for i, h in enumerate([1, 2, 3, 4])]
        grid = np.array([0.0, 2.5, 10.0])
        ccdf = holding_time_ccdf(sessions, grid)
        assert ccdf[0] == 1.0
        assert ccdf[1] == 0.5
        assert ccdf[2] == 0.0

    def test_ccdf_empty_rejected(self):
        with pytest.raises(PopulationError):
            holding_time_ccdf([], np.array([1.0]))

    def test_bad_bin(self):
        with pytest.raises(PopulationError):
            active_counts([], 10.0, 0.0)
