"""The full PDCCH encode/decode chain (TS 38.212 section 7.3, 38.211 7.3.2).

Transmit direction (gNB):

    DCI payload -> CRC24C over (24 ones ++ payload) -> RNTI-scramble the
    last 16 CRC bits -> polar encode -> rate match to 108 * L bits ->
    Gold-sequence scramble -> QPSK -> map onto the CCEs of one candidate,
    with DMRS pilots in their standard positions.

Receive direction (NR-Scope): the exact inverse, driven by soft LLRs, with
the CRC check as the accept/reject gate.  This CRC gate is the property
the paper highlights over 4G-era tools ("NR-Scope can verify the
correctness of the decoded information on its own", section 2): a decode
is only reported when the CRC, descrambled with the hypothesised RNTI,
passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import DCI_CRC_LEN, N_REG_PER_CCE, \
    N_SYMBOLS_PER_SLOT
from repro.phy import polar
from repro.phy.coreset import Coreset
from repro.phy.crc import crc_remainder, crc_remainder_batch, rnti_to_bits
from repro.phy.dci import Dci, DciError, DciFormat, DciSizeConfig, \
    dci_payload_size, pack, unpack
from repro.phy.dmrs import PDCCH_DATA_RES_PER_REG, PDCCH_DMRS_POSITIONS, \
    pdcch_dmrs_symbols, reg_data_subcarriers
from repro.phy.modulation import QPSK, demodulate_soft, modulate
from repro.phy.resource_grid import ResourceGrid
from repro.phy.scrambling import descramble_llrs, pdcch_scrambling_init, \
    scramble_bits


class PdcchError(ValueError):
    """Raised for impossible encode/decode geometries."""


#: Coded bits carried by one CCE: 6 REGs x 9 data REs x 2 (QPSK).
BITS_PER_CCE = N_REG_PER_CCE * PDCCH_DATA_RES_PER_REG * QPSK.bits_per_symbol

#: Ones prepended to the payload before CRC computation (38.212 7.3.2).
_CRC_PREFIX = np.ones(DCI_CRC_LEN, dtype=np.uint8)


def dci_crc_attach(payload: np.ndarray, rnti: int) -> np.ndarray:
    """Attach the RNTI-scrambled CRC24C to a DCI payload.

    The CRC is computed over 24 prepended ones followed by the payload
    (the ones are not transmitted), then the last 16 parity bits are
    XOR-masked with the RNTI.
    """
    bits = np.asarray(payload, dtype=np.uint8).ravel()
    parity = crc_remainder(np.concatenate([_CRC_PREFIX, bits]), "crc24c")
    parity = parity.copy()
    parity[-16:] ^= rnti_to_bits(rnti)
    return np.concatenate([bits, parity])


def dci_crc_check(block: np.ndarray, rnti: int) -> bool:
    """Verify a received payload+CRC block against a hypothesised RNTI."""
    bits = np.asarray(block, dtype=np.uint8).ravel()
    if bits.size <= DCI_CRC_LEN:
        return False
    payload, received = bits[:-DCI_CRC_LEN], bits[-DCI_CRC_LEN:]
    expected = crc_remainder(
        np.concatenate([_CRC_PREFIX, payload]), "crc24c").copy()
    expected[-16:] ^= rnti_to_bits(rnti)
    return bool(np.array_equal(expected, received))


def dci_crc_check_batch(blocks: np.ndarray,
                        rntis: np.ndarray) -> np.ndarray:
    """Row-wise :func:`dci_crc_check` over stacked payload+CRC blocks.

    ``blocks`` is ``(batch, k)`` and ``rntis`` gives each row's
    hypothesised RNTI.  The parity bits come from one GF(2) matrix
    product (:func:`~repro.phy.crc.crc_remainder_batch`), so the boolean
    verdicts are bit-identical to the scalar check at a fraction of the
    dispatch cost.
    """
    arr = np.asarray(blocks, dtype=np.uint8)
    if arr.ndim != 2:
        raise PdcchError(
            f"expected stacked blocks, got shape {arr.shape}")
    if arr.shape[1] <= DCI_CRC_LEN:
        return np.zeros(arr.shape[0], dtype=bool)
    payload, received = arr[:, :-DCI_CRC_LEN], arr[:, -DCI_CRC_LEN:]
    prefix = np.broadcast_to(_CRC_PREFIX, (arr.shape[0], DCI_CRC_LEN))
    expected = crc_remainder_batch(
        np.concatenate([prefix, payload], axis=1), "crc24c")
    rnti_arr = np.asarray(rntis, dtype=np.int64).reshape(-1, 1)
    shifts = np.arange(15, -1, -1, dtype=np.int64)
    rnti_bits = ((rnti_arr >> shifts) & 1).astype(np.uint8)
    expected[:, -16:] ^= rnti_bits
    return np.all(expected == received, axis=1)


def dci_recover_rnti(block: np.ndarray) -> int | None:
    """Recover the RNTI that scrambled a received DCI block's CRC.

    This is the C-RNTI acquisition trick of paper section 3.1.2: XOR the
    locally computed CRC with the received one.  The 8 unmasked parity
    bits double as a confidence check; None means they disagreed, i.e.
    the block is corrupt rather than merely scrambled.
    """
    bits = np.asarray(block, dtype=np.uint8).ravel()
    if bits.size <= DCI_CRC_LEN:
        return None
    payload, received = bits[:-DCI_CRC_LEN], bits[-DCI_CRC_LEN:]
    expected = crc_remainder(
        np.concatenate([_CRC_PREFIX, payload]), "crc24c")
    if not np.array_equal(expected[:-16], received[:-16]):
        return None
    mask = expected[-16:] ^ received[-16:]
    value = 0
    for bit in mask:
        value = (value << 1) | int(bit)
    return value


@dataclass(frozen=True)
class PdcchCandidate:
    """Where one DCI sits in the CORESET: first CCE + aggregation level."""

    first_cce: int
    aggregation_level: int

    @property
    def n_coded_bits(self) -> int:
        """Rate-matched size E for this candidate."""
        return self.aggregation_level * BITS_PER_CCE


def _candidate_re_positions(coreset: Coreset,
                            candidate: PdcchCandidate) -> list[tuple[int, int, int]]:
    """(prb, symbol, subcarrier) for every data RE of a candidate."""
    positions: list[tuple[int, int, int]] = []
    data_scs = reg_data_subcarriers()
    for cce in range(candidate.first_cce,
                     candidate.first_cce + candidate.aggregation_level):
        for reg in coreset.cce_to_regs(cce):
            prb, symbol = coreset.reg_to_position(reg)
            positions.extend((prb, symbol, sc) for sc in data_scs)
    return positions


@lru_cache(maxsize=4096)
def _candidate_flat_indices(coreset: Coreset, first_cce: int,
                            aggregation_level: int) -> np.ndarray:
    """Flat indices into a C-ordered ``grid.data`` for a candidate's
    data REs.  Cached: the decoder touches the same (CORESET, candidate)
    pairs every slot, and vectorised gathers are what keep exhaustive
    per-UE search within the TTI budget."""
    candidate = PdcchCandidate(first_cce=first_cce,
                               aggregation_level=aggregation_level)
    positions = _candidate_re_positions(coreset, candidate)
    return np.array([(prb * 12 + sc) * N_SYMBOLS_PER_SLOT + sym
                     for prb, sym, sc in positions], dtype=np.intp)


def _gather_candidate(grid: ResourceGrid, coreset: Coreset,
                      candidate: PdcchCandidate) -> np.ndarray:
    """Vectorised read of a candidate's data REs from the grid."""
    indices = _candidate_flat_indices(coreset, candidate.first_cce,
                                      candidate.aggregation_level)
    return grid.data.reshape(-1)[indices]


def encode_pdcch(dci: Dci, cfg: DciSizeConfig, coreset: Coreset,
                 candidate: PdcchCandidate, grid: ResourceGrid,
                 n_id: int, slot_index: int) -> np.ndarray:
    """Encode a DCI and write it (plus DMRS) into the grid.

    Returns the payload bits for ground-truth logging.  Raises
    :class:`PdcchError` when the candidate does not fit the CORESET.
    """
    if candidate.first_cce + candidate.aggregation_level > coreset.n_cces:
        raise PdcchError(
            f"candidate CCEs [{candidate.first_cce},"
            f" +{candidate.aggregation_level}) exceed CORESET of"
            f" {coreset.n_cces} CCEs")
    payload = pack(dci, cfg)
    with_crc = dci_crc_attach(payload, dci.rnti)
    code = polar.construct(with_crc.size, candidate.n_coded_bits)
    coded = polar.encode(with_crc, code)
    scrambled = scramble_bits(coded, pdcch_scrambling_init(n_id))
    symbols = modulate(scrambled, QPSK)

    positions = _candidate_re_positions(coreset, candidate)
    if len(positions) != symbols.size:
        raise PdcchError(
            f"{symbols.size} symbols for {len(positions)} data REs")
    for (prb, sym, sc), value in zip(positions, symbols):
        grid.write_res(prb, sym, np.array([value]), ResourceGrid.PDCCH,
                       first_sc=sc)
    _write_dmrs(coreset, candidate, grid, n_id, slot_index)
    return payload


def _write_dmrs(coreset: Coreset, candidate: PdcchCandidate,
                grid: ResourceGrid, n_id: int, slot_index: int) -> None:
    """Place PDCCH DMRS pilots on the candidate's REGs."""
    regs = []
    for cce in range(candidate.first_cce,
                     candidate.first_cce + candidate.aggregation_level):
        regs.extend(coreset.cce_to_regs(cce))
    per_symbol: dict[int, list[int]] = {}
    for reg in regs:
        prb, symbol = coreset.reg_to_position(reg)
        per_symbol.setdefault(symbol, []).append(prb)
    for symbol, prbs in per_symbol.items():
        pilots = pdcch_dmrs_symbols(n_id, symbol, slot_index, len(prbs))
        idx = 0
        for prb in sorted(prbs):
            for offset in PDCCH_DMRS_POSITIONS:
                grid.write_res(prb, symbol, np.array([pilots[idx]]),
                               ResourceGrid.DMRS, first_sc=offset)
                idx += 1


@lru_cache(maxsize=4096)
def _dmrs_flat_indices(coreset: Coreset, first_cce: int,
                       aggregation_level: int) -> np.ndarray:
    """Flat grid indices of a candidate's DMRS pilot REs."""
    candidate = PdcchCandidate(first_cce=first_cce,
                               aggregation_level=aggregation_level)
    indices = []
    for cce in range(candidate.first_cce,
                     candidate.first_cce + candidate.aggregation_level):
        for reg in coreset.cce_to_regs(cce):
            prb, symbol = coreset.reg_to_position(reg)
            for sc in PDCCH_DMRS_POSITIONS:
                indices.append((prb * 12 + sc) * N_SYMBOLS_PER_SLOT
                               + symbol)
    return np.array(indices, dtype=np.intp)


def estimate_channel(grid: ResourceGrid, coreset: Coreset,
                     candidate: PdcchCandidate, n_id: int,
                     slot_index: int) -> complex:
    """Least-squares channel estimate from the candidate's DMRS pilots.

    Averaging ``received / expected`` over the pilots gives the complex
    gain a real receiver would equalise with; on a clean simulated link
    this is ~1+0j, under phase/gain impairments it recovers them.
    """
    if candidate.first_cce + candidate.aggregation_level > coreset.n_cces:
        return 1.0 + 0.0j
    indices = _dmrs_flat_indices(coreset, candidate.first_cce,
                                 candidate.aggregation_level)
    received = grid.data.reshape(-1)[indices]
    # Rebuild the expected pilots in the same (symbol-grouped) order the
    # encoder used: pilots are generated per symbol across the REGs.
    per_symbol: dict[int, list[int]] = {}
    regs = []
    for cce in range(candidate.first_cce,
                     candidate.first_cce + candidate.aggregation_level):
        regs.extend(coreset.cce_to_regs(cce))
    for reg in regs:
        prb, symbol = coreset.reg_to_position(reg)
        per_symbol.setdefault(symbol, []).append(prb)
    expected_map: dict[tuple[int, int, int], complex] = {}
    for symbol, prbs in per_symbol.items():
        pilots = pdcch_dmrs_symbols(n_id, symbol, slot_index, len(prbs))
        idx = 0
        for prb in sorted(prbs):
            for offset in PDCCH_DMRS_POSITIONS:
                expected_map[(prb, symbol, offset)] = pilots[idx]
                idx += 1
    expected = []
    for cce in range(candidate.first_cce,
                     candidate.first_cce + candidate.aggregation_level):
        for reg in coreset.cce_to_regs(cce):
            prb, symbol = coreset.reg_to_position(reg)
            for sc in PDCCH_DMRS_POSITIONS:
                expected.append(expected_map[(prb, symbol, sc)])
    expected_arr = np.array(expected)
    power = float(np.mean(np.abs(expected_arr) ** 2))
    estimate = np.mean(received * expected_arr.conj()) / max(power, 1e-12)
    if abs(estimate) < 1e-9:
        return 1.0 + 0.0j
    return complex(estimate)


@lru_cache(maxsize=2048)
def _level_index_matrix(coreset: Coreset,
                        aggregation_level: int) -> np.ndarray:
    """Stacked flat-index matrix for every aligned candidate position.

    Row ``p`` holds the data-RE indices of the candidate starting at CCE
    ``p * aggregation_level``: one cached ``(n_positions, E/2)`` matrix
    per (CORESET, level) replaces the per-candidate gather loop — the
    batched decoder fancy-indexes all of a slot's candidates in one shot.
    """
    n_positions = coreset.n_cces // aggregation_level
    if n_positions == 0:
        cols = aggregation_level * BITS_PER_CCE // QPSK.bits_per_symbol
        return np.zeros((0, cols), dtype=np.intp)
    return np.stack([
        _candidate_flat_indices(coreset, pos * aggregation_level,
                                aggregation_level)
        for pos in range(n_positions)])


def gather_candidates_batch(grid: ResourceGrid, coreset: Coreset,
                            aggregation_level: int,
                            starts: np.ndarray) -> np.ndarray:
    """Read the data REs of many same-level candidates in one gather.

    ``starts`` are first-CCE indices, each aligned to the aggregation
    level (as :meth:`SearchSpace.candidate_cces` always produces) and in
    range.  Returns a ``(len(starts), n_symbols)`` complex matrix whose
    rows equal the per-candidate :func:`_gather_candidate` reads.

    Layout: starts (N) intp
    Layout: return (N, S) complex128
    """
    matrix = _level_index_matrix(coreset, aggregation_level)
    starts_arr = np.asarray(starts, dtype=np.intp)
    if starts_arr.size == 0:
        return np.zeros((0, matrix.shape[1]), dtype=np.complex128)
    rows = starts_arr // aggregation_level
    if np.any(starts_arr % aggregation_level) \
            or np.any(rows >= matrix.shape[0]) or np.any(rows < 0):
        raise PdcchError(
            f"unaligned or out-of-range candidate starts for level"
            f" {aggregation_level}: {starts_arr.tolist()}")
    return grid.data.reshape(-1)[matrix[rows]]


def candidate_energies_batch(values: np.ndarray) -> np.ndarray:
    """Mean per-RE power per row of a gathered candidate matrix.

    Row-for-row identical to :func:`candidate_energy` on the same REs
    (numpy's pairwise row reduction matches the 1-D mean).

    Layout: values (N, S) complex128
    Layout: return (N) float64
    """
    if values.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    return np.mean(np.abs(values) ** 2, axis=1)


def occupancy_threshold(noise_var: float) -> float:
    """Energy-detection threshold shared by scalar and batched gates."""
    return noise_var + 0.4


def candidate_energy(grid: ResourceGrid, coreset: Coreset,
                     candidate: PdcchCandidate) -> float:
    """Mean per-RE power over a candidate's data REs.

    Cheap pre-detection: an empty candidate carries only noise power,
    an occupied one roughly ``1 + noise_var``.  Real receivers gate on
    the DMRS correlation for the same reason — skipping the polar decode
    of empty candidates is what makes exhaustive search affordable.
    """
    if candidate.first_cce + candidate.aggregation_level > coreset.n_cces:
        return 0.0
    values = _gather_candidate(grid, coreset, candidate)
    return float(np.mean(np.abs(values) ** 2))


def candidate_occupied(grid: ResourceGrid, coreset: Coreset,
                       candidate: PdcchCandidate,
                       noise_var: float) -> bool:
    """Energy-detection verdict for one candidate."""
    threshold = occupancy_threshold(noise_var)
    return candidate_energy(grid, coreset, candidate) > threshold


def try_decode_pdcch(grid: ResourceGrid, cfg: DciSizeConfig,
                     coreset: Coreset, candidate: PdcchCandidate,
                     fmt: DciFormat, rnti: int, n_id: int,
                     noise_var: float, slot_index: int = 0,
                     equalize: bool = False) -> Dci | None:
    """Attempt to decode one candidate for one (RNTI, format) hypothesis.

    Returns the DCI when the polar decode succeeds *and* the
    RNTI-descrambled CRC passes; None otherwise.  This mirrors the search
    NR-Scope runs per tracked UE per slot (paper section 3.2.1).

    With ``equalize`` the candidate's DMRS pilots provide a
    least-squares channel estimate that is divided out before
    demodulation (needed when the capture path applies gain/phase
    impairments; ``slot_index`` seeds the pilot sequence).
    """
    if candidate.first_cce + candidate.aggregation_level > coreset.n_cces:
        return None
    received = _gather_candidate(grid, coreset, candidate)
    if equalize:
        gain = estimate_channel(grid, coreset, candidate, n_id,
                                slot_index)
        received = received / gain
        noise_var = noise_var / max(abs(gain) ** 2, 1e-9)
    llrs = demodulate_soft(received, QPSK, max(noise_var, 1e-12))
    # Descramble in the LLR domain: a flipped bit negates the LLR.
    llrs = descramble_llrs(llrs, pdcch_scrambling_init(n_id))

    payload_len = dci_payload_size(fmt, cfg)
    k = payload_len + DCI_CRC_LEN
    if k > candidate.n_coded_bits:
        return None
    code = polar.construct(k, candidate.n_coded_bits)
    block = polar.decode(llrs, code)
    if not dci_crc_check(block, rnti):
        return None
    try:
        return unpack(block[:-DCI_CRC_LEN], fmt, cfg, rnti)
    except DciError:
        # CRC passed but the field layout is inconsistent (e.g. format
        # identifier mismatch) - treat as a failed hypothesis.
        return None


def decode_candidate_bits(grid: ResourceGrid, coreset: Coreset,
                          candidate: PdcchCandidate, payload_len: int,
                          n_id: int, noise_var: float) -> np.ndarray | None:
    """Decode a candidate to raw payload+CRC bits without an RNTI check.

    Used by the RACH sniffer, which does not yet know the RNTI and instead
    recovers it from the CRC mask via :func:`dci_recover_rnti`.
    """
    if candidate.first_cce + candidate.aggregation_level > coreset.n_cces:
        return None
    received = _gather_candidate(grid, coreset, candidate)
    llrs = demodulate_soft(received, QPSK, max(noise_var, 1e-12))
    llrs = descramble_llrs(llrs, pdcch_scrambling_init(n_id))
    k = payload_len + DCI_CRC_LEN
    if k > candidate.n_coded_bits:
        return None
    code = polar.construct(k, candidate.n_coded_bits)
    return polar.decode(llrs, code)
