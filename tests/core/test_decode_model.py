"""Tests for the calibrated PDCCH decode model."""

import numpy as np
import pytest

from repro.core.decode_model import (
    BLER_TABLE,
    DecodeModelError,
    RESIDUAL_MISS,
    SNR_GRID_DB,
    decode_succeeds,
    pdcch_bler,
)


class TestTableShape:
    def test_all_levels_present(self):
        assert set(BLER_TABLE) == {1, 2, 4, 8}
        for curve in BLER_TABLE.values():
            assert len(curve) == SNR_GRID_DB.size

    def test_curves_monotone_nonincreasing(self):
        for level, curve in BLER_TABLE.items():
            for a, b in zip(curve, curve[1:]):
                assert b <= a + 1e-9, f"AL{level} BLER must fall with SNR"

    def test_higher_al_more_robust(self):
        # At every SNR, more aggregation means equal-or-lower BLER.
        for i in range(SNR_GRID_DB.size):
            assert BLER_TABLE[8][i] <= BLER_TABLE[1][i] + 1e-9


class TestInterpolation:
    def test_saturates_below_grid(self):
        assert pdcch_bler(-50.0, 2) == pytest.approx(1.0)

    def test_residual_floor_at_high_snr(self):
        assert pdcch_bler(40.0, 2) == pytest.approx(RESIDUAL_MISS)

    def test_interpolates_between_points(self):
        # AL1 at 2 dB = 0.65, at 3 dB = 0.35; halfway ~0.5.
        mid = pdcch_bler(2.5, 1)
        assert 0.35 < mid < 0.65

    def test_unknown_level(self):
        with pytest.raises(DecodeModelError):
            pdcch_bler(0.0, 3)


class TestDraws:
    def test_statistics_track_probability(self, rng):
        p = pdcch_bler(-1.0, 2)  # ~0.4
        fails = sum(not decode_succeeds(-1.0, 2, rng) for _ in range(5000))
        assert fails / 5000 == pytest.approx(p, abs=0.03)

    def test_always_succeeds_impossible(self, rng):
        # Even at very high SNR the residual miss keeps successes < 100%
        # over enough trials.
        fails = sum(not decode_succeeds(35.0, 2, rng)
                    for _ in range(20000))
        assert fails > 0


class TestCalibrationConsistency:
    def test_live_chain_matches_table_spot_check(self, rng):
        """Re-derive one (SNR, AL) point from the real PDCCH chain.

        Guards against the table drifting away from the code it claims
        to describe. AL4 at -4 dB is on the waterfall (table: 0.48), so a
        shift in either direction is detectable with few trials.
        """
        from repro.phy import polar
        from repro.phy.modulation import QPSK, demodulate_soft, modulate

        code = polar.construct(70, 108 * 4)
        noise_var = 10 ** (4 / 10)
        errors = 0
        trials = 120
        for _ in range(trials):
            info = rng.integers(0, 2, 70).astype(np.uint8)
            tx = modulate(polar.encode(info, code), QPSK)
            noisy = tx + rng.normal(0, np.sqrt(noise_var / 2), tx.size) \
                + 1j * rng.normal(0, np.sqrt(noise_var / 2), tx.size)
            decoded = polar.decode(demodulate_soft(noisy, QPSK, noise_var),
                                   code)
            errors += not np.array_equal(decoded, info)
        measured = errors / trials
        assert measured == pytest.approx(pdcch_bler(-4.0, 4), abs=0.17)
