"""R011: broadcasts must not reinterpret a declared (N, B) layout.

The batch kernels carry stacked candidate/bit matrices whose axes are
*meaningful*: ``N`` candidates by ``B`` bits, ``B`` batch rows by
``E`` LLRs.  Numpy broadcasting does not know that — aligning an
``(N,)`` per-candidate vector against the bit axis "works" whenever
the sizes happen to coincide (and every lab config where ``N == B``
will make them coincide) while silently computing garbage: each
candidate's scale lands on the wrong bit column.

Functions declare their axes with ``Layout:`` docstring lines
(``Layout: llrs (N, B) float64``); the abstract interpreter
(:mod:`repro.lint.shapes`) propagates the symbolic dims through the
body and reports any broadcast that aligns two *different* declared
symbols (or two different literals, neither 1) on the same axis.
Those conflicts become findings here.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.r010_dtype_drift import HOT_FILES, HOT_PREFIXES
from repro.lint.shapes import analyze_module


@register
class LayoutRule(Rule):
    """Flag symbol-misaligned broadcasts in declared layouts."""

    rule_id = "R011"
    title = "broadcast misaligns a declared axis layout"

    def applies(self, rel: str) -> bool:
        return rel.startswith(HOT_PREFIXES) or rel in HOT_FILES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        module = analyze_module(ctx.tree)
        for shapes in module.functions.values():
            for issue in shapes.issues:
                if issue.kind != "broadcast":
                    continue
                node = ast.Constant(value=None)
                node.lineno = issue.lineno
                node.col_offset = issue.col
                yield self.finding(
                    ctx, node,
                    f"in '{shapes.qualname}': {issue.detail} — "
                    f"reshape or transpose so declared axes line up; "
                    f"a size coincidence (N == B) would hide this at "
                    f"runtime")
