"""The staged slot runtime: NR-Scope's Fig 4 pipeline as one machine.

The paper's tool keeps up with 0.5 ms TTIs by structuring slot work as a
pipeline — scheduler, worker pool, per-slot SIB/RACH/DCI tasks — and by
*dropping* slots it cannot process in time rather than stalling the
radio.  This module is that architecture, shared by every consumer in
the repository (:class:`~repro.core.scope.NRScope`, the multi-cell
controller, the Fig 12 benchmark):

* :class:`Stage` - one typed processing step.  *Backbone* stages run
  sequentially in slot order on the submitting thread (cell sync,
  broadcast decode, RACH sniffing: they mutate session state and draw
  from the session RNG, so their order is the determinism contract).
  At most one stage is *parallel* (per-UE DCI decode: pure given the
  captured grid and a tracked-table snapshot) and is handed to the
  executor.  *Sink* stages (telemetry consumers) are committed strictly
  in slot order behind a reorder buffer, so a threaded run writes the
  exact :class:`~repro.core.telemetry.TelemetryLog` an inline run does.
* :class:`InlineExecutor` - everything on the caller's thread; the
  deterministic, test-friendly default.
* :class:`ThreadedExecutor` - the paper's worker pool: N slot workers
  pulling from a bounded queue, each optionally sharding the tracked-UE
  table across ``n_dci_threads`` (the paper's DCI threads).
* Backpressure - the task queue is bounded; a slot arriving while the
  pool is saturated is *dropped with accounting* (the paper's real-time
  constraint: an over-budget slot is a counted DCI miss, never a stall).
* :class:`RuntimeStats` - per-stage timing/counter snapshot, the Fig 12
  measurement surface, exposed by ``repro.cli sniff --runtime-stats``.
* Observability - an optional :mod:`repro.obs` context turns every
  stage run into a timed span event (stage, slot, duration,
  drop/backpressure outcome) and every backpressure drop into a
  ``stage.drop`` counter.  All of a slot's events are emitted at
  commit, on the backbone, so the stream is identical whichever
  executor ran the slot; disabled, the bus is a no-op singleton behind
  a truthiness guard (zero allocations).

A deviation worth naming: CPython's GIL serialises the pure-Python
decode work, so thread scaling here shows less speed-up than the C++
original; the stats report per-stage time so the effect is visible
rather than hidden (EXPERIMENTS.md discusses it).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from concurrent import futures
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.constants import TTI_DURATION_S
from repro.core.dci_decoder import DecodedDci, GridDciDecoder
from repro.core.rach_sniffer import TrackedUe
from repro.core.sanitizer import Sanitizer
from repro.obs.context import AnyObsContext, OBS_NOOP
from repro.phy.resource_grid import ResourceGrid


class SlotRuntimeError(ValueError):
    """Raised for invalid runtime configuration or a failed run."""


# --------------------------------------------------------------- context
@dataclass
class SlotContext:
    """One slot's journey through the stages.

    ``output`` is whatever the driving loop feeds the runtime (a
    :class:`~repro.gnb.gnb.SlotOutput` for a live scope, a synthetic
    workload for the Fig 12 bench); the remaining fields are scratch the
    stages fill in as the slot advances.
    """

    output: object
    seq: int = -1                 #: commit-order ticket (runtime-assigned)
    grid: ResourceGrid | None = None
    tracked: dict[int, TrackedUe] = field(default_factory=dict)
    decoded: list[DecodedDci] = field(default_factory=list)
    #: (rnti, time_s) activity marks deferred to the sink stage so that
    #: idle-pruning sees them in slot order under every executor.
    touch_marks: list[tuple[int, float]] = field(default_factory=list)
    skip_decode: bool = False     #: backbone decided no decode is needed
    dropped: bool = False         #: backpressure dropped the decode
    decode_time_s: float = 0.0
    error: BaseException | None = None
    #: Per-stage backbone timings, captured when the bus is enabled and
    #: replayed as span events at commit so every executor emits the
    #: identical slot-ordered stream.
    stage_times: list[tuple[str, float]] = field(default_factory=list)
    #: Deferred observability events (name, fields), appended by stages
    #: — including the parallel stage and payload-executor workers via
    #: the merge hook — and emitted at commit in slot order.
    events: list[tuple[str, dict]] = field(default_factory=list)


@dataclass(frozen=True)
class Stage:
    """One typed step of the slot pipeline.

    ``fn`` receives the :class:`SlotContext`; a backbone stage may
    return ``False`` to halt the slot entirely (e.g. the sniffer is not
    synchronized yet).  Exactly zero or one stage may be ``parallel``;
    ``sink`` stages must come last and are committed in slot order.

    A parallel stage that should also run under a payload executor
    (:class:`ProcessExecutor`) supplies ``pack``/``merge``: ``pack``
    runs on the backbone and extracts a picklable ``(job, payload)``
    pair (``job`` must be a module-level function), ``merge`` applies
    the job's pickled result back onto the context before the sinks
    see it.  Thread executors keep calling ``fn`` directly.
    """

    name: str
    fn: Callable[[SlotContext], object]
    parallel: bool = False
    sink: bool = False
    pack: Callable[[SlotContext],
                   tuple[Callable[[object], object], object]] | None = None
    merge: Callable[[SlotContext, object], None] | None = None


# --------------------------------------------------------------- stats
@dataclass
class StageStats:
    """Timing/throughput counters of one stage."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    #: Slots whose run of this stage was shed under backpressure (only
    #: the parallel stage can drop; mirrored on the bus as the
    #: ``stage.drop`` counter the CLI's drop column reads).
    drops: int = 0

    def record(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_us(self) -> float:
        """Average per-call time in microseconds (the Fig 12 quantity)."""
        if not self.calls:
            return 0.0
        return 1e6 * self.total_s / self.calls


@dataclass(frozen=True)
class RuntimeStats:
    """Immutable snapshot of a runtime's counters."""

    executor: str
    slots_submitted: int
    slots_completed: int
    slots_dropped: int
    dcis_dropped: int
    budget_overruns: int
    slot_budget_s: float
    stages: tuple[StageStats, ...]

    def stage(self, name: str) -> StageStats:
        """Look up one stage's counters by name."""
        for stats in self.stages:
            if stats.name == name:
                return stats
        raise SlotRuntimeError(f"unknown stage: {name!r}")

    @property
    def drop_rate(self) -> float:
        """Dropped slots over submitted slots."""
        if not self.slots_submitted:
            return 0.0
        return self.slots_dropped / self.slots_submitted

    @property
    def mean_slot_us(self) -> float:
        """Summed per-stage means: the mean cost of one full slot."""
        return sum(s.mean_us for s in self.stages)


# ------------------------------------------------------------ executors
@dataclass
class JobResult:
    """A payload executor's finished unit: the pickled-back result of
    one slot's parallel job, matched to its context via ``seq``."""

    seq: int
    result: object
    elapsed_s: float
    error: BaseException | None = None


class Executor:
    """How slot work runs.  Subclasses supply the concurrency."""

    name = "base"
    n_dci_threads = 1
    #: Payload executors cannot run closures; the runtime routes them
    #: through the parallel stage's ``pack``/``merge`` hooks instead.
    requires_payload = False

    def start(self) -> None:
        """Bring up any workers (idempotent)."""

    def shutdown(self) -> None:
        """Stop workers after queued work finishes."""

    def try_submit(self, seq: int,
                   thunk: Callable[[], SlotContext]) -> bool:
        """Accept one slot's parallel work, or refuse (backpressure)."""
        raise NotImplementedError

    def try_submit_payload(self, seq: int,
                           job: Callable[[object], object],
                           payload: object) -> bool:
        """Accept one slot's picklable job, or refuse (backpressure)."""
        raise NotImplementedError

    def pop_ready(self) -> list[SlotContext | JobResult]:
        """Collect finished contexts (any order; non-blocking)."""
        raise NotImplementedError

    def wait(self, timeout_s: float) -> None:
        """Block until all accepted work has finished."""
        raise NotImplementedError

    def map(self, fn: Callable, items: Sequence) -> list:
        """In-slot fan-out (DCI shards); results in ``items`` order."""
        raise NotImplementedError


class InlineExecutor(Executor):
    """Deterministic synchronous execution on the caller's thread."""

    name = "inline"

    def __init__(self) -> None:
        self._ready: list[SlotContext | JobResult] = []

    def try_submit(self, seq: int,
                   thunk: Callable[[], SlotContext]) -> bool:
        self._ready.append(thunk())
        return True

    def pop_ready(self) -> list[SlotContext | JobResult]:
        ready, self._ready = self._ready, []
        return ready

    def wait(self, timeout_s: float) -> None:
        return None

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]


class ThreadedExecutor(Executor):
    """The paper's worker pool: N workers over a bounded task queue.

    ``n_workers`` slot workers pull tasks; each task may further shard
    its tracked-UE table across ``n_dci_threads`` transient threads (the
    paper's DCI threads).  ``queue_depth`` bounds the task queue — a
    full queue is the backpressure signal the runtime turns into a
    counted slot drop.
    """

    name = "threaded"

    def __init__(self, n_workers: int = 4, n_dci_threads: int = 1,
                 queue_depth: int = 256) -> None:
        if n_workers < 1:
            raise SlotRuntimeError(f"need at least one worker: {n_workers}")
        if n_dci_threads < 1:
            raise SlotRuntimeError(
                f"need at least one DCI thread: {n_dci_threads}")
        if queue_depth < 1:
            raise SlotRuntimeError(f"queue depth must be >= 1: {queue_depth}")
        self.n_workers = n_workers
        self.n_dci_threads = n_dci_threads
        self.queue_depth = queue_depth
        self._tasks: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._done: list[SlotContext | JobResult] = []
        self._pending = 0
        self._workers: list[threading.Thread] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"slot-worker-{i}")
            for i in range(self.n_workers)]
        for worker in self._workers:
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                self._tasks.task_done()
                return
            thunk = item
            ctx = thunk()
            with self._idle:
                self._done.append(ctx)
                self._pending -= 1
                self._idle.notify_all()
            self._tasks.task_done()

    def try_submit(self, seq: int,
                   thunk: Callable[[], SlotContext]) -> bool:
        self.start()
        with self._lock:
            self._pending += 1
        try:
            self._tasks.put_nowait(thunk)
        except queue.Full:
            with self._lock:
                self._pending -= 1
            return False
        return True

    def pop_ready(self) -> list[SlotContext | JobResult]:
        with self._lock:
            ready, self._done = self._done, []
        return ready

    def wait(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        with self._idle:
            while self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SlotRuntimeError(
                        f"timed out with {self._pending} slots in flight")
                self._idle.wait(remaining)

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        results: list = [None] * len(items)
        errors: list[BaseException] = []

        def run(index: int) -> None:
            try:
                results[index] = fn(items[index])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(items))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def shutdown(self) -> None:
        if not self._started:
            return
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        self._started = False


def _timed_job(job: Callable[[object], object],
               payload: object) -> tuple[object, float]:
    """Worker-side wrapper: run one payload job and clock its compute
    time (excluding pickle transport, matching the thunk timing)."""
    start = time.perf_counter()
    result = job(payload)
    return result, time.perf_counter() - start


class ProcessExecutor(Executor):
    """True multi-core decode: N spawned worker processes.

    The parallel stage's ``pack`` hook hands each slot over as a
    picklable ``(job, payload)`` pair; results come back as
    :class:`JobResult` and are merged on the backbone.  The pending-
    futures backlog plays the bounded queue's role — a submit that
    would exceed ``queue_depth`` in-flight slots is refused, giving the
    same drop-with-accounting backpressure as :class:`ThreadedExecutor`.
    Workers are *spawned* (never forked), so each holds only what the
    payloads carry; module-level kernel caches warm up per worker.
    """

    name = "process"
    requires_payload = True

    def __init__(self, n_workers: int = 4,
                 queue_depth: int = 256) -> None:
        if n_workers < 1:
            raise SlotRuntimeError(f"need at least one worker: {n_workers}")
        if queue_depth < 1:
            raise SlotRuntimeError(f"queue depth must be >= 1: {queue_depth}")
        self.n_workers = n_workers
        self.queue_depth = queue_depth
        self._pool: futures.ProcessPoolExecutor | None = None
        self._pending: dict[int, futures.Future[tuple[object, float]]] = {}
        self._ready: list[SlotContext | JobResult] = []

    def start(self) -> None:
        if self._pool is None:
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context("spawn"))

    def try_submit(self, seq: int,
                   thunk: Callable[[], SlotContext]) -> bool:
        raise SlotRuntimeError(
            "ProcessExecutor cannot run closures; the parallel stage "
            "must supply pack/merge hooks (picklable payload jobs)")

    def try_submit_payload(self, seq: int,
                           job: Callable[[object], object],
                           payload: object) -> bool:
        self.start()
        self._reap()
        if len(self._pending) >= self.queue_depth:
            return False
        assert self._pool is not None
        self._pending[seq] = self._pool.submit(_timed_job, job, payload)
        return True

    def _reap(self) -> None:
        done = [seq for seq, fut in self._pending.items() if fut.done()]
        for seq in done:
            fut = self._pending.pop(seq)
            try:
                result, elapsed_s = fut.result()
                self._ready.append(JobResult(seq=seq, result=result,
                                             elapsed_s=elapsed_s))
            except BaseException as exc:  # noqa: BLE001 - surfaced at commit
                self._ready.append(JobResult(seq=seq, result=None,
                                             elapsed_s=0.0, error=exc))

    def pop_ready(self) -> list[SlotContext | JobResult]:
        self._reap()
        ready, self._ready = self._ready, []
        return ready

    def wait(self, timeout_s: float) -> None:
        pending = list(self._pending.values())
        if not pending:
            return
        _, not_done = futures.wait(pending, timeout=timeout_s)
        if not_done:
            raise SlotRuntimeError(
                f"timed out with {len(not_done)} slots in flight")

    def map(self, fn: Callable, items: Sequence) -> list:
        # In-slot shard fan-out happens inside the worker's payload job;
        # a parent-side map is only reached by thunk-path callers.
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def build_executor(spec: str | Executor, n_workers: int = 4,
                   n_dci_threads: int = 1,
                   queue_depth: int = 256) -> Executor:
    """Resolve an executor from a name or pass an instance through.

    Names accept an optional worker-count suffix — ``"threaded:8"``,
    ``"process:4"`` — overriding the ``n_workers`` argument.
    """
    if isinstance(spec, Executor):
        return spec
    base, _, suffix = spec.partition(":")
    if suffix:
        try:
            n_workers = int(suffix)
        except ValueError:
            raise SlotRuntimeError(
                f"bad worker count in executor spec: {spec!r}") from None
    if base == "inline":
        if suffix:
            raise SlotRuntimeError(
                f"inline executor takes no worker count: {spec!r}")
        return InlineExecutor()
    if base == "threaded":
        return ThreadedExecutor(n_workers=n_workers,
                                n_dci_threads=n_dci_threads,
                                queue_depth=queue_depth)
    if base == "process":
        return ProcessExecutor(n_workers=n_workers,
                               queue_depth=queue_depth)
    raise SlotRuntimeError(f"unknown executor: {spec!r}")


# ------------------------------------------------------------- sharding
def shard_ues(tracked: dict[int, TrackedUe], n_shards: int) \
        -> list[dict[int, TrackedUe]]:
    """Split the UE table across DCI threads (paper section 4).

    UEs are dealt round-robin in ascending-RNTI order, so the shard
    composition depends only on the table's *contents*, never on dict
    insertion history — threaded and inline runs shard identically.
    """
    if n_shards < 1:
        raise SlotRuntimeError(f"need at least one shard: {n_shards}")
    shards: list[dict[int, TrackedUe]] = [{} for _ in range(n_shards)]
    for position, rnti in enumerate(sorted(tracked)):
        shards[position % n_shards][rnti] = tracked[rnti]
    return shards


def sharded_grid_decode(decoder: GridDciDecoder, grid: ResourceGrid,
                        slot_index: int, tracked: dict[int, TrackedUe],
                        n_shards: int,
                        mapper: Callable | None = None,
                        batch: bool = False) -> list[DecodedDci]:
    """Run one slot's per-UE candidate search, optionally sharded.

    ``mapper`` is an :meth:`Executor.map`; each shard keeps a private
    CCE-claim set so the result is independent of shard timing, and
    shard results are concatenated in ascending-RNTI shard order.
    ``batch`` selects the vectorized
    :meth:`~repro.core.dci_decoder.GridDciDecoder.decode_slot_batch`
    kernel path (bit-identical outputs).
    """
    # Direct attribute calls in each branch keep the edges visible to
    # the nrlint call-graph (a method reference stashed in a local is
    # opaque to its annotation-based resolution).
    if n_shards <= 1 or len(tracked) <= 1:
        if batch:
            return decoder.decode_slot_batch(grid, slot_index, tracked)
        return decoder.decode_slot(grid, slot_index, tracked)
    shards = shard_ues(tracked, n_shards)
    run = mapper or (lambda fn, items: [fn(item) for item in items])

    def decode_shard(shard: dict[int, TrackedUe]) -> list[DecodedDci]:
        if batch:
            return decoder.decode_slot_batch(grid, slot_index, shard)
        return decoder.decode_slot(grid, slot_index, shard)

    results = run(decode_shard, shards)
    return [item for sub in results for item in sub]


# -------------------------------------------------------------- runtime
class SlotRuntime:
    """Drives slots through backbone stages, the executor, and sinks.

    The submitting thread is the *backbone*: it runs the sequential
    stages for each slot in arrival order, hands the parallel stage to
    the executor, and commits sink stages strictly in slot order as
    results come back (a reorder buffer bridges out-of-order workers).
    ``flush`` barriers on everything in flight; it is called at prune
    boundaries and at end of session, and is what makes a threaded run
    byte-identical to an inline one.
    """

    def __init__(self, stages: Sequence[Stage],
                 executor: Executor | None = None,
                 slot_budget_s: float = TTI_DURATION_S[30],
                 drop_cost: Callable[[SlotContext], int] | None = None,
                 flush_timeout_s: float = 30.0,
                 sanitizer: "Sanitizer | None" = None,
                 obs: AnyObsContext | None = None) -> None:
        if slot_budget_s <= 0:
            raise SlotRuntimeError(
                f"slot budget must be positive: {slot_budget_s}")
        stages = list(stages)
        parallel = [s for s in stages if s.parallel]
        if len(parallel) > 1:
            raise SlotRuntimeError(
                "at most one stage may be parallel: "
                + ", ".join(s.name for s in parallel))
        if any(s.parallel and s.sink for s in stages):
            raise SlotRuntimeError("a sink stage cannot be parallel")
        seen_tail = False
        for stage in stages:
            if stage.parallel or stage.sink:
                seen_tail = True
            elif seen_tail:
                raise SlotRuntimeError(
                    f"backbone stage {stage.name!r} after the parallel/"
                    f"sink tail; order stages backbone, parallel, sinks")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise SlotRuntimeError(f"duplicate stage names: {names}")
        self.stages = stages
        self._backbone = [s for s in stages if not s.parallel and not s.sink]
        self._parallel = parallel[0] if parallel else None
        self._sinks = [s for s in stages if s.sink]
        self.executor = executor or InlineExecutor()
        self.slot_budget_s = slot_budget_s
        self.flush_timeout_s = flush_timeout_s
        #: Observability bus.  When disabled this is the no-op
        #: singleton and every emission site is behind an ``if
        #: self._obs:`` guard — one pointer truthiness check, zero
        #: allocations on the hot path.  When enabled, all of a slot's
        #: span/failure events are emitted at *commit* in slot order,
        #: so inline, threaded and process sessions produce the
        #: identical event sequence.
        self._obs = obs if obs is not None else OBS_NOOP
        #: nrsan hook: when enabled, the parallel stage runs inside the
        #: sanitizer's thread-local scope so guarded tracked tables and
        #: audited generators can attribute mutations/draws to it.
        self._sanitizer = sanitizer
        self._drop_cost = drop_cost or (lambda ctx: 0)
        self._lock = threading.Lock()
        self._stage_stats = {s.name: StageStats(name=s.name)
                             for s in stages}
        self._submitted = 0
        self._completed = 0
        self._dropped = 0
        self._dcis_dropped = 0
        self._overruns = 0
        self._next_commit = 0
        self._commit_seq = 0
        self._reorder: dict[int, SlotContext] = {}
        #: Contexts whose parallel work travelled to a payload executor
        #: as a pickled job; rejoined with their JobResult on drain.
        self._inflight: dict[int, SlotContext] = {}

    # ---------------------------------------------------------- intake
    def submit(self, output: object) -> SlotContext:
        """Feed one slot; returns its context (fully processed only
        under the inline executor — threaded results land at a later
        ``submit``/``flush``)."""
        ctx = output if isinstance(output, SlotContext) \
            else SlotContext(output=output)
        with self._lock:
            self._submitted += 1
        halted = False
        for stage in self._backbone:
            start = time.perf_counter()
            verdict = stage.fn(ctx)
            elapsed = time.perf_counter() - start
            self._record_stage(stage.name, elapsed)
            if self._obs:
                ctx.stage_times.append((stage.name, elapsed))
            if verdict is False:
                halted = True
                break
        if halted:
            # Halted slots never reach the commit path.  They only
            # occur before the first committed slot (pre-sync), so
            # emitting here keeps the global stream in slot order
            # under every executor.
            if self._obs:
                slot = self._slot_index(ctx)
                for name, elapsed in ctx.stage_times:
                    self._obs.timing("stage.span", elapsed, stage=name,
                                     slot=slot, outcome="halt")
            self._drain_ready()
            return ctx
        ctx.seq = self._commit_seq
        self._commit_seq += 1
        if self._parallel is not None and not ctx.skip_decode:
            if self.executor.requires_payload:
                accepted = self._submit_payload(ctx)
            else:
                accepted = self.executor.try_submit(
                    ctx.seq, self._make_thunk(ctx))
            if not accepted:
                ctx.dropped = True
                with self._lock:
                    self._dropped += 1
                    self._dcis_dropped += int(self._drop_cost(ctx))
                    self._stage_stats[self._parallel.name].drops += 1
                self._reorder[ctx.seq] = ctx
        else:
            self._reorder[ctx.seq] = ctx
        self._drain_ready()
        return ctx

    def _submit_payload(self, ctx: SlotContext) -> bool:
        """Hand one slot to a payload executor via the stage's pack."""
        stage = self._parallel
        assert stage is not None
        if stage.pack is None or stage.merge is None:
            raise SlotRuntimeError(
                f"executor {self.executor.name!r} needs stage "
                f"{stage.name!r} to supply pack/merge hooks")
        job, payload = stage.pack(ctx)
        self._inflight[ctx.seq] = ctx
        accepted = self.executor.try_submit_payload(ctx.seq, job, payload)
        if not accepted:
            del self._inflight[ctx.seq]
        return accepted

    def _make_thunk(self, ctx: SlotContext) -> Callable[[], SlotContext]:
        stage = self._parallel
        assert stage is not None
        sanitizer = self._sanitizer

        def thunk() -> SlotContext:
            start = time.perf_counter()
            try:
                if sanitizer is not None and sanitizer.enabled:
                    with sanitizer.parallel_stage_scope(stage.name):
                        stage.fn(ctx)
                else:
                    stage.fn(ctx)
            except BaseException as exc:  # noqa: BLE001 - re-raised at commit
                ctx.error = exc
            ctx.decode_time_s = time.perf_counter() - start
            self._record_stage(stage.name, ctx.decode_time_s)
            return ctx

        return thunk

    def _record_stage(self, name: str, elapsed_s: float) -> None:
        with self._lock:
            self._stage_stats[name].record(elapsed_s)

    @staticmethod
    def _slot_index(ctx: SlotContext) -> int:
        """Slot index for event labelling (commit ticket when the
        driving loop's output carries no slot)."""
        slot = getattr(getattr(ctx.output, "slot", None), "index", None)
        return int(slot) if slot is not None else ctx.seq

    # ---------------------------------------------------------- commit
    def _drain_ready(self) -> None:
        for item in self.executor.pop_ready():
            if isinstance(item, JobResult):
                self._reorder[item.seq] = self._rejoin(item)
            else:
                self._reorder[item.seq] = item
        while self._next_commit in self._reorder:
            ctx = self._reorder.pop(self._next_commit)
            self._next_commit += 1
            self._commit(ctx)

    def _rejoin(self, result: JobResult) -> SlotContext:
        """Fold a payload executor's JobResult back into its context."""
        stage = self._parallel
        assert stage is not None and stage.merge is not None
        ctx = self._inflight.pop(result.seq)
        if result.error is not None:
            ctx.error = result.error
        else:
            try:
                stage.merge(ctx, result.result)
            except BaseException as exc:  # noqa: BLE001 - raised at commit
                ctx.error = exc
        ctx.decode_time_s = result.elapsed_s
        self._record_stage(stage.name, result.elapsed_s)
        return ctx

    def _commit(self, ctx: SlotContext) -> None:
        if ctx.error is not None:
            raise SlotRuntimeError(
                f"slot {ctx.seq} failed in stage "
                f"{self._parallel.name if self._parallel else '?'}: "
                f"{ctx.error!r}") from ctx.error
        if ctx.decode_time_s > self.slot_budget_s:
            with self._lock:
                self._overruns += 1
        obs = self._obs
        slot = self._slot_index(ctx) if obs else ctx.seq
        if obs:
            # All of the slot's deferred events flush here, on the
            # backbone, strictly in commit order: backbone stage spans,
            # the parallel stage's span (with its drop/backpressure
            # outcome), then whatever the stages queued on the context
            # (decode misses, worker-side events from payload
            # executors).
            for name, elapsed in ctx.stage_times:
                obs.timing("stage.span", elapsed, stage=name, slot=slot,
                           outcome="ok")
            if self._parallel is not None and not ctx.skip_decode:
                outcome = "backpressure" if ctx.dropped else "ok"
                obs.timing("stage.span", ctx.decode_time_s,
                           stage=self._parallel.name, slot=slot,
                           outcome=outcome)
                if ctx.dropped:
                    obs.count("stage.drop", stage=self._parallel.name,
                              slot=slot, reason="backpressure")
            for name, fields in ctx.events:
                obs.emit(name, **fields)
        for stage in self._sinks:
            start = time.perf_counter()
            stage.fn(ctx)
            elapsed = time.perf_counter() - start
            self._record_stage(stage.name, elapsed)
            if obs:
                obs.timing("stage.span", elapsed, stage=stage.name,
                           slot=slot, outcome="ok")
        with self._lock:
            self._completed += 1

    def flush(self, timeout_s: float | None = None) -> None:
        """Barrier: wait for in-flight slots and commit them in order."""
        self.executor.wait(timeout_s if timeout_s is not None
                           else self.flush_timeout_s)
        self._drain_ready()
        if self._reorder:
            raise SlotRuntimeError(
                f"flush left {len(self._reorder)} slots uncommitted "
                f"(next commit seq {self._next_commit})")

    def close(self) -> None:
        """Flush and stop the executor's workers."""
        self.flush()
        self.executor.shutdown()

    # ----------------------------------------------------------- stats
    def stats(self) -> RuntimeStats:
        """Consistent snapshot of every counter."""
        with self._lock:
            stages = tuple(replace(self._stage_stats[s.name])
                           for s in self.stages)
            return RuntimeStats(
                executor=self.executor.name,
                slots_submitted=self._submitted,
                slots_completed=self._completed,
                slots_dropped=self._dropped,
                dcis_dropped=self._dcis_dropped,
                budget_overruns=self._overruns,
                slot_budget_s=self.slot_budget_s,
                stages=stages)

    def reset_stats(self) -> None:
        """Zero the counters (e.g. after a benchmark warm-up)."""
        with self._lock:
            for stats in self._stage_stats.values():
                stats.calls = 0
                stats.total_s = 0.0
                stats.max_s = 0.0
                stats.drops = 0
            self._submitted = self._completed = 0
            self._dropped = self._dcis_dropped = self._overruns = 0
