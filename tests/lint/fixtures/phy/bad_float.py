"""R003 fixture: exact float comparison on a hot PHY path."""


def agc_converged(gain):
    return gain == 1.0


def is_sentinel(ratio):
    return ratio is 1


def not_unity(ratio):
    return ratio != 0.5
