"""Tests for the paper's cell profiles."""

import pytest

from repro.gnb.cell_config import (
    ALL_PROFILES,
    AMARISOFT_PROFILE,
    CellConfigError,
    CellProfile,
    MOSOLAB_PROFILE,
    SRSRAN_PROFILE,
    TMOBILE_N25_PROFILE,
    TMOBILE_N71_PROFILE,
)


class TestPaperProfiles:
    def test_all_five_present(self):
        assert set(ALL_PROFILES) == {"srsran", "mosolab", "amarisoft",
                                     "tmobile-n25", "tmobile-n71"}

    def test_srsran_matches_methodology(self):
        # Section 5.1: n41 TDD, 2524.95 MHz, 30 kHz SCS, 20 MHz.
        p = SRSRAN_PROFILE
        assert p.band == "n41" and p.is_tdd
        assert p.center_frequency_hz == pytest.approx(2524.95e6)
        assert p.scs_khz == 30
        assert p.bandwidth_hz == pytest.approx(20e6)
        assert p.slot_duration_s == pytest.approx(0.5e-3)
        assert p.bwp_id == 0

    def test_mosolab_matches_methodology(self):
        p = MOSOLAB_PROFILE
        assert p.band == "n48" and p.is_tdd
        assert p.center_frequency_hz == pytest.approx(3561.6e6)

    def test_amarisoft_matches_methodology(self):
        p = AMARISOFT_PROFILE
        assert p.band == "n78" and p.is_tdd
        assert p.center_frequency_hz == pytest.approx(3489.42e6)
        assert p.max_mimo_layers == 2

    def test_tmobile_cells_fdd_bwp1(self):
        # Both commercial cells: FDD, 15 kHz, BWP 1.
        for p in (TMOBILE_N25_PROFILE, TMOBILE_N71_PROFILE):
            assert not p.is_tdd
            assert p.scs_khz == 15
            assert p.bwp_id == 1
            assert p.slot_duration_s == pytest.approx(1e-3)
        assert TMOBILE_N25_PROFILE.bandwidth_hz == pytest.approx(10e6)
        assert TMOBILE_N71_PROFILE.bandwidth_hz == pytest.approx(15e6)

    def test_distinct_cell_ids(self):
        ids = [p.cell_id for p in ALL_PROFILES.values()]
        assert len(set(ids)) == len(ids)


class TestDerivedObjects:
    def test_coresets_disjoint_symbols(self):
        for p in ALL_PROFILES.values():
            assert p.coreset0().first_symbol == 0
            assert p.dedicated_coreset().first_symbol == 1

    def test_search_space_config_roundtrips_coreset(self):
        p = SRSRAN_PROFILE
        config = p.search_space_config()
        coreset = p.dedicated_coreset()
        assert config.coreset_n_prb == coreset.n_prb
        assert config.coreset_first_symbol == coreset.first_symbol

    def test_dci_size_config_bwp_bit(self):
        assert SRSRAN_PROFILE.dci_size_config().bwp_indicator_bits == 0
        assert TMOBILE_N25_PROFILE.dci_size_config().bwp_indicator_bits == 1

    def test_tdd_gates(self):
        p = SRSRAN_PROFILE
        dl_slots = sum(p.is_downlink_slot(s) for s in range(10))
        ul_slots = sum(p.is_uplink_slot(s) for s in range(10))
        assert dl_slots == 7
        assert ul_slots == 2

    def test_fdd_always_both(self):
        p = TMOBILE_N25_PROFILE
        assert all(p.is_downlink_slot(s) for s in range(20))
        assert all(p.is_uplink_slot(s) for s in range(20))

    def test_mib_sib1_consistency(self):
        p = AMARISOFT_PROFILE
        mib = p.build_mib(sfn=1030)
        assert mib.sfn == 6  # wraps at 1024
        sib1 = p.build_sib1()
        assert sib1.n_prb_carrier == p.n_prb
        assert sib1.is_tdd == p.is_tdd
        assert sib1.cell_identity == p.cell_id

    def test_slots_per_second(self):
        assert SRSRAN_PROFILE.slots_per_second == 2000
        assert TMOBILE_N25_PROFILE.slots_per_second == 1000

    def test_invalid_profile(self):
        with pytest.raises(CellConfigError):
            CellProfile(name="bad", band="n1", is_tdd=False,
                        center_frequency_hz=1e9, scs_khz=45,
                        bandwidth_hz=10e6, cell_id=9)
