"""Fig 11: active UEs per second and per minute (paper section 5.3.1).

From the same commercial-cell captures as Fig 10: the CDF of how many
UEs the gNB schedules within one second and within one minute — "less
than 60 UE most of one minute period".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import cdf_points
from repro.analysis.report import Table
from repro.experiments.common import FigureResult
from repro.ue.population import ComeAndGoProcess, TMOBILE_CELL1_PROFILES, \
    TMOBILE_CELL2_PROFILES, active_counts


@dataclass(frozen=True)
class UeCountSeries:
    """One CDF line of Fig 11 (cell x bin width)."""

    cell: int
    bin_s: float
    counts: tuple[int, ...]

    @property
    def label(self) -> str:
        unit = "1 Second" if self.bin_s == 1.0 else "1 Minute"
        return f"Cell {self.cell}, {unit}"

    @property
    def median(self) -> float:
        return float(np.median(self.counts))

    def cdf(self) -> list[tuple[float, float]]:
        return cdf_points([float(c) for c in self.counts])


def run(duration_s: float = 600.0, seed: int = 13) -> list[UeCountSeries]:
    """All four lines: {cell 1, cell 2} x {1 s, 1 min} bins."""
    out = []
    for cell, profiles in ((1, TMOBILE_CELL1_PROFILES),
                           (2, TMOBILE_CELL2_PROFILES)):
        process = ComeAndGoProcess(profiles["afternoon"],
                                   seed=seed + cell)
        sessions = process.generate(duration_s)
        for bin_s in (1.0, 60.0):
            counts = active_counts(sessions, duration_s, bin_s)
            out.append(UeCountSeries(cell=cell, bin_s=bin_s,
                                     counts=tuple(int(c)
                                                  for c in counts)))
    return out


def to_result(series: list[UeCountSeries]) -> FigureResult:
    result = FigureResult(figure="fig11")
    for line in series:
        result.add_series(line.label, line.cdf())
    minute_counts = [c for line in series if line.bin_s == 60.0
                     for c in line.counts]
    result.summary["minute_p50"] = float(np.median(minute_counts))
    result.summary["minute_max"] = float(max(minute_counts))
    second_counts = [c for line in series if line.bin_s == 1.0
                     for c in line.counts]
    result.summary["second_p50"] = float(np.median(second_counts))
    return result


def table(series: list[UeCountSeries]) -> Table:
    return Table(
        title="Fig 11 - active UEs per second / minute",
        columns=("series", "median", "p90", "max"),
        rows=tuple((line.label, line.median,
                    float(np.percentile(line.counts, 90)),
                    max(line.counts)) for line in series))
