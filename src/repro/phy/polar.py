"""Polar coding for the PDCCH (TS 38.212 sections 5.3.1 and 5.4.1).

The gNB protects every DCI with a CRC-attached polar code; NR-Scope runs
the inverse chain, so PDCCH decode failures in this reproduction come from
genuine successive-cancellation decoding errors under channel noise.

Substitution note (documented in DESIGN.md): the channel reliability order
is generated with the polarization-weight beta-expansion (beta = 2**0.25)
instead of embedding the 1024-entry table 5.3.1.2-1 verbatim.  The ordering
is near-identical in practice and plays the same role; encoder and decoder
share it, so the system is exactly self-consistent.  Rate matching uses
suffix shortening (E < N) or repetition (E > N), the two mechanisms the
standard applies in the regimes PDCCH operates in.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Maximum code size for the PDCCH (n_max = 9 in 38.212 section 7.3.3).
N_MAX_DL = 512
N_MIN = 32

#: Saturation magnitude for known-zero (shortened) bit LLRs.
_INF_LLR = 1e9


class PolarError(ValueError):
    """Raised for unsatisfiable code dimensions."""


@lru_cache(maxsize=None)
def reliability_order(n: int) -> tuple[int, ...]:
    """Channel indices of a length-``2**n`` polar code, least reliable first.

    Polarization-weight construction: index ``i`` with binary digits
    ``b_{n-1}..b_0`` gets weight ``sum_j b_j * 2**(j/4)``; sorting by weight
    ascending approximates 38.212 Table 5.3.1.2-1 (the universal sequence
    was itself derived from this family of constructions).
    """
    if not 0 <= n <= 10:
        raise PolarError(f"polar exponent out of range: {n}")
    size = 1 << n
    indices = np.arange(size)
    weights = np.zeros(size, dtype=np.float64)
    for j in range(n):
        weights += ((indices >> j) & 1) * (2.0 ** (j / 4.0))
    order = np.argsort(weights, kind="stable")
    return tuple(int(i) for i in order)


@dataclass(frozen=True)
class PolarCode:
    """A concrete (N, K, E) polar code with its frozen/info index sets."""

    n: int                      # N = 2**n
    block_len: int              # N
    info_len: int               # K (payload + CRC bits)
    rate_matched_len: int       # E (bits on the channel)
    info_indices: tuple[int, ...]
    shortened_outputs: tuple[int, ...]

    @property
    def code_rate(self) -> float:
        """K / E, the effective channel code rate."""
        return self.info_len / self.rate_matched_len


@lru_cache(maxsize=None)
def construct(info_len: int, rate_matched_len: int) -> PolarCode:
    """Choose N and the information set for a (K, E) PDCCH polar code."""
    if info_len <= 0:
        raise PolarError(f"K must be positive, got {info_len}")
    if rate_matched_len < info_len:
        raise PolarError(
            f"E={rate_matched_len} cannot carry K={info_len} info bits")
    n = N_MIN.bit_length() - 1
    while (1 << n) < min(rate_matched_len, N_MAX_DL) and (1 << n) < N_MAX_DL:
        n += 1
    # Ensure the mother code can hold K info bits even after shortening.
    while ((1 << n) - max(0, (1 << n) - rate_matched_len)) < info_len:
        n += 1
        if (1 << n) > N_MAX_DL:
            raise PolarError(
                f"K={info_len}, E={rate_matched_len} exceeds PDCCH polar"
                f" limits (N<=512)")
    block_len = 1 << n

    if rate_matched_len < block_len:
        shortened = tuple(range(rate_matched_len, block_len))
    else:
        shortened = ()
    forced_frozen = set(shortened)
    order = reliability_order(n)
    # Most reliable usable channels carry information.
    usable = [i for i in reversed(order) if i not in forced_frozen]
    if len(usable) < info_len:
        raise PolarError("not enough usable channels after shortening")
    info = tuple(sorted(usable[:info_len]))
    return PolarCode(n=n, block_len=block_len, info_len=info_len,
                     rate_matched_len=rate_matched_len,
                     info_indices=info, shortened_outputs=shortened)


def _transform(u: np.ndarray) -> np.ndarray:
    """Arikan transform ``x = u @ F^{(x)n}`` over GF(2), in place on a copy."""
    x = u.astype(np.uint8).copy()
    size = x.size
    stride = 1
    while stride < size:
        for start in range(0, size, 2 * stride):
            x[start:start + stride] ^= x[start + stride:start + 2 * stride]
        stride *= 2
    return x


def encode(info_bits: np.ndarray, code: PolarCode) -> np.ndarray:
    """Encode ``K`` info bits into ``E`` rate-matched coded bits."""
    bits = np.asarray(info_bits, dtype=np.uint8).ravel()
    if bits.size != code.info_len:
        raise PolarError(
            f"expected {code.info_len} info bits, got {bits.size}")
    u = np.zeros(code.block_len, dtype=np.uint8)
    u[list(code.info_indices)] = bits
    x = _transform(u)
    if code.rate_matched_len <= code.block_len:
        return x[:code.rate_matched_len].copy()
    reps = code.rate_matched_len - code.block_len
    return np.concatenate([x, x[:reps]])


def _llrs_to_mother(llrs: np.ndarray, code: PolarCode) -> np.ndarray:
    """Undo rate matching: fold repetitions, pin shortened bits to zero."""
    out = np.zeros(code.block_len, dtype=np.float64)
    base = min(code.rate_matched_len, code.block_len)
    out[:base] = llrs[:base]
    if code.rate_matched_len > code.block_len:
        extra = llrs[code.block_len:]
        out[:extra.size] += extra
    for idx in code.shortened_outputs:
        out[idx] = _INF_LLR
    return out


def _sc_decode(llrs: np.ndarray, frozen_mask: np.ndarray) -> np.ndarray:
    """Successive-cancellation decode; returns the estimated u vector.

    Positive LLR means bit 0.  Implemented iteratively over a binary tree
    flattened into per-stage arrays, which keeps it allocation-light for
    the N <= 512 blocks the PDCCH uses.
    """
    size = llrs.size
    n = size.bit_length() - 1
    # llr_store[s] holds the LLRs entering stage s (length N each);
    # bit_store[s] holds partial-sum bits leaving stage s.
    llr_store = [np.zeros(size, dtype=np.float64) for _ in range(n + 1)]
    bit_store = [np.zeros(size, dtype=np.uint8) for _ in range(n + 1)]
    llr_store[n][:] = llrs
    u_hat = np.zeros(size, dtype=np.uint8)
    # u bits are produced in natural order as leaves are visited
    # left-to-right; the buffer offset is position within the stage, not
    # the u index, so track the leaf count separately.
    next_u = [0]

    def recurse(stage: int, offset: int) -> None:
        if stage == 0:
            idx = next_u[0]
            next_u[0] += 1
            if frozen_mask[idx]:
                u_hat[idx] = 0
            else:
                u_hat[idx] = 0 if llr_store[0][offset] >= 0 else 1
            bit_store[0][offset] = u_hat[idx]
            return
        half = 1 << (stage - 1)
        top = llr_store[stage][offset:offset + half]
        bot = llr_store[stage][offset + half:offset + 2 * half]
        # f-node: min-sum combination.
        llr_store[stage - 1][offset:offset + half] = (
            np.sign(top) * np.sign(bot) * np.minimum(np.abs(top), np.abs(bot)))
        recurse(stage - 1, offset)
        left_bits = bit_store[stage - 1][offset:offset + half].copy()
        # g-node: conditioned on the left partial sums.
        llr_store[stage - 1][offset:offset + half] = (
            bot + (1.0 - 2.0 * left_bits) * top)
        recurse(stage - 1, offset)
        right_bits = bit_store[stage - 1][offset:offset + half]
        bit_store[stage][offset:offset + half] = left_bits ^ right_bits
        bit_store[stage][offset + half:offset + 2 * half] = right_bits

    recurse(n, 0)
    return u_hat


def decode(llrs: np.ndarray, code: PolarCode) -> np.ndarray:
    """Decode ``E`` channel LLRs back into ``K`` info bits (hard output).

    Layout: llrs (E) float64
    Layout: return (K) uint8
    """
    arr = np.asarray(llrs, dtype=float).ravel()
    if arr.size != code.rate_matched_len:
        raise PolarError(
            f"expected {code.rate_matched_len} LLRs, got {arr.size}")
    mother = _llrs_to_mother(arr, code)
    frozen = np.ones(code.block_len, dtype=bool)
    frozen[list(code.info_indices)] = False
    u_hat = _sc_decode(mother, frozen)
    return u_hat[list(code.info_indices)].astype(np.uint8)


# ------------------------------------------------------- batched decode
def _llrs_to_mother_batch(llrs: np.ndarray, code: PolarCode) -> np.ndarray:
    """Row-wise :func:`_llrs_to_mother` over a stacked ``(B, E)`` matrix."""
    batch = llrs.shape[0]
    out = np.zeros((batch, code.block_len), dtype=np.float64)
    base = min(code.rate_matched_len, code.block_len)
    out[:, :base] = llrs[:, :base]
    if code.rate_matched_len > code.block_len:
        extra = llrs[:, code.block_len:]
        out[:, :extra.shape[1]] += extra
    for idx in code.shortened_outputs:
        out[:, idx] = _INF_LLR
    return out


# Plan op tags (see _sc_plan).  F/G/C are the ordinary SC butterfly
# nodes; GSKIP/CSKIP are the frozen-left-child degenerate forms; RATE0
# and REP are whole-subtree shortcuts; LEAF emits one info bit.
_OP_F, _OP_G, _OP_C, _OP_GSKIP, _OP_CSKIP, _OP_RATE0, _OP_REP, \
    _OP_LEAF = range(8)


@lru_cache(maxsize=256)
def _sc_plan(size: int, frozen_bytes: bytes) \
        -> tuple[tuple[int, int, int, int, int, int], ...]:
    """Compile the SC traversal for one frozen mask into a flat op list.

    The successive-cancellation schedule depends only on (N, frozen
    mask), so it is walked once here and the surviving array operations
    are emitted as ``(tag, stage, offset, width, u_idx, flag)`` tuples;
    :func:`_sc_decode_batch` then interprets the list with no recursion
    and no per-node frozen-set bookkeeping.  Three structural shortcuts
    prune the tree during compilation.  Each is *exact* — it reproduces
    the scalar decoder's outputs bit for bit, never an approximation:

    * rate-0 subtrees (every covered leaf frozen): the scalar decoder
      forces each frozen leaf to 0 regardless of its LLR, so the
      subtree contributes u = 0 and partial sums beta = 0 no matter
      what is computed inside it;
    * frozen left child: the left partial sums are all zero, so the
      f-node LLRs are never consumed and the g-node degenerates to
      ``bot + 1.0*top == bot + top``, exactly — the f computation and
      left recursion are skipped outright (GSKIP/CSKIP);
    * REP subtrees (single info bit, in the last leaf): every internal
      left child is all-frozen, so the lone info leaf's LLR is the
      halves-fold ``bot + top`` applied log2(span) times — with the
      identical operand order and association as the scalar g-chain,
      so the floating-point value (and hence the tie behaviour) is
      identical; the subtree's partial sums are the decision bit
      broadcast (transform of ``[0..0,d]`` is ``d`` at every output).

    The root node's partial-sum outputs are consumed by nobody, so its
    combine step (and the left-bit stash feeding it) is not emitted.

    DCI polar codes are low-rate (K/N ~ 0.1-0.25), so pruning removes
    the bulk of the O(N) butterfly (roughly 4-9x fewer array ops).
    """
    frozen_mask = np.frombuffer(frozen_bytes, dtype=np.uint8) \
        .astype(bool)
    n = size.bit_length() - 1
    # frozen_count[b+s] - frozen_count[b] == s  <=>  leaves [b, b+s)
    # are all frozen  <=>  the subtree covering them is rate-0.
    frozen_count = np.concatenate(
        ([0], np.cumsum(frozen_mask.astype(np.int64))))
    ops: list[tuple[int, int, int, int, int, int]] = []
    next_u = [0]

    def emit(stage: int, offset: int, keep_bits: bool) -> None:
        span = 1 << stage
        base = next_u[0]
        n_frozen = int(frozen_count[base + span] - frozen_count[base])
        if n_frozen == span:
            # Rate-0: u bits stay 0 (u_hat is zero-initialised and
            # each u index is written at most once); the buffer slice
            # must be cleared because stages reuse it across siblings.
            next_u[0] += span
            if keep_bits:
                ops.append((_OP_RATE0, stage, offset, span, 0, 0))
            return
        if span >= 2 and n_frozen == span - 1 \
                and not frozen_mask[base + span - 1]:
            next_u[0] += span
            ops.append((_OP_REP, stage, offset, span,
                        base + span - 1, int(keep_bits)))
            return
        if stage == 0:
            # Frozen leaves were pruned above (a single-leaf rate-0
            # subtree), so this leaf carries information.  Scalar
            # decision rule: bit 0 iff llr >= 0 (ties to zero).
            ops.append((_OP_LEAF, 0, offset, 1, next_u[0],
                        int(keep_bits)))
            next_u[0] += 1
            return
        half = 1 << (stage - 1)
        if frozen_count[base + half] - frozen_count[base] == half:
            next_u[0] += half
            ops.append((_OP_GSKIP, stage, offset, half, 0, 0))
            emit(stage - 1, offset, True)
            if keep_bits:
                ops.append((_OP_CSKIP, stage, offset, half, 0, 0))
            return
        ops.append((_OP_F, stage, offset, half, 0, 0))
        emit(stage - 1, offset, True)
        # The G op stashes the left bits into this node's own output
        # slice (free until the combine) so the combine needs no copy;
        # the stash is skipped with the combine at the root.
        ops.append((_OP_G, stage, offset, half, 0, int(keep_bits)))
        emit(stage - 1, offset, True)
        if keep_bits:
            ops.append((_OP_C, stage, offset, half, 0, 0))

    emit(n, 0, False)
    return tuple(ops)


def _sc_decode_batch(llrs: np.ndarray, frozen_mask: np.ndarray,
                     leaf_ok: np.ndarray | None = None) -> np.ndarray:
    """Successive-cancellation decode of ``B`` independent blocks at once.

    Identical per-element arithmetic to :func:`_sc_decode` — the one
    licensed deviation is the f-node, computed as ``copysign(min(|a|,
    |b|), a*b)`` instead of ``sign(a)*sign(b)*min(|a|, |b|)``: the two
    differ only when an input is zero, where copysign may produce -0.0
    instead of +0.0.  A zero-sign difference propagates only into other
    zero magnitudes and never flips a ``(llr < 0)`` decision, so the
    decoded bits are still bit-identical to the scalar decoder's (the
    equivalence tests enforce this).

    The traversal runs a pre-compiled :func:`_sc_plan` op list, so the
    O(N) per-node Python overhead is paid once per *plan compilation*,
    not per decode.  Buffers are laid out code-position-major —
    ``(N, B)`` — so every plan slice is one contiguous block.  Rows
    never interact: the output equals running the scalar decoder on
    each row.

    ``leaf_ok`` (optional, ``(B, N)`` bool) narrows the information set
    *per row*: a row's decision at leaf ``i`` is forced to 0 unless
    ``leaf_ok[row, i]``.  ``frozen_mask`` must then be the *joint* mask
    (frozen only where every row freezes), which keeps the plan's
    pruning exact for all rows — see :func:`decode_batch_joint`.

    Layout: llrs (B, N) float64
    Layout: leaf_ok (B, N) bool
    Layout: return (B, N) uint8
    """
    batch, size = llrs.shape
    n = size.bit_length() - 1
    plan = _sc_plan(
        size, np.ascontiguousarray(frozen_mask, dtype=np.uint8)
        .tobytes())
    # Every plan read is preceded by a plan write (pruned subtrees emit
    # neither), so the scratch stores can start uninitialised.
    llr_store = [np.empty((size, batch), dtype=np.float64)
                 for _ in range(n)]
    llr_store.append(np.ascontiguousarray(llrs.T, dtype=np.float64))
    bit_store = [np.empty((size, batch), dtype=np.uint8)
                 for _ in range(n + 1)]
    u_hat = np.zeros((batch, size), dtype=np.uint8)
    ok_cols = None if leaf_ok is None \
        else np.ascontiguousarray(leaf_ok.T, dtype=bool)

    for tag, stage, offset, width, u_idx, flag in plan:
        if tag == _OP_F:
            src = llr_store[stage]
            top = src[offset:offset + width]
            bot = src[offset + width:offset + 2 * width]
            mag = np.abs(top)
            sgn = np.abs(bot)
            np.minimum(mag, sgn, out=mag)
            np.multiply(top, bot, out=sgn)
            np.copysign(mag, sgn,
                        out=llr_store[stage - 1][offset:offset + width])
        elif tag == _OP_G:
            src = llr_store[stage]
            top = src[offset:offset + width]
            bot = src[offset + width:offset + 2 * width]
            left_bits = bit_store[stage - 1][offset:offset + width]
            if flag:
                bit_store[stage][offset:offset + width] = left_bits
            t = left_bits * 2.0
            np.subtract(1.0, t, out=t)
            np.multiply(t, top, out=t)
            np.add(bot, t,
                   out=llr_store[stage - 1][offset:offset + width])
        elif tag == _OP_C:
            right_bits = bit_store[stage - 1][offset:offset + width]
            dst = bit_store[stage]
            np.bitwise_xor(dst[offset:offset + width], right_bits,
                           out=dst[offset:offset + width])
            dst[offset + width:offset + 2 * width] = right_bits
        elif tag == _OP_GSKIP:
            src = llr_store[stage]
            np.add(src[offset + width:offset + 2 * width],
                   src[offset:offset + width],
                   out=llr_store[stage - 1][offset:offset + width])
        elif tag == _OP_CSKIP:
            right_bits = bit_store[stage - 1][offset:offset + width]
            dst = bit_store[stage]
            dst[offset:offset + width] = right_bits
            dst[offset + width:offset + 2 * width] = right_bits
        elif tag == _OP_RATE0:
            bit_store[stage][offset:offset + width] = 0
        elif tag == _OP_REP:
            # Fold halves exactly as the scalar g-chain would
            # (bot + top, left operand bot) down to the info leaf.
            v = llr_store[stage][offset:offset + width]
            w = width
            while w > 1:
                half_w = w >> 1
                v = v[half_w:w] + v[:half_w]
                w = half_w
            d = (v[0] < 0)
            if ok_cols is not None:
                d &= ok_cols[u_idx]
            u_hat[:, u_idx] = d
            if flag:
                bit_store[stage][offset:offset + width] = \
                    d.astype(np.uint8)[None, :]
        else:  # _OP_LEAF
            d = (llr_store[0][offset] < 0)
            if ok_cols is not None:
                d &= ok_cols[u_idx]
            u_hat[:, u_idx] = d
            if flag:
                bit_store[0][offset] = d

    return u_hat


def decode_batch(llrs: np.ndarray, code: PolarCode) -> np.ndarray:
    """Decode a stacked ``(B, E)`` LLR matrix into ``(B, K)`` info bits.

    The batch axis vectorizes the SC butterfly recursion across all
    candidates sharing one :class:`PolarCode` — the PDCCH blind-decode
    hot path, where every candidate at one (aggregation level, payload
    size) pair uses the same code.  Bit-identical to calling
    :func:`decode` per row (enforced by the equivalence tests).

    Layout: llrs (B, E) float64
    Layout: return (B, K) uint8
    """
    arr = np.asarray(llrs, dtype=float)
    if arr.ndim != 2:
        raise PolarError(f"expected a (B, E) LLR matrix, got shape"
                         f" {arr.shape}")
    if arr.shape[1] != code.rate_matched_len:
        raise PolarError(
            f"expected {code.rate_matched_len} LLRs per row,"
            f" got {arr.shape[1]}")
    if arr.shape[0] == 0:
        return np.zeros((0, code.info_len), dtype=np.uint8)
    mother = _llrs_to_mother_batch(arr, code)
    frozen = np.ones(code.block_len, dtype=bool)
    frozen[list(code.info_indices)] = False
    u_hat = _sc_decode_batch(mother, frozen)
    return u_hat[:, list(code.info_indices)].astype(np.uint8)


def decode_batch_joint(llrs: np.ndarray, codes: tuple[PolarCode, ...]) \
        -> list[np.ndarray]:
    """Decode one ``(B, E)`` LLR matrix under several codes in ONE pass.

    The PDCCH blind decode evaluates every candidate against multiple
    DCI payload sizes; at one aggregation level the formats share the
    channel bits (same E) and hence the same mother code, differing
    only in their information sets.  Rather than one SC traversal per
    format, the rows are replicated per code and pushed through a
    single traversal whose plan is compiled for the *joint* frozen mask
    (frozen only where every code freezes).  Per-row leaf masks then
    force a row's decision to 0 wherever *its* code freezes the leaf —
    exactly the scalar decoder's frozen-leaf rule, so each replica's
    output is bit-identical to :func:`decode_batch` under its own code
    (the partial sums a forced 0 feeds are the ones the scalar path
    computes, so every downstream LLR matches too).

    Returns one ``(B, K_i)`` matrix per code, in ``codes`` order.  All
    codes must share ``(N, E)``; DCI format pairs at one aggregation
    level always do.

    Layout: llrs (B, E) float64
    """
    if not codes:
        return []
    if len(codes) == 1:
        return [decode_batch(llrs, codes[0])]
    first = codes[0]
    for code in codes[1:]:
        if code.block_len != first.block_len or \
                code.rate_matched_len != first.rate_matched_len:
            raise PolarError(
                f"joint decode needs one mother code, got "
                f"(N={first.block_len}, E={first.rate_matched_len}) vs "
                f"(N={code.block_len}, E={code.rate_matched_len})")
    arr = np.asarray(llrs, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != first.rate_matched_len:
        raise PolarError(
            f"expected a (B, {first.rate_matched_len}) LLR matrix, got"
            f" shape {arr.shape}")
    batch = arr.shape[0]
    if batch == 0:
        return [np.zeros((0, code.info_len), dtype=np.uint8)
                for code in codes]
    mother = _llrs_to_mother_batch(arr, first)
    stacked = np.tile(mother, (len(codes), 1))
    joint_frozen = np.ones(first.block_len, dtype=bool)
    leaf_ok = np.zeros((len(codes) * batch, first.block_len),
                       dtype=bool)
    for ci, code in enumerate(codes):
        info = list(code.info_indices)
        joint_frozen[info] = False
        leaf_ok[ci * batch:(ci + 1) * batch, info] = True
    u_hat = _sc_decode_batch(stacked, joint_frozen, leaf_ok)
    return [u_hat[ci * batch:(ci + 1) * batch,
                  list(code.info_indices)].astype(np.uint8)
            for ci, code in enumerate(codes)]
