"""Synchronisation signals: PSS/SSS generation and cell search.

(TS 38.211 sections 7.4.2.2 and 7.4.2.3.)

Before NR-Scope can decode anything it must find the cell: the frame
synchroniser in the paper's Fig 4 pipeline correlates received samples
against the Primary Synchronisation Signal to locate the SSB in time,
then reads the Secondary Synchronisation Signal to learn the physical
cell identity ``N_cell_ID = 3 * N_ID1 + N_ID2``.

Both sequences are generated exactly per the standard: PSS is one of
three cyclic shifts of a length-127 m-sequence; SSS combines two
m-sequences with shifts derived from (N_ID1, N_ID2).  Detection is
classic correlate-and-peak, exercised under noise in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Length of PSS and SSS sequences (subcarriers of the SSB they occupy).
SYNC_SEQUENCE_LEN = 127

#: Physical cell ID structure: N_cell = 3 * N_ID1 + N_ID2.
N_ID1_RANGE = 336
N_ID2_RANGE = 3
MAX_CELL_ID = 3 * N_ID1_RANGE - 1


class SyncError(ValueError):
    """Raised for invalid identities or malformed sample buffers."""


@lru_cache(maxsize=1)
def _pss_base_sequence() -> np.ndarray:
    """The length-127 m-sequence x with x(i+7) = x(i+4) + x(i) mod 2."""
    x = np.zeros(SYNC_SEQUENCE_LEN + 7, dtype=np.int8)
    x[:7] = (0, 1, 1, 0, 1, 1, 1)
    for i in range(SYNC_SEQUENCE_LEN):
        x[i + 7] = (x[i + 4] + x[i]) % 2
    return x[:SYNC_SEQUENCE_LEN].copy()


def pss_sequence(n_id2: int) -> np.ndarray:
    """BPSK PSS d(n) = 1 - 2*x((n + 43*N_ID2) mod 127) (38.211 7.4.2.2)."""
    if not 0 <= n_id2 < N_ID2_RANGE:
        raise SyncError(f"N_ID2 out of range: {n_id2}")
    x = _pss_base_sequence()
    m = (np.arange(SYNC_SEQUENCE_LEN) + 43 * n_id2) % SYNC_SEQUENCE_LEN
    return (1.0 - 2.0 * x[m]).astype(np.float64)


@lru_cache(maxsize=1)
def _sss_base_sequences() -> tuple[np.ndarray, np.ndarray]:
    """The two length-127 m-sequences x0, x1 of 38.211 7.4.2.3."""
    x0 = np.zeros(SYNC_SEQUENCE_LEN + 7, dtype=np.int8)
    x1 = np.zeros(SYNC_SEQUENCE_LEN + 7, dtype=np.int8)
    x0[:7] = (1, 0, 0, 0, 0, 0, 0)
    x1[:7] = (1, 0, 0, 0, 0, 0, 0)
    for i in range(SYNC_SEQUENCE_LEN):
        x0[i + 7] = (x0[i + 4] + x0[i]) % 2
        x1[i + 7] = (x1[i + 1] + x1[i]) % 2
    return x0[:SYNC_SEQUENCE_LEN].copy(), x1[:SYNC_SEQUENCE_LEN].copy()


def sss_sequence(n_id1: int, n_id2: int) -> np.ndarray:
    """BPSK SSS for a cell identity pair (38.211 7.4.2.3)."""
    if not 0 <= n_id1 < N_ID1_RANGE:
        raise SyncError(f"N_ID1 out of range: {n_id1}")
    if not 0 <= n_id2 < N_ID2_RANGE:
        raise SyncError(f"N_ID2 out of range: {n_id2}")
    x0, x1 = _sss_base_sequences()
    m0 = 15 * (n_id1 // 112) + 5 * n_id2
    m1 = n_id1 % 112
    n = np.arange(SYNC_SEQUENCE_LEN)
    d0 = 1.0 - 2.0 * x0[(n + m0) % SYNC_SEQUENCE_LEN]
    d1 = 1.0 - 2.0 * x1[(n + m1) % SYNC_SEQUENCE_LEN]
    return (d0 * d1).astype(np.float64)


def cell_id_to_components(cell_id: int) -> tuple[int, int]:
    """Split ``N_cell_ID`` into (N_ID1, N_ID2)."""
    if not 0 <= cell_id <= MAX_CELL_ID:
        raise SyncError(f"cell ID out of range: {cell_id}")
    return cell_id // 3, cell_id % 3


def components_to_cell_id(n_id1: int, n_id2: int) -> int:
    """Combine (N_ID1, N_ID2) into ``N_cell_ID``."""
    if not 0 <= n_id1 < N_ID1_RANGE or not 0 <= n_id2 < N_ID2_RANGE:
        raise SyncError(f"invalid identity pair ({n_id1}, {n_id2})")
    return 3 * n_id1 + n_id2


@dataclass(frozen=True)
class SsbBurst:
    """One synchronisation signal block rendered into time samples.

    The real SSB spans 4 OFDM symbols x 240 subcarriers; for the frame
    synchroniser's purposes the essential content is the PSS followed by
    the SSS, each carried on its own stretch of samples.
    """

    cell_id: int
    samples: np.ndarray
    pss_offset: int


def render_ssb(cell_id: int, pad_before: int = 0,
               pad_after: int = 0) -> SsbBurst:
    """Time-domain SSB: [zeros | PSS | SSS | zeros].

    A direct time-domain rendering (no OFDM) keeps the correlator
    exact; the detector below is agnostic to how the sequences got onto
    the air.
    """
    n_id1, n_id2 = cell_id_to_components(cell_id)
    pss = pss_sequence(n_id2).astype(np.complex128)
    sss = sss_sequence(n_id1, n_id2).astype(np.complex128)
    samples = np.concatenate([
        np.zeros(pad_before, dtype=np.complex128), pss, sss,
        np.zeros(pad_after, dtype=np.complex128)])
    return SsbBurst(cell_id=cell_id, samples=samples,
                    pss_offset=pad_before)


@dataclass(frozen=True)
class SyncResult:
    """Outcome of a cell search over a sample buffer."""

    cell_id: int
    n_id1: int
    n_id2: int
    sample_offset: int          # where the PSS starts
    pss_metric: float           # normalised correlation peak (0..1)
    sss_metric: float

    @property
    def confident(self) -> bool:
        """True when both correlations clear the detection threshold."""
        return self.pss_metric > 0.5 and self.sss_metric > 0.5


class FrameSynchronizer:
    """PSS/SSS-based cell search (the first block of paper Fig 4).

    ``search`` slides all three PSS hypotheses over the buffer, picks
    the strongest normalised correlation peak, then identifies N_ID1
    from the SSS right after the detected PSS.
    """

    def __init__(self, detection_threshold: float = 0.5) -> None:
        if not 0.0 < detection_threshold < 1.0:
            raise SyncError(
                f"threshold must be in (0, 1): {detection_threshold}")
        self.threshold = detection_threshold

    def _correlate(self, samples: np.ndarray,
                   sequence: np.ndarray) -> np.ndarray:
        """Normalised sliding correlation magnitude."""
        seq = sequence[::-1].conj()
        raw = np.convolve(samples, seq, mode="valid")
        # Normalise by local energy so the metric is SNR-comparable.
        window = np.ones(sequence.size, dtype=np.float64)
        energy = np.convolve(np.abs(samples) ** 2, window, mode="valid")
        norm = np.sqrt(np.maximum(energy, 1e-12) * sequence.size)
        return np.abs(raw) / norm

    def search(self, samples: np.ndarray) -> SyncResult | None:
        """Find the strongest cell in a sample buffer, or None."""
        buffer = np.asarray(samples, dtype=np.complex128).ravel()
        if buffer.size < 2 * SYNC_SEQUENCE_LEN:
            raise SyncError(
                f"buffer too short for an SSB: {buffer.size} samples")
        best: tuple[float, int, int] | None = None
        for n_id2 in range(N_ID2_RANGE):
            metric = self._correlate(buffer, pss_sequence(n_id2)
                                     .astype(np.complex128))
            peak = int(np.argmax(metric))
            value = float(metric[peak])
            if best is None or value > best[0]:
                best = (value, peak, n_id2)
        pss_metric, offset, n_id2 = best
        if pss_metric < self.threshold:
            return None

        sss_start = offset + SYNC_SEQUENCE_LEN
        if sss_start + SYNC_SEQUENCE_LEN > buffer.size:
            return None
        received_sss = buffer[sss_start:sss_start + SYNC_SEQUENCE_LEN]
        # Coherent phase reference from the PSS segment.
        received_pss = buffer[offset:offset + SYNC_SEQUENCE_LEN]
        reference = pss_sequence(n_id2)
        phase = np.vdot(reference, received_pss)
        if abs(phase) > 1e-12:
            received_sss = received_sss * (phase.conj() / abs(phase))

        # Correlation coefficient: |<c, rx>| / (||c|| * ||rx||), with
        # ||c|| = sqrt(127) for BPSK sequences.
        norm = np.linalg.norm(received_sss) * np.sqrt(SYNC_SEQUENCE_LEN)
        best_sss: tuple[float, int] | None = None
        for n_id1 in range(N_ID1_RANGE):
            candidate = sss_sequence(n_id1, n_id2)
            value = float(abs(np.dot(candidate, received_sss))
                          / max(norm, 1e-12))
            if best_sss is None or value > best_sss[0]:
                best_sss = (value, n_id1)
        sss_metric, n_id1 = best_sss
        if sss_metric < self.threshold:
            return None
        return SyncResult(cell_id=components_to_cell_id(n_id1, n_id2),
                          n_id1=n_id1, n_id2=n_id2, sample_offset=offset,
                          pss_metric=pss_metric, sss_metric=sss_metric)
