"""Demodulation reference signals for PDCCH and PDSCH (TS 38.211).

DMRS pilots let a real receiver estimate the channel; in this reproduction
the sniffer's channel knowledge comes from the radio-medium model, but the
pilots still occupy their standard RE positions so that REG accounting,
TBS overhead (``N_DMRS`` in the paper's Appendix A) and grid occupancy all
match the air interface.
"""

from __future__ import annotations

import numpy as np

from repro.constants import N_SC_PER_PRB
from repro.phy.numerology import slots_per_frame
from repro.phy.scrambling import gold_sequence

#: PDCCH DMRS occupies subcarriers 1, 5, 9 of every REG (38.211 7.4.1.3.2).
PDCCH_DMRS_POSITIONS = (1, 5, 9)

#: Data REs per REG once the 3 DMRS REs are removed.
PDCCH_DATA_RES_PER_REG = N_SC_PER_PRB - len(PDCCH_DMRS_POSITIONS)

#: Type-1 single-symbol PDSCH DMRS uses every other subcarrier of the
#: DMRS symbol; with both CDM groups reserved that is 12 REs/PRB, the
#: default the paper's cells use.
PDSCH_DMRS_RES_PER_PRB = 12


def pdcch_dmrs_init(n_id: int, symbol: int, slot_index: int,
                    scs_khz: int = 30) -> int:
    """``c_init`` for PDCCH DMRS (38.211 section 7.4.1.3.1).

    38.211 reduces the slot number modulo the slots in one frame, which
    depends on the numerology; the paper's lab cells all run 30 kHz.
    """
    n_slot = slot_index % slots_per_frame(scs_khz)
    return ((1 << 17) * (14 * n_slot + symbol + 1) * (2 * n_id + 1)
            + 2 * n_id) % (1 << 31)


def pdcch_dmrs_symbols(n_id: int, symbol: int, slot_index: int,
                       n_regs: int, scs_khz: int = 30) -> np.ndarray:
    """QPSK pilot symbols for ``n_regs`` REGs of one PDCCH symbol."""
    c_init = pdcch_dmrs_init(n_id, symbol, slot_index, scs_khz)
    n_pilots = n_regs * len(PDCCH_DMRS_POSITIONS)
    bits = gold_sequence(c_init, 2 * n_pilots).astype(float)
    return ((1.0 - 2.0 * bits[0::2]) + 1j * (1.0 - 2.0 * bits[1::2])) \
        / np.sqrt(2.0)


def reg_data_subcarriers() -> tuple[int, ...]:
    """Subcarrier offsets within a REG that carry PDCCH payload."""
    return tuple(sc for sc in range(N_SC_PER_PRB)
                 if sc not in PDCCH_DMRS_POSITIONS)
