"""Passive HARQ tracking: retransmission detection from NDI toggles.

Paper section 3.2.2: "NR-Scope maintains an array for each UE to record
the ndi from previous DCIs for each harq_id to detect re-transmissions."
This module is that array.  A DCI whose NDI *differs* from the stored
value for its HARQ process carries new data; an *equal* NDI means the
gNB is retransmitting after a NACK.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import N_HARQ_PROCESSES


class HarqTrackerError(ValueError):
    """Raised for out-of-range HARQ process ids."""


@dataclass
class UeHarqTracker:
    """Per-UE NDI arrays (one per direction) plus counters."""

    n_processes: int = N_HARQ_PROCESSES
    dl_ndi: list[int | None] = field(default_factory=list)
    ul_ndi: list[int | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.dl_ndi:
            self.dl_ndi = [None] * self.n_processes
        if not self.ul_ndi:
            self.ul_ndi = [None] * self.n_processes
        self.new_data_count = 0
        self.retransmission_count = 0

    def observe(self, harq_id: int, ndi: int, downlink: bool) -> bool:
        """Record one DCI; returns True when it is a retransmission.

        The first DCI ever seen on a process is necessarily new data.
        """
        if not 0 <= harq_id < self.n_processes:
            raise HarqTrackerError(f"HARQ id out of range: {harq_id}")
        array = self.dl_ndi if downlink else self.ul_ndi
        previous = array[harq_id]
        array[harq_id] = ndi
        is_retx = previous is not None and previous == ndi
        if is_retx:
            self.retransmission_count += 1
        else:
            self.new_data_count += 1
        return is_retx

    @property
    def retransmission_ratio(self) -> float:
        """Retransmissions over all observed DCIs (paper Fig 15 right)."""
        total = self.new_data_count + self.retransmission_count
        if total == 0:
            return 0.0
        return self.retransmission_count / total


class HarqTrackerBank:
    """Trackers for every UE NR-Scope follows."""

    def __init__(self) -> None:
        self._trackers: dict[int, UeHarqTracker] = {}

    def tracker(self, rnti: int) -> UeHarqTracker:
        """The (lazily created) tracker for one RNTI."""
        if rnti not in self._trackers:
            self._trackers[rnti] = UeHarqTracker()
        return self._trackers[rnti]

    def observe(self, rnti: int, harq_id: int, ndi: int,
                downlink: bool) -> bool:
        """Route one DCI observation; returns the retransmission verdict."""
        return self.tracker(rnti).observe(harq_id, ndi, downlink)

    def forget(self, rnti: int) -> None:
        """Drop state for a departed UE (RNTIs get reused)."""
        self._trackers.pop(rnti, None)

    def rntis(self) -> list[int]:
        """All tracked RNTIs."""
        return sorted(self._trackers)
