"""The lint driver: walk files, parse once, run every applicable rule.

Each file is parsed to an AST exactly once and handed to the rules
wrapped in a :class:`LintContext`.  Rule scoping works on a
*package-relative* path (``phy/dci.py``, ``gnb/scheduler.py``) computed
by stripping any leading ``src/repro/`` / ``repro/`` components, so the
same rules fire identically on the real tree and on test fixtures that
mimic its layout.

Two rule tiers share the walk.  Per-file rules see only their module.
Flow-aware rules (``needs_program = True``) additionally get a
:class:`~repro.lint.effects.Program` — call graph, transitive effect
table and parallel-stage roots — built once over *every* parsed file of
the scan, so cross-module properties (stage purity, RNG ownership) are
checked against the same file set the per-file rules saw.

A rule that *crashes* raises :class:`LintError` (naming the rule and
file) rather than leaking a traceback, so the CLI can report analyzer
breakage as exit 2, distinct from findings (exit 1).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, iter_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.effects import Program

#: Directory names never scanned.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: Package-relative prefixes never scanned (the linter does not lint
#: itself: its rule tables legitimately contain every magic number).
SKIP_REL_PREFIXES = ("lint/",)


class LintError(ValueError):
    """Raised for unusable scan targets or analyzer crashes."""


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may want to know about one module."""

    path: Path          #: filesystem path, for display
    rel: str            #: package-relative path, for scoping
    source: str
    tree: ast.Module
    lines: tuple[str, ...] = field(default_factory=tuple)
    #: Whole-scan analysis (call graph, effects, stage roots); present
    #: whenever a selected rule declares ``needs_program``.
    program: "Program | None" = None


@dataclass(frozen=True)
class ParsedModule:
    """One successfully parsed file of a scan."""

    path: Path
    rel: str
    source: str
    tree: ast.Module


def _normalise_rel(rel: str) -> str:
    rel = rel.replace("\\", "/")
    for prefix in ("src/repro/", "repro/", "src/"):
        if rel.startswith(prefix):
            rel = rel[len(prefix):]
            break
    return rel


#: Rightmost-match markers that locate the package root inside an
#: absolute path, so a scan target given from *inside* the tree (a
#: single file, or a subdirectory root) still gets the package-relative
#: path that rule scoping needs: ``lint phy/dci.py`` must scope the same
#: as ``lint src/repro``.  ``/fixtures/`` covers the test-fixture trees
#: that mimic the package layout.
_REL_MARKERS = ("/src/repro/", "/repro/", "/fixtures/", "/src/")

#: Top-level subpackage names; when no root marker matches, a path
#: component with one of these names anchors the rel instead (kept in
#: the rel, unlike the markers above), so ``lint gnb/`` on a tree that
#: merely mimics the layout scopes the same as ``lint .``.
_PACKAGE_DIRS = ("phy", "rrc", "gnb", "ue", "radio", "core",
                 "analysis", "experiments")


def _recover_rel(path: Path, fallback: str) -> str:
    text = str(path.resolve()).replace("\\", "/")
    for marker in _REL_MARKERS:
        idx = text.rfind(marker)
        if idx != -1:
            return _normalise_rel(text[idx + len(marker):])
    parts = text.split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] in _PACKAGE_DIRS:
            return "/".join(parts[i:])
    return fallback


def _iter_python_files(root: Path) -> Iterator[tuple[Path, str]]:
    if root.is_file():
        yield root, _recover_rel(root, _normalise_rel(root.name))
        return
    if not root.is_dir():
        raise LintError(f"no such file or directory: {root}")
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(part in SKIP_DIRS or part.endswith(".egg-info")
               for part in parts):
            continue
        yield path, _recover_rel(path, _normalise_rel("/".join(parts)))


def _syntax_finding(path: Path, rel: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="E000",
        message=f"syntax error: {exc.msg}",
        path=str(path), rel=rel,
        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
        snippet="")


@dataclass
class LintEngine:
    """Runs a rule set over a list of scan roots."""

    rules: list[Rule] = field(default_factory=iter_rules)
    #: Package-relative paths of the last ``run()``'s scanned files
    #: (used by the CLI to restrict baseline-orphan detection to files
    #: the scan actually covered).
    last_scanned: set[str] = field(default_factory=set)

    @property
    def needs_program(self) -> bool:
        """Whether any selected rule wants whole-scan analysis."""
        return any(rule.needs_program for rule in self.rules)

    def collect(self, paths: Iterable[Path | str]) \
            -> tuple[list[ParsedModule], list[Finding]]:
        """Parse every Python file under ``paths`` exactly once.

        Returns the parsed modules plus E000 findings for files that do
        not parse (those are excluded from program analysis).
        """
        modules: list[ParsedModule] = []
        findings: list[Finding] = []
        seen: set[Path] = set()
        for root in paths:
            for path, rel in _iter_python_files(Path(root)):
                if rel.startswith(SKIP_REL_PREFIXES):
                    continue
                resolved = path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                try:
                    source = Path(path).read_text()
                except OSError as exc:
                    raise LintError(f"cannot read {path}: {exc}")
                try:
                    tree = ast.parse(source)
                except SyntaxError as exc:
                    findings.append(_syntax_finding(path, rel, exc))
                    continue
                modules.append(ParsedModule(path=path, rel=rel,
                                            source=source, tree=tree))
        return modules, findings

    def build_program(self, modules: list[ParsedModule]) -> "Program":
        """Whole-scan call-graph/effect analysis over parsed modules."""
        from repro.lint.effects import Program
        try:
            return Program([(str(m.path), m.rel, m.tree)
                            for m in modules])
        except RecursionError as exc:  # pragma: no cover - safety net
            raise LintError(f"effect analysis crashed: {exc!r}")

    def run(self, paths: Iterable[Path | str]) -> list[Finding]:
        """Lint every Python file under ``paths``; returns all findings."""
        modules, findings = self.collect(paths)
        self.last_scanned = {m.rel for m in modules}
        program = self.build_program(modules) if self.needs_program \
            else None
        for module in modules:
            findings.extend(self._check_module(module, program))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def run_file(self, path: Path, rel: str | None = None) -> list[Finding]:
        """Lint a single file."""
        rel = _normalise_rel(rel if rel is not None else path.name)
        try:
            source = Path(path).read_text()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}")
        return self.run_source(source, path=Path(path), rel=rel)

    def run_source(self, source: str, path: Path | str = "<memory>",
                   rel: str | None = None) -> list[Finding]:
        """Lint source text directly (the unit-test entry point)."""
        path = Path(path)
        rel = _normalise_rel(rel if rel is not None else path.name)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [_syntax_finding(path, rel, exc)]
        module = ParsedModule(path=path, rel=rel, source=source, tree=tree)
        program = self.build_program([module]) if self.needs_program \
            else None
        return sorted(self._check_module(module, program),
                      key=lambda f: (f.path, f.line, f.col, f.rule_id))

    def _check_module(self, module: ParsedModule,
                      program: "Program | None") -> list[Finding]:
        ctx = LintContext(path=module.path, rel=module.rel,
                          source=module.source, tree=module.tree,
                          lines=tuple(module.source.splitlines()),
                          program=program)
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies(module.rel):
                continue
            try:
                findings.extend(rule.check(ctx))
            except LintError:
                raise
            except Exception as exc:
                raise LintError(
                    f"internal error: rule {rule.rule_id} crashed on "
                    f"{module.path}: {exc!r}")
        return findings
