"""Tests for repro.phy.modulation: constellations, mapping, LLRs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.modulation import (
    BPSK,
    ModulationError,
    QAM16,
    QAM64,
    QAM256,
    QPSK,
    SCHEMES,
    constellation,
    demodulate_hard,
    demodulate_soft,
    modulate,
)

ALL = [BPSK, QPSK, QAM16, QAM64, QAM256]


class TestConstellation:
    @pytest.mark.parametrize("scheme", ALL)
    def test_unit_average_energy(self, scheme):
        points = constellation(scheme)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("scheme", ALL)
    def test_all_points_distinct(self, scheme):
        points = constellation(scheme)
        assert len(set(np.round(points, 12))) == points.size

    def test_qpsk_matches_standard(self):
        # 38.211 5.1.3: d(00) = (1+j)/sqrt(2) etc.
        points = constellation(QPSK)
        root2 = np.sqrt(2.0)
        assert points[0b00] == pytest.approx((1 + 1j) / root2)
        assert points[0b01] == pytest.approx((1 - 1j) / root2)
        assert points[0b10] == pytest.approx((-1 + 1j) / root2)
        assert points[0b11] == pytest.approx((-1 - 1j) / root2)

    def test_16qam_corner_points(self):
        # 38.211 5.1.4: b=0000 -> (1+1j)/sqrt(10); b=0101 -> (3+3j)? no:
        # b=(b0 b1 b2 b3) = 0 0 1 1 -> (3 + 3j)/sqrt(10).
        points = constellation(QAM16)
        root10 = np.sqrt(10.0)
        assert points[0b0000] == pytest.approx((1 + 1j) / root10)
        assert points[0b0011] == pytest.approx((3 + 3j) / root10)
        # b=(1,0,1,0): I from (b0,b2)=(1,1) -> -3, Q from (b1,b3)=(0,0) -> 1.
        assert points[0b1010] == pytest.approx((-3 + 1j) / root10)
        assert points[0b1111] == pytest.approx((-3 - 3j) / root10)

    def test_gray_property_neighbours_differ_by_one_bit(self):
        """Adjacent constellation points differ in exactly one bit (Gray)."""
        points = constellation(QAM64)
        values = np.arange(points.size)
        min_dist = 2.0 / np.sqrt(42.0)  # nearest-neighbour spacing
        for i in values:
            for j in values:
                if i < j and abs(points[i] - points[j]) < min_dist * 1.01:
                    assert bin(i ^ j).count("1") == 1, (i, j)


class TestModulate:
    @pytest.mark.parametrize("scheme", ALL)
    def test_roundtrip_hard(self, scheme, rng):
        bits = rng.integers(0, 2, scheme.bits_per_symbol * 64).astype(np.uint8)
        assert np.array_equal(demodulate_hard(modulate(bits, scheme), scheme),
                              bits)

    def test_rejects_partial_symbol(self):
        with pytest.raises(ModulationError):
            modulate(np.zeros(5, dtype=np.uint8), QPSK)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ModulationError):
            modulate(np.zeros(2, dtype=np.uint8), "1024QAM")

    def test_lookup_by_name(self, rng):
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        assert np.array_equal(modulate(bits, "QPSK"), modulate(bits, QPSK))
        assert set(SCHEMES) == {"BPSK", "QPSK", "16QAM", "64QAM", "256QAM"}


class TestSoftDemodulation:
    @pytest.mark.parametrize("scheme", [QPSK, QAM16, QAM64, QAM256])
    def test_llr_signs_match_bits_noiseless(self, scheme, rng):
        bits = rng.integers(0, 2, scheme.bits_per_symbol * 32).astype(np.uint8)
        llrs = demodulate_soft(modulate(bits, scheme), scheme, noise_var=0.1)
        hard = (llrs < 0).astype(np.uint8)
        assert np.array_equal(hard, bits)

    def test_llr_magnitude_scales_with_noise(self, rng):
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        symbols = modulate(bits, QPSK)
        strong = demodulate_soft(symbols, QPSK, noise_var=0.01)
        weak = demodulate_soft(symbols, QPSK, noise_var=1.0)
        assert np.all(np.abs(strong) > np.abs(weak))

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ModulationError):
            demodulate_soft(np.array([1 + 0j]), QPSK, noise_var=0.0)

    @given(st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_property_qam64_roundtrip(self, seed):
        local = np.random.default_rng(seed)
        bits = local.integers(0, 2, 6 * 20).astype(np.uint8)
        noisy = modulate(bits, QAM64) + 0.01 * (
            local.normal(size=20) + 1j * local.normal(size=20))
        llrs = demodulate_soft(noisy, QAM64, noise_var=0.02)
        assert np.array_equal((llrs < 0).astype(np.uint8), bits)

    def test_ber_increases_with_noise(self, rng):
        bits = rng.integers(0, 2, 6 * 4000).astype(np.uint8)
        symbols = modulate(bits, QAM64)

        def ber(noise_var):
            noise = rng.normal(0, np.sqrt(noise_var / 2), symbols.size) + \
                1j * rng.normal(0, np.sqrt(noise_var / 2), symbols.size)
            hard = demodulate_hard(symbols + noise, QAM64)
            return np.mean(hard != bits)

        low, high = ber(0.001), ber(0.3)
        assert low < 0.001
        assert high > 0.01
