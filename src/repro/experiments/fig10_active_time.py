"""Fig 10: UE active time in commercial cells (paper section 5.3.1).

Ten-minute captures of both T-Mobile cells at three times of day show a
come-and-go pattern: 400-600 distinct UEs in cell 1 (100-200 in cell 2)
and 90% of UEs staying under 35 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.experiments.common import FigureResult
from repro.ue.population import ComeAndGoProcess, Session, \
    TMOBILE_CELL1_PROFILES, TMOBILE_CELL2_PROFILES, holding_time_ccdf

#: One paper observation window.
DURATION_S = 600.0

#: Repetitions per time of day (the paper uses three).
REPETITIONS = 3


@dataclass(frozen=True)
class ActiveTimeSeries:
    """One CCDF line of Fig 10 (cell x time of day)."""

    cell: int
    time_of_day: str
    sessions: tuple[Session, ...]

    @property
    def distinct_ues(self) -> int:
        return len(self.sessions)

    @property
    def p90_holding_s(self) -> float:
        return float(np.percentile([s.holding_s for s in self.sessions],
                                   90))

    def ccdf(self, grid: np.ndarray | None = None) \
            -> list[tuple[float, float]]:
        grid = grid if grid is not None else np.linspace(0, 400, 81)
        probs = holding_time_ccdf(list(self.sessions), grid)
        return list(zip(grid.tolist(), probs.tolist()))


def run(duration_s: float = DURATION_S, repetitions: int = REPETITIONS,
        seed: int = 12) -> list[ActiveTimeSeries]:
    """All six lines: {morning, afternoon, night} x {cell 1, cell 2}."""
    out = []
    for cell, profiles in ((1, TMOBILE_CELL1_PROFILES),
                           (2, TMOBILE_CELL2_PROFILES)):
        for time_of_day, profile in profiles.items():
            sessions: list[Session] = []
            for rep in range(repetitions):
                process = ComeAndGoProcess(profile,
                                           seed=seed + cell * 100 + rep)
                sessions.extend(process.generate(duration_s,
                                                 first_ue_id=len(sessions)))
            out.append(ActiveTimeSeries(cell=cell,
                                        time_of_day=time_of_day,
                                        sessions=tuple(sessions)))
    return out


def to_result(series: list[ActiveTimeSeries]) -> FigureResult:
    result = FigureResult(figure="fig10")
    for line in series:
        result.add_series(f"{line.time_of_day} ({line.cell})",
                          line.ccdf())
    holdings = np.array([s.holding_s for line in series
                         for s in line.sessions])
    result.summary["p90_holding_s"] = float(np.percentile(holdings, 90))
    result.summary["fraction_under_35s"] = float((holdings < 35.0).mean())
    cell1 = [line.distinct_ues // REPETITIONS for line in series
             if line.cell == 1]
    cell2 = [line.distinct_ues // REPETITIONS for line in series
             if line.cell == 2]
    result.summary["cell1_distinct_min"] = float(min(cell1))
    result.summary["cell1_distinct_max"] = float(max(cell1))
    result.summary["cell2_distinct_min"] = float(min(cell2))
    result.summary["cell2_distinct_max"] = float(max(cell2))
    return result


def table(series: list[ActiveTimeSeries]) -> Table:
    return Table(
        title="Fig 10 - UE active time in T-Mobile cells",
        columns=("cell", "time", "distinct UEs / 10 min", "p90 hold s"),
        rows=tuple((line.cell, line.time_of_day,
                    line.distinct_ues // REPETITIONS, line.p90_holding_s)
                   for line in series))
