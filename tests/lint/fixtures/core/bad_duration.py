"""R001/R004 fixture: slot durations re-derived outside numerology."""


def slot_seconds(scs_khz):
    return {15: 1e-3, 30: 0.5e-3, 60: 0.25e-3}[scs_khz]


def prune_interval(window_s):
    return int(window_s / 0.5e-3)
