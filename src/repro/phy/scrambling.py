"""Gold-sequence scrambling from TS 38.211 section 5.2.1.

Every 5G physical channel whitens its bits with a length-31 Gold sequence
whose initial state ``c_init`` mixes channel- and UE-specific identifiers.
A sniffer that knows the cell ID and a UE's RNTI can regenerate the same
sequence, which is what makes passive PDCCH decoding possible once the
RACH process has revealed the C-RNTI.
"""

from __future__ import annotations

import numpy as np

#: Gold sequence warm-up offset Nc (38.211 section 5.2.1).
GOLD_NC = 1600

_SEQUENCE_CACHE: dict[int, np.ndarray] = {}
_CACHE_LIMIT = 4096

# LLR descrambling multiplies by (1 - 2*c) in {-1.0, +1.0}; the PDCCH
# blind-decode loop asks for the same (c_init, length) pair for every
# candidate at one aggregation level, so the float sign vector is cached
# separately from the bit sequence with hit/miss accounting.
_SIGN_CACHE: dict[tuple[int, int], np.ndarray] = {}
_SIGN_CACHE_HITS = 0
_SIGN_CACHE_MISSES = 0


class ScramblingError(ValueError):
    """Raised for invalid scrambling parameters."""


def gold_sequence(c_init: int, length: int) -> np.ndarray:
    """Generate ``length`` bits of the 3GPP length-31 Gold sequence.

    ``x1`` is seeded with 1, ``x2`` with ``c_init``; both advance with
    their fixed feedback taps and the output is their XOR after the
    ``Nc = 1600`` warm-up (38.211 section 5.2.1). Sequences are cached by
    ``c_init`` and grown on demand since the per-slot scrambler asks for
    the same seeds repeatedly.
    """
    if length < 0:
        raise ScramblingError(f"length must be non-negative, got {length}")
    if not 0 <= c_init < (1 << 31):
        raise ScramblingError(f"c_init out of 31-bit range: {c_init}")
    cached = _SEQUENCE_CACHE.get(c_init)
    if cached is not None and cached.size >= length:
        return cached[:length].copy()

    total = max(length, 1)
    # Generate x1 and x2 up to Nc + total using vectorized recurrences.
    n = GOLD_NC + total + 31
    x1 = np.zeros(n, dtype=np.uint8)
    x2 = np.zeros(n, dtype=np.uint8)
    x1[0] = 1
    for i in range(31):
        x2[i] = (c_init >> i) & 1
    for i in range(n - 31):
        x1[i + 31] = x1[i + 3] ^ x1[i]
        x2[i + 31] = x2[i + 3] ^ x2[i + 2] ^ x2[i + 1] ^ x2[i]
    seq = (x1[GOLD_NC:GOLD_NC + total] ^ x2[GOLD_NC:GOLD_NC + total])
    if len(_SEQUENCE_CACHE) < _CACHE_LIMIT:
        _SEQUENCE_CACHE[c_init] = seq
    return seq[:length].copy()


def pdcch_scrambling_init(n_id: int, n_rnti: int = 0) -> int:
    """``c_init`` for PDCCH bit scrambling (38.211 section 7.3.2.3).

    ``c_init = (n_rnti * 2^16 + n_id) mod 2^31`` where ``n_id`` is the
    ``pdcch-DMRS-ScramblingID`` (defaulting to the physical cell ID) and
    ``n_rnti`` is the C-RNTI for UE-specific search spaces, else 0.
    """
    if not 0 <= n_id < (1 << 16):
        raise ScramblingError(f"n_id out of range: {n_id}")
    if not 0 <= n_rnti < (1 << 16):
        raise ScramblingError(f"n_rnti out of range: {n_rnti}")
    return ((n_rnti << 16) + n_id) % (1 << 31)


def pdsch_scrambling_init(rnti: int, codeword: int, n_id: int) -> int:
    """``c_init`` for PDSCH bit scrambling (38.211 section 7.3.1.1)."""
    if codeword not in (0, 1):
        raise ScramblingError(f"codeword must be 0 or 1, got {codeword}")
    return ((rnti << 15) + (codeword << 14) + n_id) % (1 << 31)


def scramble_bits(bits: np.ndarray, c_init: int) -> np.ndarray:
    """XOR ``bits`` with the Gold sequence seeded by ``c_init``.

    Scrambling is an involution: calling this twice restores the input.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ScramblingError(f"expected 1-D bits, got shape {arr.shape}")
    return arr ^ gold_sequence(c_init, arr.size)


def descramble_signs(c_init: int, length: int) -> np.ndarray:
    """Float sign vector ``1 - 2*c`` for LLR descrambling, cached.

    Returned arrays are shared and must not be mutated by callers; the
    descramble itself (`llrs * signs`) allocates a fresh output.
    """
    global _SIGN_CACHE_HITS, _SIGN_CACHE_MISSES
    key = (c_init, length)
    cached = _SIGN_CACHE.get(key)
    if cached is not None:
        _SIGN_CACHE_HITS += 1
        return cached
    _SIGN_CACHE_MISSES += 1
    signs = 1.0 - 2.0 * gold_sequence(c_init, length).astype(np.float64)
    if len(_SIGN_CACHE) < _CACHE_LIMIT:
        _SIGN_CACHE[key] = signs
    return signs


def descramble_llrs(llrs: np.ndarray, c_init: int) -> np.ndarray:
    """Flip LLR signs where the Gold sequence bit is 1.

    Accepts a 1-D LLR vector or a stacked ``(B, E)`` matrix whose rows
    share one ``c_init`` (broadcast over the last axis) — the batched
    PDCCH path descrambles all candidates of one search space at once.

    Layout: return (B, E) float64
    """
    arr = np.asarray(llrs, dtype=np.float64)
    return arr * descramble_signs(c_init, arr.shape[-1])


def sign_cache_stats() -> dict[str, int]:
    """Hit/miss counters for the descramble-sign cache (for tests)."""
    return {
        "hits": _SIGN_CACHE_HITS,
        "misses": _SIGN_CACHE_MISSES,
        "entries": len(_SIGN_CACHE),
    }


def clear_sequence_cache() -> None:
    """Drop all cached Gold sequences and descramble signs (for tests)."""
    global _SIGN_CACHE_HITS, _SIGN_CACHE_MISSES
    _SEQUENCE_CACHE.clear()
    _SIGN_CACHE.clear()
    _SIGN_CACHE_HITS = 0
    _SIGN_CACHE_MISSES = 0
