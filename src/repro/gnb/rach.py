"""The random access procedure (TS 38.321 section 5.1, paper section 3.1.2).

Four messages attach a UE to the cell:

1. MSG 1 - preamble on the PRACH (uplink; invisible to a DL-only sniffer)
2. MSG 2 - random access response: assigns the TC-RNTI
3. MSG 3 - RRC Setup Request on the PUSCH
4. MSG 4 - RRC Setup on the PDSCH, scheduled by a PDCCH DCI whose CRC is
   scrambled with the TC-RNTI

MSG 4 is the one NR-Scope must catch: its DCI reveals the RNTI (promoted
to C-RNTI immediately after) and its payload carries the UE-dedicated
configuration.  The FSM below produces MSG 4 events with realistic slot
timing; MSG 1-3 are tracked as state transitions so the procedure's
latency and RACH-occasion structure are faithful, without modelling the
uplink waveform the paper's tool never receives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.constants import FIRST_C_RNTI, LAST_C_RNTI
from repro.phy.prach import N_PREAMBLES


class RachError(ValueError):
    """Raised for invalid RACH configuration or state transitions."""


class RachState(Enum):
    """Progress of one UE through the four-message exchange."""

    WAITING_OCCASION = "waiting-msg1-occasion"
    MSG1_SENT = "msg1-sent"
    MSG2_SENT = "msg2-sent"
    MSG3_SENT = "msg3-sent"
    CONNECTED = "connected"


@dataclass
class RachAttempt:
    """One UE's in-flight random access attempt."""

    ue_id: int
    requested_slot: int
    state: RachState = RachState.WAITING_OCCASION
    tc_rnti: int | None = None
    next_action_slot: int = 0
    preamble: int | None = None
    collisions: int = 0


@dataclass(frozen=True)
class Msg4Event:
    """A MSG 4 transmission the gNB performs this slot."""

    ue_id: int
    tc_rnti: int
    slot_index: int


@dataclass
class RachProcedure:
    """gNB-side random access machine.

    ``occasion_period_slots`` spaces the PRACH occasions (from the SIB1
    ``prach-ConfigIndex``); the message turnaround delays default to the
    few-slot latencies real stacks exhibit.
    """

    occasion_period_slots: int = 10
    msg2_delay_slots: int = 2
    msg3_delay_slots: int = 3
    msg4_delay_slots: int = 2
    first_rnti: int = 0x4601
    max_backoff_slots: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.occasion_period_slots < 1:
            raise RachError("occasion period must be >= 1 slot")
        self._attempts: dict[int, RachAttempt] = {}
        self._next_rnti = self.first_rnti
        self._rng = np.random.default_rng(self.seed)
        self.completed: int = 0
        self.collisions: int = 0

    def allocate_rnti(self) -> int:
        """Next unused TC-RNTI (wraps within the C-RNTI range)."""
        rnti = self._next_rnti
        self._next_rnti += 1
        if self._next_rnti > LAST_C_RNTI:
            self._next_rnti = FIRST_C_RNTI
        return rnti

    def request_connection(self, ue_id: int, slot_index: int) -> None:
        """A UE wants in; it will transmit MSG 1 at the next occasion."""
        if ue_id in self._attempts:
            raise RachError(f"UE {ue_id} already has a RACH in flight")
        self._attempts[ue_id] = RachAttempt(ue_id=ue_id,
                                            requested_slot=slot_index)

    @property
    def in_flight(self) -> int:
        """Attempts not yet completed."""
        return len(self._attempts)

    def is_occasion(self, slot_index: int) -> bool:
        """True when this slot hosts a PRACH occasion."""
        return slot_index % self.occasion_period_slots == 0

    def step(self, slot_index: int) -> list[Msg4Event]:
        """Advance every attempt one slot; return MSG 4 events to send."""
        events: list[Msg4Event] = []
        finished: list[int] = []
        if self.is_occasion(slot_index):
            self._resolve_occasion(slot_index)
        for attempt in self._attempts.values():
            if attempt.state is RachState.WAITING_OCCASION:
                # Preamble transmission is handled per occasion in
                # _resolve_occasion (contention happens there).
                pass
            elif attempt.state is RachState.MSG1_SENT:
                if slot_index >= attempt.next_action_slot:
                    attempt.tc_rnti = self.allocate_rnti()
                    attempt.state = RachState.MSG2_SENT
                    attempt.next_action_slot = slot_index \
                        + self.msg3_delay_slots
            elif attempt.state is RachState.MSG2_SENT:
                if slot_index >= attempt.next_action_slot:
                    attempt.state = RachState.MSG3_SENT
                    attempt.next_action_slot = slot_index \
                        + self.msg4_delay_slots
            elif attempt.state is RachState.MSG3_SENT:
                if slot_index >= attempt.next_action_slot:
                    assert attempt.tc_rnti is not None
                    events.append(Msg4Event(ue_id=attempt.ue_id,
                                            tc_rnti=attempt.tc_rnti,
                                            slot_index=slot_index))
                    attempt.state = RachState.CONNECTED
                    finished.append(attempt.ue_id)
        for ue_id in finished:
            del self._attempts[ue_id]
            self.completed += 1
        return events

    def _resolve_occasion(self, slot_index: int) -> None:
        """One PRACH occasion: every waiting UE draws a preamble.

        Two UEs drawing the same preamble collide (their ZC sequences
        superpose indistinguishably); both back off a random number of
        slots and retry at a later occasion — real contention-based
        random access (38.321 section 5.1.5).
        """
        waiting = [a for a in self._attempts.values()
                   if a.state is RachState.WAITING_OCCASION
                   and a.next_action_slot <= slot_index]
        if not waiting:
            return
        draws: dict[int, list[RachAttempt]] = {}
        for attempt in waiting:
            preamble = int(self._rng.integers(0, N_PREAMBLES))
            attempt.preamble = preamble
            draws.setdefault(preamble, []).append(attempt)
        for preamble, contenders in draws.items():
            if len(contenders) == 1:
                attempt = contenders[0]
                attempt.state = RachState.MSG1_SENT
                attempt.next_action_slot = slot_index \
                    + self.msg2_delay_slots
            else:
                self.collisions += len(contenders)
                for attempt in contenders:
                    attempt.collisions += 1
                    backoff = int(self._rng.integers(
                        1, self.max_backoff_slots + 1))
                    attempt.next_action_slot = slot_index + backoff
