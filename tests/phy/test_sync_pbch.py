"""Tests for PSS/SSS synchronisation and the PBCH chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.pbch import PBCH_N_SYMBOLS, PbchError, decode_pbch, \
    encode_pbch
from repro.phy.sync import (
    FrameSynchronizer,
    MAX_CELL_ID,
    SYNC_SEQUENCE_LEN,
    SyncError,
    cell_id_to_components,
    components_to_cell_id,
    pss_sequence,
    render_ssb,
    sss_sequence,
)
from repro.rrc.messages import Mib


class TestSequences:
    def test_pss_is_bpsk_127(self):
        for n_id2 in range(3):
            seq = pss_sequence(n_id2)
            assert seq.size == SYNC_SEQUENCE_LEN
            assert set(np.unique(seq)) == {-1.0, 1.0}

    def test_pss_cross_correlation_low(self):
        for a in range(3):
            for b in range(3):
                corr = abs(np.dot(pss_sequence(a), pss_sequence(b))) / 127
                if a == b:
                    assert corr == pytest.approx(1.0)
                else:
                    assert corr < 0.1

    def test_sss_distinct_per_identity(self):
        seen = set()
        for n_id1 in (0, 1, 111, 112, 335):
            for n_id2 in range(3):
                seen.add(tuple(sss_sequence(n_id1, n_id2)))
        assert len(seen) == 15

    def test_identity_roundtrip(self):
        for cell_id in (0, 1, 2, 3, 500, MAX_CELL_ID):
            n_id1, n_id2 = cell_id_to_components(cell_id)
            assert components_to_cell_id(n_id1, n_id2) == cell_id

    def test_range_checks(self):
        with pytest.raises(SyncError):
            pss_sequence(3)
        with pytest.raises(SyncError):
            sss_sequence(336, 0)
        with pytest.raises(SyncError):
            cell_id_to_components(MAX_CELL_ID + 1)


class TestFrameSynchronizer:
    def test_clean_detection(self):
        sync = FrameSynchronizer()
        burst = render_ssb(cell_id=700, pad_before=250, pad_after=100)
        result = sync.search(burst.samples)
        assert result is not None
        assert result.cell_id == 700
        assert result.sample_offset == 250
        assert result.confident

    def test_detection_under_noise(self, rng):
        sync = FrameSynchronizer()
        hits = 0
        for _ in range(10):
            burst = render_ssb(cell_id=42, pad_before=400, pad_after=400)
            noise = rng.normal(0, np.sqrt(0.5), burst.samples.size) \
                + 1j * rng.normal(0, np.sqrt(0.5), burst.samples.size)
            result = sync.search(burst.samples + noise)  # 0 dB
            hits += result is not None and result.cell_id == 42
        assert hits >= 8

    def test_no_false_detection_on_noise(self, rng):
        sync = FrameSynchronizer()
        detections = 0
        for _ in range(10):
            noise = rng.normal(0, 1, 1500) + 1j * rng.normal(0, 1, 1500)
            detections += sync.search(noise) is not None
        assert detections == 0

    def test_short_buffer_rejected(self):
        with pytest.raises(SyncError):
            FrameSynchronizer().search(np.zeros(100, dtype=complex))

    def test_bad_threshold(self):
        with pytest.raises(SyncError):
            FrameSynchronizer(detection_threshold=1.5)

    @given(st.integers(0, MAX_CELL_ID))
    @settings(max_examples=15, deadline=None)
    def test_property_any_cell_id_detected(self, cell_id):
        burst = render_ssb(cell_id, pad_before=64, pad_after=64)
        result = FrameSynchronizer().search(burst.samples)
        assert result is not None and result.cell_id == cell_id


class TestPbch:
    def _payload(self):
        return Mib(sfn=321, scs_common_khz=30, ssb_subcarrier_offset=0,
                   dmrs_typea_position=2, coreset0_index=5,
                   search_space0_index=0).encode()

    def test_clean_roundtrip(self):
        payload = self._payload()
        symbols = encode_pbch(payload, cell_id=500)
        assert symbols.size == PBCH_N_SYMBOLS
        decoded = decode_pbch(symbols, payload.size, 500, noise_var=1e-4)
        assert np.array_equal(decoded, payload)

    def test_wrong_cell_id_rejected(self):
        payload = self._payload()
        symbols = encode_pbch(payload, cell_id=500)
        assert decode_pbch(symbols, payload.size, 501, 1e-4) is None

    def test_noise_roundtrip_at_low_snr(self, rng):
        # E=864 for ~57 bits is a very low-rate code: decodes well below
        # 0 dB, which is why MIB acquisition outranges the PDCCH.
        payload = self._payload()
        symbols = encode_pbch(payload, cell_id=3)
        noise_var = 10 ** (4 / 10)  # -4 dB SNR
        hits = 0
        for _ in range(10):
            noisy = symbols + rng.normal(0, np.sqrt(noise_var / 2),
                                         symbols.size) \
                + 1j * rng.normal(0, np.sqrt(noise_var / 2), symbols.size)
            decoded = decode_pbch(noisy, payload.size, 3, noise_var)
            hits += decoded is not None and np.array_equal(decoded,
                                                           payload)
        assert hits >= 8

    def test_garbage_never_passes_crc(self, rng):
        payload = self._payload()
        for _ in range(10):
            noise = (rng.normal(0, 1, PBCH_N_SYMBOLS)
                     + 1j * rng.normal(0, 1, PBCH_N_SYMBOLS))
            assert decode_pbch(noise, payload.size, 7, 1.0) is None

    def test_validation(self):
        with pytest.raises(PbchError):
            encode_pbch(np.zeros(0, dtype=np.uint8), 1)
        with pytest.raises(PbchError):
            encode_pbch(np.zeros(65, dtype=np.uint8), 1)
        with pytest.raises(PbchError):
            decode_pbch(np.zeros(10, dtype=complex), 33, 1, 0.1)
