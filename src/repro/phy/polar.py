"""Polar coding for the PDCCH (TS 38.212 sections 5.3.1 and 5.4.1).

The gNB protects every DCI with a CRC-attached polar code; NR-Scope runs
the inverse chain, so PDCCH decode failures in this reproduction come from
genuine successive-cancellation decoding errors under channel noise.

Substitution note (documented in DESIGN.md): the channel reliability order
is generated with the polarization-weight beta-expansion (beta = 2**0.25)
instead of embedding the 1024-entry table 5.3.1.2-1 verbatim.  The ordering
is near-identical in practice and plays the same role; encoder and decoder
share it, so the system is exactly self-consistent.  Rate matching uses
suffix shortening (E < N) or repetition (E > N), the two mechanisms the
standard applies in the regimes PDCCH operates in.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Maximum code size for the PDCCH (n_max = 9 in 38.212 section 7.3.3).
N_MAX_DL = 512
N_MIN = 32

#: Saturation magnitude for known-zero (shortened) bit LLRs.
_INF_LLR = 1e9


class PolarError(ValueError):
    """Raised for unsatisfiable code dimensions."""


@lru_cache(maxsize=None)
def reliability_order(n: int) -> tuple[int, ...]:
    """Channel indices of a length-``2**n`` polar code, least reliable first.

    Polarization-weight construction: index ``i`` with binary digits
    ``b_{n-1}..b_0`` gets weight ``sum_j b_j * 2**(j/4)``; sorting by weight
    ascending approximates 38.212 Table 5.3.1.2-1 (the universal sequence
    was itself derived from this family of constructions).
    """
    if not 0 <= n <= 10:
        raise PolarError(f"polar exponent out of range: {n}")
    size = 1 << n
    indices = np.arange(size)
    weights = np.zeros(size, dtype=np.float64)
    for j in range(n):
        weights += ((indices >> j) & 1) * (2.0 ** (j / 4.0))
    order = np.argsort(weights, kind="stable")
    return tuple(int(i) for i in order)


@dataclass(frozen=True)
class PolarCode:
    """A concrete (N, K, E) polar code with its frozen/info index sets."""

    n: int                      # N = 2**n
    block_len: int              # N
    info_len: int               # K (payload + CRC bits)
    rate_matched_len: int       # E (bits on the channel)
    info_indices: tuple[int, ...]
    shortened_outputs: tuple[int, ...]

    @property
    def code_rate(self) -> float:
        """K / E, the effective channel code rate."""
        return self.info_len / self.rate_matched_len


@lru_cache(maxsize=None)
def construct(info_len: int, rate_matched_len: int) -> PolarCode:
    """Choose N and the information set for a (K, E) PDCCH polar code."""
    if info_len <= 0:
        raise PolarError(f"K must be positive, got {info_len}")
    if rate_matched_len < info_len:
        raise PolarError(
            f"E={rate_matched_len} cannot carry K={info_len} info bits")
    n = N_MIN.bit_length() - 1
    while (1 << n) < min(rate_matched_len, N_MAX_DL) and (1 << n) < N_MAX_DL:
        n += 1
    # Ensure the mother code can hold K info bits even after shortening.
    while ((1 << n) - max(0, (1 << n) - rate_matched_len)) < info_len:
        n += 1
        if (1 << n) > N_MAX_DL:
            raise PolarError(
                f"K={info_len}, E={rate_matched_len} exceeds PDCCH polar"
                f" limits (N<=512)")
    block_len = 1 << n

    if rate_matched_len < block_len:
        shortened = tuple(range(rate_matched_len, block_len))
    else:
        shortened = ()
    forced_frozen = set(shortened)
    order = reliability_order(n)
    # Most reliable usable channels carry information.
    usable = [i for i in reversed(order) if i not in forced_frozen]
    if len(usable) < info_len:
        raise PolarError("not enough usable channels after shortening")
    info = tuple(sorted(usable[:info_len]))
    return PolarCode(n=n, block_len=block_len, info_len=info_len,
                     rate_matched_len=rate_matched_len,
                     info_indices=info, shortened_outputs=shortened)


def _transform(u: np.ndarray) -> np.ndarray:
    """Arikan transform ``x = u @ F^{(x)n}`` over GF(2), in place on a copy."""
    x = u.astype(np.uint8).copy()
    size = x.size
    stride = 1
    while stride < size:
        for start in range(0, size, 2 * stride):
            x[start:start + stride] ^= x[start + stride:start + 2 * stride]
        stride *= 2
    return x


def encode(info_bits: np.ndarray, code: PolarCode) -> np.ndarray:
    """Encode ``K`` info bits into ``E`` rate-matched coded bits."""
    bits = np.asarray(info_bits, dtype=np.uint8).ravel()
    if bits.size != code.info_len:
        raise PolarError(
            f"expected {code.info_len} info bits, got {bits.size}")
    u = np.zeros(code.block_len, dtype=np.uint8)
    u[list(code.info_indices)] = bits
    x = _transform(u)
    if code.rate_matched_len <= code.block_len:
        return x[:code.rate_matched_len].copy()
    reps = code.rate_matched_len - code.block_len
    return np.concatenate([x, x[:reps]])


def _llrs_to_mother(llrs: np.ndarray, code: PolarCode) -> np.ndarray:
    """Undo rate matching: fold repetitions, pin shortened bits to zero."""
    out = np.zeros(code.block_len, dtype=np.float64)
    base = min(code.rate_matched_len, code.block_len)
    out[:base] = llrs[:base]
    if code.rate_matched_len > code.block_len:
        extra = llrs[code.block_len:]
        out[:extra.size] += extra
    for idx in code.shortened_outputs:
        out[idx] = _INF_LLR
    return out


def _sc_decode(llrs: np.ndarray, frozen_mask: np.ndarray) -> np.ndarray:
    """Successive-cancellation decode; returns the estimated u vector.

    Positive LLR means bit 0.  Implemented iteratively over a binary tree
    flattened into per-stage arrays, which keeps it allocation-light for
    the N <= 512 blocks the PDCCH uses.
    """
    size = llrs.size
    n = size.bit_length() - 1
    # llr_store[s] holds the LLRs entering stage s (length N each);
    # bit_store[s] holds partial-sum bits leaving stage s.
    llr_store = [np.zeros(size, dtype=np.float64) for _ in range(n + 1)]
    bit_store = [np.zeros(size, dtype=np.uint8) for _ in range(n + 1)]
    llr_store[n][:] = llrs
    u_hat = np.zeros(size, dtype=np.uint8)
    # u bits are produced in natural order as leaves are visited
    # left-to-right; the buffer offset is position within the stage, not
    # the u index, so track the leaf count separately.
    next_u = [0]

    def recurse(stage: int, offset: int) -> None:
        if stage == 0:
            idx = next_u[0]
            next_u[0] += 1
            if frozen_mask[idx]:
                u_hat[idx] = 0
            else:
                u_hat[idx] = 0 if llr_store[0][offset] >= 0 else 1
            bit_store[0][offset] = u_hat[idx]
            return
        half = 1 << (stage - 1)
        top = llr_store[stage][offset:offset + half]
        bot = llr_store[stage][offset + half:offset + 2 * half]
        # f-node: min-sum combination.
        llr_store[stage - 1][offset:offset + half] = (
            np.sign(top) * np.sign(bot) * np.minimum(np.abs(top), np.abs(bot)))
        recurse(stage - 1, offset)
        left_bits = bit_store[stage - 1][offset:offset + half].copy()
        # g-node: conditioned on the left partial sums.
        llr_store[stage - 1][offset:offset + half] = (
            bot + (1.0 - 2.0 * left_bits) * top)
        recurse(stage - 1, offset)
        right_bits = bit_store[stage - 1][offset:offset + half]
        bit_store[stage][offset:offset + half] = left_bits ^ right_bits
        bit_store[stage][offset + half:offset + 2 * half] = right_bits

    recurse(n, 0)
    return u_hat


def decode(llrs: np.ndarray, code: PolarCode) -> np.ndarray:
    """Decode ``E`` channel LLRs back into ``K`` info bits (hard output)."""
    arr = np.asarray(llrs, dtype=float).ravel()
    if arr.size != code.rate_matched_len:
        raise PolarError(
            f"expected {code.rate_matched_len} LLRs, got {arr.size}")
    mother = _llrs_to_mother(arr, code)
    frozen = np.ones(code.block_len, dtype=bool)
    frozen[list(code.info_indices)] = False
    u_hat = _sc_decode(mother, frozen)
    return u_hat[list(code.info_indices)].astype(np.uint8)
