"""nrlint: domain-aware static analysis for the NR-Scope reproduction.

Generic linters can tell you a variable is unused; they cannot tell you
that a DCI field is packed 4 bits wide and unpacked 3, or that a slot
index is reduced mod 20 behind the numerology helpers' back.  This
package holds an AST-based analysis pass with rules that encode the
repo's 3GPP bit-contract and determinism invariants (paper section
3.2.1: one mis-sized field silently corrupts every downstream metric).

Run it as ``python -m repro.lint [--format text|json] [paths...]`` or
through the main CLI as ``python -m repro.cli lint``.

Rule catalogue (see each module under :mod:`repro.lint.rules`):

* **R001** magic 3GPP numeric literals outside the constants modules.
* **R002** bit-width contract symmetry between pack/encode and
  unpack/decode sides of every codec.
* **R003** float equality comparisons in hot PHY/radio paths.
* **R004** raw slot/frame modular arithmetic bypassing numerology.
* **R005** unseeded randomness or wall-clock reads in deterministic
  simulation code.

New rules are one file each: drop ``rNNN_name.py`` into
:mod:`repro.lint.rules` with a ``@register``-decorated :class:`Rule`
subclass and the registry discovers it.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import LintContext, LintEngine
from repro.lint.findings import Finding
from repro.lint.registry import Rule, iter_rules, register

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "LintEngine",
    "Rule",
    "iter_rules",
    "register",
]
