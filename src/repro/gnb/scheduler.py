"""MAC downlink/uplink scheduler for the simulated gNB.

Per TTI the scheduler decides which UEs transmit, on which PRBs, at what
MCS — exactly the decisions NR-Scope reverse-engineers from the PDCCH.
Two policies are provided:

* :class:`RoundRobinScheduler` - equal-opportunity PRB shares, like the
  srsRAN default the paper measures against.
* :class:`ProportionalFairScheduler` - classic PF metric (instantaneous
  rate over EWMA throughput), the common commercial choice.

Realistic constraints shape the output: PDCCH capacity (CCEs in the
dedicated CORESET) bounds how many UEs can be scheduled per slot, HARQ
retransmissions preempt new data, and the MCS follows the UE's CQI
report through the same 38.214 tables the sniffer uses.

The scheduler emits :class:`AllocationPlan` objects; the gNB resolves
each plan against the UE's HARQ entity (assigning harq_id/NDI/RV) and
only then builds the final DCI and grant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.phy.coreset import SearchSpace
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.grant import GrantConfig
from repro.phy.mcs_tables import McsEntry, mcs_for_spectral_efficiency
from repro.phy.pdcch import PdcchCandidate
from repro.phy.tbs import transport_block_size
from repro.ue.channel import cqi_to_efficiency


class SchedulerError(ValueError):
    """Raised for inconsistent scheduling requests."""


#: TDRA row used for regular data: symbols 2..13 (start 2, length 12),
#: leaving symbols 0-1 for the PDCCH region. Row 1 of the TDRA table.
DEFAULT_TIME_ALLOC = 1

#: Data symbols implied by DEFAULT_TIME_ALLOC (TDRA row 1 = 2:12).
DEFAULT_DATA_SYMBOLS = 12

#: Shorter TDRA rows used for small payloads, mirroring the allocation
#: variety real schedulers emit (and the paper's Appendix B shows):
#: (row index, data symbols).  Row 5 = 2:7, row 7 = 2:4.
SHORT_TIME_ALLOCS = ((7, 4), (5, 7))


@dataclass
class UeSchedulingContext:
    """Everything the scheduler needs to know about one connected UE."""

    ue_id: int
    rnti: int
    dl_backlog_bytes: int
    ul_backlog_bytes: int
    cqi: int
    #: NACKed transmissions awaiting a retransmission: (harq_id, downlink).
    pending_retx: list[tuple[int, bool]] = field(default_factory=list)
    #: Original transmission geometry per (harq_id, downlink):
    #: (n_prb, tdra row, data symbols) - a retransmission must carry the
    #: same transport block.
    retx_prb_sizes: dict[tuple[int, bool], tuple[int, int, int]] = \
        field(default_factory=dict)
    ewma_throughput_bps: float = 1.0
    #: Outer-loop link adaptation correction in dB (0 = pure CQI).
    olla_offset_db: float = 0.0


@dataclass(frozen=True)
class AllocationPlan:
    """One scheduling decision awaiting HARQ resolution."""

    ue_id: int
    rnti: int
    downlink: bool
    first_prb: int
    n_prb: int
    mcs: McsEntry
    candidate: PdcchCandidate
    is_retransmission: bool = False
    retx_harq_id: int | None = None
    time_alloc: int = DEFAULT_TIME_ALLOC
    n_symbols: int = DEFAULT_DATA_SYMBOLS


def build_dci(plan: AllocationPlan, bwp_n_prb: int, ndi: int, rv: int,
              harq_id: int) -> Dci:
    """Materialise the DCI for a resolved allocation plan."""
    riv = riv_encode(plan.first_prb, plan.n_prb, bwp_n_prb)
    fmt = DciFormat.DL_1_1 if plan.downlink else DciFormat.UL_0_1
    return Dci(format=fmt, rnti=plan.rnti, freq_alloc_riv=riv,
               time_alloc=plan.time_alloc, mcs=plan.mcs.index, ndi=ndi,
               rv=rv, harq_id=harq_id, dai=0, tpc=1)


class BaseScheduler:
    """Shared machinery: PRB sizing, MCS choice, CCE placement."""

    def __init__(self, grant_config: GrantConfig,
                 search_space: SearchSpace,
                 max_ues_per_slot: int = 8) -> None:
        if max_ues_per_slot < 1:
            raise SchedulerError("must schedule at least one UE per slot")
        self.grant_config = grant_config
        self.search_space = search_space
        self.max_ues_per_slot = max_ues_per_slot
        self._rr_offset = 0

    # -- policy hook -------------------------------------------------
    def _order(self, ues: list[UeSchedulingContext]) \
            -> list[UeSchedulingContext]:
        """Priority order for this slot; overridden per policy."""
        raise NotImplementedError

    # -- shared pieces -----------------------------------------------
    def _aggregation_level(self, cqi: int) -> int:
        """Pick an AL by link quality: poor channels get more coding."""
        if cqi >= 10:
            return 2
        if cqi >= 6:
            return 4
        return 8

    def _mcs_for(self, cqi: int, olla_offset_db: float = 0.0) -> McsEntry:
        """Link adaptation: CQI -> spectral efficiency -> MCS row.

        The OLLA offset shifts the effective SINR implied by the CQI
        before the table lookup: positive offsets push toward higher
        MCS, negative ones back off after NACK streaks.
        """
        efficiency = cqi_to_efficiency(max(cqi, 1))
        if olla_offset_db:
            sinr = (2.0 ** efficiency - 1.0) * 10.0 ** (olla_offset_db
                                                        / 10.0)
            efficiency = math.log2(1.0 + max(sinr, 1e-9))
        return mcs_for_spectral_efficiency(efficiency,
                                           self.grant_config.mcs_table)

    def _tbs_bits(self, n_prb: int, n_symbols: int,
                  mcs: McsEntry) -> int:
        return transport_block_size(
            n_prb, n_symbols, mcs,
            n_layers=self.grant_config.n_layers,
            n_dmrs_per_prb=self.grant_config.n_dmrs_per_prb,
            n_oh_per_prb=self.grant_config.xoverhead_res).tbs_bits

    def _prbs_for_bytes(self, backlog_bytes: int, mcs: McsEntry,
                        max_prb: int,
                        n_symbols: int = DEFAULT_DATA_SYMBOLS) -> int:
        """Smallest PRB count whose TBS covers the backlog, capped."""
        target_bits = max(backlog_bytes, 1) * 8
        low, high = 1, max(1, max_prb)
        best = high
        # TBS is monotone in PRBs; binary search the smallest cover.
        while low <= high:
            mid = (low + high) // 2
            if self._tbs_bits(mid, n_symbols, mcs) >= target_bits:
                best = mid
                high = mid - 1
            else:
                low = mid + 1
        return min(best, max_prb)

    def _time_alloc_for(self, backlog_bytes: int,
                        mcs: McsEntry) -> tuple[int, int]:
        """(TDRA row, data symbols) sized to the payload.

        Small payloads ride short allocations, freeing the remaining
        symbols — the variety a sniffer's TDRA table must handle.
        """
        target_bits = max(backlog_bytes, 1) * 8
        for row, n_symbols in SHORT_TIME_ALLOCS:
            # Would a single PRB at this length already cover it?
            if self._tbs_bits(1, n_symbols, mcs) >= target_bits:
                return row, n_symbols
        return DEFAULT_TIME_ALLOC, DEFAULT_DATA_SYMBOLS

    def _place_pdcch(self, rnti: int, slot_index: int, level: int,
                     used_cces: set[int]) -> PdcchCandidate | None:
        """First free candidate of the UE's search space at this level.

        Falls back to other aggregation levels before giving up, the way
        real schedulers retry; returns None when the CORESET is full
        (that UE simply waits a slot).
        """
        levels = [level] + [lv for lv in (2, 4, 8, 1) if lv != level]
        for lv in levels:
            if self.search_space.candidates_per_level.get(lv, 0) == 0:
                continue
            for start in self.search_space.candidate_cces(lv, slot_index,
                                                          rnti):
                cces = set(range(start, start + lv))
                if not cces & used_cces:
                    used_cces |= cces
                    return PdcchCandidate(first_cce=start,
                                          aggregation_level=lv)
        return None

    # -- main entry ---------------------------------------------------
    def schedule(self, slot_index: int, ues: list[UeSchedulingContext],
                 schedule_uplink: bool = True) -> list[AllocationPlan]:
        """Produce this slot's allocation plans."""
        plans: list[AllocationPlan] = []
        used_cces: set[int] = set()
        n_prb_total = self.grant_config.bwp_n_prb
        next_prb = 0

        candidates = self._order([u for u in ues
                                  if u.dl_backlog_bytes > 0
                                  or u.ul_backlog_bytes > 0
                                  or u.pending_retx])
        scheduled = 0
        for ue in candidates:
            if scheduled >= self.max_ues_per_slot or next_prb >= n_prb_total:
                break
            mcs = self._mcs_for(ue.cqi, ue.olla_offset_db)
            level = self._aggregation_level(ue.cqi)
            made_one = False

            # Retransmissions first: same geometry, same process.
            for harq_id, downlink in ue.pending_retx:
                if next_prb >= n_prb_total:
                    break
                orig_prb, orig_row, orig_symbols = ue.retx_prb_sizes.get(
                    (harq_id, downlink),
                    (4, DEFAULT_TIME_ALLOC, DEFAULT_DATA_SYMBOLS))
                n_prb = min(orig_prb, n_prb_total - next_prb)
                candidate = self._place_pdcch(ue.rnti, slot_index, level,
                                              used_cces)
                if candidate is None:
                    break
                plans.append(AllocationPlan(
                    ue_id=ue.ue_id, rnti=ue.rnti, downlink=downlink,
                    first_prb=next_prb if downlink else 0, n_prb=n_prb,
                    mcs=mcs, candidate=candidate, is_retransmission=True,
                    retx_harq_id=harq_id, time_alloc=orig_row,
                    n_symbols=orig_symbols))
                if downlink:
                    next_prb += n_prb
                made_one = True

            # New downlink data (short TDRA rows for small payloads).
            if ue.dl_backlog_bytes > 0 and next_prb < n_prb_total:
                candidate = self._place_pdcch(ue.rnti, slot_index, level,
                                              used_cces)
                if candidate is not None:
                    time_alloc, n_symbols = self._time_alloc_for(
                        ue.dl_backlog_bytes, mcs)
                    n_prb = self._prbs_for_bytes(
                        ue.dl_backlog_bytes, mcs,
                        n_prb_total - next_prb, n_symbols=n_symbols)
                    plans.append(AllocationPlan(
                        ue_id=ue.ue_id, rnti=ue.rnti, downlink=True,
                        first_prb=next_prb, n_prb=n_prb, mcs=mcs,
                        candidate=candidate, time_alloc=time_alloc,
                        n_symbols=n_symbols))
                    next_prb += n_prb
                    made_one = True

            # Uplink grant (also carried on the downlink PDCCH).
            if schedule_uplink and ue.ul_backlog_bytes > 0:
                candidate = self._place_pdcch(ue.rnti, slot_index, level,
                                              used_cces)
                if candidate is not None:
                    n_prb = self._prbs_for_bytes(ue.ul_backlog_bytes, mcs,
                                                 n_prb_total)
                    plans.append(AllocationPlan(
                        ue_id=ue.ue_id, rnti=ue.rnti, downlink=False,
                        first_prb=0, n_prb=n_prb, mcs=mcs,
                        candidate=candidate))
                    made_one = True

            if made_one:
                scheduled += 1
        return plans


class RoundRobinScheduler(BaseScheduler):
    """Rotates priority across UEs slot by slot."""

    def _order(self, ues: list[UeSchedulingContext]) \
            -> list[UeSchedulingContext]:
        if not ues:
            return []
        ordered = sorted(ues, key=lambda u: u.ue_id)
        self._rr_offset = (self._rr_offset + 1) % len(ordered)
        return ordered[self._rr_offset:] + ordered[:self._rr_offset]


class ProportionalFairScheduler(BaseScheduler):
    """Classic PF: rank by achievable rate over historical throughput."""

    def _order(self, ues: list[UeSchedulingContext]) \
            -> list[UeSchedulingContext]:
        def metric(ue: UeSchedulingContext) -> float:
            rate = cqi_to_efficiency(max(ue.cqi, 1))
            return rate / max(ue.ewma_throughput_bps, 1.0)

        return sorted(ues, key=metric, reverse=True)
