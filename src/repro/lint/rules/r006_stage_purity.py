"""R006: parallel stage entry points must be transitively pure.

The staged SlotRuntime's determinism contract (inline == threaded,
byte-identical) holds only because the one parallel stage — per-UE DCI
decode — is pure given the captured grid and the tracked-table snapshot.
Backbone stages own all RNG draws and tracked-table mutation; the
parallel stage may use *counter-keyed* RNG only, because keyed draws are
order- and thread-free.

This rule checks that contract over the whole scan: every function
transitively reachable from a parallel-stage root must be free of
``mutates-tracked`` / ``rng`` / ``io`` / ``clock`` effects (see
:mod:`repro.lint.effects`).  Roots are detected two ways:

* a function decorated ``@parallel_stage`` (the marker exported by
  :mod:`repro.core.sanitizer`);
* the ``fn`` argument of any ``Stage(..., parallel=True)`` construction.

Findings are anchored at the root and carry the witness chain down to
the seeding call (``_stage_dci -> decode_slot -> 'self._rng.random()'
(core/dci_decoder.py:103)``) so the violation is actionable without
re-deriving the closure by hand.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.effects import FORBIDDEN_IN_PARALLEL
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


@register
class StagePurityRule(Rule):
    """Flag impure closures under parallel-stage entry points."""

    rule_id = "R006"
    title = "parallel stage reaches impure code (flow-aware)"
    needs_program = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        program = ctx.program
        if program is None:  # pragma: no cover - engine always supplies it
            return
        for root in program.stage_roots:
            if root.rel != ctx.rel:
                continue
            effects = program.effects.effects_of(root.qualname)
            for effect in FORBIDDEN_IN_PARALLEL:
                if effect not in effects:
                    continue
                witness = program.effects.describe(root.qualname, effect)
                short = root.qualname.split("::", 1)[-1]
                snippet = ""
                if 1 <= root.lineno <= len(ctx.lines):
                    snippet = ctx.lines[root.lineno - 1].strip()
                yield Finding(
                    rule_id=self.rule_id,
                    message=(
                        f"parallel stage '{short}' reaches "
                        f"'{effect}' code: {witness} — the parallel "
                        f"DCI-decode closure may only use counter-keyed "
                        f"RNG; move this effect to a backbone stage"),
                    path=str(ctx.path), rel=ctx.rel,
                    line=root.lineno, col=0, snippet=snippet)
