"""Sliding-window per-UE throughput estimation (paper section 3.2.2).

"We record the TBS for every UE in each TTI, maintaining a sliding
window to calculate the bit rate for each UE."  The estimator here is
that window: TBS samples enter time-stamped, old samples fall off, and
the rate is total bits over the window span.  Retransmissions are
excluded through the HARQ tracker's verdict so a block's bits count
exactly once, which is what makes the estimate comparable to the bytes
tcpdump sees on the phone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


class ThroughputError(ValueError):
    """Raised for invalid estimator parameters."""


@dataclass(frozen=True)
class TbsSample:
    """One TTI's transport block for one UE."""

    time_s: float
    tbs_bits: int


class SlidingWindowEstimator:
    """Bit-rate estimate over a trailing time window."""

    def __init__(self, window_s: float = 0.2) -> None:
        if window_s <= 0:
            raise ThroughputError(f"window must be positive: {window_s}")
        self.window_s = window_s
        self._samples: deque[TbsSample] = deque()
        self._sum_bits = 0
        self.total_bits = 0

    def add(self, time_s: float, tbs_bits: int) -> None:
        """Record a new-data transport block."""
        if tbs_bits < 0:
            raise ThroughputError(f"negative TBS: {tbs_bits}")
        self._samples.append(TbsSample(time_s, tbs_bits))
        self._sum_bits += tbs_bits
        self.total_bits += tbs_bits
        self._evict(time_s)

    def _evict(self, now_s: float) -> None:
        cutoff = now_s - self.window_s
        while self._samples and self._samples[0].time_s <= cutoff:
            self._sum_bits -= self._samples.popleft().tbs_bits

    def rate_bps(self, now_s: float) -> float:
        """Current estimate: window bits over window duration."""
        self._evict(now_s)
        return self._sum_bits / self.window_s

    def average_rate_bps(self, elapsed_s: float) -> float:
        """Whole-session average (used for headline error numbers)."""
        if elapsed_s <= 0:
            raise ThroughputError(f"elapsed must be positive: {elapsed_s}")
        return self.total_bits / elapsed_s


class ThroughputBank:
    """One estimator per (RNTI, direction)."""

    def __init__(self, window_s: float = 0.2) -> None:
        self.window_s = window_s
        self._estimators: dict[tuple[int, bool], SlidingWindowEstimator] = {}

    def estimator(self, rnti: int,
                  downlink: bool = True) -> SlidingWindowEstimator:
        """The (lazily created) estimator for one UE/direction."""
        key = (rnti, downlink)
        if key not in self._estimators:
            self._estimators[key] = SlidingWindowEstimator(self.window_s)
        return self._estimators[key]

    def add(self, rnti: int, downlink: bool, time_s: float,
            tbs_bits: int) -> None:
        """Record one transport block."""
        self.estimator(rnti, downlink).add(time_s, tbs_bits)

    def rate_bps(self, rnti: int, now_s: float,
                 downlink: bool = True) -> float:
        """Current rate estimate for one UE."""
        return self.estimator(rnti, downlink).rate_bps(now_s)

    def forget(self, rnti: int) -> None:
        """Drop estimators for a departed UE."""
        for key in [k for k in self._estimators if k[0] == rnti]:
            del self._estimators[key]
