"""Per-UE wireless channel models: fading, CQI reporting and BLER.

The paper's Fig 15 experiment drives 64 emulated UEs through AWGN,
Pedestrian, Vehicle and Urban channels and observes how the gNB's MCS
choice and the retransmission ratio respond.  This module provides those
channels: each produces a per-slot instantaneous SNR around a configured
average, the UE converts it to a CQI report, and a logistic BLER curve
decides whether each transport block would have decoded.

Fading uses a first-order Gauss-Markov complex gain whose correlation
follows the model's Doppler frequency — slow ripple for pedestrians,
fast variation for vehicles, deep frequent fades for dense urban.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.phy.mcs_tables import McsEntry


class ChannelError(ValueError):
    """Raised for unknown channel profiles or bad parameters."""


@dataclass(frozen=True)
class ChannelProfile:
    """Statistical parameters of one named channel model."""

    name: str
    doppler_hz: float          # fading rate
    fading_sigma_db: float     # spread of the fading distribution
    mean_offset_db: float      # average SNR penalty vs the link budget

    def correlation(self, slot_duration_s: float) -> float:
        """Slot-to-slot correlation of the fading process.

        A Jakes-spectrum process decorrelates on the scale of the
        coherence time 1/doppler; the Gauss-Markov equivalent is
        ``rho = exp(-2 pi fd Ts)`` clipped to [0, 1).
        """
        if self.doppler_hz <= 0:
            return 1.0
        rho = math.exp(-2.0 * math.pi * self.doppler_hz * slot_duration_s)
        return min(max(rho, 0.0), 0.999999)


#: The five channel conditions of the paper's Fig 15.
PROFILES = {
    "normal": ChannelProfile("normal", doppler_hz=0.5, fading_sigma_db=0.8,
                             mean_offset_db=0.0),
    "awgn": ChannelProfile("awgn", doppler_hz=0.0, fading_sigma_db=0.0,
                           mean_offset_db=0.0),
    "pedestrian": ChannelProfile("pedestrian", doppler_hz=5.0,
                                 fading_sigma_db=4.0, mean_offset_db=3.0),
    "vehicle": ChannelProfile("vehicle", doppler_hz=70.0,
                              fading_sigma_db=6.0, mean_offset_db=6.0),
    "urban": ChannelProfile("urban", doppler_hz=30.0, fading_sigma_db=8.0,
                            mean_offset_db=9.0),
}


class FadingChannel:
    """A stateful per-UE channel producing instantaneous SNR per slot."""

    def __init__(self, profile: str | ChannelProfile, mean_snr_db: float,
                 slot_duration_s: float, seed: int = 0) -> None:
        if isinstance(profile, str):
            if profile not in PROFILES:
                raise ChannelError(f"unknown channel profile: {profile!r}")
            profile = PROFILES[profile]
        self.profile = profile
        self.mean_snr_db = mean_snr_db
        self._rho = profile.correlation(slot_duration_s)
        self._rng = np.random.default_rng(seed)
        # Complex Gauss-Markov state with unit variance.
        self._gain = (self._rng.normal() + 1j * self._rng.normal()) \
            / math.sqrt(2.0)

    def step(self) -> float:
        """Advance one slot; return the instantaneous SNR in dB."""
        if self.profile.fading_sigma_db == 0.0:
            return self.mean_snr_db - self.profile.mean_offset_db
        rho = self._rho
        innovation = (self._rng.normal() + 1j * self._rng.normal()) \
            / math.sqrt(2.0)
        self._gain = rho * self._gain + math.sqrt(1.0 - rho * rho) \
            * innovation
        # |gain|^2 is exponential(1); its dB value has the Rayleigh-fading
        # distribution scaled into the profile's sigma.
        fade_db = 10.0 * math.log10(max(abs(self._gain) ** 2, 1e-6))
        fade_db *= self.profile.fading_sigma_db / 5.57  # match sigma
        return self.mean_snr_db - self.profile.mean_offset_db + fade_db


#: CQI table: index i usable when SNR >= threshold[i] (dB).  Thresholds
#: follow the standard's ~1.9 dB per CQI step spanning -6.7..22 dB.
CQI_THRESHOLDS_DB = tuple(-6.7 + 1.95 * i for i in range(15))

#: Spectral efficiency per CQI (38.214 Table 5.2.2.1-2, abridged shape).
CQI_EFFICIENCY = (0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
                  1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152,
                  5.5547)


def snr_to_cqi(snr_db: float) -> int:
    """CQI report (1-15) for an instantaneous SNR; 0 means out of range."""
    cqi = 0
    for index, threshold in enumerate(CQI_THRESHOLDS_DB):
        if snr_db >= threshold:
            cqi = index + 1
    return cqi


def cqi_to_efficiency(cqi: int) -> float:
    """Spectral efficiency target for a CQI report."""
    if not 0 <= cqi <= 15:
        raise ChannelError(f"CQI out of range: {cqi}")
    if cqi == 0:
        return 0.0
    return CQI_EFFICIENCY[cqi - 1]


def required_snr_db(mcs: McsEntry, margin_db: float = 1.0) -> float:
    """SNR needed to decode an MCS at the ~10% BLER operating point.

    Shannon-gap approximation: ``10 log10(2**SE - 1)`` plus an
    implementation margin.
    """
    efficiency = mcs.spectral_efficiency
    return 10.0 * math.log10(2.0 ** efficiency - 1.0) + margin_db


def block_error_probability(snr_db: float, mcs: McsEntry,
                            slope_db: float = 1.0) -> float:
    """Logistic BLER curve around the MCS's required SNR.

    At ``required_snr`` the BLER is 50%; 2-3 dB above it collapses toward
    zero, matching the waterfall behaviour of LDPC-coded PDSCH.
    """
    delta = snr_db - required_snr_db(mcs)
    return 1.0 / (1.0 + math.exp(delta / max(slope_db, 1e-6) * 2.2))


def transport_block_survives(snr_db: float, mcs: McsEntry,
                             rng: np.random.Generator,
                             slope_db: float = 1.0) -> bool:
    """Bernoulli draw: did the UE decode this transport block?"""
    return bool(rng.random() >= block_error_probability(snr_db, mcs,
                                                        slope_db))
