"""Top-level simulation driver: cell + UEs + radio medium + observers.

``Simulation`` is the stand-in for the paper's lab: it owns one gNB, a
set of UEs (fixed or come-and-go), and the radio medium, advances the
slot clock, and hands every :class:`~repro.gnb.gnb.SlotOutput` to
registered observers.  NR-Scope attaches as an observer — passively, the
way the real tool's USRP overhears the air interface.

Typical use::

    sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=1)
    scope = NRScope.attach(sim)
    sim.run(seconds=2.0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gnb.cell_config import CellProfile
from repro.gnb.gnb import GNodeB, SlotOutput
from repro.phy.numerology import SlotClock
from repro.radio.medium import Link, Position, RadioMedium, lab_medium
from repro.ue.channel import FadingChannel
from repro.ue.mobility import scenario as mobility_scenario
from repro.ue.population import Session
from repro.ue.traffic import BulkDownload, ConstantBitRate, OnOffTraffic, \
    PoissonPackets, TrafficBuffer, TrafficModel, VideoStream
from repro.ue.ue import UserEquipment


class SimulationError(ValueError):
    """Raised for inconsistent simulation setups."""


SlotObserver = Callable[[SlotOutput], None]

#: Traffic kinds the default "mixed" factory cycles through — videos and
#: file downloads, the workloads of the paper's section 5.2.2.
TRAFFIC_KINDS = ("video", "bulk")


def make_traffic(kind: str, slot_duration_s: float, seed: int,
                 rate_bps: float = 4e6) -> TrafficModel:
    """Build a downlink traffic model by name.

    ``mixed`` resolves to one of the four concrete kinds by seed, giving
    heterogeneous workloads like the paper's video/download mix.
    """
    if kind == "mixed":
        kind = TRAFFIC_KINDS[seed % len(TRAFFIC_KINDS)]
    if kind == "video":
        return VideoStream(rate_bps=rate_bps, slot_duration_s=slot_duration_s,
                           seed=seed)
    if kind == "bulk":
        return BulkDownload(rate_cap_bps=rate_bps * 2,
                            slot_duration_s=slot_duration_s)
    if kind == "cbr":
        return ConstantBitRate(rate_bps=rate_bps,
                               slot_duration_s=slot_duration_s)
    if kind == "poisson":
        return PoissonPackets(packets_per_second=rate_bps / (1400 * 8),
                              packet_bytes=1400,
                              slot_duration_s=slot_duration_s, seed=seed)
    if kind == "onoff":
        inner = ConstantBitRate(rate_bps=rate_bps,
                                slot_duration_s=slot_duration_s)
        return OnOffTraffic(inner=inner, slot_duration_s=slot_duration_s,
                            seed=seed)
    raise SimulationError(f"unknown traffic kind: {kind!r}")


@dataclass
class _ScheduledSession:
    session: Session
    ue: UserEquipment
    admitted: bool = False


class Simulation:
    """One cell, its UEs and the slot loop."""

    def __init__(self, profile: CellProfile, gnb: GNodeB,
                 medium: RadioMedium, seed: int = 0) -> None:
        self.profile = profile
        self.gnb = gnb
        self.medium = medium
        self.seed = seed
        self.clock = SlotClock(0, 0, profile.scs_khz)
        self._observers: list[SlotObserver] = []
        self._observer_flushes: list[Callable[[], None]] = []
        self._sessions: list[_ScheduledSession] = []
        self._rng = np.random.default_rng(seed)
        self.slots_run = 0

    # -------------------------------------------------------- factory
    @classmethod
    def build(cls, profile: CellProfile, n_ues: int = 1, seed: int = 0,
              traffic: str = "mixed", channel: str = "normal",
              mobility: str = "static", scheduler: str = "rr",
              fidelity: str = "message", ue_snr_db: float = 22.0,
              rate_bps: float = 4e6, ul_fraction: float = 0.2,
              max_ues_per_slot: int = 8,
              olla_target_bler: float | None = None) -> "Simulation":
        """Assemble a lab-style simulation with ``n_ues`` pre-admitted UEs."""
        if n_ues < 0:
            raise SimulationError(f"negative UE count: {n_ues}")
        gnb = GNodeB(profile, scheduler=scheduler, seed=seed,
                     fidelity=fidelity, max_ues_per_slot=max_ues_per_slot,
                     olla_target_bler=olla_target_bler)
        sim = cls(profile, gnb, lab_medium(), seed=seed)
        for index in range(n_ues):
            ue = sim.make_ue(ue_id=index, traffic=traffic, channel=channel,
                             mobility=mobility, mean_snr_db=ue_snr_db,
                             rate_bps=rate_bps, ul_fraction=ul_fraction)
            gnb.add_ue(ue, slot_index=0)
        return sim

    def make_ue(self, ue_id: int, traffic: str = "mixed",
                channel: str = "normal", mobility: str = "static",
                mean_snr_db: float = 22.0, rate_bps: float = 4e6,
                ul_fraction: float = 0.2,
                arrival_time_s: float = 0.0) -> UserEquipment:
        """Construct a UE wired to this simulation's numerology."""
        slot_s = self.profile.slot_duration_s
        seed = int(self._rng.integers(0, 2**31)) ^ ue_id
        dl_model = make_traffic(traffic, slot_s, seed, rate_bps)
        ul_model = make_traffic("poisson", slot_s, seed + 1,
                                max(rate_bps * ul_fraction, 1.0))
        fading = FadingChannel(channel, mean_snr_db, slot_s, seed=seed + 2)
        mobility_model = mobility_scenario(mobility, slot_s, seed=seed + 3)
        return UserEquipment(ue_id=ue_id,
                             dl_buffer=TrafficBuffer(dl_model),
                             ul_buffer=TrafficBuffer(ul_model),
                             channel=fading, mobility=mobility_model,
                             arrival_time_s=arrival_time_s)

    # ------------------------------------------------------ observers
    def add_observer(self, observer: SlotObserver,
                     flush: Callable[[], None] | None = None) -> None:
        """Register a per-slot callback (e.g. NR-Scope's receiver).

        ``flush`` is called when a run finishes, so observers that
        process slots asynchronously (a scope on a threaded runtime)
        can barrier before their telemetry is read.
        """
        self._observers.append(observer)
        if flush is not None:
            self._observer_flushes.append(flush)

    def flush_observers(self) -> None:
        """Barrier on every observer's in-flight slot processing."""
        for flush in self._observer_flushes:
            flush()

    # ----------------------------------------------------- population
    def schedule_sessions(self, sessions: list[Session],
                          traffic: str = "onoff",
                          channel: str = "pedestrian",
                          mean_snr_db: float = 18.0,
                          rate_bps: float = 2e6) -> None:
        """Admit a come-and-go population (paper section 5.3.1).

        Each session's UE is added at its arrival time and removed at its
        departure time as the slot loop passes them.
        """
        for session in sessions:
            ue = self.make_ue(ue_id=session.ue_id, traffic=traffic,
                              channel=channel, mean_snr_db=mean_snr_db,
                              rate_bps=rate_bps,
                              arrival_time_s=session.arrival_s)
            self._sessions.append(_ScheduledSession(session=session, ue=ue))

    def _admit_and_release(self, now_s: float, slot_index: int) -> None:
        for entry in self._sessions:
            if not entry.admitted and entry.session.arrival_s <= now_s:
                self.gnb.add_ue(entry.ue, slot_index=slot_index)
                entry.admitted = True
            elif entry.admitted and entry.ue.departure_time_s is None \
                    and entry.session.departure_s <= now_s:
                self.gnb.remove_ue(entry.ue.ue_id, time_s=now_s)

    # ------------------------------------------------------ execution
    def step(self) -> SlotOutput:
        """Advance exactly one TTI."""
        now_s = self.clock.time_s
        if self._sessions:
            self._admit_and_release(now_s, self.clock.index)
        output = self.gnb.step(self.clock)
        for observer in self._observers:
            observer(output)
        self.clock = self.clock.advance(1)
        self.slots_run += 1
        return output

    def run_slots(self, n_slots: int) -> None:
        """Advance ``n_slots`` TTIs."""
        if n_slots < 0:
            raise SimulationError(f"negative slot count: {n_slots}")
        for _ in range(n_slots):
            self.step()

    def run(self, seconds: float) -> None:
        """Advance the simulation by wall-clock ``seconds`` of air time."""
        if seconds < 0:
            raise SimulationError(f"negative duration: {seconds}")
        self.run_slots(int(round(seconds / self.profile.slot_duration_s)))
        self.flush_observers()

    @property
    def now_s(self) -> float:
        """Current simulated time."""
        return self.clock.time_s

    # -------------------------------------------------- checkpointing
    def checkpoint_state(self) -> dict:
        """Everything needed to resume this cell after a restart.

        The dict holds *live* references (the gNB with its tracked UEs,
        the scheduled-session list, the RNG) — serialise it before
        stepping the simulation again.  Observers are deliberately
        absent: a restored simulation starts with none, and the scope
        re-registers itself on attach.
        """
        return {"profile": self.profile, "gnb": self.gnb,
                "medium": self.medium, "seed": self.seed,
                "clock": self.clock, "sessions": self._sessions,
                "rng": self._rng, "slots_run": self.slots_run}

    @classmethod
    def from_state(cls, state: dict) -> "Simulation":
        """Rebuild a mid-run simulation from :meth:`checkpoint_state`."""
        sim = cls(state["profile"], state["gnb"], state["medium"],
                  seed=state["seed"])
        sim.clock = state["clock"]
        sim._sessions = state["sessions"]
        sim._rng = state["rng"]
        sim.slots_run = state["slots_run"]
        return sim

    def sniffer_link(self, position: Position | None = None,
                     snr_db: float | None = None) -> Link:
        """Resolve the sniffer's receive link.

        Explicit ``snr_db`` wins; otherwise the medium's budget at
        ``position`` (defaulting to a bench position near the gNB).
        """
        if snr_db is not None:
            return Link(snr_db=snr_db)
        where = position or Position(self.medium.gnb_position.x + 1.0,
                                     self.medium.gnb_position.y)
        return self.medium.link_to(where)
