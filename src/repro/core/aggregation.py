"""Packet aggregation analysis (paper Appendix D, Fig 16d).

The RAN batches IP packets into transport blocks: one TTI can carry many
packets that arrive at the UE "at nearly the same time", defeating
inter-packet-gap bandwidth estimators.  NR-Scope measures the effect by
dividing each TTI's TBS by the flow's packet size.
"""

from __future__ import annotations

from dataclasses import dataclass


class AggregationError(ValueError):
    """Raised for invalid aggregation parameters."""


@dataclass(frozen=True)
class AggregationSample:
    """Packets-per-TTI estimate for one decoded transport block."""

    time_s: float
    rnti: int
    tbs_bits: int
    packets: float


class PacketAggregationAnalyzer:
    """Estimates packets per TTI from decoded TBS values."""

    def __init__(self, packet_bytes: int = 1400) -> None:
        if packet_bytes <= 0:
            raise AggregationError(
                f"packet size must be positive: {packet_bytes}")
        self.packet_bytes = packet_bytes
        self.samples: list[AggregationSample] = []

    def observe(self, time_s: float, rnti: int, tbs_bits: int) -> float:
        """Record one transport block; returns its packets-per-TTI."""
        if tbs_bits < 0:
            raise AggregationError(f"negative TBS: {tbs_bits}")
        packets = tbs_bits / (self.packet_bytes * 8.0)
        self.samples.append(AggregationSample(time_s=time_s, rnti=rnti,
                                              tbs_bits=tbs_bits,
                                              packets=packets))
        return packets

    def packets_per_tti(self, rnti: int | None = None) -> list[float]:
        """All packets-per-TTI samples, optionally for one UE."""
        return [s.packets for s in self.samples
                if rnti is None or s.rnti == rnti]

    def cdf(self, rnti: int | None = None) \
            -> list[tuple[float, float]]:
        """(packets, cumulative fraction) points — Fig 16d's axes."""
        values = sorted(self.packets_per_tti(rnti))
        n = len(values)
        if n == 0:
            return []
        return [(v, (i + 1) / n) for i, v in enumerate(values)]
