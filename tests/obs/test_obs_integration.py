"""End-to-end contracts of the observability bus on real sessions.

The acceptance criteria of the bus, as tests:

* a disabled-bus session produces a byte-identical TelemetryLog to an
  enabled one (observation does not perturb the measurement);
* inline and process-executor sessions emit the identical event
  sequence (durations aside) — worker-side misses ride the job wire;
* the stream reconstructs ScopeCounters / RuntimeStats totals, and
  ``obs topn`` reproduces the session's miss/drop numbers exactly;
* nrsan violations surface as structured ``nrsan.violation`` events.
"""

import pytest

from repro import NRScope, Simulation, SRSRAN_PROFILE
from repro.core.sanitizer import Sanitizer, SanitizerViolation
from repro.obs import OBS_NOOP, ObsContext, RingReporter, \
    validate_events
from repro.obs.topn import cluster_failures


def run_session(seconds=0.5, n_ues=2, snr_db=20.0, seed=5,
                obs=None, **scope_kwargs):
    sim = Simulation.build(SRSRAN_PROFILE, n_ues=n_ues, seed=seed)
    scope = NRScope.attach(sim, snr_db=snr_db, obs=obs, **scope_kwargs)
    sim.run(seconds=seconds)
    scope.close()
    return sim, scope


def strip_volatile(events):
    """Events minus the fields that legitimately differ across
    executors: wall-clock durations and the session.start executor
    label itself."""
    stripped = []
    for event in events:
        event = dict(event)
        event.pop("duration_us", None)
        event.pop("executor", None)
        stripped.append(event)
    return stripped


class TestNonPerturbation:
    def test_disabled_session_defaults_to_the_singleton(self):
        _, scope = run_session(seconds=0.2)
        assert scope._obs is OBS_NOOP

    def test_enabled_bus_leaves_telemetry_byte_identical(self):
        _, plain = run_session(seconds=0.5)
        ring = RingReporter()
        _, observed = run_session(
            seconds=0.5, obs=ObsContext.create([ring], run_id="t"))
        assert len(ring.events) > 0
        plain_lines = [r.to_json() for r in plain.telemetry.records]
        observed_lines = [r.to_json()
                          for r in observed.telemetry.records]
        assert plain_lines == observed_lines
        assert plain.counters == observed.counters


class TestExecutorEquivalence:
    def _events(self, executor):
        ring = RingReporter()
        _, scope = run_session(
            seconds=0.5,
            obs=ObsContext.create([ring], run_id="t"),
            executor=executor, n_workers=4, queue_depth=8192,
            idle_timeout_s=5.0)
        assert validate_events(ring.events) == []
        return scope, ring.events

    def test_inline_and_process_streams_are_identical(self):
        _, inline_events = self._events("inline")
        _, process_events = self._events("process:4")
        assert strip_volatile(inline_events) \
            == strip_volatile(process_events)

    def test_inline_and_threaded_streams_are_identical(self):
        _, inline_events = self._events("inline")
        _, threaded_events = self._events("threaded:4")
        assert strip_volatile(inline_events) \
            == strip_volatile(threaded_events)


class TestStreamReconstructsCounters:
    @pytest.fixture(scope="class")
    def session(self):
        ring = RingReporter()
        _, scope = run_session(
            seconds=1.0, snr_db=6.0,
            obs=ObsContext.create([ring], run_id="t"))
        return scope, ring.events

    def test_session_saw_failures(self, session):
        scope, _ = session
        assert scope._record_decoder.misses > 0

    def test_miss_events_match_decoder_misses(self, session):
        scope, events = session
        misses = [e for e in events if e["name"] == "dci.miss"]
        assert len(misses) == scope._record_decoder.misses
        for event in misses:
            assert event["reason"] == "bler"
            assert event["cell"] == "srsran"

    def test_decoded_counter_matches_scope_counters(self, session):
        scope, events = session
        decoded = sum(e["value"] for e in events
                      if e["name"] == "dci.decoded")
        assert decoded == scope.counters.dcis_decoded

    def test_msg4_events_match_counters(self, session):
        scope, events = session
        missed = [e for e in events if e["name"] == "msg4.miss"]
        tracked = [e for e in events if e["name"] == "msg4.tracked"]
        assert len(missed) == scope.counters.msg4_missed
        assert len(tracked) == scope.counters.msg4_seen

    def test_stage_spans_match_runtime_stats(self, session):
        scope, events = session
        stats = scope.runtime_stats
        by_stage = {}
        for event in events:
            if event["name"] == "stage.span":
                by_stage[event["stage"]] = \
                    by_stage.get(event["stage"], 0) + 1
        for stage in stats.stages:
            assert by_stage.get(stage.name, 0) == stage.calls

    def test_session_bracketing_events(self, session):
        _, events = session
        assert events[0]["name"] == "session.start"
        assert events[-1]["name"] == "session.end"
        assert events[0]["executor"] == "inline"

    def test_topn_reproduces_session_totals(self, session):
        scope, events = session
        report = cluster_failures(events, top_n=100)
        assert report.by_name.get("dci.miss", 0) \
            == scope._record_decoder.misses
        assert report.by_name.get("msg4.miss", 0) \
            == scope.counters.msg4_missed
        assert sum(c.count for c in report.clusters) \
            == report.failures_total


class TestBackpressureDrops:
    def test_drop_events_match_drop_counters(self):
        ring = RingReporter()
        _, scope = run_session(
            seconds=1.0,
            obs=ObsContext.create([ring], run_id="t"),
            executor="threaded:1", queue_depth=1,
            slot_budget_s=1e-7)
        drops = [e for e in ring.events if e["name"] == "dci.drop"]
        if scope.counters.dcis_dropped == 0:
            pytest.skip("no backpressure this run")
        assert len(drops) == scope.counters.dcis_dropped
        spans = [e for e in ring.events
                 if e["name"] == "stage.span"
                 and e.get("outcome") == "backpressure"]
        assert len(spans) == scope.counters.slots_dropped
        assert all(e["reason"] == "backpressure" for e in drops)


class TestSanitizerEvents:
    def test_violation_emits_structured_event(self):
        ring = RingReporter()
        obs = ObsContext.create([ring], run_id="t")
        sanitizer = Sanitizer(enabled=True)
        sanitizer.bind_obs(obs)
        guarded = sanitizer.guard_tracked({1: object()})
        with sanitizer.parallel_stage_scope("dci"):
            with pytest.raises(SanitizerViolation):
                guarded[2] = object()
        [event] = ring.events
        assert event["name"] == "nrsan.violation"
        assert event["stage"] == "dci"
        assert event["kind"] == "event"
        assert sanitizer.violations
