"""Tests for aggregation analysis, cell search, RACH sniffer, feedback."""

import pytest

from repro.core.aggregation import AggregationError, \
    PacketAggregationAnalyzer
from repro.core.cell_search import BROADCAST_SNR_FLOOR_DB, CellSearcher
from repro.core.feedback import FeedbackError, FeedbackService
from repro.core.rach_sniffer import RachSniffer, RachSnifferError
from repro.gnb.cell_config import SRSRAN_PROFILE
from repro.rrc.messages import RrcSetup


class TestAggregation:
    def test_packets_per_tti(self):
        analyzer = PacketAggregationAnalyzer(packet_bytes=1000)
        packets = analyzer.observe(0.0, 1, tbs_bits=24000)
        assert packets == pytest.approx(3.0)

    def test_cdf(self):
        analyzer = PacketAggregationAnalyzer(packet_bytes=1000)
        for tbs in (8000, 16000, 24000, 32000):
            analyzer.observe(0.0, 1, tbs)
        cdf = analyzer.cdf()
        assert cdf[0] == (1.0, 0.25)
        assert cdf[-1] == (4.0, 1.0)

    def test_per_rnti_filter(self):
        analyzer = PacketAggregationAnalyzer()
        analyzer.observe(0.0, 1, 11200)
        analyzer.observe(0.0, 2, 22400)
        assert len(analyzer.packets_per_tti(1)) == 1
        assert analyzer.cdf(99) == []

    def test_validation(self):
        with pytest.raises(AggregationError):
            PacketAggregationAnalyzer(packet_bytes=0)
        with pytest.raises(AggregationError):
            PacketAggregationAnalyzer().observe(0.0, 1, -1)


class TestCellSearcher:
    def test_full_acquisition(self):
        searcher = CellSearcher(sniffer_snr_db=20.0)
        assert not searcher.synchronized
        assert searcher.on_mib(SRSRAN_PROFILE.build_mib(5))
        assert not searcher.synchronized
        assert searcher.on_sib1(SRSRAN_PROFILE.build_sib1())
        assert searcher.synchronized
        knowledge = searcher.knowledge
        assert knowledge.n_prb == SRSRAN_PROFILE.n_prb
        assert knowledge.is_tdd
        assert knowledge.coreset0 is not None
        assert knowledge.dci_size_config().n_prb_bwp == 51

    def test_sib1_before_mib_ignored(self):
        searcher = CellSearcher(sniffer_snr_db=20.0)
        assert not searcher.on_sib1(SRSRAN_PROFILE.build_sib1())
        assert not searcher.synchronized

    def test_too_weak_to_hear(self):
        searcher = CellSearcher(
            sniffer_snr_db=BROADCAST_SNR_FLOOR_DB - 1.0)
        assert not searcher.on_mib(SRSRAN_PROFILE.build_mib(0))
        assert not searcher.synchronized

    def test_barred_cell_ignored(self):
        from dataclasses import replace
        searcher = CellSearcher(sniffer_snr_db=20.0)
        barred = replace(SRSRAN_PROFILE.build_mib(0), cell_barred=True)
        assert not searcher.on_mib(barred)


class TestRachSniffer:
    def make(self):
        return RachSniffer(bwp_n_prb=51)

    def setup_body(self, rnti=0x4601):
        return RrcSetup(tc_rnti=rnti,
                        search_space=SRSRAN_PROFILE.search_space_config(),
                        mcs_table="qam256", max_mimo_layers=2)

    def test_first_discovery_needs_setup(self):
        sniffer = self.make()
        with pytest.raises(RachSnifferError):
            sniffer.discover(0x4601, 0.0, setup=None)

    def test_setup_cached_for_later_ues(self):
        sniffer = self.make()
        sniffer.discover(0x4601, 0.0, self.setup_body())
        ue2 = sniffer.discover(0x4602, 1.0, setup=None)
        assert sniffer.setup_pdsch_decodes == 1
        assert ue2.grant_config.mcs_table == "qam256"
        assert ue2.grant_config.n_layers == 2

    def test_duplicate_discovery_rejected(self):
        sniffer = self.make()
        sniffer.discover(0x4601, 0.0, self.setup_body())
        with pytest.raises(RachSnifferError):
            sniffer.discover(0x4601, 0.0, None)

    def test_missed_rach_is_permanent(self):
        sniffer = self.make()
        sniffer.miss(0x7777)
        assert 0x7777 in sniffer.missed_rach_rntis
        assert not sniffer.is_tracked(0x7777)

    def test_prune_idle(self):
        sniffer = self.make()
        sniffer.discover(0x4601, 0.0, self.setup_body())
        sniffer.discover(0x4602, 5.0, None)
        sniffer.tracked[0x4602].touch(9.0)
        stale = sniffer.prune_idle(now_s=11.0, idle_timeout_s=10.0)
        assert stale == [0x4601]
        assert sniffer.is_tracked(0x4602)

    def test_search_space_matches_cell(self):
        sniffer = self.make()
        ue = sniffer.discover(0x4601, 0.0, self.setup_body())
        cell_space = SRSRAN_PROFILE.ue_search_space()
        assert ue.search_space.coreset == cell_space.coreset
        assert ue.search_space.candidates_per_level == \
            cell_space.candidates_per_level


class TestFeedback:
    def test_publish_to_subscriber(self):
        service = FeedbackService(uplink_latency_s=0.01)
        inbox = []
        service.subscribe(0x4601, inbox.append)
        message = service.publish(1.0, 0x4601, throughput_bps=1e6,
                                  spare_capacity_bps=2e6, mcs_index=20,
                                  retransmission_ratio=0.05)
        assert len(inbox) == 1
        assert message.latency_s == pytest.approx(0.01)
        assert inbox[0].throughput_bps == 1e6
        assert service.messages_sent == 1

    def test_no_subscribers_no_message(self):
        service = FeedbackService()
        assert service.publish(0.0, 0x9999, 1.0, 1.0, 0, 0.0) is None
        assert service.messages_sent == 0

    def test_unsubscribe(self):
        service = FeedbackService()
        service.subscribe(1, lambda m: None)
        service.unsubscribe(1)
        assert service.subscribed_rntis == []

    def test_json_wire_format(self):
        import json
        service = FeedbackService()
        service.subscribe(1, lambda m: None)
        message = service.publish(0.0, 1, 1.0, 2.0, 3, 0.1)
        data = json.loads(message.to_json())
        assert data["rnti"] == 1
        assert data["mcs_index"] == 3

    def test_negative_latency_rejected(self):
        with pytest.raises(FeedbackError):
            FeedbackService(uplink_latency_s=-0.1)
