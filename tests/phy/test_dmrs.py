"""Tests for reference-signal placement and generation."""

import numpy as np
import pytest

from repro.phy.dmrs import (
    PDCCH_DATA_RES_PER_REG,
    PDCCH_DMRS_POSITIONS,
    PDSCH_DMRS_RES_PER_PRB,
    pdcch_dmrs_init,
    pdcch_dmrs_symbols,
    reg_data_subcarriers,
)


class TestLayout:
    def test_pdcch_dmrs_positions(self):
        # 38.211 7.4.1.3.2: subcarriers 1, 5, 9 of each REG.
        assert PDCCH_DMRS_POSITIONS == (1, 5, 9)
        assert PDCCH_DATA_RES_PER_REG == 9
        assert PDSCH_DMRS_RES_PER_PRB == 12

    def test_data_subcarriers_complement_dmrs(self):
        data = reg_data_subcarriers()
        assert len(data) == 9
        assert set(data) | set(PDCCH_DMRS_POSITIONS) == set(range(12))
        assert not set(data) & set(PDCCH_DMRS_POSITIONS)


class TestPilots:
    def test_unit_power_qpsk(self):
        pilots = pdcch_dmrs_symbols(n_id=500, symbol=0, slot_index=3,
                                    n_regs=16)
        assert pilots.size == 16 * 3
        assert np.allclose(np.abs(pilots), 1.0)
        # QPSK points only.
        phases = np.angle(pilots) / (np.pi / 4)
        assert np.allclose(phases, np.round(phases))

    def test_deterministic(self):
        a = pdcch_dmrs_symbols(1, 0, 5, 8)
        b = pdcch_dmrs_symbols(1, 0, 5, 8)
        assert np.array_equal(a, b)

    def test_varies_with_identity_and_time(self):
        base = pdcch_dmrs_symbols(1, 0, 5, 8)
        assert not np.array_equal(base, pdcch_dmrs_symbols(2, 0, 5, 8))
        assert not np.array_equal(base, pdcch_dmrs_symbols(1, 1, 5, 8))
        assert not np.array_equal(base, pdcch_dmrs_symbols(1, 0, 6, 8))

    def test_init_in_31_bit_range(self):
        for n_id in (0, 500, 1007):
            for symbol in range(3):
                for slot in (0, 7, 19, 1000):
                    c_init = pdcch_dmrs_init(n_id, symbol, slot)
                    assert 0 <= c_init < (1 << 31)

    def test_slot_period_twenty(self):
        # The init depends on the slot index mod 20 (one frame at 30 kHz).
        assert pdcch_dmrs_init(5, 0, 3) == pdcch_dmrs_init(5, 0, 23)
        assert pdcch_dmrs_init(5, 0, 3) != pdcch_dmrs_init(5, 0, 4)


class TestGridIntegration:
    def test_pdcch_encode_places_pilots_on_dmrs_positions(self):
        from repro.phy.coreset import Coreset
        from repro.phy.dci import Dci, DciFormat, DciSizeConfig, riv_encode
        from repro.phy.pdcch import PdcchCandidate, encode_pdcch
        from repro.phy.resource_grid import ResourceGrid

        grid = ResourceGrid(51)
        coreset = Coreset(coreset_id=1, first_prb=0, n_prb=48,
                          n_symbols=1)
        dci = Dci(format=DciFormat.DL_1_1, rnti=0x4601,
                  freq_alloc_riv=riv_encode(0, 4, 51), time_alloc=1,
                  mcs=5, ndi=0, rv=0, harq_id=0)
        encode_pdcch(dci, DciSizeConfig(n_prb_bwp=51), coreset,
                     PdcchCandidate(0, 1), grid, n_id=500, slot_index=0)
        dmrs_res = np.where(grid.occupancy == ResourceGrid.DMRS)
        assert dmrs_res[0].size == 6 * 3  # 6 REGs x 3 pilots
        for sc_total in dmrs_res[0]:
            assert sc_total % 12 in PDCCH_DMRS_POSITIONS
