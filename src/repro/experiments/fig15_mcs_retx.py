"""Fig 15: MCS and retransmission telemetry per channel condition.

(Paper section 5.4.2.)  64 UEs on the Amarisoft cell, each emulated
channel condition in turn: Normal, AWGN, Pedestrian, Vehicle, Urban.
Better channels draw higher MCS indices and lower retransmission
ratios; NR-Scope's view matches ground truth with R^2 of 0.9970 (MCS)
and 0.9862 (retransmissions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import cdf_points, \
    coefficient_of_determination
from repro.analysis.report import Table
from repro.experiments.common import FigureResult, run_session
from repro.gnb.cell_config import AMARISOFT_PROFILE

#: Fig 15's channel conditions, best to worst.
CHANNELS = ("normal", "awgn", "pedestrian", "vehicle", "urban")


@dataclass
class ChannelTelemetry:
    """One channel condition's distributions, sniffer vs ground truth."""

    channel: str
    est_mcs: list[int]                  # per decoded new-data DCI
    est_retx_ratio_per_ue: list[float]
    true_mcs: list[int]
    true_retx_ratio_per_ue: list[float]

    @property
    def est_mean_mcs(self) -> float:
        return float(np.mean(self.est_mcs)) if self.est_mcs else 0.0

    @property
    def true_mean_mcs(self) -> float:
        return float(np.mean(self.true_mcs)) if self.true_mcs else 0.0

    @property
    def est_mean_retx(self) -> float:
        values = self.est_retx_ratio_per_ue
        return float(np.mean(values)) if values else 0.0

    @property
    def true_mean_retx(self) -> float:
        values = self.true_retx_ratio_per_ue
        return float(np.mean(values)) if values else 0.0

    def mcs_cdf(self) -> list[tuple[float, float]]:
        return cdf_points([float(m) for m in self.est_mcs])

    def retx_cdf(self) -> list[tuple[float, float]]:
        return cdf_points([100 * r for r in self.est_retx_ratio_per_ue])


def measure_channel(channel: str, n_ues: int, duration_s: float,
                    seed: int, ue_snr_db: float = 16.0) \
        -> ChannelTelemetry:
    """One telemetry session under one emulated channel condition."""
    result = run_session(AMARISOFT_PROFILE, n_ues=n_ues,
                         duration_s=duration_s, seed=seed,
                         channel=channel, ue_snr_db=ue_snr_db,
                         traffic="cbr", rate_bps=1.5e6)
    scope = result.scope
    truth = result.ue_truth_records(downlink=True)
    est_mcs = scope.telemetry.mcs_distribution()
    true_mcs = [r.dci.mcs for r in truth if not r.is_retransmission]
    est_retx, true_retx = [], []
    for rnti in scope.tracked_rntis:
        mine = [r for r in truth if r.rnti == rnti]
        if not mine:
            continue
        est_retx.append(scope.telemetry.retransmission_ratio(rnti))
        true_retx.append(sum(r.is_retransmission for r in mine)
                         / len(mine))
    return ChannelTelemetry(channel=channel, est_mcs=est_mcs,
                            est_retx_ratio_per_ue=est_retx,
                            true_mcs=true_mcs,
                            true_retx_ratio_per_ue=true_retx)


def run(n_ues: int = 16, duration_s: float = 2.5,
        seed: int = 16) -> list[ChannelTelemetry]:
    """All five channel conditions."""
    return [measure_channel(channel, n_ues, duration_s, seed + i)
            for i, channel in enumerate(CHANNELS)]


def fidelity_r2(results: list[ChannelTelemetry]) -> tuple[float, float]:
    """R^2 of NR-Scope vs ground truth across UEs and channels.

    MCS is compared per channel-mean (the paper's scatter is over
    distribution summaries); retransmission ratios per UE.
    """
    mcs_r2 = coefficient_of_determination(
        [r.est_mean_mcs for r in results],
        [r.true_mean_mcs for r in results])
    est = [v for r in results for v in r.est_retx_ratio_per_ue]
    true = [v for r in results for v in r.true_retx_ratio_per_ue]
    n = min(len(est), len(true))
    retx_r2 = coefficient_of_determination(est[:n], true[:n])
    return mcs_r2, retx_r2


def to_result(results: list[ChannelTelemetry]) -> FigureResult:
    result = FigureResult(figure="fig15")
    for telemetry in results:
        if telemetry.est_mcs:
            result.add_series(f"mcs-{telemetry.channel}",
                              telemetry.mcs_cdf())
        if telemetry.est_retx_ratio_per_ue:
            result.add_series(f"retx-{telemetry.channel}",
                              telemetry.retx_cdf())
    mcs_r2, retx_r2 = fidelity_r2(results)
    result.summary["mcs_r2"] = mcs_r2
    result.summary["retx_r2"] = retx_r2
    good = [r for r in results if r.channel in ("normal", "awgn")]
    bad = [r for r in results if r.channel in ("vehicle", "urban")]
    result.summary["good_channel_mean_mcs"] = float(
        np.mean([r.est_mean_mcs for r in good]))
    result.summary["bad_channel_mean_mcs"] = float(
        np.mean([r.est_mean_mcs for r in bad]))
    result.summary["good_channel_retx"] = float(
        np.mean([r.est_mean_retx for r in good]))
    result.summary["bad_channel_retx"] = float(
        np.mean([r.est_mean_retx for r in bad]))
    return result


def table(results: list[ChannelTelemetry]) -> Table:
    return Table(
        title="Fig 15 - MCS and retransmissions per channel",
        columns=("channel", "est MCS", "true MCS", "est retx %",
                 "true retx %"),
        rows=tuple((r.channel, r.est_mean_mcs, r.true_mean_mcs,
                    100 * r.est_mean_retx, 100 * r.true_mean_retx)
                   for r in results))
