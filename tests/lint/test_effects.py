"""Unit tests for the transitive effect-inference pass."""

import ast
import textwrap

from repro.lint.effects import (
    CLOCK,
    COUNTER_RNG,
    IO,
    MUTATES_TRACKED,
    RNG,
    Program,
)


def program(*modules):
    return Program([
        (rel, rel, ast.parse(textwrap.dedent(source)))
        for rel, source in modules])


class TestSeeds:
    def seed_effects(self, source, qualname):
        prog = program(("core/m.py", source))
        return prog.effects.effects_of(f"core/m.py::{qualname}")

    def test_tracked_subscript_store(self):
        src = """
        def add(tracked, rnti, ue):
            tracked[rnti] = ue
        """
        assert self.seed_effects(src, "add") == {MUTATES_TRACKED}

    def test_tracked_attribute_store_through_subscript(self):
        src = """
        def mark(tracked, rnti):
            tracked[rnti].last_seen_s = 1.0
        """
        assert self.seed_effects(src, "mark") == {MUTATES_TRACKED}

    def test_tracked_pop(self):
        src = """
        class T:
            def drop(self, rnti):
                self.tracked.pop(rnti)
        """
        assert self.seed_effects(src, "T.drop") == {MUTATES_TRACKED}

    def test_rebinding_local_named_tracked_is_not_mutation(self):
        src = """
        def snapshot(table):
            tracked = dict(table)
            return tracked
        """
        assert self.seed_effects(src, "snapshot") == set()

    def test_known_mutator_methods_are_seeds(self):
        src = """
        class RachSniffer:
            def discover(self, rnti):
                pass

        class TrackedUe:
            def touch(self, t):
                pass
        """
        assert self.seed_effects(src, "RachSniffer.discover") \
            == {MUTATES_TRACKED}
        assert self.seed_effects(src, "TrackedUe.touch") \
            == {MUTATES_TRACKED}

    def test_rng_forms(self):
        src = """
        import numpy as np

        def a():
            return np.random.default_rng(3)

        def b(rng):
            return rng.random()

        def c():
            return np.random.default_rng(9).normal()

        def d():
            return np.random.rand()
        """
        for fn in ("a", "b", "c", "d"):
            assert self.seed_effects(src, fn) == {RNG}, fn

    def test_clock_and_io(self):
        src = """
        import time

        def stamp():
            return time.time()

        def dump(path, text):
            path.write_text(text)

        def load(name):
            return open(name)
        """
        assert self.seed_effects(src, "stamp") == {CLOCK}
        assert self.seed_effects(src, "dump") == {IO}
        assert self.seed_effects(src, "load") == {IO}

    def test_counter_uniform_is_a_boundary(self):
        src = """
        import numpy as np

        def counter_uniform(*fields):
            # The real one is pure hashing; even if its body mentioned
            # RNG the boundary must stop descent.
            return np.random.default_rng(0).random()

        def caller(a, b):
            return counter_uniform(a, b)
        """
        assert self.seed_effects(src, "counter_uniform") == {COUNTER_RNG}
        assert self.seed_effects(src, "caller") == {COUNTER_RNG}

    def test_pure_function_has_no_effects(self):
        src = """
        def fold(values):
            return sum(v * v for v in values)
        """
        assert self.seed_effects(src, "fold") == set()


class TestPropagation:
    def test_effects_flow_caller_ward_with_witness(self):
        prog = program(("core/m.py", """
            import time

            def leaf():
                return time.time()

            def middle():
                return leaf()

            def top():
                return middle()
            """))
        effects = prog.effects
        assert effects.effects_of("core/m.py::top") == {CLOCK}
        assert effects.witness_chain("core/m.py::top", CLOCK) == [
            "core/m.py::top", "core/m.py::middle", "core/m.py::leaf"]
        described = effects.describe("core/m.py::top", CLOCK)
        assert "top -> middle -> leaf" in described
        assert "core/m.py:" in described

    def test_recursion_converges(self):
        prog = program(("core/m.py", """
            def ping(n, tracked):
                tracked[n] = 1
                return pong(n - 1, tracked)

            def pong(n, tracked):
                return ping(n, tracked) if n else 0
            """))
        assert MUTATES_TRACKED in \
            prog.effects.effects_of("core/m.py::pong")

    def test_cross_module_propagation(self):
        prog = program(
            ("core/a.py", """
             from repro.core.b import draw

             def stage(ctx):
                 return draw()
             """),
            ("core/b.py", """
             import numpy as np

             def draw():
                 return np.random.default_rng().random()
             """))
        assert RNG in prog.effects.effects_of("core/a.py::stage")


class TestStageRoots:
    def test_decorator_root(self):
        prog = program(("core/m.py", """
            def parallel_stage(fn):
                return fn

            @parallel_stage
            def decode(ctx):
                pass
            """))
        assert [r.qualname for r in prog.stage_roots] == \
            ["core/m.py::decode"]
        assert prog.stage_roots[0].how == "decorator"

    def test_stage_call_root_with_self_method(self):
        prog = program(("core/m.py", """
            class Stage:
                def __init__(self, name, fn, parallel=False):
                    pass

            class Pipe:
                def __init__(self):
                    self.s = Stage("dci", self._decode, parallel=True)

                def _decode(self, ctx):
                    pass
            """))
        assert [r.qualname for r in prog.stage_roots] == \
            ["core/m.py::Pipe._decode"]
        assert prog.stage_roots[0].how == "stage-call"

    def test_non_parallel_stage_is_not_a_root(self):
        prog = program(("core/m.py", """
            class Stage:
                def __init__(self, name, fn, parallel=False):
                    pass

            def backbone(ctx):
                pass

            S = Stage("sync", backbone)
            """))
        assert prog.stage_roots == []

    def test_parallel_reachable_closure(self):
        prog = program(("core/m.py", """
            def parallel_stage(fn):
                return fn

            def helper():
                pass

            def unrelated():
                pass

            @parallel_stage
            def decode(ctx):
                helper()
            """))
        reachable = prog.parallel_reachable()
        assert "core/m.py::decode" in reachable
        assert "core/m.py::helper" in reachable
        assert "core/m.py::unrelated" not in reachable


class TestReport:
    def test_report_shape_and_purity(self):
        prog = program(("core/m.py", """
            import time

            def parallel_stage(fn):
                return fn

            @parallel_stage
            def impure(ctx):
                return time.time()
            """))
        report = prog.effect_report()
        assert report["modules"] == 1
        assert report["stage_roots"] == ["core/m.py::impure"]
        frontier = report["purity_frontier"][0]
        assert frontier["pure"] is False
        assert frontier["violations"][0]["effect"] == CLOCK
        assert "core/m.py::impure" in frontier["violations"][0]["witness"]

    def test_production_tree_frontier_is_pure(self):
        """The acceptance property behind R006: the real parallel stage
        reaches only counter-keyed RNG."""
        from pathlib import Path
        from repro.lint.engine import LintEngine

        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        engine = LintEngine(rules=[])
        modules, failures = engine.collect([repo_src])
        assert failures == []
        prog = engine.build_program(modules)
        roots = [r.qualname for r in prog.stage_roots]
        assert roots == ["core/scope.py::NRScope._stage_dci"]
        report = prog.effect_report()
        frontier = report["purity_frontier"][0]
        assert frontier["pure"] is True
        assert frontier["effects"] in ([], [COUNTER_RNG])
        assert len(frontier["reachable"]) > 20
