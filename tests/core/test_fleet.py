"""Tests for the checkpointable fleet supervisor."""

import pickle

import pytest

from repro.core.fleet import CHECKPOINT_VERSION, FleetConfig, \
    FleetError, FleetSupervisor
from repro.obs import KNOWN_EVENTS, ObsContext, RingReporter, \
    validate_events


def small_config(**overrides) -> FleetConfig:
    defaults = dict(n_cells=2, seed=3, arrivals_per_second=3.0,
                    holding_p90_s=4.0, horizon_s=1.2,
                    checkpoint_interval_s=0.6)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def telemetry_of(supervisor: FleetSupervisor) -> dict:
    out = {}
    for name in supervisor.controller.cells:
        scope = supervisor.controller.stream(name).scope
        out[name] = scope.telemetry.records
    return out


class TestBuild:
    def test_build_names_and_populations(self):
        supervisor = FleetSupervisor.build(small_config())
        assert supervisor.controller.cells == ["srsran-0", "srsran-1"]
        for name in supervisor.controller.cells:
            sim = supervisor.controller.stream(name).sim
            assert sim._sessions, f"{name} has no come-and-go sessions"

    def test_cells_use_distinct_seeds_and_ue_ids(self):
        supervisor = FleetSupervisor.build(small_config())
        seeds = set()
        ue_ids = []
        for name in supervisor.controller.cells:
            sim = supervisor.controller.stream(name).sim
            seeds.add(sim.seed)
            ue_ids.extend(e.session.ue_id for e in sim._sessions)
        assert len(seeds) == 2
        assert len(ue_ids) == len(set(ue_ids))

    def test_rejects_bad_configs(self):
        with pytest.raises(FleetError):
            FleetSupervisor.build(small_config(n_cells=0))
        with pytest.raises(FleetError):
            FleetSupervisor.build(small_config(profile="nope"))
        with pytest.raises(FleetError):
            FleetSupervisor.build(small_config(horizon_s=0.0))
        with pytest.raises(FleetError):
            FleetSupervisor.build(
                small_config(checkpoint_interval_s=0.0))

    def test_negative_run_rejected(self):
        supervisor = FleetSupervisor.build(small_config())
        with pytest.raises(FleetError):
            supervisor.run(-1.0)


class TestCheckpointResume:
    def test_resumed_run_is_identical_to_uninterrupted(self, tmp_path):
        config = small_config()
        baseline = FleetSupervisor.build(config)
        baseline.run(1.2)

        path = tmp_path / "fleet.ckpt"
        interrupted = FleetSupervisor.build(config)
        interrupted.run(0.6, checkpoint_path=path)
        del interrupted  # the killed process
        resumed = FleetSupervisor.restore(path)
        assert resumed.now_s == pytest.approx(0.6)
        resumed.run(0.6)

        assert resumed.now_s == pytest.approx(baseline.now_s)
        want, got = telemetry_of(baseline), telemetry_of(resumed)
        assert want.keys() == got.keys()
        for name in want:
            assert want[name] == got[name], f"{name} diverged"
            a = baseline.controller.stream(name).scope
            b = resumed.controller.stream(name).scope
            assert a.counters == b.counters
            assert a.tracked_rntis == b.tracked_rntis

    def test_resumed_jsonl_bytes_identical(self, tmp_path):
        config = small_config(n_cells=1)
        baseline = FleetSupervisor.build(config)
        baseline.run(1.2)
        path = tmp_path / "fleet.ckpt"
        interrupted = FleetSupervisor.build(config)
        interrupted.run(0.6, checkpoint_path=path)
        resumed = FleetSupervisor.restore(path)
        resumed.run(0.6)
        cell = baseline.controller.cells[0]
        a_path = tmp_path / "a.jsonl"
        b_path = tmp_path / "b.jsonl"
        baseline.controller.stream(cell).scope.telemetry \
            .write_jsonl(a_path)
        resumed.controller.stream(cell).scope.telemetry \
            .write_jsonl(b_path)
        assert a_path.read_bytes() == b_path.read_bytes()

    def test_checkpoint_written_atomically(self, tmp_path):
        supervisor = FleetSupervisor.build(small_config(n_cells=1))
        path = tmp_path / "fleet.ckpt"
        supervisor.run(0.6, checkpoint_path=path)
        assert path.exists()
        assert not path.with_suffix(".ckpt.tmp").exists()

    def test_restore_missing_file_raises(self, tmp_path):
        with pytest.raises(FleetError):
            FleetSupervisor.restore(tmp_path / "absent.ckpt")

    def test_restore_rejects_foreign_version(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        path.write_bytes(pickle.dumps(
            {"version": CHECKPOINT_VERSION + 1, "cells": []}))
        with pytest.raises(FleetError):
            FleetSupervisor.restore(path)

    def test_restore_rejects_garbage(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(FleetError):
            FleetSupervisor.restore(path)

    def test_write_segments_per_cell(self, tmp_path):
        supervisor = FleetSupervisor.build(small_config())
        supervisor.run(0.6)
        written = supervisor.write_segments(tmp_path / "segments")
        assert set(written) == set(supervisor.controller.cells)
        for name, rows in written.items():
            scope = supervisor.controller.stream(name).scope
            assert rows == len(scope.telemetry)
            assert (tmp_path / "segments" / name
                    / "manifest.json").exists()


class TestObsSpans:
    def test_checkpoint_and_restore_spans_on_the_bus(self, tmp_path):
        ring = RingReporter()
        obs = ObsContext.create([ring], run_id="fleet-test")
        supervisor = FleetSupervisor.build(
            small_config(n_cells=1), obs=obs)
        path = tmp_path / "fleet.ckpt"
        supervisor.run(0.6, checkpoint_path=path)
        FleetSupervisor.restore(path, obs=obs)
        events = ring.events
        checkpoints = [e for e in events
                       if e["name"] == "fleet.checkpoint"]
        restores = [e for e in events if e["name"] == "fleet.restore"]
        assert len(checkpoints) == 1
        assert len(restores) == 1
        for event in checkpoints + restores:
            assert event["kind"] == "span"
            assert event["cells"] == 1
            assert event["bytes"] > 0
            assert event["duration_us"] > 0
        assert validate_events(events, registry=KNOWN_EVENTS) == []
