"""Integration tests for the NRScope orchestrator."""

import pytest

from repro import NRScope, Simulation, SRSRAN_PROFILE
from repro.analysis.matching import match_dcis
from repro.core.scope import ScopeError


def run_session(seconds=1.0, n_ues=2, snr_db=20.0, seed=5, **kwargs):
    sim = Simulation.build(SRSRAN_PROFILE, n_ues=n_ues, seed=seed,
                           **{k: v for k, v in kwargs.items()
                              if k in ("fidelity", "channel", "traffic")})
    scope = NRScope.attach(sim, snr_db=snr_db,
                           **{k: v for k, v in kwargs.items()
                              if k in ("always_decode_setup",
                                       "idle_timeout_s")})
    sim.run(seconds=seconds)
    return sim, scope


class TestSynchronisation:
    def test_acquires_cell_then_tracks(self):
        sim, scope = run_session(seconds=0.5)
        assert scope.searcher.synchronized
        assert scope.counters.slots_observed == sim.slots_run
        assert scope.counters.slots_synchronized > 0
        assert len(scope.tracked_rntis) == 2

    def test_deaf_sniffer_never_syncs(self):
        sim, scope = run_session(seconds=0.2, snr_db=-10.0)
        assert not scope.searcher.synchronized
        assert len(scope.telemetry) == 0

    def test_invalid_fidelity(self):
        from repro.radio.medium import Link
        with pytest.raises(ScopeError):
            NRScope(Link(20.0), fidelity="psychic")


class TestTelemetryAccuracy:
    def test_near_zero_miss_rate_at_lab_snr(self):
        sim, scope = run_session(seconds=2.0)
        truth = [r for r in sim.gnb.log.downlink_records()
                 if r.search_space == "ue"]
        result = match_dcis(truth, scope.telemetry.records, downlink=True)
        assert result.miss_rate < 0.02
        assert result.phantom == []

    def test_miss_rate_increases_with_distance(self):
        _, near = run_session(seconds=1.0, snr_db=20.0, seed=9)
        _, far = run_session(seconds=1.0, snr_db=-1.0, seed=9)
        near_rate = near.counters.dcis_decoded
        far_rate = far.counters.dcis_decoded
        assert far_rate < near_rate

    def test_throughput_tracks_tcpdump(self):
        # TBS quantisation pads small transport blocks, so the TBS-based
        # estimate sits slightly above delivered bytes; the paper's
        # "majority of errors under 0.9%" is measured on larger buffered
        # transfers — here the bound is ~8% with millisecond-scale TBs.
        sim, scope = run_session(seconds=2.0, traffic="bulk")
        for rnti in scope.tracked_rntis:
            ue = sim.gnb.ue_by_rnti(rnti)
            est = scope.telemetry.bits_between(rnti, 0.0, 2.0)
            truth = ue.delivered_dl_bits
            assert est == pytest.approx(truth, rel=0.08)
            assert est >= truth * 0.98  # padding only ever adds bits

    def test_retransmission_ratio_close_to_gnb(self):
        sim, scope = run_session(seconds=2.0, channel="urban", seed=21)
        truth = sim.gnb.log.downlink_records()
        gt_ratio = sum(r.is_retransmission for r in truth) / len(truth)
        est_ratio = scope.telemetry.retransmission_ratio()
        assert est_ratio == pytest.approx(gt_ratio, abs=0.05)


class TestRachBehaviour:
    def test_missed_rach_loses_ue_forever(self):
        # At very poor SNR, some MSG 4s are missed; those RNTIs produce
        # no telemetry at all.
        sim, scope = run_session(seconds=1.0, n_ues=8, snr_db=-2.5,
                                 seed=13)
        missed = scope.rach.missed_rach_rntis if scope.rach else set()
        for rnti in missed:
            assert scope.telemetry.for_rnti(rnti) == []
        assert scope.counters.msg4_total == 8

    def test_setup_cached_after_first_ue(self):
        sim, scope = run_session(seconds=0.5, n_ues=4)
        assert scope.rach.setup_pdsch_decodes == 1

    def test_ablation_always_decode_setup(self):
        sim, scope = run_session(seconds=0.5, n_ues=4,
                                 always_decode_setup=True)
        assert scope.rach.setup_pdsch_decodes == \
            scope.counters.msg4_seen


class TestIdlePruning:
    def test_idle_rnti_aged_out(self):
        sim, scope = run_session(seconds=0.3, idle_timeout_s=0.5)
        rnti = scope.tracked_rntis[0]
        ue = sim.gnb.ue_by_rnti(rnti)
        sim.gnb.remove_ue(ue.ue_id, time_s=sim.now_s)
        sim.run(seconds=1.0)
        assert rnti not in scope.tracked_rntis


class TestCaptureImpairments:
    def test_equalizer_rescues_impaired_capture(self):
        """With oscillator drift on the capture path, decoding only
        works because the DMRS equaliser runs — and it recovers
        essentially everything."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=81,
                               fidelity="iq")
        scope = NRScope.attach(sim, snr_db=15.0,
                               capture_impairments=True)
        sim.run(seconds=0.15)
        truth = [r for r in sim.gnb.log.downlink_records()
                 if r.search_space == "ue"]
        result = match_dcis(truth, scope.telemetry.records,
                            downlink=True)
        assert truth, "need traffic to measure"
        assert result.miss_rate < 0.1
        assert result.phantom == []

    def test_drift_without_equalizer_breaks_decoding(self):
        """The same impairments with equalisation disabled lose the
        DCIs once the phase sits off QPSK's decision regions — the
        control experiment for the test above.  The phase is pinned
        (rather than letting the random walk wander) to keep the test
        deterministic."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=81,
                               fidelity="iq")
        scope = NRScope.attach(sim, snr_db=15.0,
                               capture_impairments=True)
        sim.run(seconds=0.02)  # sync first
        assert scope._grid_decoder is not None
        scope._grid_decoder.equalize = False
        scope._capture_phase = 2.0  # far outside the QPSK region
        sim.run(seconds=0.2)
        truth = [r for r in sim.gnb.log.downlink_records()
                 if r.search_space == "ue" and r.time_s > 0.05]
        late = [r for r in scope.telemetry.records
                if r.downlink and r.time_s > 0.05]
        assert truth
        assert len(late) < len(truth) * 0.5


class TestIqParity:
    def test_iq_and_message_modes_agree_at_high_snr(self):
        sim_m, scope_m = run_session(seconds=0.25, snr_db=25.0,
                                     fidelity="message", seed=17)
        sim_i, scope_i = run_session(seconds=0.25, snr_db=25.0,
                                     fidelity="iq", seed=17)
        truth_m = [r for r in sim_m.gnb.log.downlink_records()
                   if r.search_space == "ue"]
        truth_i = [r for r in sim_i.gnb.log.downlink_records()
                   if r.search_space == "ue"]
        # The same seed drives the same schedule on both sides.
        assert len(truth_m) == len(truth_i)
        rate_m = match_dcis(truth_m, scope_m.telemetry.records).miss_rate
        rate_i = match_dcis(truth_i, scope_i.telemetry.records).miss_rate
        assert rate_m < 0.05
        assert rate_i < 0.05
