"""Tests for the UE device and its packet capture (tcpdump stand-in)."""

import pytest

from repro.ue.channel import FadingChannel
from repro.ue.traffic import BulkDownload, TrafficBuffer
from repro.ue.ue import PacketCapture, UeError, UserEquipment

SLOT_S = 0.5e-3


def make_ue(ue_id=0, arrival=0.0):
    return UserEquipment(
        ue_id=ue_id,
        dl_buffer=TrafficBuffer(BulkDownload(rate_cap_bps=1e6,
                                             slot_duration_s=SLOT_S)),
        ul_buffer=TrafficBuffer(BulkDownload(rate_cap_bps=1e5,
                                             slot_duration_s=SLOT_S)),
        channel=FadingChannel("awgn", 20.0, SLOT_S, seed=1),
        arrival_time_s=arrival)


class TestPacketCapture:
    def test_bytes_between(self):
        capture = PacketCapture()
        capture.record(0.1, 100, downlink=True)
        capture.record(0.2, 200, downlink=True)
        capture.record(0.25, 999, downlink=False)
        capture.record(0.3, 400, downlink=True)
        assert capture.bytes_between(0.0, 0.25) == 300
        assert capture.bytes_between(0.2, 0.35) == 600
        assert capture.bytes_between(0.0, 1.0, downlink=False) == 999

    def test_bitrate_series(self):
        capture = PacketCapture()
        for i in range(10):
            capture.record(0.05 + i * 0.1, 1250, downlink=True)  # 10 kbps
        series = capture.bitrate_series(window_s=0.5, end_time_s=1.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(5 * 1250 * 8 / 0.5)

    def test_timestamps_must_be_ordered(self):
        capture = PacketCapture()
        capture.record(1.0, 10, downlink=True)
        with pytest.raises(UeError):
            capture.record(0.5, 10, downlink=True)

    def test_negative_size_rejected(self):
        with pytest.raises(UeError):
            PacketCapture().record(0.0, -1, downlink=True)

    def test_bad_window(self):
        with pytest.raises(UeError):
            PacketCapture().bitrate_series(0.0, 1.0)


class TestUserEquipment:
    def test_connect_disconnect(self):
        ue = make_ue()
        assert not ue.is_connected
        ue.connect(0x4601)
        assert ue.is_connected
        with pytest.raises(UeError):
            ue.connect(0x4602)
        ue.disconnect()
        assert not ue.is_connected

    def test_advance_slot_accumulates_traffic(self):
        ue = make_ue()
        for slot in range(100):
            ue.advance_slot(slot)
        assert ue.dl_buffer.backlog_bytes > 0
        assert ue.ul_buffer.backlog_bytes > 0

    def test_advance_updates_cqi(self):
        ue = make_ue()
        ue.advance_slot(0)
        assert 1 <= ue.current_cqi <= 15

    def test_delivery_recorded_in_capture(self):
        ue = make_ue()
        ue.deliver_downlink(0.1, 1000, n_packets=2)
        ue.deliver_uplink(0.2, 300, n_packets=1)
        assert ue.delivered_dl_bits == 8000
        assert ue.delivered_ul_bits == 2400
        assert len(ue.capture) == 2
        assert ue.capture.bytes_between(0.0, 1.0, downlink=True) == 1000

    def test_active_time(self):
        ue = make_ue(arrival=5.0)
        assert ue.active_time_s(now_s=15.0) == pytest.approx(10.0)
        ue.departure_time_s = 8.0
        assert ue.active_time_s(now_s=15.0) == pytest.approx(3.0)
