"""Downlink Control Information formats 1_1 and 0_1 (TS 38.212 7.3.1).

A DCI is the atom of NR-Scope telemetry: one decoded DCI per UE per TTI
yields that UE's scheduled PRBs, MCS, HARQ process and new-data indicator.
This module packs the field values into the 30-80 bit payload the PDCCH
carries (paper section 3.2.1) and unpacks received payloads.

Field widths depend on the bandwidth part's PRB count and a handful of RRC
parameters, so both ends share a :class:`DciSizeConfig` — the gNB sets it
from its own configuration, NR-Scope learns the same values from SIB 1 and
MSG 4 (paper section 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from enum import Enum

import numpy as np


class DciError(ValueError):
    """Raised for malformed DCI payloads or field overflows."""


class DciFormat(Enum):
    """The two scheduling DCI formats the paper decodes."""

    DL_1_1 = "1_1"
    UL_0_1 = "0_1"


@dataclass(frozen=True)
class DciSizeConfig:
    """RRC-derived parameters that fix the DCI payload layout."""

    n_prb_bwp: int
    bwp_indicator_bits: int = 0
    antenna_ports_bits: int = 4
    dai_bits: int = 2
    pucch_resource_bits: int = 3
    harq_feedback_bits: int = 3
    srs_request_bits: int = 2

    def __post_init__(self) -> None:
        if self.n_prb_bwp < 1:
            raise DciError(f"BWP must have >= 1 PRB, got {self.n_prb_bwp}")
        if not 0 <= self.bwp_indicator_bits <= 2:
            raise DciError("BWP indicator is 0..2 bits")

    @property
    def freq_alloc_bits(self) -> int:
        """Type-1 resource allocation (RIV) field width."""
        n = self.n_prb_bwp
        return max(1, math.ceil(math.log2(n * (n + 1) / 2)))


def riv_encode(start_prb: int, n_prb: int, bwp_size: int) -> int:
    """Resource indication value for a contiguous allocation (38.214 5.1.2.2.2)."""
    if n_prb < 1 or start_prb < 0 or start_prb + n_prb > bwp_size:
        raise DciError(
            f"allocation [{start_prb}, +{n_prb}) outside BWP of {bwp_size}")
    if (n_prb - 1) <= bwp_size // 2:
        return bwp_size * (n_prb - 1) + start_prb
    return bwp_size * (bwp_size - n_prb + 1) + (bwp_size - 1 - start_prb)


def riv_decode(riv: int, bwp_size: int) -> tuple[int, int]:
    """Invert :func:`riv_encode`; returns ``(start_prb, n_prb)``."""
    if riv < 0:
        raise DciError(f"negative RIV: {riv}")
    length_minus_1, start = divmod(riv, bwp_size)
    if length_minus_1 + 1 + start <= bwp_size and length_minus_1 < bwp_size:
        candidate = (start, length_minus_1 + 1)
        if (candidate[1] - 1) <= bwp_size // 2:
            return candidate
    n_prb = bwp_size - length_minus_1 + 1
    start_prb = bwp_size - 1 - start
    if not (1 <= n_prb <= bwp_size and 0 <= start_prb
            and start_prb + n_prb <= bwp_size):
        raise DciError(f"RIV {riv} invalid for BWP size {bwp_size}")
    return start_prb, n_prb


@dataclass(frozen=True)
class Dci:
    """Decoded DCI field values (Appendix B of the paper shows a sample).

    ``rnti`` is not part of the payload: it scrambles the CRC and is
    recovered by the PDCCH decoder, but it travels with the struct because
    every consumer needs the pair.
    """

    format: DciFormat
    rnti: int
    freq_alloc_riv: int
    time_alloc: int
    mcs: int
    ndi: int
    rv: int
    harq_id: int
    dai: int = 0
    tpc: int = 1
    pucch_resource: int = 0
    harq_feedback_timing: int = 0
    antenna_ports: int = 0
    srs_request: int = 0
    dmrs_seq_init: int = 0
    vrb_to_prb: int = 0
    bwp_indicator: int = 0
    freq_hopping: int = 0

    def describe(self) -> str:
        """One-line rendering in the style of the paper's Appendix B."""
        return (f"c-rnti=0x{self.rnti:04x}, dci={self.format.value}, "
                f"f_alloc=0x{self.freq_alloc_riv:x}, "
                f"t_alloc=0x{self.time_alloc:x}, mcs={self.mcs}, "
                f"ndi={self.ndi}, rv={self.rv}, harq_id={self.harq_id}, "
                f"dai={self.dai}, tpc={self.tpc}")


def field_layout(fmt: DciFormat, cfg: DciSizeConfig) -> list[tuple[str, int]]:
    """Ordered (field, width) pairs for a format under a size config."""
    if fmt is DciFormat.DL_1_1:
        layout = [
            ("bwp_indicator", cfg.bwp_indicator_bits),
            ("freq_alloc_riv", cfg.freq_alloc_bits),
            ("time_alloc", 4),
            ("vrb_to_prb", 1),
            ("mcs", 5),
            ("ndi", 1),
            ("rv", 2),
            ("harq_id", 4),
            ("dai", cfg.dai_bits),
            ("tpc", 2),
            ("pucch_resource", cfg.pucch_resource_bits),
            ("harq_feedback_timing", cfg.harq_feedback_bits),
            ("antenna_ports", cfg.antenna_ports_bits),
            ("srs_request", cfg.srs_request_bits),
            ("dmrs_seq_init", 1),
        ]
    elif fmt is DciFormat.UL_0_1:
        layout = [
            ("bwp_indicator", cfg.bwp_indicator_bits),
            ("freq_alloc_riv", cfg.freq_alloc_bits),
            ("time_alloc", 4),
            ("freq_hopping", 1),
            ("mcs", 5),
            ("ndi", 1),
            ("rv", 2),
            ("harq_id", 4),
            ("dai", min(cfg.dai_bits, 1)),
            ("tpc", 2),
            ("srs_request", cfg.srs_request_bits),
            ("dmrs_seq_init", 1),
        ]
    else:  # pragma: no cover - exhaustive over the enum
        raise DciError(f"unknown format: {fmt}")
    # The leading format-identifier bit (38.212 7.3.1: 1 for DL, 0 for UL).
    return [("_identifier", 1)] + [(n, w) for n, w in layout if w > 0]


def dci_payload_size(fmt: DciFormat, cfg: DciSizeConfig) -> int:
    """Payload bits before CRC attachment (the paper's '30-80 bits')."""
    return sum(width for _, width in field_layout(fmt, cfg))


_VALID_FIELDS = {f.name for f in fields(Dci)}


def pack(dci: Dci, cfg: DciSizeConfig) -> np.ndarray:
    """Serialise a DCI into its payload bits (MSB-first per field)."""
    bits: list[int] = []
    for name, width in field_layout(dci.format, cfg):
        if name == "_identifier":
            value = 1 if dci.format is DciFormat.DL_1_1 else 0
        else:
            value = getattr(dci, name)
        if not 0 <= value < (1 << width):
            raise DciError(
                f"field {name}={value} does not fit in {width} bits")
        bits.extend((value >> (width - 1 - i)) & 1 for i in range(width))
    return np.array(bits, dtype=np.uint8)


def unpack(bits: np.ndarray, fmt: DciFormat, cfg: DciSizeConfig,
           rnti: int) -> Dci:
    """Parse payload bits back into a :class:`Dci`.

    Raises :class:`DciError` when the size or the format-identifier bit is
    inconsistent — the identifier check is one of the sanity filters the
    real tool applies on top of the CRC.
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    layout = field_layout(fmt, cfg)
    expected = sum(w for _, w in layout)
    if arr.size != expected:
        raise DciError(
            f"payload is {arr.size} bits, format {fmt.value} needs {expected}")
    values: dict[str, int] = {}
    pos = 0
    for name, width in layout:
        value = 0
        for _ in range(width):
            value = (value << 1) | int(arr[pos])
            pos += 1
        values[name] = value
    identifier = values.pop("_identifier")
    expected_id = 1 if fmt is DciFormat.DL_1_1 else 0
    if identifier != expected_id:
        raise DciError(
            f"format identifier bit {identifier} inconsistent with"
            f" {fmt.value}")
    values = {k: v for k, v in values.items() if k in _VALID_FIELDS}
    return Dci(format=fmt, rnti=rnti, **values)
