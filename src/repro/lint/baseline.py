"""Grandfathered-finding baseline.

The baseline lets the lint gate turn red only for *new* violations:
pre-existing findings are recorded once (with a justification) and
suppressed on later runs.  Entries match findings by content — rule id,
package-relative path and the stripped source line — with a ``count``
so a file may grandfather N identical lines and still fail on the
N+1th.  Line numbers are deliberately not part of the identity.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename looked up in the current directory.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for unreadable or malformed baseline files."""


def _in_scope(rel: str, scanned_rels: set[str]) -> bool:
    """Whether a scan that covered ``scanned_rels`` can judge ``rel``.

    A baseline entry is judgeable if its file was scanned, or if the
    scan covered the file's directory (some scanned file shares it) —
    the latter is how an entry for a *deleted* file still surfaces as
    an orphan, while a scoped run (``--changed``, one file elsewhere)
    stays silent about files it never looked at.
    """
    if rel in scanned_rels:
        return True
    parent = rel.rsplit("/", 1)[0] if "/" in rel else ""
    for scanned in scanned_rels:
        scanned_parent = scanned.rsplit("/", 1)[0] if "/" in scanned \
            else ""
        if scanned_parent == parent:
            return True
    return False


@dataclass
class Baseline:
    """A set of suppressed finding groups."""

    #: (rule, rel, snippet) -> allowed occurrence count
    entries: Counter = field(default_factory=Counter)
    #: (rule, rel, snippet) -> justification string
    justifications: dict[tuple[str, str, str], str] = \
        field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline JSON file."""
        try:
            raw = json.loads(path.read_text())
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise BaselineError(f"malformed baseline {path}: {exc}")
        if not isinstance(raw, dict) or "entries" not in raw:
            raise BaselineError(f"baseline {path} has no 'entries' list")
        baseline = cls()
        for entry in raw["entries"]:
            try:
                key = (str(entry["rule"]), str(entry["path"]),
                       str(entry["snippet"]))
                count = int(entry.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(
                    f"malformed baseline entry in {path}: {entry!r} ({exc})")
            baseline.entries[key] += count
            if "justification" in entry:
                baseline.justifications[key] = str(entry["justification"])
        return baseline

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline that grandfathers exactly ``findings``."""
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.group_key] += 1
        return baseline

    def filter(self, findings: list[Finding]) \
            -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, suppressed)."""
        budget = Counter(self.entries)
        fresh: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            if budget[finding.group_key] > 0:
                budget[finding.group_key] -= 1
                suppressed.append(finding)
            else:
                fresh.append(finding)
        return fresh, suppressed

    def unmatched(self, findings: list[Finding],
                  scanned_rels: set[str] | None = None,
                  active_rules: set[str] | None = None) \
            -> list[tuple[str, str, str]]:
        """Baseline entries no longer matched by any current finding.

        An *orphan* is an entry whose (rule, path, snippet) fingerprint
        matched fewer findings than its count — the grandfathered code
        was fixed or deleted, so the entry is dead weight.  When
        ``scanned_rels`` is given, only entries for files the scan
        actually covered are considered, so a scoped run (``--changed``,
        a single file) never flags entries for files it did not look at.
        When ``active_rules`` is given, entries for rules that did not
        run are likewise never judged — a ``--select R012`` or
        ``--changed`` scan (which disables whole-program rules) produces
        zero findings for the other rules by construction, not because
        the grandfathered code was fixed.
        """
        used: Counter = Counter(f.group_key for f in findings)
        orphans: list[tuple[str, str, str]] = []
        for key in sorted(self.entries):
            rule, rel, _ = key
            if active_rules is not None and rule not in active_rules:
                continue
            if scanned_rels is not None and \
                    not _in_scope(rel, scanned_rels):
                continue
            if used[key] < self.entries[key]:
                orphans.append(key)
        return orphans

    def prune(self, findings: list[Finding],
              scanned_rels: set[str] | None = None,
              active_rules: set[str] | None = None) -> int:
        """Shrink entries to what current findings still need.

        Counts are reduced to the number of matching findings (entries
        dropping to zero are removed along with their justification);
        returns how many suppression slots were pruned.  Scoping via
        ``scanned_rels`` and ``active_rules`` mirrors :meth:`unmatched`.
        """
        used: Counter = Counter(f.group_key for f in findings)
        pruned = 0
        for key in list(self.entries):
            rule, rel, _ = key
            if active_rules is not None and rule not in active_rules:
                continue
            if scanned_rels is not None and \
                    not _in_scope(rel, scanned_rels):
                continue
            excess = self.entries[key] - used[key]
            if excess <= 0:
                continue
            pruned += excess
            if used[key] > 0:
                self.entries[key] = used[key]
            else:
                del self.entries[key]
                self.justifications.pop(key, None)
        return pruned

    def save(self, path: Path) -> None:
        """Write the baseline as stable, reviewable JSON."""
        entries = []
        for key in sorted(self.entries):
            rule, rel, snippet = key
            entry: dict[str, object] = {
                "rule": rule, "path": rel, "snippet": snippet,
                "count": int(self.entries[key]),
            }
            justification = self.justifications.get(key)
            entry["justification"] = justification if justification else \
                "TODO: justify or fix"
            entries.append(entry)
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n")
