"""The simulated 5G SA gNodeB and its cell profiles."""

from repro.gnb.cell_config import ALL_PROFILES, AMARISOFT_PROFILE, \
    CellProfile, MOSOLAB_PROFILE, SRSRAN_PROFILE, TMOBILE_N25_PROFILE, \
    TMOBILE_N71_PROFILE
from repro.gnb.gnb import DciRecord, GNodeB, GnbLog, Msg4Record, SlotOutput
from repro.gnb.harq import HarqEntity, HarqProcess
from repro.gnb.rach import Msg4Event, RachProcedure, RachState
from repro.gnb.scheduler import AllocationPlan, ProportionalFairScheduler, \
    RoundRobinScheduler, UeSchedulingContext

__all__ = [
    "ALL_PROFILES", "AMARISOFT_PROFILE", "AllocationPlan", "CellProfile",
    "DciRecord", "GNodeB", "GnbLog", "HarqEntity", "HarqProcess",
    "MOSOLAB_PROFILE", "Msg4Event", "Msg4Record",
    "ProportionalFairScheduler", "RachProcedure", "RachState",
    "RoundRobinScheduler", "SRSRAN_PROFILE", "SlotOutput",
    "TMOBILE_N25_PROFILE", "TMOBILE_N71_PROFILE", "UeSchedulingContext",
]
