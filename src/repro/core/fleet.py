"""Checkpointable fleet supervisor: N cells, come-and-go UEs, restarts.

The paper's commercial-cell deployments (section 5.3) run NR-Scope
against live cells for minutes to hours; a practical tool must survive
restarts without losing or forking its telemetry.  This module grows
:class:`~repro.core.multicell.MultiCellController` into a supervised
fleet:

* ``FleetSupervisor.build`` assembles N cells from one
  :class:`FleetConfig`, each with its own heavy-tailed come-and-go UE
  population (Poisson arrivals, log-normal holding times — the section
  5.3.1 statistics);
* ``run`` advances the fleet in checkpoint-interval chunks, atomically
  persisting a full snapshot after each: tracked-UE tables, HARQ/
  throughput state, RNG states and the columnar telemetry segments;
* ``restore`` rebuilds a mid-run fleet from the snapshot so the
  resumed run commits telemetry *identical* to an uninterrupted one.

Determinism argument: the run loop chunks by ``checkpoint_interval_s``
whether or not a checkpoint path is given, so interrupted and
uninterrupted runs execute the same sequence of ``controller.run``
targets; every stochastic consumer (gNB, UEs, scope, decoders) either
rides a restored RNG state or draws counter-based randomness, so the
slot streams after resume are bit-identical.

Checkpoint/restore durations are published on the shared observability
bus as ``fleet.checkpoint`` / ``fleet.restore`` spans.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.multicell import MultiCellController
from repro.gnb.cell_config import ALL_PROFILES
from repro.obs.context import AnyObsContext, OBS_NOOP
from repro.simulation import Simulation
from repro.ue.population import ComeAndGoProcess, PopulationProfile


class FleetError(ValueError):
    """Raised for invalid fleet configurations or broken checkpoints."""


#: Version stamped into every checkpoint blob; ``restore`` rejects
#: anything else rather than resuming from an incompatible layout.
CHECKPOINT_VERSION = 1

#: Per-cell spacing of derived seeds (cell i draws from seed-space
#: ``seed + stride * (i + 1)``) and of population UE ids, so no two
#: cells share an RNG stream or a UE identity.
CELL_SEED_STRIDE = 1_000
CELL_UE_ID_STRIDE = 100_000

#: Slack for float comparisons against accumulated simulated time.
_TIME_EPS_S = 1e-12


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines a fleet run (picklable, checkpointed).

    ``holding_p90_s`` defaults far below the paper's 35 s commercial
    calibration so test-scale horizons still see churn; pass the
    calibrated value for survey-scale runs.
    """

    n_cells: int = 2
    profile: str = "srsran"
    seed: int = 0
    snr_db: float = 18.0
    arrivals_per_second: float = 2.0
    holding_p90_s: float = 6.0
    holding_sigma: float = 1.0
    horizon_s: float = 10.0
    traffic: str = "onoff"
    channel: str = "pedestrian"
    mean_snr_db: float = 18.0
    rate_bps: float = 2e6
    fidelity: str = "message"
    checkpoint_interval_s: float = 1.0
    executor: str = "inline"
    n_workers: int = 4


class FleetSupervisor:
    """Runs a multi-cell fleet with periodic, resumable checkpoints."""

    def __init__(self, config: FleetConfig,
                 controller: MultiCellController,
                 obs: AnyObsContext) -> None:
        self.config = config
        self.controller = controller
        self._obs = obs

    # ------------------------------------------------------- assembly
    @classmethod
    def build(cls, config: FleetConfig,
              obs: AnyObsContext | None = None) -> "FleetSupervisor":
        """Assemble a fresh fleet: N cells, each with its population."""
        if config.n_cells < 1:
            raise FleetError(f"need at least one cell: {config.n_cells}")
        if config.profile not in ALL_PROFILES:
            raise FleetError(f"unknown cell profile: {config.profile!r}")
        if config.horizon_s <= 0:
            raise FleetError(
                f"population horizon must be positive: {config.horizon_s}")
        if config.checkpoint_interval_s <= 0:
            raise FleetError(f"checkpoint interval must be positive: "
                             f"{config.checkpoint_interval_s}")
        obs = obs if obs is not None else OBS_NOOP
        controller = MultiCellController(executor=config.executor,
                                         n_workers=config.n_workers,
                                         obs=obs)
        supervisor = cls(config, controller, obs)
        profile = ALL_PROFILES[config.profile]
        for index in range(config.n_cells):
            name = f"{config.profile}-{index}"
            cell_seed = config.seed + CELL_SEED_STRIDE * (index + 1)
            sim = Simulation.build(profile, n_ues=0, seed=cell_seed,
                                   fidelity=config.fidelity)
            population = PopulationProfile(
                name=f"fleet-{name}",
                arrivals_per_second=config.arrivals_per_second,
                holding_p90_s=config.holding_p90_s,
                holding_sigma=config.holding_sigma)
            sessions = ComeAndGoProcess(population, seed=cell_seed + 1) \
                .generate(config.horizon_s,
                          first_ue_id=CELL_UE_ID_STRIDE * (index + 1))
            sim.schedule_sessions(sessions, traffic=config.traffic,
                                  channel=config.channel,
                                  mean_snr_db=config.mean_snr_db,
                                  rate_bps=config.rate_bps)
            controller.add_cell(name, sim, snr_db=config.snr_db,
                                fidelity=config.fidelity, seed=cell_seed)
        return supervisor

    @property
    def now_s(self) -> float:
        """Fleet clock (every cell has reached this simulated time)."""
        return self.controller.now_s

    # ------------------------------------------------------ execution
    def run(self, seconds: float,
            checkpoint_path: str | Path | None = None) -> None:
        """Advance the fleet, checkpointing every interval.

        The loop *always* chunks by ``checkpoint_interval_s`` — with no
        checkpoint path the snapshot is simply skipped — so a killed
        and resumed run replays the identical sequence of controller
        targets an uninterrupted run executes.
        """
        if seconds < 0:
            raise FleetError(f"negative duration: {seconds}")
        end = self.controller.now_s + seconds
        while self.controller.now_s < end - _TIME_EPS_S:
            step = min(self.config.checkpoint_interval_s,
                       end - self.controller.now_s)
            self.controller.run(step)
            if checkpoint_path is not None:
                self.checkpoint(checkpoint_path)

    # -------------------------------------------------- checkpointing
    def checkpoint(self, path: str | Path) -> int:
        """Atomically persist the fleet; returns the snapshot size.

        One ``pickle.dumps`` covers the whole blob, so object identity
        shared between a cell's session list and its gNB's tracked
        tables survives the round trip.  The write lands via a temp
        file + ``os.replace`` — a crash mid-checkpoint leaves the
        previous snapshot intact.
        """
        started = time.perf_counter()
        cells = []
        for name in self.controller.cells:
            stream = self.controller.stream(name)
            cells.append({
                "name": name,
                "snr_db": stream.scope.link.snr_db,
                "sim": stream.sim.checkpoint_state(),
                "scope": stream.scope.checkpoint_state(),
            })
        blob = {"version": CHECKPOINT_VERSION, "config": self.config,
                "controller": self.controller.fleet_state(),
                "cells": cells}
        data = pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)
        target = Path(path)
        scratch = target.with_suffix(target.suffix + ".tmp")
        scratch.write_bytes(data)
        os.replace(scratch, target)
        if self._obs:
            self._obs.timing("fleet.checkpoint",
                             time.perf_counter() - started,
                             cells=len(cells), bytes=len(data))
        return len(data)

    @classmethod
    def restore(cls, path: str | Path,
                obs: AnyObsContext | None = None) -> "FleetSupervisor":
        """Rebuild a mid-run fleet from a :meth:`checkpoint` snapshot.

        Snapshots are pickles — restore only files this tool wrote.
        """
        started = time.perf_counter()
        obs = obs if obs is not None else OBS_NOOP
        target = Path(path)
        if not target.exists():
            raise FleetError(f"no checkpoint at {target}")
        data = target.read_bytes()
        try:
            blob = pickle.loads(data)
        except Exception as exc:
            raise FleetError(f"unreadable checkpoint {target}: "
                             f"{exc}") from exc
        version = blob.get("version") if isinstance(blob, dict) else None
        if version != CHECKPOINT_VERSION:
            raise FleetError(
                f"unsupported checkpoint version: {version!r}")
        config = blob["config"]
        controller = MultiCellController(executor=config.executor,
                                         n_workers=config.n_workers,
                                         obs=obs)
        supervisor = cls(config, controller, obs)
        for cell in blob["cells"]:
            sim = Simulation.from_state(cell["sim"])
            stream = controller.add_cell(cell["name"], sim,
                                         snr_db=cell["snr_db"],
                                         fidelity=config.fidelity,
                                         seed=config.seed)
            stream.scope.restore_state(cell["scope"])
        controller.restore_fleet_state(blob["controller"])
        if obs:
            obs.timing("fleet.restore", time.perf_counter() - started,
                       cells=len(blob["cells"]), bytes=len(data))
        return supervisor

    # ------------------------------------------------------ reporting
    def write_segments(self, directory: str | Path) -> dict[str, int]:
        """Dump every cell's columnar telemetry as on-disk segments.

        Returns rows written per cell; each cell gets
        ``<directory>/<cell>/`` with npy chunk files + manifest.
        """
        base = Path(directory)
        written: dict[str, int] = {}
        for name in self.controller.cells:
            stream = self.controller.stream(name)
            store = stream.scope.telemetry.store
            store.write_segments(base / name)
            written[name] = len(store)
        return written
