"""Positive and negative self-tests for every built-in nrlint rule."""

import textwrap

from repro.lint import LintEngine


def lint(source: str, rel: str, engine: LintEngine | None = None):
    """Lint a source snippet as if it lived at package path ``rel``."""
    engine = engine or LintEngine()
    return engine.run_source(textwrap.dedent(source), rel=rel)


def rule_ids(findings):
    return {f.rule_id for f in findings}


class TestR001MagicNumbers:
    def test_flags_inline_sfn_modulus(self):
        findings = lint("def f(sfn):\n    return sfn % 1024\n",
                        "core/tracker.py")
        assert any(f.rule_id == "R001" for f in findings)
        assert "SFN_MODULO" in findings[0].message

    def test_flags_inline_rnti_and_crc_poly(self):
        src = """
        def g(rnti):
            if rnti == 0xFFFF:
                return 0x864CFB
        """
        findings = lint(src, "core/tracker.py")
        assert sum(f.rule_id == "R001" for f in findings) == 2

    def test_allows_constants_module(self):
        findings = lint("SFN_MODULO = 1024\nSI_RNTI = 0xFFFF\n",
                        "constants.py")
        assert not findings

    def test_allows_named_module_level_constant(self):
        findings = lint("SEGMENT_E_BITS = 1024\n", "phy/pdsch.py")
        assert not rule_ids(findings) & {"R001"}

    def test_allows_mcs_tables(self):
        findings = lint("RATE = 948 / 1024\n_X = 65535\n",
                        "phy/mcs_tables.py")
        assert not findings

    def test_ignores_unlisted_numbers(self):
        findings = lint("def f(x):\n    return x * 42 + 1000\n",
                        "core/x.py")
        assert not findings

    def test_flags_inline_slot_duration(self):
        findings = lint("def budget():\n    return 0.5e-3\n",
                        "core/scope.py")
        assert rule_ids(findings) == {"R001"}
        assert "slot_duration_s(30)" in findings[0].message

    def test_flags_60khz_slot_duration(self):
        findings = lint("def f(n):\n    return n * 0.25e-3\n",
                        "gnb/scheduler.py")
        assert any("TTI_DURATION_S[60]" in f.message for f in findings)

    def test_allows_named_slot_duration_constant(self):
        findings = lint("SLOT_S = 0.5e-3\n", "core/scope.py")
        assert not rule_ids(findings) & {"R001"}

    def test_ignores_generic_floats(self):
        findings = lint("def f(x):\n    return x * 1e-3 + 0.5\n",
                        "core/x.py")
        assert not findings


class TestR002BitContract:
    def test_flags_width_mismatch(self):
        src = """
        class Message:
            def encode(self, writer):
                writer.write(self.a, 4)
                writer.write(self.b, 7)

            @classmethod
            def decode_fields(cls, reader):
                return cls(a=reader.read(4), b=reader.read(6))
        """
        findings = lint(src, "rrc/messages.py")
        assert any(f.rule_id == "R002" for f in findings)
        assert "7 bits" in findings[0].message
        assert "6 bits" in findings[0].message

    def test_flags_missing_unpack_step(self):
        src = """
        class Message:
            def encode(self, writer):
                writer.write(self.a, 4)
                writer.write(self.b, 2)

            @classmethod
            def decode_fields(cls, reader):
                return cls(a=reader.read(4))
        """
        findings = lint(src, "rrc/messages.py")
        assert any("no matching unpack" in f.message for f in findings)

    def test_flags_signedness_mismatch(self):
        src = """
        class Message:
            def encode(self, writer):
                writer.write_signed(self.power, 9)

            @classmethod
            def decode_fields(cls, reader):
                return cls(power=reader.read(9))
        """
        findings = lint(src, "rrc/messages.py")
        assert any(f.rule_id == "R002" for f in findings)

    def test_accepts_symmetric_codec_with_tag_bool_nested_loop(self):
        src = """
        class Message:
            def encode(self):
                w = BitWriter().write(_TAG_MSG, 6)
                w.write(self.a, 4)
                w.write_bool(self.flag)
                self.sub.encode_into(w)
                for c in (self.x, self.y):
                    w.write(c, 3)
                return w.to_bits()

            @classmethod
            def decode_fields(cls, reader):
                return cls(
                    a=reader.read(4),
                    flag=reader.read_bool(),
                    sub=Sub.decode_from(reader),
                    x=reader.read(3),
                    y=reader.read(3),
                )
        """
        findings = lint(src, "rrc/messages.py")
        assert not findings

    def test_flags_unpack_bypassing_shared_layout(self):
        src = """
        def field_layout(fmt, cfg):
            return [("mcs", 5)]

        def pack(dci, cfg):
            bits = []
            for name, width in field_layout(dci.format, cfg):
                bits.append(0)
            return bits

        def unpack(bits, cfg):
            return bits[0:5]
        """
        findings = lint(src, "phy/dci.py")
        assert any("no matching unpack" in f.message for f in findings)

    def test_flags_coding_contract_mismatch(self):
        src = """
        def encode_block(bits):
            return crc_attach(bits, "crc24a")

        def decode_block(bits):
            return crc_check(bits, "crc24b")
        """
        findings = lint(src, "phy/block.py")
        assert any("coding contract mismatch" in f.message
                   for f in findings)
        assert any("crc24a" in f.message for f in findings)

    def test_accepts_symmetric_coded_channel(self):
        src = """
        def encode_block(bits, cell_id):
            with_crc = crc_attach(bits, "crc24c")
            code = polar.construct(with_crc.size, E_BITS)
            return modulate(polar.encode(with_crc, code), QPSK)

        def decode_block(symbols, k, noise_var):
            llrs = demodulate_soft(symbols, QPSK, noise_var)
            code = polar.construct(k + 24, E_BITS)
            block = polar.decode(llrs, code)
            if not crc_check(block, "crc24c"):
                return None
            return block[:k]
        """
        findings = lint(src, "phy/block.py")
        assert not findings

    def test_flags_layout_field_unknown_to_dci(self):
        src = """
        class Dci:
            mcs: int

        class DciSizeConfig:
            n_prb_bwp: int

        def field_layout(fmt, cfg):
            return [("mcs", 5), ("bogus", 2)]

        def pack(dci, cfg):
            return list(field_layout(dci, cfg))

        def unpack(bits, cfg):
            return list(field_layout(None, cfg))
        """
        findings = lint(src, "phy/dci.py")
        assert any("'bogus'" in f.message for f in findings)

    def test_flags_layout_width_not_from_size_config(self):
        src = """
        class Dci:
            mcs: int

        class DciSizeConfig:
            mcs_bits: int

        def field_layout(fmt, cfg):
            return [("mcs", cfg.imaginary_bits)]

        def pack(dci, cfg):
            return list(field_layout(dci, cfg))

        def unpack(bits, cfg):
            return list(field_layout(None, cfg))
        """
        findings = lint(src, "phy/dci.py")
        assert any("neither a literal nor derived" in f.message
                   for f in findings)

    def test_real_dci_module_is_clean(self):
        from pathlib import Path
        import repro.phy.dci as dci_mod
        findings = LintEngine().run_file(Path(dci_mod.__file__),
                                         rel="phy/dci.py")
        assert not findings

    def test_nested_codec_width_mismatch_in_sub_message(self):
        """A nested codec is checked on its own: the outer message
        delegating to it must not mask the inner asymmetry."""
        src = """
        class Sub:
            def encode_into(self, w):
                w.write(self.kind, 3)
                w.write(self.level, 5)

            @classmethod
            def decode_from(cls, reader):
                return cls(kind=reader.read(3), level=reader.read(4))

        class Outer:
            def encode(self):
                w = BitWriter()
                w.write(self.a, 2)
                self.sub.encode_into(w)
                return w.to_bits()

            @classmethod
            def decode_fields(cls, reader):
                return cls(a=reader.read(2),
                           sub=Sub.decode_from(reader))
        """
        findings = lint(src, "rrc/messages.py")
        r002 = [f for f in findings if f.rule_id == "R002"]
        assert r002, findings
        assert any("5 bits" in f.message and "4 bits" in f.message
                   for f in r002)

    def test_layout_width_missing_from_size_config_is_flagged(self):
        """A layout width read off DciSizeConfig must name a field the
        config actually declares — the cross-check miss."""
        src = """
        class Dci:
            freq: int

        class DciSizeConfig:
            freq_bits: int

        def field_layout(fmt, cfg):
            return [("freq", cfg.freq_bits_typo)]

        def pack(dci, cfg):
            return list(field_layout(dci, cfg))

        def unpack(bits, cfg):
            return list(field_layout(None, cfg))
        """
        findings = lint(src, "phy/dci.py")
        assert any(f.rule_id == "R002" for f in findings)

    def test_layout_width_present_on_size_config_is_clean(self):
        src = """
        class Dci:
            freq: int

        class DciSizeConfig:
            freq_bits: int

        def field_layout(fmt, cfg):
            return [("freq", cfg.freq_bits)]

        def pack(dci, cfg):
            return list(field_layout(dci, cfg))

        def unpack(bits, cfg):
            return list(field_layout(None, cfg))
        """
        findings = lint(src, "phy/dci.py")
        assert not [f for f in findings if f.rule_id == "R002"]


class TestR003FloatEquality:
    def test_flags_float_equality_in_phy(self):
        findings = lint("def f(x):\n    return x == 1.0\n", "phy/agc.py")
        assert rule_ids(findings) == {"R003"}

    def test_flags_not_equal_in_radio(self):
        findings = lint("def f(r):\n    return r != 0.5\n",
                        "radio/frontend.py")
        assert rule_ids(findings) == {"R003"}

    def test_flags_identity_with_literal(self):
        findings = lint("def f(x):\n    return x is 1\n", "phy/agc.py")
        assert rule_ids(findings) == {"R003"}
        assert "identity" in findings[0].message

    def test_allows_outside_hot_paths(self):
        findings = lint("def f(x):\n    return x == 1.0\n",
                        "analysis/metrics.py")
        assert not findings

    def test_allows_int_equality_and_inequalities(self):
        src = """
        def f(x):
            return x == 1 or x <= 1.0 or x > 2.5
        """
        findings = lint(src, "phy/agc.py")
        assert not findings


class TestR004SlotArithmetic:
    def test_flags_raw_slot_modulo(self):
        findings = lint("def f(s):\n    return s % 20\n",
                        "phy/dmrs_like.py")
        assert rule_ids(findings) == {"R004"}

    def test_flags_sfn_wrap_outside_helpers(self):
        findings = lint("def f(sfn):\n    return sfn % 1024\n",
                        "gnb/scheduler.py")
        assert "R004" in rule_ids(findings)

    def test_allows_numerology_module(self):
        findings = lint("def f(s):\n    return s % 20\n",
                        "phy/numerology.py")
        assert not findings

    def test_allows_non_slot_moduli(self):
        findings = lint("def f(x, n):\n    return x % 3 + x % n\n",
                        "gnb/scheduler.py")
        assert not findings

    def test_flags_inline_scs_table(self):
        src = """
        def slots(scs_khz):
            return {15: 1, 30: 2, 60: 4}[scs_khz]
        """
        findings = lint(src, "core/scope.py")
        assert "R004" in rule_ids(findings)
        assert "SCS-keyed" in findings[0].message

    def test_allows_named_scs_table(self):
        findings = lint("_SCS_CODES = {15: 0, 30: 1, 60: 2}\n",
                        "rrc/messages.py")
        assert not rule_ids(findings) & {"R004"}

    def test_allows_scs_table_in_constants(self):
        findings = lint("def f():\n    return {15: 1, 30: 2}\n",
                        "constants.py")
        assert not findings

    def test_ignores_non_scs_dicts(self):
        src = """
        def f():
            return {1: 10, 2: 20}, {15: "low"}, {30: 2}
        """
        findings = lint(src, "core/scope.py")
        assert not findings


class TestR005Determinism:
    def test_flags_stdlib_random(self):
        src = """
        import random

        def backoff():
            return random.randint(0, 15)
        """
        findings = lint(src, "gnb/rach.py")
        assert "R005" in rule_ids(findings)

    def test_flags_random_import_from(self):
        findings = lint("from random import choice\n", "ue/traffic.py")
        assert "R005" in rule_ids(findings)

    def test_flags_numpy_legacy_global_rng(self):
        src = """
        import numpy as np

        def noise():
            return np.random.rand()
        """
        findings = lint(src, "ue/channel.py")
        assert "R005" in rule_ids(findings)

    def test_flags_unseeded_default_rng(self):
        src = """
        import numpy as np

        def make():
            return np.random.default_rng()
        """
        findings = lint(src, "simulation.py")
        assert "R005" in rule_ids(findings)

    def test_flags_wall_clock(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        findings = lint(src, "gnb/gnb.py")
        assert "R005" in rule_ids(findings)

    def test_allows_seeded_rng(self):
        src = """
        import numpy as np

        def make(seed):
            return np.random.default_rng(seed)
        """
        findings = lint(src, "gnb/gnb.py")
        assert not findings

    def test_allows_randomness_outside_sim_core(self):
        src = """
        import numpy as np

        def bootstrap():
            return np.random.rand()
        """
        findings = lint(src, "analysis/metrics.py")
        assert not findings


STAGE_PREAMBLE = """
class Stage:
    def __init__(self, name, fn, parallel=False):
        self.name = name
        self.fn = fn
        self.parallel = parallel


def parallel_stage(fn):
    return fn
"""


class TestR006StagePurity:
    def lint_stage(self, body):
        return lint(STAGE_PREAMBLE + textwrap.dedent(body),
                    "core/pipeline.py")

    def r006(self, findings):
        return [f for f in findings if f.rule_id == "R006"]

    def test_decorated_root_with_tracked_mutation(self):
        findings = self.lint_stage("""
        @parallel_stage
        def decode(ctx):
            ctx.tracked[1].last_seen_s = 2.0
        """)
        r006 = self.r006(findings)
        assert r006 and "mutates-tracked" in r006[0].message

    def test_stage_call_root_with_transitive_rng(self):
        findings = self.lint_stage("""
        import numpy as np


        def helper():
            return np.random.default_rng().random()


        def decode(ctx):
            return helper()


        STAGE = Stage("dci", decode, parallel=True)
        """)
        r006 = self.r006(findings)
        assert r006
        # The witness chain names the hop and the seed site.
        assert any("decode -> helper" in f.message for f in r006)

    def test_wall_clock_in_closure(self):
        findings = self.lint_stage("""
        import time


        @parallel_stage
        def decode(ctx):
            return time.time()
        """)
        assert any("clock" in f.message for f in self.r006(findings))

    def test_batched_closure_with_clock_is_flagged(self):
        """The batch kernels' purity contract: a wave helper that
        samples the wall clock poisons the whole batched stage."""
        findings = self.lint_stage("""
        import time


        def decode_wave(rows):
            deadline = time.time() + 0.1
            return [row for row in rows if time.time() < deadline]


        @parallel_stage
        def decode_batch(ctx):
            return decode_wave(ctx.rows)
        """)
        r006 = self.r006(findings)
        assert any("decode_batch -> decode_wave" in f.message
                   for f in r006)

    def test_counter_rng_is_allowed(self):
        findings = self.lint_stage("""
        def counter_uniform(*fields):
            return 0.5


        @parallel_stage
        def decode(ctx):
            return counter_uniform(ctx.slot, 7)
        """)
        assert not self.r006(findings)

    def test_pure_stage_is_clean(self):
        findings = self.lint_stage("""
        @parallel_stage
        def decode(ctx):
            return [u for u in ctx.tracked if u % 2]
        """)
        assert not self.r006(findings)

    def test_backbone_effects_do_not_fire(self):
        """Effects in non-parallel stages are the contract, not a
        violation."""
        findings = self.lint_stage("""
        import numpy as np


        def backbone(ctx):
            return np.random.default_rng(3).random()


        STAGE = Stage("sync", backbone)
        """)
        assert not self.r006(findings)


class TestR007RngOwnership:
    def r007(self, findings):
        return [f for f in findings if f.rule_id == "R007"]

    def test_stdlib_random_in_core(self):
        findings = lint("""
        import random

        def flip():
            return random.random()
        """, "core/decider.py")
        assert any("unowned global randomness" in f.message
                   for f in self.r007(findings))

    def test_stdlib_random_import_from_in_core(self):
        findings = lint("from random import choice\n", "core/decider.py")
        assert self.r007(findings)

    def test_legacy_np_random_in_core(self):
        findings = lint("""
        import numpy as np

        def noise(n):
            return np.random.randn(n)
        """, "core/noise.py")
        assert any("global RNG state" in f.message
                   for f in self.r007(findings))

    def test_unseeded_default_rng(self):
        findings = lint("""
        import numpy as np

        def make():
            return np.random.default_rng()
        """, "core/factory.py")
        assert any("entropy-seeded" in f.message
                   for f in self.r007(findings))

    def test_fresh_generator_one_shot_draw(self):
        findings = lint("""
        import numpy as np

        def decide():
            return np.random.default_rng(7).random() < 0.5
        """, "core/decider.py")
        assert any("discarded" in f.message for f in self.r007(findings))

    def test_seeded_stored_generator_is_clean(self):
        findings = lint("""
        import numpy as np

        class Scope:
            def __init__(self, seed):
                self._rng = np.random.default_rng(seed)

            def decide(self):
                return self._rng.random() < 0.5
        """, "core/scope_like.py")
        assert not self.r007(findings)

    def test_seeded_generator_in_parallel_closure_is_flagged(self):
        findings = lint(STAGE_PREAMBLE + textwrap.dedent("""
        import numpy as np


        def decode(ctx):
            rng = np.random.default_rng(1234)
            return rng


        STAGE = Stage("dci", decode, parallel=True)
        """), "core/pipeline.py")
        assert any("reachable from a parallel" in f.message
                   for f in self.r007(findings))

    def test_not_applied_outside_core(self):
        findings = lint("""
        import numpy as np

        def bootstrap():
            return np.random.default_rng()
        """, "analysis/resample.py")
        assert not self.r007(findings)


class TestR008DtypeHygiene:
    def r008(self, findings):
        return [f for f in findings if f.rule_id == "R008"]

    def test_flags_dtypeless_allocators_in_phy(self):
        findings = lint("""
        import numpy as np

        def scratch(n):
            return np.zeros(n), np.empty(n), np.ones(n), np.full(n, 0.5)
        """, "phy/kernel.py")
        assert len(self.r008(findings)) == 4

    def test_flags_stacked_batch_allocation(self):
        """The batched-gather shape: a dtype-less ``(rows, width)``
        scratch matrix upcasts every stacked candidate to float64."""
        findings = lint("""
        import numpy as np

        def gather_batch(grid, starts, width):
            stacked = np.empty((len(starts), width))
            for row, start in enumerate(starts):
                stacked[row] = grid[start:start + width]
            return stacked
        """, "phy/pdcch.py")
        assert len(self.r008(findings)) == 1

    def test_batch_kernel_with_pinned_dtypes_is_clean(self):
        findings = lint("""
        import numpy as np

        def gather_batch(grid, starts, width):
            stacked = np.empty((len(starts), width),
                               dtype=np.complex128)
            energies = np.zeros(len(starts), dtype=np.float64)
            return stacked, energies
        """, "phy/pdcch.py")
        assert not self.r008(findings)

    def test_dtype_keyword_is_clean(self):
        findings = lint("""
        import numpy as np

        def scratch(n):
            return np.zeros(n, dtype=np.complex64)
        """, "phy/kernel.py")
        assert not self.r008(findings)

    def test_positional_dtype_is_clean(self):
        findings = lint("""
        import numpy as np

        def scratch(n):
            return np.zeros(n, np.float32), np.full(n, 0.5, np.float32)
        """, "phy/kernel.py")
        assert not self.r008(findings)

    def test_like_variants_are_exempt(self):
        findings = lint("""
        import numpy as np

        def scratch(proto):
            return np.zeros_like(proto), np.empty_like(proto)
        """, "phy/kernel.py")
        assert not self.r008(findings)

    def test_applies_to_radio_but_not_analysis(self):
        src = """
        import numpy as np

        def scratch(n):
            return np.zeros(n)
        """
        assert self.r008(lint(src, "radio/frontend.py"))
        assert not self.r008(lint(src, "analysis/metrics.py"))


class TestR009WireEscape:
    def r009(self, findings):
        return [f for f in findings if f.rule_id == "R009"]

    PREAMBLE = """
        import threading

        import numpy as np


        class Stage:
            def __init__(self, name, fn, pack=None, parallel=False):
                self.name = name
                self.fn = fn
                self.pack = pack
    """

    def test_flags_every_payload_escape(self):
        findings = self.r009(lint(self.PREAMBLE + """
        def decode_job(grid):
            return grid

        class Pipeline:
            def __init__(self, obs):
                self.tracked = {}
                self._rng = np.random.default_rng(0)
                self._obs = obs
                self.stage = Stage("d", None, pack=self._pack)

            def _pack(self, ctx):
                payload = {
                    "tracked": ctx.tracked,
                    "rng": self._rng,
                    "obs": self._obs,
                    "fn": lambda x: x,
                    "log": open("x.log", "w"),
                }
                return decode_job, payload
        """, "core/scope.py"))
        reasons = " ".join(f.message for f in findings)
        assert len(findings) == 5
        assert "tracked-UE table" in reasons
        assert "RNG state" in reasons
        assert "observability handle" in reasons
        assert "lambda" in reasons
        assert "open file handle" in reasons

    def test_flags_unsafe_instance_in_job_result(self):
        findings = self.r009(lint(self.PREAMBLE + """
        class Decoder:
            def __init__(self):
                self._lock = threading.Lock()

        def decode_job(grid):
            decoder = Decoder()
            return decoder, 0

        class Pipeline:
            def __init__(self):
                self.stage = Stage("d", None, pack=self._pack)

            def _pack(self, ctx):
                return decode_job, {"grid": ctx.grid}
        """, "core/scope.py"))
        assert len(findings) == 1
        assert "Decoder" in findings[0].message
        assert "lock" in findings[0].message

    def test_sanctioned_projections_are_clean(self):
        findings = self.r009(lint(self.PREAMBLE + """
        def pack_tracked_for_decode(tracked):
            return frozenset(tracked)

        def decode_job(grid, tracked):
            return len(tracked)

        class Pipeline:
            def __init__(self, obs):
                self.tracked = {}
                self._obs = obs
                self.stage = Stage("d", None, pack=self._pack)

            def _pack(self, ctx):
                return decode_job, {
                    "tracked": pack_tracked_for_decode(ctx.tracked),
                    "snapshot": frozenset(ctx.tracked),
                    "collect": bool(self._obs),
                }
        """, "core/scope.py"))
        assert not findings

    def test_not_applied_without_pack_root(self):
        findings = self.r009(lint("""
        def helper(tracked, rng, obs):
            return tracked, rng, obs
        """, "core/scope.py"))
        assert not findings


class TestR010DtypeDrift:
    def r010(self, findings):
        return [f for f in findings if f.rule_id == "R010"]

    def test_flags_upcast_and_return_drift(self):
        findings = self.r010(lint('''
        import numpy as np

        def scale(llrs):
            """Scale.

            Layout: llrs (B, E) float32
            Layout: return (B, E) float32
            """
            weights = np.full(llrs.shape[1], 0.5)
            return llrs * weights
        ''', "phy/kernel.py"))
        kinds = " ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "silently upcasts" in kinds
        assert "declared 'Layout: return" in kinds

    def test_flags_twin_return_drift(self):
        findings = self.r010(lint("""
        import numpy as np

        def pack(bits):
            return np.asarray(bits, dtype=np.uint8)

        def pack_batch(bits):
            return np.asarray(bits, dtype=np.uint16)
        """, "phy/kernel.py"))
        assert len(findings) == 1
        assert "scalar twin" in findings[0].message

    def test_matching_twins_are_clean(self):
        findings = self.r010(lint("""
        import numpy as np

        def pack(bits):
            return np.asarray(bits, dtype=np.uint8)

        def pack_batch(bits):
            return np.asarray(bits, dtype=np.uint8)
        """, "phy/kernel.py"))
        assert not findings

    def test_only_hot_paths_are_checked(self):
        src = '''
        import numpy as np

        def scale(llrs):
            """Layout: llrs (B, E) float32"""
            return llrs * np.full(3, 0.5)
        '''
        assert self.r010(lint(src, "core/dci_decoder.py"))
        assert not self.r010(lint(src, "analysis/metrics.py"))


class TestR011Layout:
    def r011(self, findings):
        return [f for f in findings if f.rule_id == "R011"]

    def test_flags_symbol_misaligned_broadcast(self):
        findings = self.r011(lint('''
        def weight(llrs, scales):
            """Weight.

            Layout: llrs (N, B) float64
            Layout: scales (N) float64
            """
            return llrs * scales
        ''', "phy/kernel.py"))
        assert len(findings) == 1
        assert "N == B" in findings[0].message

    def test_aligned_broadcast_is_clean(self):
        findings = self.r011(lint('''
        def weight(llrs, scales):
            """Weight.

            Layout: llrs (N, B) float64
            Layout: scales (B) float64
            """
            return llrs * scales
        ''', "phy/kernel.py"))
        assert not findings

    def test_reshaped_vector_is_clean(self):
        findings = self.r011(lint('''
        def weight(llrs, scales):
            """Weight.

            Layout: llrs (N, B) float64
            Layout: scales (N) float64
            """
            return llrs * scales[:, None]
        ''', "phy/kernel.py"))
        assert not findings


class TestR012ObsConformance:
    def r012(self, findings):
        return [f for f in findings if f.rule_id == "R012"]

    def lint_obs(self, body):
        return self.r012(lint(body, "core/runtime.py"))

    def test_flags_dynamic_name(self):
        findings = self.lint_obs("""
            def run(self, stage):
                self._obs.emit(f"stage.{stage}", slot=1)
        """)
        assert len(findings) == 1
        assert "built at runtime" in findings[0].message

    def test_flags_unknown_name(self):
        findings = self.lint_obs("""
            def run(self):
                self._obs.emit("decode.wat", slot=1)
        """)
        assert len(findings) == 1
        assert "not declared in KNOWN_EVENTS" in findings[0].message

    def test_flags_kind_mismatch(self):
        findings = self.lint_obs("""
            def run(self):
                self._obs.emit("dci.decoded", slot=1)
        """)
        assert len(findings) == 1
        assert "declared kind 'counter'" in findings[0].message

    def test_flags_missing_required_field(self):
        findings = self.lint_obs("""
            def run(self):
                self._obs.count("stage.drop", stage="decode")
        """)
        assert len(findings) == 1
        assert "requires field 'reason'" in findings[0].message

    def test_flags_undeclared_field(self):
        findings = self.lint_obs("""
            def run(self):
                self._obs.emit("sync.acquired", slot=1, beam=3)
        """)
        assert len(findings) == 1
        assert "field 'beam'" in findings[0].message

    def test_flags_dynamic_label_value(self):
        findings = self.lint_obs("""
            def run(self, slot):
                self._obs.count("stage.drop", stage="decode",
                                reason=f"slot-{slot}")
        """)
        assert len(findings) == 1
        assert "cardinality" in findings[0].message

    def test_flags_deferred_queue_entry(self):
        findings = self.lint_obs("""
            def run(self, slot):
                self.events.append(("decode.nope", {"slot": slot}))
        """)
        assert len(findings) == 1
        assert "decode.nope" in findings[0].message

    def test_relay_is_exempt(self):
        findings = self.lint_obs("""
            def run(self, name, fields):
                self._obs.emit(name, **fields)
        """)
        assert not findings

    def test_conforming_sites_are_clean(self):
        findings = self.lint_obs("""
            def run(self, slot, duration_s):
                self._obs.emit("sync.acquired", slot=slot)
                self._obs.count("dci.decoded", slot=slot)
                self._obs.timing("stage.span", duration_s,
                                 stage="decode", outcome="ok")
                self.events.append(("msg4.tracked",
                                    {"slot": slot, "rnti": 1,
                                     "stage": "msg4"}))
        """)
        assert not findings

    def test_non_obs_receiver_is_ignored(self):
        findings = self.lint_obs("""
            def run(self, queue):
                queue.emit("decode.wat", slot=1)
        """)
        assert not findings
