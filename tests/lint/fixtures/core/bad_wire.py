"""R009 fixture: wire payloads that capture every kind of shared state.

A ``Stage(..., pack=...)`` site names the pack root; its payload dict
ships the live tracked table, a stateful RNG, an obs handle, a lambda
and an open file — one escape per field.  The resolved job returns an
instance of a class whose ``__init__`` builds a lock, so the result
path fires the unsafe-instance check too.
"""

import threading

import numpy as np


class Stage:
    def __init__(self, name, fn, pack=None, parallel=False):
        self.name = name
        self.fn = fn
        self.pack = pack
        self.parallel = parallel


class BadDecoder:
    def __init__(self):
        self._lock = threading.Lock()


def bad_decode_job(grid, tracked):
    decoder = BadDecoder()
    return decoder, len(tracked)


class BadPipeline:
    def __init__(self, obs):
        self.tracked = {}
        self._rng = np.random.default_rng(0)
        self._obs = obs
        self.stage = Stage("decode", self._run, pack=self._pack)

    def _run(self, ctx):
        return ctx

    def _pack(self, ctx):
        payload = {
            "tracked": ctx.tracked,             # the live table
            "rng": self._rng,                   # forks the RNG stream
            "obs": self._obs,                   # emits from the worker
            "mapper": lambda llr: llr * 2.0,    # unpicklable
            "log": open("decode.log", "w"),     # open handle
        }
        return bad_decode_job, payload
