#!/usr/bin/env python3
"""Out-of-loop measurement of a commercial-style cell (paper section 6,
"Internet Measurement", and section 5.3.1).

Drives a T-Mobile-like come-and-go population through a full RAN
simulation with NR-Scope attached, then reports the measurements the
paper presents for the live cells: distinct UEs, active-time
distribution, and concurrent-UE counts — all recovered purely from
sniffed MSG 4s and DCIs.

Run:  python examples/commercial_cell_survey.py
"""

import numpy as np

from repro import NRScope, Simulation, TMOBILE_N25_PROFILE
from repro.gnb.gnb import GNodeB
from repro.radio.medium import lab_medium
from repro.ue.population import ComeAndGoProcess, TMOBILE_CELL1_PROFILES

SURVEY_S = 30.0


def main() -> None:
    # A scaled slice of the afternoon cell-1 population (the paper
    # observes for 10 minutes; the statistics converge much earlier).
    profile = TMOBILE_CELL1_PROFILES["afternoon"]
    sessions = ComeAndGoProcess(profile, seed=3).generate(SURVEY_S)

    sim = Simulation(TMOBILE_N25_PROFILE,
                     gnb=GNodeB(TMOBILE_N25_PROFILE, seed=3),
                     medium=lab_medium(), seed=3)
    sim.schedule_sessions(sessions, traffic="onoff", rate_bps=2e6)
    scope = NRScope.attach(sim, snr_db=15.0, idle_timeout_s=5.0)
    sim.run(seconds=SURVEY_S)

    # --- what the sniffer saw -------------------------------------
    seen = scope.counters.msg4_seen
    missed = scope.counters.msg4_missed
    print(f"survey window: {SURVEY_S:.0f} s of a cell-1 afternoon")
    print(f"sessions generated: {len(sessions)}; RACH MSG4 decoded: "
          f"{seen}, missed: {missed}")

    # Active-time distribution of UEs whose first/last DCIs NR-Scope
    # observed (the sniffer's view of Fig 10).
    active_times = []
    for rnti in scope.telemetry.rntis():
        records = scope.telemetry.for_rnti(rnti)
        if len(records) >= 2:
            active_times.append(records[-1].time_s - records[0].time_s)
    if active_times:
        arr = np.array(active_times)
        print(f"observed active times: median {np.median(arr):.1f} s, "
              f"p90 {np.percentile(arr, 90):.1f} s "
              f"(paper: 90% under 35 s)")

    # Concurrent scheduling activity per second (the paper's Fig 11).
    per_second: dict[int, set[int]] = {}
    for record in scope.telemetry.records:
        per_second.setdefault(int(record.time_s), set()).add(record.rnti)
    counts = [len(v) for v in per_second.values()]
    if counts:
        print(f"UEs scheduled per second: median {np.median(counts):.0f},"
              f" max {max(counts)} (paper: well under 60/minute)")

    # Cell-wide load from the decoded grants.
    total_bits = sum(r.tbs_bits for r in scope.telemetry.records
                     if r.downlink and not r.is_retransmission)
    print(f"aggregate DL volume decoded: {total_bits / 8e6:.1f} MB "
          f"({total_bits / SURVEY_S / 1e6:.2f} Mbps cell throughput)")


if __name__ == "__main__":
    main()
