"""Session report: one human-readable summary of a telemetry run.

Condenses everything a finished :class:`~repro.core.scope.NRScope`
session knows — per-UE throughput, MCS, retransmissions, CQI and
scheduling requests, plus cell-level utilisation — into the text report
the tool's operator reads after a capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.core.runtime import RuntimeStats


class SummaryError(ValueError):
    """Raised when a report is requested from an unusable session."""


@dataclass(frozen=True)
class UeSummary:
    """One UE's session statistics."""

    rnti: int
    dl_mbps: float
    ul_mbps: float
    mean_mcs: float
    retx_ratio: float
    latest_cqi: int | None
    scheduling_requests: int
    active_time_s: float
    n_dcis: int


@dataclass(frozen=True)
class CellSummary:
    """Cell-level aggregates."""

    duration_s: float
    slots_observed: int
    dcis_decoded: int
    ues_discovered: int
    ues_missed: int
    aggregate_dl_mbps: float
    mean_prb_utilisation: float


@dataclass
class SessionReport:
    """The full report: cell aggregates plus per-UE rows."""

    cell: CellSummary
    ues: list[UeSummary]
    runtime: RuntimeStats | None = None

    def render(self) -> str:
        """Multi-table text rendering."""
        header = (
            f"Telemetry session: {self.cell.duration_s:.1f} s, "
            f"{self.cell.slots_observed} slots observed, "
            f"{self.cell.dcis_decoded} DCIs decoded\n"
            f"UEs: {self.cell.ues_discovered} discovered via RACH"
            f" ({self.cell.ues_missed} missed), aggregate DL "
            f"{self.cell.aggregate_dl_mbps:.2f} Mbps, mean PRB "
            f"utilisation {100 * self.cell.mean_prb_utilisation:.1f}%")
        table = Table(
            title="Per-UE telemetry",
            columns=("RNTI", "DL Mbps", "UL Mbps", "MCS", "retx %",
                     "CQI", "SRs", "active s", "DCIs"),
            rows=tuple((f"0x{u.rnti:04x}", u.dl_mbps, u.ul_mbps,
                        u.mean_mcs, 100 * u.retx_ratio,
                        u.latest_cqi if u.latest_cqi is not None else "-",
                        u.scheduling_requests, u.active_time_s,
                        u.n_dcis) for u in self.ues))
        text = header + "\n\n" + table.render()
        if self.runtime is not None:
            stats = self.runtime
            runtime_table = Table(
                title=(f"Runtime stages [{stats.executor}] - "
                       f"{stats.slots_completed}/{stats.slots_submitted}"
                       f" slots, {stats.slots_dropped} dropped "
                       f"({stats.dcis_dropped} DCIs), "
                       f"{stats.budget_overruns} over budget"),
                columns=("stage", "calls", "mean us", "max us"),
                rows=tuple((s.name, s.calls, s.mean_us, 1e6 * s.max_s)
                           for s in stats.stages))
            text += "\n\n" + runtime_table.render()
        return text


def build_session_report(scope, duration_s: float,
                         n_prb_carrier: int | None = None) \
        -> SessionReport:
    """Assemble a report from a finished scope session."""
    if duration_s <= 0:
        raise SummaryError(f"duration must be positive: {duration_s}")
    telemetry = scope.telemetry
    ues: list[UeSummary] = []
    aggregate_dl_bits = 0
    for rnti in telemetry.rntis():
        records = telemetry.for_rnti(rnti)
        dl_bits = telemetry.bits_between(rnti, 0.0, duration_s,
                                         downlink=True)
        ul_bits = telemetry.bits_between(rnti, 0.0, duration_s,
                                         downlink=False)
        aggregate_dl_bits += dl_bits
        mcs = telemetry.mcs_distribution(rnti)
        first = records[0].time_s
        last = records[-1].time_s
        ues.append(UeSummary(
            rnti=rnti,
            dl_mbps=dl_bits / duration_s / 1e6,
            ul_mbps=ul_bits / duration_s / 1e6,
            mean_mcs=float(np.mean(mcs)) if mcs else 0.0,
            retx_ratio=telemetry.retransmission_ratio(rnti),
            latest_cqi=scope.uci.latest_cqi(rnti),
            scheduling_requests=scope.uci.scheduling_request_count(rnti),
            active_time_s=max(last - first, 0.0),
            n_dcis=len(records)))
    ues.sort(key=lambda u: -u.dl_mbps)

    utilisation = 0.0
    if scope.spare is not None and scope.spare.history:
        n_prb = n_prb_carrier or scope.spare.n_prb_carrier
        used = [usage.used_prbs for usage, _ in scope.spare.history]
        utilisation = float(np.mean(used)) / n_prb
    cell = CellSummary(
        duration_s=duration_s,
        slots_observed=scope.counters.slots_observed,
        dcis_decoded=scope.counters.dcis_decoded,
        ues_discovered=scope.counters.msg4_seen,
        ues_missed=scope.counters.msg4_missed,
        aggregate_dl_mbps=aggregate_dl_bits / duration_s / 1e6,
        mean_prb_utilisation=utilisation)
    return SessionReport(cell=cell, ues=ues,
                         runtime=getattr(scope, "runtime_stats", None))
