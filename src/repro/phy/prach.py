"""PRACH preambles: Zadoff-Chu sequences and detection (TS 38.211 6.3.3).

MSG 1 of the random access procedure is a Zadoff-Chu preamble.  The gNB
distinguishes up to 64 preambles per occasion, built from cyclic shifts
of prime-length ZC root sequences; detection is circular correlation,
whose peak position reveals the shift (and, on a real system, the
round-trip timing).  The sniffer never receives the uplink, but the
substrate models contention faithfully: two UEs picking the same
preamble in one occasion collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Short preamble format length (L_RA = 139, 38.211 Table 6.3.3.1-1).
PREAMBLE_LEN = 139

#: Preambles available per occasion (38.331 totalNumberOfRA-Preambles).
N_PREAMBLES = 64


class PrachError(ValueError):
    """Raised for invalid preamble configuration."""


@lru_cache(maxsize=None)
def zadoff_chu_root(root: int) -> np.ndarray:
    """The length-139 ZC root sequence ``x_u(n) = e^{-j pi u n (n+1) / L}``."""
    if not 1 <= root < PREAMBLE_LEN:
        raise PrachError(f"ZC root out of range: {root}")
    n = np.arange(PREAMBLE_LEN)
    return np.exp(-1j * np.pi * root * n * (n + 1) / PREAMBLE_LEN)


@dataclass(frozen=True)
class PrachConfig:
    """Preamble numbering: roots and cyclic shift spacing.

    With ``n_shifts_per_root`` shifts per root, preamble ``i`` maps to
    root ``roots[i // n_shifts]`` shifted by ``(i % n_shifts) * N_cs``.
    """

    first_root: int = 1
    n_shifts_per_root: int = 8
    n_cs: int = 17              # shift spacing (zeroCorrelationZone)

    def __post_init__(self) -> None:
        if self.n_shifts_per_root < 1:
            raise PrachError("need at least one shift per root")
        if self.n_cs * self.n_shifts_per_root > PREAMBLE_LEN:
            raise PrachError(
                f"{self.n_shifts_per_root} shifts of {self.n_cs} exceed"
                f" the sequence length")

    def preamble_to_root_shift(self, index: int) -> tuple[int, int]:
        """(root, cyclic shift) for preamble ``index``."""
        if not 0 <= index < N_PREAMBLES:
            raise PrachError(f"preamble index out of range: {index}")
        root_offset, shift_index = divmod(index, self.n_shifts_per_root)
        root = self.first_root + root_offset
        if root >= PREAMBLE_LEN:
            raise PrachError(f"preamble {index} exceeds available roots")
        return root, shift_index * self.n_cs


def generate_preamble(index: int,
                      config: PrachConfig | None = None) -> np.ndarray:
    """Time sequence of one preamble (unit-magnitude samples)."""
    config = config or PrachConfig()
    root, shift = config.preamble_to_root_shift(index)
    return np.roll(zadoff_chu_root(root), -shift)


@dataclass(frozen=True)
class PreambleDetection:
    """One detected preamble in an occasion."""

    index: int
    metric: float               # normalised correlation peak (0..1)


def detect_preambles(received: np.ndarray,
                     config: PrachConfig | None = None,
                     threshold: float = 0.35) -> list[PreambleDetection]:
    """Detect all preambles present in one PRACH occasion.

    Correlates the received samples against each root sequence (one FFT
    per root — ZC roots make every shift detectable from a single
    circular correlation) and reports each shift bin whose peak clears
    the threshold.
    """
    config = config or PrachConfig()
    samples = np.asarray(received, dtype=np.complex128).ravel()
    if samples.size != PREAMBLE_LEN:
        raise PrachError(
            f"occasion must be {PREAMBLE_LEN} samples, got {samples.size}")
    if not 0.0 < threshold <= 1.0:
        raise PrachError(f"threshold out of range: {threshold}")
    energy = float(np.linalg.norm(samples))
    if energy < 1e-9:
        return []
    detections: list[PreambleDetection] = []
    n_roots = -(-N_PREAMBLES // config.n_shifts_per_root)
    fft_rx = np.fft.fft(samples)
    reference_norm = np.sqrt(PREAMBLE_LEN)  # ZC samples are unit magnitude
    for root_offset in range(n_roots):
        root = config.first_root + root_offset
        reference = zadoff_chu_root(root)
        # Circular cross-correlation via FFT, normalised to the
        # correlation coefficient: 1.0 for a clean exact match,
        # ~1/sqrt(L) for noise.
        correlation = np.fft.ifft(fft_rx * np.fft.fft(reference).conj())
        magnitude = np.abs(correlation) / (energy * reference_norm)
        for shift_index in range(config.n_shifts_per_root):
            index = root_offset * config.n_shifts_per_root + shift_index
            if index >= N_PREAMBLES:
                break
            # The preamble was rolled by -shift, so its correlation
            # peak appears at lag = L - shift (mod L).
            shift = shift_index * config.n_cs
            window = magnitude[
                (PREAMBLE_LEN - shift) % PREAMBLE_LEN]
            if window >= threshold:
                detections.append(PreambleDetection(index=index,
                                                    metric=float(window)))
    return sorted(detections, key=lambda d: -d.metric)
