"""Uplink control information coding (TS 38.212 section 6.3).

UCI rides the PUCCH and carries three things NR-Scope's paper flags as
future work (section 7): HARQ-ACK feedback, scheduling requests, and
the channel quality indicator.  38.212 codes UCI by size: repetition
for 1-2 bits, a Reed-Muller-style (32, K) block code for 3-11 bits, and
CRC-aided polar above that.  This module implements all three regimes;
the small-block generator matrix is derived deterministically from Gold
sequences rather than copying Table 5.3.3.3-1 verbatim (a documented
substitution — both ends share it, and its distance properties are
checked by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.phy import polar
from repro.phy.crc import crc_attach, crc_check

#: Codeword length of the small-block code (matches RM(32, K)).
SMALL_BLOCK_N = 32

#: Payload sizes: repetition <= 2 < small block <= 11 < polar.
SMALL_BLOCK_MAX_K = 11

#: Rate-matched size used for polar-coded UCI on PUCCH format 3.
UCI_POLAR_E = 216


class UciError(ValueError):
    """Raised for unsupported UCI geometries."""


def _gf2_rank(rows: list[np.ndarray]) -> int:
    """Rank of binary vectors over GF(2) by Gaussian elimination."""
    basis: list[int] = []
    for row in rows:
        value = 0
        for bit in row:
            value = (value << 1) | int(bit)
        for pivot in basis:
            value = min(value, value ^ pivot)
        if value:
            basis.append(value)
            basis.sort(reverse=True)
    return len(basis)


@lru_cache(maxsize=1)
def _small_block_generator() -> np.ndarray:
    """(32 x 11) binary generator, full rank with good distance.

    Columns are drawn from a fixed-seed stream and accepted only when
    they are balanced, keep the generator full rank over GF(2), and
    keep the code's minimum weight healthy; the first column is all
    ones so the code contains the repetition code.  The resulting
    distance profile is checked by the tests (minimum weight >= 8,
    comparable to the standard's RM(32, K) basis).
    """
    rng = np.random.default_rng(0x5B10C)
    columns = [np.ones(SMALL_BLOCK_N, dtype=np.uint8)]
    while len(columns) < SMALL_BLOCK_MAX_K:
        candidate = rng.integers(0, 2, SMALL_BLOCK_N).astype(np.uint8)
        if not 12 <= candidate.sum() <= 20:
            continue
        if _gf2_rank(columns + [candidate]) != len(columns) + 1:
            continue
        trial = columns + [candidate]
        if _min_nonzero_weight(np.stack(trial, axis=1)) < 8:
            continue
        columns.append(candidate)
    return np.stack(columns, axis=1)


def _min_nonzero_weight(generator: np.ndarray) -> int:
    """Minimum weight over all nonzero codewords of a small generator."""
    k = generator.shape[1]
    messages = np.arange(1, 1 << k)
    bits = ((messages[:, None] >> np.arange(k)[None, :]) & 1) \
        .astype(np.uint8)
    return int(((bits @ generator.T) % 2).sum(axis=1).min())


def encode_small_block(bits: np.ndarray) -> np.ndarray:
    """(32, K) block encoding for 3..11 payload bits."""
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if not 3 <= arr.size <= SMALL_BLOCK_MAX_K:
        raise UciError(f"small block takes 3..11 bits, got {arr.size}")
    generator = _small_block_generator()[:, :arr.size]
    return (generator @ arr) % 2


def decode_small_block(llrs: np.ndarray, k: int) -> np.ndarray:
    """Maximum-likelihood decoding over all 2^K codewords.

    Vectorised correlation of the LLRs against every codeword; 2^11
    candidates is trivial work for numpy.
    """
    if not 3 <= k <= SMALL_BLOCK_MAX_K:
        raise UciError(f"small block takes 3..11 bits, got {k}")
    arr = np.asarray(llrs, dtype=float).ravel()
    if arr.size != SMALL_BLOCK_N:
        raise UciError(
            f"expected {SMALL_BLOCK_N} LLRs, got {arr.size}")
    messages = np.arange(1 << k)
    bits = ((messages[:, None] >> np.arange(k)[None, :]) & 1) \
        .astype(np.uint8)
    generator = _small_block_generator()[:, :k]
    codewords = (bits @ generator.T) % 2
    # Positive LLR favours 0: score = sum llr * (1 - 2 c).
    scores = (arr[None, :] * (1.0 - 2.0 * codewords)).sum(axis=1)
    return bits[int(np.argmax(scores))]


def encode_uci(bits: np.ndarray) -> np.ndarray:
    """Code a UCI payload per its size regime; returns coded bits."""
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size == 0:
        raise UciError("empty UCI payload")
    if arr.size <= 2:
        reps = SMALL_BLOCK_N // arr.size
        return np.tile(arr, reps)[:SMALL_BLOCK_N].copy()
    if arr.size <= SMALL_BLOCK_MAX_K:
        return encode_small_block(arr)
    with_crc = crc_attach(arr, "crc11")
    code = polar.construct(with_crc.size, UCI_POLAR_E)
    return polar.encode(with_crc, code)


def decode_uci(llrs: np.ndarray, payload_len: int) -> np.ndarray | None:
    """Invert :func:`encode_uci`; None when the polar CRC rejects.

    Repetition and small-block decodes always return a best guess (the
    standard gives them no CRC either); polar-coded payloads are gated
    by their CRC11.
    """
    if payload_len <= 0:
        raise UciError(f"invalid payload length: {payload_len}")
    arr = np.asarray(llrs, dtype=float).ravel()
    if payload_len <= 2:
        if arr.size != SMALL_BLOCK_N:
            raise UciError(
                f"expected {SMALL_BLOCK_N} LLRs, got {arr.size}")
        reps = SMALL_BLOCK_N // payload_len
        folded = arr[:reps * payload_len].reshape(reps, payload_len) \
            .sum(axis=0)
        return (folded < 0).astype(np.uint8)
    if payload_len <= SMALL_BLOCK_MAX_K:
        return decode_small_block(arr, payload_len)
    code = polar.construct(payload_len + 11, UCI_POLAR_E)
    if arr.size != UCI_POLAR_E:
        raise UciError(f"expected {UCI_POLAR_E} LLRs, got {arr.size}")
    block = polar.decode(arr, code)
    if not crc_check(block, "crc11"):
        return None
    return block[:payload_len]


@dataclass(frozen=True)
class UciReport:
    """Decoded uplink control content for one UE in one slot."""

    rnti: int
    slot_index: int
    harq_ack: tuple[int, ...] = ()
    scheduling_request: bool = False
    cqi: int | None = None

    #: Fixed report layout: [n_ack(2) | acks padded to 3 | sr(1) |
    #: cqi_present(1) | cqi(4)] = 11 bits, exactly the small-block
    #: code's maximum payload.
    REPORT_BITS = 11

    def to_bits(self) -> np.ndarray:
        """Serialise into the fixed 11-bit report layout."""
        if len(self.harq_ack) > 3:
            raise UciError("at most 3 HARQ-ACK bits per report here")
        if self.cqi is not None and not 0 <= self.cqi <= 15:
            raise UciError(f"CQI out of range: {self.cqi}")
        bits = [len(self.harq_ack) >> 1 & 1, len(self.harq_ack) & 1]
        padded = list(self.harq_ack) + [0] * (3 - len(self.harq_ack))
        bits.extend(padded)
        bits.append(1 if self.scheduling_request else 0)
        bits.append(1 if self.cqi is not None else 0)
        cqi = self.cqi if self.cqi is not None else 0
        bits.extend((cqi >> (3 - i)) & 1 for i in range(4))
        return np.array(bits, dtype=np.uint8)

    @classmethod
    def from_bits(cls, bits: np.ndarray, rnti: int,
                  slot_index: int) -> "UciReport":
        """Inverse of :meth:`to_bits`."""
        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size != cls.REPORT_BITS:
            raise UciError(
                f"UCI report is {cls.REPORT_BITS} bits, got {arr.size}")
        n_ack = (int(arr[0]) << 1) | int(arr[1])
        if n_ack > 3:
            raise UciError(f"invalid HARQ-ACK count: {n_ack}")
        acks = tuple(int(b) for b in arr[2:2 + n_ack])
        sr = bool(arr[5])
        cqi = None
        if arr[6]:
            cqi = 0
            for i in range(4):
                cqi = (cqi << 1) | int(arr[7 + i])
        return cls(rnti=rnti, slot_index=slot_index, harq_ack=acks,
                   scheduling_request=sr, cqi=cqi)
