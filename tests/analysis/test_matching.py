"""Tests for DCI matching against ground truth."""

from repro.analysis.matching import match_dcis, per_tti_reg_errors
from repro.core.telemetry import TelemetryRecord
from repro.gnb.gnb import DciRecord
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.grant import GrantConfig, dci_to_grant
from repro.phy.pdcch import PdcchCandidate

CONFIG = GrantConfig(bwp_n_prb=51)


def truth_record(slot=0, rnti=0x4601, n_prb=4, downlink=True):
    fmt = DciFormat.DL_1_1 if downlink else DciFormat.UL_0_1
    dci = Dci(format=fmt, rnti=rnti,
              freq_alloc_riv=riv_encode(0, n_prb, 51), time_alloc=1,
              mcs=10, ndi=0, rv=0, harq_id=0)
    grant = dci_to_grant(dci, CONFIG)
    return DciRecord(slot_index=slot, time_s=slot * 5e-4, rnti=rnti,
                     dci=dci, grant=grant,
                     candidate=PdcchCandidate(0, 2), search_space="ue",
                     is_retransmission=False, delivered=True,
                     payload_bytes=grant.tbs_bytes, n_packets=1)


def estimate_record(slot=0, rnti=0x4601, n_prb=4, downlink=True):
    return TelemetryRecord(slot_index=slot, time_s=slot * 5e-4, rnti=rnti,
                           downlink=downlink, tbs_bits=1000, n_prb=n_prb,
                           n_symbols=12, mcs_index=10, harq_id=0, ndi=0,
                           rv=0, is_retransmission=False,
                           aggregation_level=2)


class TestMatchDcis:
    def test_perfect_match(self):
        truth = [truth_record(slot=s) for s in range(5)]
        est = [estimate_record(slot=s) for s in range(5)]
        result = match_dcis(truth, est)
        assert len(result.matched) == 5
        assert result.miss_rate == 0.0
        assert result.phantom == []

    def test_miss_detected(self):
        truth = [truth_record(slot=s) for s in range(4)]
        est = [estimate_record(slot=s) for s in (0, 2)]
        result = match_dcis(truth, est)
        assert result.miss_rate == 0.5
        assert [r.slot_index for r in result.missed] == [1, 3]

    def test_phantom_detected(self):
        result = match_dcis([], [estimate_record()])
        assert len(result.phantom) == 1

    def test_duplicate_estimates_become_phantoms(self):
        truth = [truth_record()]
        est = [estimate_record(), estimate_record()]
        result = match_dcis(truth, est)
        assert len(result.matched) == 1
        assert len(result.phantom) == 1

    def test_direction_distinguishes(self):
        truth = [truth_record(downlink=True),
                 truth_record(downlink=False)]
        est = [estimate_record(downlink=True)]
        result = match_dcis(truth, est, downlink=False)
        assert result.miss_rate == 1.0

    def test_rnti_filter(self):
        truth = [truth_record(rnti=0x4601), truth_record(rnti=0x4602)]
        est = [estimate_record(rnti=0x4601)]
        result = match_dcis(truth, est, rnti=0x4601)
        assert result.miss_rate == 0.0
        assert result.n_ground_truth == 1

    def test_empty_truth_zero_miss(self):
        assert match_dcis([], []).miss_rate == 0.0

    def test_reg_errors(self):
        truth = [truth_record(n_prb=4)]
        est = [estimate_record(n_prb=3)]
        result = match_dcis(truth, est)
        assert result.reg_errors() == [12]  # one PRB x 12 symbols


class TestPerTtiRegErrors:
    def test_aligned_slots(self):
        truth = [truth_record(slot=0, n_prb=4),
                 truth_record(slot=0, rnti=0x4602, n_prb=2),
                 truth_record(slot=1, n_prb=5)]
        est = [estimate_record(slot=0, n_prb=4),
               estimate_record(slot=0, rnti=0x4602, n_prb=2)]
        errors = per_tti_reg_errors(truth, est)
        # Slot 0 perfect; slot 1 entirely missed (5 PRB x 12 symbols).
        assert errors == [0, 60]

    def test_mostly_zero_when_decoding_is_good(self):
        truth = [truth_record(slot=s) for s in range(100)]
        est = [estimate_record(slot=s) for s in range(99)]
        errors = per_tti_reg_errors(truth, est)
        zero_fraction = sum(e == 0 for e in errors) / len(errors)
        assert zero_fraction >= 0.99
