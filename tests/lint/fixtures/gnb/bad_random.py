"""R005 fixture: nondeterminism inside the simulation core."""

import random
import time

import numpy as np


def pick_backoff():
    return random.randint(0, 15)


def noise_sample():
    return np.random.rand()


def fresh_rng():
    return np.random.default_rng()


def timestamp():
    return time.time()
