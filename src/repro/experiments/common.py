"""Shared session machinery for the per-figure experiment modules.

Each experiment boils down to: build a simulation from a cell profile,
attach NR-Scope, run for a while, and compare telemetry against ground
truth.  ``run_session`` packages that; experiment modules add their
specific workloads and reductions.

Durations are scaled down from the paper's 10-minute sessions (see
EXPERIMENTS.md): the statistics being measured (per-DCI miss rates,
per-TTI REG errors, windowed throughput errors) converge within seconds
of simulated air time because every TTI contributes samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scope import NRScope
from repro.gnb.cell_config import CellProfile
from repro.simulation import Simulation


class ExperimentError(ValueError):
    """Raised for malformed experiment parameters."""


#: Default sniffer SNR on the lab bench (USRP a few metres from the gNB).
LAB_SNIFFER_SNR_DB = 18.0

#: Default average UE SNR in the lab networks.
LAB_UE_SNR_DB = 22.0


@dataclass
class SessionResult:
    """A finished telemetry session with both sides of the truth."""

    sim: Simulation
    scope: NRScope
    duration_s: float
    label: str = ""

    @property
    def gnb_log(self):
        """Ground truth (the srsRAN-log equivalent)."""
        return self.sim.gnb.log

    @property
    def telemetry(self):
        """What NR-Scope decoded."""
        return self.scope.telemetry

    def ue_truth_records(self, downlink: bool = True):
        """Scheduling DCIs in the gNB log (excluding broadcast/MSG4)."""
        records = self.gnb_log.downlink_records() if downlink \
            else self.gnb_log.uplink_records()
        return [r for r in records if r.search_space == "ue"]


def run_session(profile: CellProfile, n_ues: int, duration_s: float,
                seed: int = 0, traffic: str = "mixed",
                channel: str = "normal", mobility: str = "static",
                ue_snr_db: float = LAB_UE_SNR_DB,
                sniffer_snr_db: float = LAB_SNIFFER_SNR_DB,
                fidelity: str = "message", rate_bps: float = 4e6,
                scheduler: str = "rr", label: str = "",
                window_s: float = 0.2,
                max_ues_per_slot: int = 8,
                olla_target_bler: float | None = 0.1) -> SessionResult:
    """Run one complete telemetry session and return both logs.

    Experiment sessions run outer-loop link adaptation at the usual 10%
    BLER target by default — the paper's cells (srsRAN, Amarisoft,
    commercial) all deploy OLLA, and without it stale CQI reports under
    fast fading inflate HARQ drop rates beyond anything the paper shows.
    """
    if duration_s <= 0:
        raise ExperimentError(f"duration must be positive: {duration_s}")
    sim = Simulation.build(profile, n_ues=n_ues, seed=seed,
                           traffic=traffic, channel=channel,
                           mobility=mobility, scheduler=scheduler,
                           fidelity=fidelity, ue_snr_db=ue_snr_db,
                           rate_bps=rate_bps,
                           max_ues_per_slot=max_ues_per_slot,
                           olla_target_bler=olla_target_bler)
    scope = NRScope.attach(sim, snr_db=sniffer_snr_db, window_s=window_s)
    sim.run(seconds=duration_s)
    return SessionResult(sim=sim, scope=scope, duration_s=duration_s,
                         label=label or f"{profile.name}/{n_ues}ue")


@dataclass
class FigureResult:
    """Structured output of one experiment: series plus summary rows."""

    figure: str
    series: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)

    def add_series(self, name: str,
                   points: list[tuple[float, float]]) -> None:
        if not points:
            raise ExperimentError(f"series {name!r} is empty")
        self.series[name] = points
