"""R010/R011 fixture: every dtype/layout contract broken once.

``scale_llrs`` meets a default-dtype float64 vector with declared
float32 LLRs (silent upcast) and returns the widened result against a
declared float32 contract (return drift).  ``weight_rows`` aligns a
per-candidate ``(N,)`` vector against the ``B`` bit axis of a declared
``(N, B)`` matrix (layout-misaligned broadcast).  ``pack_decisions`` /
``pack_decisions_batch`` return different concrete dtypes (twin
drift).
"""

import numpy as np


def scale_llrs(llrs, gain):
    """Scale a stacked LLR matrix.

    Layout: llrs (B, E) float32
    Layout: return (B, E) float32
    """
    weights = np.full(llrs.shape[1], gain)
    return llrs * weights


def weight_rows(llrs, scales):
    """Apply per-candidate scales.

    Layout: llrs (N, B) float64
    Layout: scales (N) float64
    """
    return llrs * scales


def pack_decisions(bits):
    """Scalar twin: packs one decision vector."""
    return np.asarray(bits, dtype=np.uint8)


def pack_decisions_batch(bits):
    """Batch twin that drifted to a wider dtype."""
    return np.asarray(bits, dtype=np.uint16)
