"""Tests for the event schema validator and the TopN failure report."""

import json

import pytest

from repro.obs import validate_event, validate_events
from repro.obs.topn import TopnError, cluster_failures, load_events, \
    render_markdown, report_to_json


def make_event(name="dci.miss", seq=0, **fields):
    event = {"v": 1, "seq": seq, "run_id": "r1", "kind": "event",
             "name": name}
    event.update(fields)
    return event


class TestValidate:
    def test_valid_event(self):
        assert validate_event(make_event(rnti=1, slot=2,
                                         stage="dci")) == []

    def test_missing_envelope_field(self):
        event = make_event()
        del event["run_id"]
        assert any("run_id" in p for p in validate_event(event))

    def test_bad_types(self):
        assert validate_event(make_event(rnti="0x4601"))
        assert validate_event(make_event(slot=True))
        event = make_event()
        event["kind"] = "gauge"
        assert validate_event(event)

    def test_unknown_scalar_fields_tolerated(self):
        assert validate_event(make_event(beam_index=3)) == []
        assert validate_event(make_event(nested={"a": 1}))

    def test_stream_seq_must_increase(self):
        events = [make_event(seq=0), make_event(seq=0)]
        assert any("seq" in p for _, p in validate_events(events))

    def test_stream_run_id_must_be_constant(self):
        events = [make_event(seq=0), make_event(seq=1)]
        events[1]["run_id"] = "other"
        assert any("run_id" in p for _, p in validate_events(events))

    def test_valid_stream(self):
        events = [make_event(seq=i) for i in range(4)]
        assert validate_events(events) == []


class TestLoadEvents:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "e.jsonl"
        events = [make_event(seq=i) for i in range(3)]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert load_events(path) == events

    def test_missing_file(self, tmp_path):
        with pytest.raises(TopnError, match="no such"):
            load_events(tmp_path / "absent.jsonl")

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"v":1}\nnot json\n')
        with pytest.raises(TopnError, match=":2"):
            load_events(path)


class TestCluster:
    def make_stream(self):
        events = []
        seq = 0
        for _ in range(5):
            events.append(make_event("dci.miss", seq=seq, cell="a",
                                     rnti=0x4601, stage="dci",
                                     reason="bler", slot=seq))
            seq += 1
        for _ in range(3):
            events.append(make_event("dci.drop", seq=seq, cell="a",
                                     rnti=0x4602, stage="dci",
                                     reason="backpressure", slot=seq))
            seq += 1
        events.append(make_event("msg4.miss", seq=seq, cell="b",
                                 rnti=0x4603, stage="rach",
                                 reason="msg4_decode", slot=seq))
        seq += 1
        # Non-failure traffic must be scanned but not clustered.
        events.append(make_event("session.start", seq=seq))
        return events

    def test_grouping_and_ranking(self):
        report = cluster_failures(self.make_stream())
        assert report.total_events == 10
        assert report.failures_total == 9
        assert report.by_name == {"dci.drop": 3, "dci.miss": 5,
                                  "msg4.miss": 1}
        assert [c.count for c in report.clusters] == [5, 3, 1]
        top = report.clusters[0]
        assert top.key.rnti == 0x4601
        assert top.key.reason == "bler"
        assert (top.first_slot, top.last_slot) == (0, 4)

    def test_top_n_truncation(self):
        report = cluster_failures(self.make_stream(), top_n=1)
        assert len(report.clusters) == 1
        assert report.truncated == 2

    def test_deterministic_tiebreak(self):
        events = [make_event("dci.miss", seq=0, rnti=2, stage="dci"),
                  make_event("dci.miss", seq=1, rnti=1, stage="dci")]
        report = cluster_failures(events)
        assert [c.key.rnti for c in report.clusters] == [1, 2]

    def test_bad_top_n(self):
        with pytest.raises(TopnError):
            cluster_failures([], top_n=0)

    def test_json_document(self):
        report = cluster_failures(self.make_stream())
        document = report_to_json(report)
        assert document["v"] == 1
        assert document["failures_total"] == 9
        shares = [c["share"] for c in document["clusters"]]
        assert shares == sorted(shares, reverse=True)
        assert sum(c["count"] for c in document["clusters"]) == 9

    def test_markdown_table(self):
        text = render_markdown(cluster_failures(self.make_stream()))
        assert "| 1 | a | 0x4601 | dci | bler | 5 |" in text
        assert "failures: 9" in text

    def test_markdown_empty_stream(self):
        text = render_markdown(cluster_failures([]))
        assert "No failure events" in text
