"""Calibrated PDCCH decode-failure model for message-fidelity runs.

In ``iq`` fidelity NR-Scope really polar-decodes every candidate, so DCI
misses fall out of channel noise.  Message fidelity needs the same
behaviour without per-slot signal processing, so this module carries a
BLER table *measured from this repository's own PDCCH chain* (CRC24C +
polar SC decode + QPSK over AWGN, K = 70 bits, E = 108 x AL, 200 Monte
Carlo trials per point — see tests/core/test_decode_model.py, which
re-derives spot values from the live chain).

Interpolation is linear in SNR between grid points and saturates at the
table edges.
"""

from __future__ import annotations

import numpy as np

#: SNR grid (dB) of the calibration sweep.
SNR_GRID_DB = np.arange(-10.0, 13.0, 1.0)

#: BLER per aggregation level over SNR_GRID_DB, measured from the real
#: encode/decode chain (see module docstring).
BLER_TABLE: dict[int, tuple[float, ...]] = {
    1: (1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.99, 0.97, 0.905,
        0.65, 0.35, 0.1, 0.03, 0.005, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    2: (1.0, 1.0, 1.0, 1.0, 1.0, 0.995, 0.995, 0.93, 0.825, 0.395, 0.155,
        0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    4: (1.0, 1.0, 1.0, 0.98, 0.93, 0.78, 0.48, 0.15, 0.035, 0.015, 0.0,
        0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    8: (0.975, 0.87, 0.585, 0.255, 0.03, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
}

#: Residual miss probability at high SNR: even on a clean bench the real
#: tool misses a small fraction of DCIs to timing jitter, AGC transients
#: and worker overruns (paper Fig 7 shows 0.3-0.9% at lab SNR).
RESIDUAL_MISS = 0.002


class DecodeModelError(ValueError):
    """Raised for unknown aggregation levels."""


def pdcch_bler(snr_db: float, aggregation_level: int) -> float:
    """Probability this DCI decode fails at the sniffer.

    Linear interpolation of the calibrated table plus the residual
    system-level miss floor.
    """
    if aggregation_level not in BLER_TABLE:
        raise DecodeModelError(
            f"no calibration for aggregation level {aggregation_level}")
    curve = np.asarray(BLER_TABLE[aggregation_level])
    coded = float(np.interp(snr_db, SNR_GRID_DB, curve))
    return min(1.0, coded + RESIDUAL_MISS * (1.0 - coded))


def decode_succeeds(snr_db: float, aggregation_level: int,
                    rng: np.random.Generator) -> bool:
    """Bernoulli draw from the calibrated failure probability."""
    return bool(rng.random() >= pdcch_bler(snr_db, aggregation_level))


_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 output step (the reference finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def counter_uniform(*fields: int) -> float:
    """Counter-based uniform in [0, 1): hash the key fields, no state.

    A decode decision keyed on (seed, slot, rnti, cce, ...) is the same
    no matter which thread evaluates it or in which order — the property
    the slot runtime's parallel DCI stage needs for cross-executor
    determinism.  Each field is folded through splitmix64 so nearby keys
    (consecutive slots, adjacent CCEs) decorrelate.
    """
    state = 0
    for value in fields:
        state = _splitmix64(state ^ (int(value) & _MASK64))
    return _splitmix64(state) / float(1 << 64)


#: BLER of the (32, 11) UCI small-block code under ML decoding,
#: measured from repro.phy.uci with 300 trials per point (same
#: methodology as the PDCCH table; spot-checked by the tests).
UCI_SNR_GRID_DB = np.arange(-10.0, 7.0, 1.0)
UCI_BLER = (0.947, 0.947, 0.91, 0.813, 0.737, 0.703, 0.56, 0.42, 0.277,
            0.13, 0.057, 0.027, 0.003, 0.0, 0.0, 0.0, 0.0)


def uci_bler(snr_db: float) -> float:
    """Decode-failure probability for an 11-bit UCI report."""
    coded = float(np.interp(snr_db, UCI_SNR_GRID_DB, UCI_BLER))
    return min(1.0, coded + RESIDUAL_MISS * (1.0 - coded))


def uci_decode_succeeds(snr_db: float,
                        rng: np.random.Generator) -> bool:
    """Bernoulli draw for one sniffed UCI report."""
    return bool(rng.random() >= uci_bler(snr_db))
