"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify why the design is the way it is:

* RRC Setup caching (paper section 3.1.2's skip optimisation);
* the receiver's energy gate + CCE claiming (without them the decoder
  shows the paper's raw O(m) per-UE cost);
* CRC-verified decoding vs the unverified 4G-tool approach (paper
  section 2's correctness claim);
* the sliding-window length of the throughput estimator;
* round-robin vs proportional-fair scheduling at the gNB.
"""

import time

import numpy as np

from repro.analysis.report import Table, print_tables
from repro.core.dci_decoder import GridDciDecoder
from repro.core.runtime import sharded_grid_decode
from repro.core.throughput import SlidingWindowEstimator
from repro.experiments.common import run_session
from repro.experiments.fig12_processing import build_workload
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE
from repro.phy.dci import DciFormat, dci_payload_size
from repro.phy.ofdm import demodulate_slot
from repro.phy.pdcch import PdcchCandidate, decode_candidate_bits, \
    dci_recover_rnti
from repro.phy.resource_grid import ResourceGrid


def test_ablation_rrc_setup_caching(once):
    """Skipping the RRC Setup PDSCH after the first UE (section 3.1.2).

    Decoding one Setup costs 1-2 ms of signal processing against a
    0.5 ms TTI; the cache removes all but one.
    """

    def run_pair():
        cached = run_session(SRSRAN_PROFILE, n_ues=8, duration_s=0.5,
                             seed=31)
        sim = cached.sim
        del sim
        always = run_session(SRSRAN_PROFILE, n_ues=8, duration_s=0.5,
                             seed=31)
        always.scope.always_decode_setup = True
        return cached

    result = once(run_pair)
    scope = result.scope
    decodes_cached = scope.rach.setup_pdsch_decodes
    ues = scope.counters.msg4_seen
    # 1.5 ms per PDSCH decode (paper's figure), against the slot budget.
    cost_cached_ms = decodes_cached * 1.5
    cost_always_ms = ues * 1.5
    print()
    print_tables([Table(
        title="Ablation - RRC Setup PDSCH decoding",
        columns=("strategy", "PDSCH decodes", "signal-proc ms"),
        rows=(("cache after first UE", decodes_cached, cost_cached_ms),
              ("decode every MSG 4", ues, cost_always_ms)))])
    assert decodes_cached == 1
    assert ues >= 4
    assert cost_always_ms >= 4 * cost_cached_ms


def test_ablation_decoder_optimisations(once):
    """Energy gate + CCE claiming vs the raw exhaustive search.

    The raw search is what the paper's cost model describes (O(m) polar
    attempts per slot); the gated search flattens the per-UE cost.
    """

    def measure(use_gate, use_claiming, n_ues):
        workload = build_workload(AMARISOFT_PROFILE, n_ues)
        decoder = GridDciDecoder(
            dci_cfg=AMARISOFT_PROFILE.dci_size_config(),
            n_id=AMARISOFT_PROFILE.cell_id, noise_var=1e-3,
            use_energy_gate=use_gate, use_cce_claiming=use_claiming)
        grid = demodulate_slot(workload.samples, workload.ofdm)
        start = time.perf_counter()
        decoded = sharded_grid_decode(decoder, grid, workload.slot_index,
                                      workload.tracked, 1)
        elapsed_s = time.perf_counter() - start
        return 1e6 * elapsed_s, len(decoded)

    def run_matrix():
        rows = []
        for n_ues in (4, 16):
            for gate, claim in ((False, False), (True, False),
                                (True, True)):
                us, found = measure(gate, claim, n_ues)
                rows.append((n_ues, gate, claim, us, found))
        return rows

    rows = once(run_matrix)
    print()
    print_tables([Table(
        title="Ablation - decoder optimisations (us per slot)",
        columns=("UEs", "energy gate", "CCE claiming", "us/slot",
                 "decoded"),
        rows=tuple(rows))])
    by_key = {(n, g, c): us for n, g, c, us, _ in rows}
    # Every configuration decodes the same DCIs (found column equal).
    found = {(n): set() for n, *_ in rows}
    for n, g, c, us, f in rows:
        found[n].add(f)
    assert all(len(v) == 1 for v in found.values())
    # Full optimisations beat the raw search at 16 UEs by a wide margin.
    assert by_key[(16, True, True)] < 0.7 * by_key[(16, False, False)]


def test_ablation_crc_verification(once):
    """CRC-gated decoding vs an unverified decoder (section 2's claim).

    A 4G-style tool that cannot verify its decodes emits a "DCI" for
    every candidate it attempts on noise; the CRC gate rejects them all.
    """

    def run_noise_trials(trials=60):
        rng = np.random.default_rng(33)
        coreset = AMARISOFT_PROFILE.dedicated_coreset()
        cfg = AMARISOFT_PROFILE.dci_size_config()
        payload_len = dci_payload_size(DciFormat.DL_1_1, cfg)
        unverified = 0
        verified = 0
        for _ in range(trials):
            grid = ResourceGrid(AMARISOFT_PROFILE.n_prb) \
                .clone_with_noise(0.0, rng)
            bits = decode_candidate_bits(
                grid, coreset, PdcchCandidate(0, 2), payload_len,
                AMARISOFT_PROFILE.cell_id, 1.0)
            if bits is not None:
                unverified += 1            # a CRC-less tool reports this
                if dci_recover_rnti(bits) is not None:
                    verified += 1          # NR-Scope's gate
        return unverified, verified

    unverified, verified = once(run_noise_trials)
    print()
    print_tables([Table(
        title="Ablation - decodes reported from pure noise",
        columns=("decoder", "false DCIs"),
        rows=(("unverified (4G-tool style)", unverified),
              ("CRC-verified (NR-Scope)", verified)))])
    assert unverified >= 50       # the CRC-less tool swallows noise
    assert verified <= 1          # ~2^-9 chance per candidate


def test_ablation_throughput_window(once):
    """Sliding-window length vs estimation smoothness.

    Short windows track bursts (high variance), long windows smooth
    them; the default 200 ms sits between.
    """

    def run_windows():
        result = run_session(SRSRAN_PROFILE, n_ues=1, duration_s=3.0,
                             seed=37, traffic="video")
        rnti = result.scope.tracked_rntis[0]
        samples = [(r.time_s, r.tbs_bits)
                   for r in result.telemetry.for_rnti(rnti, downlink=True)
                   if not r.is_retransmission]
        rows = []
        for window_s in (0.05, 0.2, 1.0):
            estimator = SlidingWindowEstimator(window_s=window_s)
            rates = []
            for t, bits in samples:
                estimator.add(t, bits)
                rates.append(estimator.rate_bps(t))
            arr = np.array(rates[len(rates) // 4:])
            rows.append((window_s, float(arr.mean() / 1e6),
                         float(arr.std() / 1e6)))
        return rows

    rows = once(run_windows)
    print()
    print_tables([Table(
        title="Ablation - sliding window length (video UE)",
        columns=("window s", "mean Mbps", "std Mbps"),
        rows=tuple(rows))])
    stds = [std for _, _, std in rows]
    assert stds[0] > stds[-1], "longer windows must smooth the estimate"
    means = [m for _, m, _ in rows]
    assert max(means) / min(means) < 1.5, "window must not bias the mean"


def test_ablation_outer_loop_link_adaptation(once):
    """OLLA on/off under fast fading with stale CQI reports.

    Reported CQI lags the channel by tens of slots; without the outer
    loop the first-transmission error rate runs far above the 10%
    design point.  The figure experiments enable OLLA for this reason
    (EXPERIMENTS.md).
    """

    def run_both():
        from repro.simulation import Simulation
        rows = []
        for olla in (None, 0.1):
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=4, seed=43,
                                   traffic="bulk", channel="vehicle",
                                   ue_snr_db=15.0,
                                   olla_target_bler=olla)
            sim.run(seconds=3.0)
            records = [r for r in sim.gnb.log.downlink_records()
                       if r.search_space == "ue"]
            firsts = [r for r in records if not r.is_retransmission]
            bler = 1 - sum(r.delivered for r in firsts) / len(firsts)
            goodput = sum(ue.delivered_dl_bits
                          for ue in sim.gnb.connected_ues) / 3.0 / 1e6
            rows.append(("off" if olla is None else f"target {olla}",
                         100 * bler, goodput))
        return rows

    rows = once(run_both)
    print()
    print_tables([Table(
        title="Ablation - outer-loop link adaptation (vehicle channel)",
        columns=("OLLA", "first-tx BLER %", "goodput Mbps"),
        rows=tuple(rows))])
    without, with_olla = rows[0], rows[1]
    assert with_olla[1] < without[1], "OLLA must reduce the error rate"
    assert with_olla[2] > 0.8 * without[2], \
        "OLLA must not sacrifice goodput for its error target"


def test_ablation_scheduler_policy(once):
    """Round-robin vs proportional-fair at the gNB.

    With one strong and one weak UE, PF must deliver more total bits;
    both policies must keep the weak UE alive (fairness floor).
    """

    def run_policies():
        rows = []
        for policy in ("rr", "pf"):
            from repro.simulation import Simulation
            from repro.core.scope import NRScope
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=41,
                                   scheduler=policy)
            strong = sim.make_ue(0, traffic="bulk", mean_snr_db=26.0,
                                 rate_bps=8e6)
            weak = sim.make_ue(1, traffic="bulk", mean_snr_db=6.0,
                               rate_bps=8e6)
            sim.gnb.add_ue(strong)
            sim.gnb.add_ue(weak)
            scope = NRScope.attach(sim, snr_db=18.0)
            sim.run(seconds=2.0)
            del scope
            total = strong.delivered_dl_bits + weak.delivered_dl_bits
            rows.append((policy, strong.delivered_dl_bits / 2e6,
                         weak.delivered_dl_bits / 2e6, total / 2e6))
        return rows

    rows = once(run_policies)
    print()
    from repro.analysis.metrics import jain_fairness
    table_rows = [(policy, strong, weak, total,
                   jain_fairness([strong, weak]))
                  for policy, strong, weak, total in rows]
    print_tables([Table(
        title="Ablation - scheduler policy (strong + weak UE)",
        columns=("policy", "strong Mbps", "weak Mbps", "total Mbps",
                 "Jain"),
        rows=tuple(table_rows))])
    by_policy = {r[0]: r for r in rows}
    # Both policies serve both UEs.
    for policy, strong, weak, _ in rows:
        assert strong > 0.5 and weak > 0.1, policy
        # Neither policy starves anyone outright.
        assert jain_fairness([strong, weak]) > 0.5, policy
    # The strong UE out-delivers the weak one under either policy.
    assert by_policy["rr"][1] > by_policy["rr"][2]
