"""Tests for repro.phy.resource_grid: RE mapping and REG accounting."""

import numpy as np
import pytest

from repro.phy.resource_grid import GridError, ResourceGrid


class TestGridBasics:
    def test_shape(self):
        grid = ResourceGrid(n_prb=51)
        assert grid.data.shape == (612, 14)
        assert grid.n_subcarriers == 612

    def test_starts_empty(self):
        grid = ResourceGrid(n_prb=4)
        assert grid.spare_res() == 4 * 12 * 14
        assert grid.count_regs() == 0

    def test_rejects_bad_size(self):
        with pytest.raises(GridError):
            ResourceGrid(n_prb=0)


class TestWriteRead:
    def test_write_read_res(self):
        grid = ResourceGrid(n_prb=4)
        values = np.array([1 + 1j, 2 - 1j, 0.5j])
        grid.write_res(2, 5, values, ResourceGrid.PDCCH, first_sc=3)
        out = grid.read_res(2, 5, 3, first_sc=3)
        assert np.allclose(out, values)

    def test_write_out_of_prb(self):
        grid = ResourceGrid(n_prb=4)
        with pytest.raises(GridError):
            grid.write_res(2, 5, np.ones(5), ResourceGrid.PDCCH, first_sc=10)
        with pytest.raises(GridError):
            grid.write_res(4, 0, np.ones(1), ResourceGrid.PDCCH)
        with pytest.raises(GridError):
            grid.write_res(0, 14, np.ones(1), ResourceGrid.PDCCH)

    def test_block_roundtrip(self, rng):
        grid = ResourceGrid(n_prb=10)
        symbols = rng.normal(size=3 * 12 * 4) + 1j * rng.normal(size=144)
        grid.fill_block(2, 3, 1, 4, symbols, ResourceGrid.PDSCH)
        out = grid.read_block(2, 3, 1, 4)
        assert np.allclose(out, symbols)

    def test_block_partial_fill(self, rng):
        # Fewer symbols than block capacity: tail is zero-padded and not
        # marked occupied.
        grid = ResourceGrid(n_prb=4)
        symbols = np.ones(20, dtype=complex)
        grid.fill_block(0, 2, 0, 2, symbols, ResourceGrid.PDSCH)
        occupied = (grid.occupancy == ResourceGrid.PDSCH).sum()
        assert occupied == 20

    def test_block_overflow_rejected(self):
        grid = ResourceGrid(n_prb=4)
        with pytest.raises(GridError):
            grid.fill_block(0, 2, 0, 1, np.ones(25), ResourceGrid.PDSCH)

    def test_block_outside_slot(self):
        grid = ResourceGrid(n_prb=4)
        with pytest.raises(GridError):
            grid.fill_block(0, 1, 13, 2, np.ones(1), ResourceGrid.PDSCH)


class TestRegCounting:
    def test_one_write_is_one_reg(self):
        grid = ResourceGrid(n_prb=4)
        grid.write_res(1, 3, np.array([1.0]), ResourceGrid.PDCCH)
        assert grid.count_regs() == 1

    def test_res_in_same_reg_count_once(self):
        grid = ResourceGrid(n_prb=4)
        grid.write_res(1, 3, np.ones(12), ResourceGrid.PDCCH)
        assert grid.count_regs() == 1

    def test_block_regs(self):
        grid = ResourceGrid(n_prb=10)
        grid.fill_block(0, 3, 2, 4, np.ones(3 * 12 * 4), ResourceGrid.PDSCH)
        assert grid.count_regs() == 12

    def test_kind_filter(self):
        grid = ResourceGrid(n_prb=4)
        grid.write_res(0, 0, np.ones(12), ResourceGrid.PDCCH)
        grid.write_res(1, 0, np.ones(12), ResourceGrid.PDSCH)
        assert grid.count_regs(kinds=(ResourceGrid.PDCCH,)) == 1
        assert grid.count_regs(kinds=(ResourceGrid.PDSCH,)) == 1
        assert grid.count_regs() == 2

    def test_spare_res_decreases(self):
        grid = ResourceGrid(n_prb=4)
        before = grid.spare_res()
        grid.write_res(0, 0, np.ones(12), ResourceGrid.PDSCH)
        assert grid.spare_res() == before - 12


class TestNoise:
    def test_noise_preserves_signal_at_high_snr(self, rng):
        grid = ResourceGrid(n_prb=4)
        grid.write_res(0, 0, np.ones(12), ResourceGrid.PDSCH)
        noisy = grid.clone_with_noise(40.0, rng)
        assert np.allclose(noisy.data[:12, 0], 1.0, atol=0.1)

    def test_noise_power_matches_snr(self, rng):
        grid = ResourceGrid(n_prb=51)
        noisy = grid.clone_with_noise(0.0, rng)  # empty grid: pure noise
        measured = np.mean(np.abs(noisy.data) ** 2)
        assert measured == pytest.approx(1.0, rel=0.05)

    def test_original_untouched(self, rng):
        grid = ResourceGrid(n_prb=4)
        grid.clone_with_noise(0.0, rng)
        assert np.all(grid.data == 0)
