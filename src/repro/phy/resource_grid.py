"""The per-slot resource grid: PRBs x OFDM symbols of resource elements.

Both ends of the simulation meet here: the gNB writes PDCCH/PDSCH symbols
into a grid, the OFDM layer turns it into time-domain samples, and
NR-Scope's decoder reads candidate REs back out of the grid it recovered.
The grid also powers the paper's REG-accounting evaluation (Fig 8): REGs
are counted from actual occupancy, not from bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import N_SC_PER_PRB, N_SYMBOLS_PER_SLOT


class GridError(ValueError):
    """Raised for out-of-grid writes or shape mismatches."""


@dataclass
class ResourceGrid:
    """One slot of resource elements for a carrier of ``n_prb`` PRBs.

    ``data`` is indexed ``[subcarrier, symbol]``; ``occupancy`` tracks
    which channel wrote each RE (0 = empty), enabling REG counting and
    spare-capacity accounting without re-demodulating anything.
    """

    n_prb: int
    data: np.ndarray = field(init=False, repr=False)
    occupancy: np.ndarray = field(init=False, repr=False)

    #: Occupancy codes, by writer.
    EMPTY = 0
    PDCCH = 1
    PDSCH = 2
    DMRS = 3
    BROADCAST = 4

    def __post_init__(self) -> None:
        if self.n_prb < 1:
            raise GridError(f"PRB count must be positive: {self.n_prb}")
        shape = (self.n_prb * N_SC_PER_PRB, N_SYMBOLS_PER_SLOT)
        self.data = np.zeros(shape, dtype=np.complex128)
        self.occupancy = np.zeros(shape, dtype=np.uint8)

    @property
    def n_subcarriers(self) -> int:
        """Total active subcarriers across the carrier."""
        return self.n_prb * N_SC_PER_PRB

    def _check_prb_range(self, first_prb: int, n_prb: int) -> None:
        if first_prb < 0 or n_prb < 1 or first_prb + n_prb > self.n_prb:
            raise GridError(
                f"PRB range [{first_prb}, +{n_prb}) outside carrier of"
                f" {self.n_prb}")

    def write_res(self, prb: int, symbol: int, symbols: np.ndarray,
                  kind: int, first_sc: int = 0) -> None:
        """Write consecutive REs of one PRB/symbol starting at ``first_sc``."""
        self._check_prb_range(prb, 1)
        if not 0 <= symbol < N_SYMBOLS_PER_SLOT:
            raise GridError(f"symbol index out of range: {symbol}")
        values = np.asarray(symbols, dtype=np.complex128).ravel()
        base = prb * N_SC_PER_PRB + first_sc
        if first_sc < 0 or first_sc + values.size > N_SC_PER_PRB:
            raise GridError("write exceeds one PRB")
        self.data[base:base + values.size, symbol] = values
        self.occupancy[base:base + values.size, symbol] = kind

    def read_res(self, prb: int, symbol: int, count: int,
                 first_sc: int = 0) -> np.ndarray:
        """Read consecutive REs of one PRB/symbol."""
        self._check_prb_range(prb, 1)
        base = prb * N_SC_PER_PRB + first_sc
        if first_sc < 0 or first_sc + count > N_SC_PER_PRB:
            raise GridError("read exceeds one PRB")
        return self.data[base:base + count, symbol].copy()

    def fill_block(self, first_prb: int, n_prb: int, first_symbol: int,
                   n_symbols: int, symbols: np.ndarray, kind: int) -> None:
        """Write a rectangular PRB x symbol block (PDSCH-style mapping).

        ``symbols`` are laid out frequency-first within each OFDM symbol,
        matching the 38.211 mapping order for PDSCH.
        """
        self._check_prb_range(first_prb, n_prb)
        if first_symbol < 0 or first_symbol + n_symbols > N_SYMBOLS_PER_SLOT:
            raise GridError(
                f"symbol range [{first_symbol}, +{n_symbols}) out of slot")
        values = np.asarray(symbols, dtype=np.complex128).ravel()
        sc0 = first_prb * N_SC_PER_PRB
        sc1 = sc0 + n_prb * N_SC_PER_PRB
        capacity = (sc1 - sc0) * n_symbols
        if values.size > capacity:
            raise GridError(
                f"{values.size} symbols exceed block capacity {capacity}")
        padded = np.zeros(capacity, dtype=np.complex128)
        padded[:values.size] = values
        block = padded.reshape(n_symbols, sc1 - sc0).T
        self.data[sc0:sc1, first_symbol:first_symbol + n_symbols] = block
        occ = self.occupancy[sc0:sc1, first_symbol:first_symbol + n_symbols]
        mask = np.zeros(capacity, dtype=bool)
        mask[:values.size] = True
        occ[mask.reshape(n_symbols, sc1 - sc0).T] = kind

    def read_block(self, first_prb: int, n_prb: int, first_symbol: int,
                   n_symbols: int) -> np.ndarray:
        """Read a rectangular block back in mapping order."""
        self._check_prb_range(first_prb, n_prb)
        sc0 = first_prb * N_SC_PER_PRB
        sc1 = sc0 + n_prb * N_SC_PER_PRB
        block = self.data[sc0:sc1, first_symbol:first_symbol + n_symbols]
        return block.T.ravel().copy()

    def count_regs(self, kinds: tuple[int, ...] | None = None) -> int:
        """Count occupied REGs (one PRB x one symbol with any RE in use).

        This is the quantity behind the paper's Fig 8: comparing decoded
        grants against ground truth at REG granularity.
        """
        occ = self.occupancy
        if kinds is not None:
            used = np.isin(occ, kinds)
        else:
            used = occ != self.EMPTY
        per_reg = used.reshape(self.n_prb, N_SC_PER_PRB, N_SYMBOLS_PER_SLOT)
        return int(per_reg.any(axis=1).sum())

    def spare_res(self) -> int:
        """Resource elements not written by any channel this slot."""
        return int((self.occupancy == self.EMPTY).sum())

    def clone_with_noise(self, snr_db: float,
                         rng: np.random.Generator) -> "ResourceGrid":
        """Return a copy with AWGN at the given SNR (unit signal power).

        Noise is added to every RE, occupied or not, the way a receiver's
        front end sees the whole band; occupancy metadata is preserved for
        ground-truth accounting but a sniffer must not read it.
        """
        noisy = ResourceGrid(self.n_prb)
        noise_var = 10.0 ** (-snr_db / 10.0)
        scale = np.sqrt(noise_var / 2.0)
        noise = rng.normal(0.0, scale, self.data.shape) + \
            1j * rng.normal(0.0, scale, self.data.shape)
        noisy.data = self.data + noise
        noisy.occupancy = self.occupancy.copy()
        return noisy
