"""Simulated user equipment: traffic, channels, mobility, populations."""

from repro.ue.channel import FadingChannel, PROFILES, \
    block_error_probability, cqi_to_efficiency, snr_to_cqi, \
    transport_block_survives
from repro.ue.mobility import BlockedUe, MobilityModel, MovingUe, StaticUe, \
    scenario
from repro.ue.population import ComeAndGoProcess, PopulationProfile, \
    Session, TMOBILE_CELL1_PROFILES, TMOBILE_CELL2_PROFILES, active_counts, \
    holding_time_ccdf
from repro.ue.traffic import BulkDownload, ConstantBitRate, OnOffTraffic, \
    PoissonPackets, TrafficBuffer, TrafficModel, VideoStream
from repro.ue.ue import PacketCapture, PacketRecord, UserEquipment

__all__ = [
    "BlockedUe", "BulkDownload", "ComeAndGoProcess", "ConstantBitRate",
    "FadingChannel", "MobilityModel", "MovingUe", "OnOffTraffic",
    "PROFILES", "PacketCapture", "PacketRecord", "PoissonPackets",
    "PopulationProfile", "Session", "StaticUe", "TMOBILE_CELL1_PROFILES",
    "TMOBILE_CELL2_PROFILES", "TrafficBuffer", "TrafficModel",
    "UserEquipment", "VideoStream", "active_counts",
    "block_error_probability", "cqi_to_efficiency", "holding_time_ccdf",
    "scenario", "snr_to_cqi", "transport_block_survives",
]
