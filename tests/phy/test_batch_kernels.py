"""Batched PHY kernel contracts: bit-identity and memoization.

The batch kernels buy their speed purely from numpy dispatch economics;
nothing about the outputs may change.  These tests pin that contract
with randomized equivalence checks against the scalar reference paths
(including exact-zero LLRs and sign ties, where a sloppy vectorization
diverges first) and assert that the caches the hot loop depends on
actually hit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import polar
from repro.phy.coreset import Coreset, SearchSpace, _candidate_starts
from repro.phy.crc import crc_generator_matrix, crc_remainder, \
    crc_remainder_batch
from repro.phy.pdcch import dci_crc_attach, dci_crc_check, \
    dci_crc_check_batch
from repro.phy.scrambling import descramble_llrs, gold_sequence, \
    sign_cache_stats

#: (k, E) pairs the PDCCH path actually uses: E = 108 * level, k = DCI
#: payload + CRC for the two monitored formats.
CODE_SHAPES = [(44, 108), (65, 108), (44, 216), (65, 216),
               (44, 432), (65, 432), (65, 864), (12, 108), (100, 216)]

#: LLR values drawn from a small integer lattice so exact zeros and
#: magnitude ties occur constantly — the regime where min-sum sign
#: conventions diverge if the batched kernel is not truly identical.
llr_values = st.integers(min_value=-6, max_value=6).map(
    lambda v: v / 2.0)


class TestDecodeBatchEquivalence:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_decode_rowwise(self, data):
        k, e = data.draw(st.sampled_from(CODE_SHAPES))
        batch = data.draw(st.integers(min_value=1, max_value=6))
        code = polar.construct(k, e)
        rows = data.draw(st.lists(
            st.lists(llr_values, min_size=e, max_size=e),
            min_size=batch, max_size=batch))
        llrs = np.array(rows, dtype=np.float64)
        out = polar.decode_batch(llrs, code)
        assert out.shape == (batch, k)
        for row in range(batch):
            scalar = polar.decode(llrs[row], code)
            assert np.array_equal(out[row], scalar), \
                f"row {row} diverged for (k={k}, E={e})"

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_joint_matches_separate_decodes(self, data):
        e = data.draw(st.sampled_from([108, 216, 432]))
        k_pair = data.draw(st.sampled_from([(65, 44), (80, 30),
                                            (65, 65)]))
        codes = tuple(polar.construct(k, e) for k in k_pair)
        batch = data.draw(st.integers(min_value=1, max_value=4))
        rows = data.draw(st.lists(
            st.lists(llr_values, min_size=e, max_size=e),
            min_size=batch, max_size=batch))
        llrs = np.array(rows, dtype=np.float64)
        joint = polar.decode_batch_joint(llrs, codes)
        assert len(joint) == len(codes)
        for code, out in zip(codes, joint):
            assert np.array_equal(out, polar.decode_batch(llrs, code))

    def test_decoded_bits_roundtrip_encode(self):
        # Noise-free sanity: decode_batch inverts encode for every shape.
        rng = np.random.default_rng(7)
        for k, e in CODE_SHAPES:
            code = polar.construct(k, e)
            info = rng.integers(0, 2, size=(3, k)).astype(np.uint8)
            llrs = np.stack([1.0 - 2.0 * polar.encode(row, code)
                             for row in info])
            assert np.array_equal(polar.decode_batch(llrs, code), info)


class TestCrcBatchEquivalence:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_remainder_batch_matches_rowwise(self, data):
        name = data.draw(st.sampled_from(["crc24c", "crc24a", "crc16"]))
        width = data.draw(st.integers(min_value=1, max_value=96))
        batch = data.draw(st.integers(min_value=1, max_value=5))
        bits = np.array(data.draw(st.lists(
            st.lists(st.integers(0, 1), min_size=width, max_size=width),
            min_size=batch, max_size=batch)), dtype=np.uint8)
        got = crc_remainder_batch(bits, name)
        for row in range(batch):
            assert np.array_equal(got[row], crc_remainder(bits[row],
                                                          name))

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_dci_check_batch_matches_scalar(self, data):
        payload_len = data.draw(st.integers(min_value=12,
                                            max_value=80))
        rnti = data.draw(st.integers(min_value=1, max_value=0xFFF0))
        payload = np.array(data.draw(st.lists(
            st.integers(0, 1), min_size=payload_len,
            max_size=payload_len)), dtype=np.uint8)
        good = dci_crc_attach(payload, rnti)
        corrupted = good.copy()
        corrupted[data.draw(st.integers(0, good.size - 1))] ^= 1
        wrong_rnti = rnti ^ 0x0004
        blocks = np.stack([good, corrupted, good])
        rntis = np.array([rnti, rnti, wrong_rnti])
        got = dci_crc_check_batch(blocks, rntis)
        expected = [dci_crc_check(blocks[i], int(rntis[i]))
                    for i in range(3)]
        assert got.tolist() == expected
        assert expected[0] is True

    def test_generator_matrix_is_cached_and_frozen(self):
        before = crc_generator_matrix.cache_info().hits
        m1 = crc_generator_matrix(89, "crc24c")
        m2 = crc_generator_matrix(89, "crc24c")
        assert m1 is m2
        assert crc_generator_matrix.cache_info().hits > before
        assert not m1.flags.writeable


class TestKernelCaches:
    def test_polar_construct_and_reliability_order_hit(self):
        polar.construct(65, 216)
        c_before = polar.construct.cache_info().hits
        r_before = polar.reliability_order.cache_info().hits
        code = polar.construct(65, 216)
        polar.reliability_order(code.n)
        assert polar.construct.cache_info().hits == c_before + 1
        assert polar.reliability_order.cache_info().hits > r_before

    def test_sc_plan_is_compiled_once_per_frozen_mask(self):
        code = polar.construct(44, 108)
        llrs = np.ones((2, 108), dtype=np.float64)
        polar.decode_batch(llrs, code)
        before = polar._sc_plan.cache_info().hits
        polar.decode_batch(llrs, code)
        assert polar._sc_plan.cache_info().hits > before

    def test_gold_descramble_signs_hit(self):
        llrs = np.ones((3, 216), dtype=np.float64)
        descramble_llrs(llrs, c_init=0x1234)
        before = sign_cache_stats()
        descramble_llrs(llrs, c_init=0x1234)
        after = sign_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_gold_sequence_served_from_cache(self):
        first = gold_sequence(0x4242, 512)
        second = gold_sequence(0x4242, 256)
        assert np.array_equal(second, first[:256])

    def test_candidate_hash_is_memoized(self):
        coreset = Coreset(coreset_id=1, first_prb=0, n_prb=48,
                          n_symbols=1)
        space = SearchSpace(search_space_id=1, coreset=coreset,
                            is_common=False,
                            candidates_per_level={2: 2, 4: 2})
        space.candidate_cces(2, slot_index=3, rnti=0x4601)
        before = _candidate_starts.cache_info().hits
        again = space.candidate_cces(2, slot_index=3, rnti=0x4601)
        assert _candidate_starts.cache_info().hits == before + 1
        assert again == space.candidate_cces(2, slot_index=3,
                                             rnti=0x4601)


class TestSearchSpaceHashing:
    def test_equal_spaces_share_a_hash(self):
        coreset = Coreset(coreset_id=0, first_prb=0, n_prb=48,
                          n_symbols=1)
        a = SearchSpace(1, coreset, False, {2: 2, 4: 1})
        b = SearchSpace(1, coreset, False, {2: 2, 4: 1})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_level_order_changes_the_hash(self):
        # Plan caches key on the hash; spaces that enumerate levels in a
        # different order must not collide (their scalar iteration order
        # differs even though dict equality ignores order).
        coreset = Coreset(coreset_id=0, first_prb=0, n_prb=48,
                          n_symbols=1)
        a = SearchSpace(1, coreset, False, {2: 2, 4: 1})
        b = SearchSpace(1, coreset, False, {4: 1, 2: 2})
        assert a == b
        assert hash(a) != hash(b)
