"""Rule plugin registry.

A rule is a class with a unique ``rule_id``, a human ``title``, a path
scope (:meth:`Rule.applies`) and a :meth:`Rule.check` that yields
:class:`~repro.lint.findings.Finding` objects for one parsed module.

Rules self-register via the :func:`register` decorator; the registry
imports every ``r*.py`` module under :mod:`repro.lint.rules` on first
use, so adding a rule to the catalogue is one new file, no wiring.
"""

from __future__ import annotations

import ast
import importlib
import pkgutil
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintContext


class RuleError(ValueError):
    """Raised for malformed rule registrations or selections."""


class Rule:
    """Base class for one lint rule."""

    rule_id: str = ""
    title: str = ""
    #: Flow-aware rules set this to receive a whole-scan
    #: :class:`~repro.lint.effects.Program` on ``ctx.program``.
    needs_program: bool = False

    def applies(self, rel: str) -> bool:
        """Whether this rule scans the file at package-relative ``rel``."""
        return True

    def check(self, ctx: "LintContext") -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, ctx: "LintContext", node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(ctx.lines):
            snippet = ctx.lines[line - 1].strip()
        return Finding(rule_id=self.rule_id, message=message,
                       path=str(ctx.path), rel=ctx.rel, line=line,
                       col=col, snippet=snippet)


_REGISTRY: dict[str, type[Rule]] = {}
_LOADED = False


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry."""
    if not cls.rule_id:
        raise RuleError(f"rule {cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise RuleError(f"duplicate rule id {cls.rule_id!r}: "
                        f"{existing.__name__} and {cls.__name__}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    global _LOADED
    if _LOADED:
        return
    from repro.lint import rules as rules_pkg
    for info in pkgutil.iter_modules(rules_pkg.__path__):
        if info.name.startswith("_"):
            continue
        importlib.import_module(f"{rules_pkg.__name__}.{info.name}")
    _LOADED = True


def iter_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``.

    ``select`` takes rule ids (``R001``); unknown ids raise so a typo in
    ``--select`` fails loudly instead of silently checking nothing.
    """
    _load_builtin_rules()
    if select is None:
        chosen = sorted(_REGISTRY)
    else:
        chosen = []
        for rule_id in select:
            if rule_id not in _REGISTRY:
                known = ", ".join(sorted(_REGISTRY))
                raise RuleError(f"unknown rule {rule_id!r} (known: {known})")
            chosen.append(rule_id)
    return [_REGISTRY[rule_id]() for rule_id in chosen]
