"""End-to-end integration tests crossing every subsystem boundary.

These are slower scenario tests: full sessions with churn, fidelity
parity, telemetry persistence, and the complete IQ chain from OFDM
samples to telemetry records.
"""

import numpy as np
import pytest

from repro import NRScope, Simulation, SRSRAN_PROFILE
from repro.analysis.matching import match_dcis
from repro.core.telemetry import TelemetryLog
from repro.gnb.cell_config import AMARISOFT_PROFILE, MOSOLAB_PROFILE
from repro.ue.population import Session


class TestSessionWithChurn:
    def test_ues_come_and_go_cleanly(self):
        """A churning population must not corrupt tracking state."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=71)
        sessions = [Session(ue_id=i, arrival_s=0.1 * i,
                            holding_s=0.35 + 0.1 * (i % 3))
                    for i in range(12)]
        sim.schedule_sessions(sessions, traffic="cbr", rate_bps=1e6)
        scope = NRScope.attach(sim, snr_db=20.0, idle_timeout_s=0.5)
        sim.run(seconds=2.5)

        # Every MSG 4 the gNB sent was accounted (seen or missed).
        assert scope.counters.msg4_total == \
            len(sim.gnb.log.msg4_records)
        # Telemetry only contains RNTIs the gNB actually assigned.
        assigned = {m.tc_rnti for m in sim.gnb.log.msg4_records}
        assert set(scope.telemetry.rntis()) <= assigned
        # Idle pruning removed the departed UEs.
        assert len(scope.tracked_rntis) < len(sessions)

    def test_rnti_reuse_not_confused(self):
        """After pruning, a reused RNTI gets a fresh tracker state."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=1, seed=72)
        scope = NRScope.attach(sim, snr_db=20.0, idle_timeout_s=0.3)
        sim.run(seconds=0.5)
        first_rnti = scope.tracked_rntis[0]
        sim.gnb.remove_ue(0, time_s=sim.now_s)
        sim.run(seconds=1.0)  # prune fires
        assert first_rnti not in scope.tracked_rntis
        # New UE arrives; its (different) RNTI is tracked fresh.
        ue = sim.make_ue(99, traffic="cbr")
        sim.gnb.add_ue(ue, slot_index=sim.clock.index)
        sim.run(seconds=0.5)
        assert ue.rnti in scope.tracked_rntis


class TestLateAttachment:
    def test_sniffer_attached_after_rach_cannot_track(self):
        """Paper section 3.1.2: each UE gets exactly one RRC Setup; a
        sniffer that starts after the RACH can never decode that UE's
        DCIs.  Attach the scope only after the UEs connected."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=78)
        sim.run(seconds=0.5)  # UEs RACH and traffic flows, nobody listens
        assert len(sim.gnb.connected_ues) == 2

        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=1.0)
        # The scope synchronises (broadcast repeats) but the existing
        # UEs' MSG 4s are long gone: no RNTIs trackable, no telemetry.
        assert scope.searcher.synchronized
        assert scope.tracked_rntis == []
        assert len(scope.telemetry) == 0

        # A *new* UE arriving while the scope listens is tracked fine.
        late = sim.make_ue(77, traffic="bulk")
        sim.gnb.add_ue(late, slot_index=sim.clock.index)
        sim.run(seconds=0.5)
        assert late.rnti in scope.tracked_rntis
        assert scope.telemetry.for_rnti(late.rnti)


class TestFidelityParity:
    def test_same_protocol_flow_both_fidelities(self):
        """The gNB side must be bit-identical across fidelities; only
        the sniffer's decode mechanism differs."""
        logs = {}
        for fidelity in ("message", "iq"):
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=73,
                                   fidelity=fidelity)
            NRScope.attach(sim, snr_db=25.0)
            sim.run(seconds=0.2)
            logs[fidelity] = [
                (r.slot_index, r.rnti, r.dci.mcs, r.grant.tbs_bits)
                for r in sim.gnb.log.dci_records]
        assert logs["message"] == logs["iq"]


class TestTelemetryPersistence:
    def test_session_log_roundtrips_through_disk(self, tmp_path):
        sim = Simulation.build(MOSOLAB_PROFILE, n_ues=2, seed=74)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=0.5)
        path = tmp_path / "session.jsonl"
        scope.telemetry.write_jsonl(path)
        reloaded = TelemetryLog.read_jsonl(path)
        assert reloaded.records == scope.telemetry.records
        # Post-hoc analysis works identically on the reloaded log.
        for rnti in reloaded.rntis():
            assert reloaded.bits_between(rnti, 0.0, 1.0) == \
                scope.telemetry.bits_between(rnti, 0.0, 1.0)


class TestFullIqChain:
    def test_iq_session_produces_verified_telemetry(self):
        """IQ fidelity: each telemetry record came from a real polar
        decode + CRC pass over a noisy captured grid."""
        sim = Simulation.build(AMARISOFT_PROFILE, n_ues=2, seed=75,
                               fidelity="iq")
        scope = NRScope.attach(sim, snr_db=12.0)
        sim.run(seconds=0.15)
        truth = [r for r in sim.gnb.log.downlink_records()
                 if r.search_space == "ue"]
        result = match_dcis(truth, scope.telemetry.records,
                            downlink=True)
        assert result.phantom == [], \
            "CRC gating must prevent phantom decodes"
        assert result.miss_rate < 0.1
        # Every decoded record's TBS matches ground truth exactly.
        for gt, est in result.matched:
            assert est.tbs_bits == gt.grant.tbs_bits


class TestCrossConsistency:
    def test_three_views_of_retransmissions_agree(self):
        """gNB HARQ stats, the DCI-stream NDI tracker and the UCI
        HARQ-ACK stream all describe the same process."""
        sim = Simulation.build(AMARISOFT_PROFILE, n_ues=4, seed=76,
                               channel="vehicle", ue_snr_db=15.0)
        scope = NRScope.attach(sim, snr_db=22.0)
        sim.run(seconds=3.0)

        truth = [r for r in sim.gnb.log.downlink_records()
                 if r.search_space == "ue"]
        gnb_ratio = sum(r.is_retransmission for r in truth) / len(truth)
        dci_ratio = scope.telemetry.retransmission_ratio()
        assert dci_ratio == pytest.approx(gnb_ratio, abs=0.05)

        # UCI NACK ratio approximates the first-transmission BLER,
        # which upper-bounds and co-varies with the retx ratio.
        nack_ratios = [scope.uci.nack_ratio(r)
                       for r in scope.uci.rntis()]
        if nack_ratios:
            assert 0.0 <= float(np.mean(nack_ratios)) <= 1.0
            assert (float(np.mean(nack_ratios)) > 0.02) == \
                (gnb_ratio > 0.02)

    def test_spare_plus_used_covers_carrier(self):
        """Per TTI: used PRBs + N * fair share <= carrier width."""
        sim = Simulation.build(MOSOLAB_PROFILE, n_ues=2, seed=77)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=0.5)
        for usage, shares in scope.spare.history:
            if not shares:
                continue
            total_spare = sum(s.spare_prbs for s in shares)
            assert usage.used_prbs + total_spare <= \
                MOSOLAB_PROFILE.n_prb
