"""NR-Scope: the telemetry tool this repository reproduces.

One :class:`NRScope` instance is the paper's Fig 4 box: it attaches to a
simulated cell as a passive observer, finds the cell (MIB/SIB1), sniffs
the RACH for C-RNTIs and UE configurations, decodes every tracked UE's
DCIs each TTI, and feeds the telemetry consumers — throughput
estimation, HARQ/retransmission tracking, spare-capacity computation and
packet-aggregation analysis.

Since the staged-runtime refactor the class is a *facade*: it assembles
a :class:`~repro.core.runtime.SlotRuntime` whose backbone stages carry
the sequential, RNG-bearing work (sync, UCI, capture, RACH) in slot
order, whose single parallel stage runs the per-UE DCI decode on the
configured executor, and whose sink stage commits telemetry in slot
order — so an inline and a threaded session produce byte-identical
telemetry, and an over-budget slot is dropped with accounting rather
than stalling the capture.

Passivity is structural: the scope only reads :class:`SlotOutput`
broadcasts, never the gNB's or UEs' internal state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SI_RNTI
from repro.core.aggregation import PacketAggregationAnalyzer
from repro.core.cell_search import CellSearcher
from repro.core.dci_decoder import DecodedDci, GridDciDecoder, \
    RecordDciDecoder, grid_decode_job, pack_grid_for_decode, \
    pack_tracked_for_decode, record_decode_job
from repro.core.harq_tracker import HarqTrackerBank
from repro.core.rach_sniffer import RachSniffer
from repro.obs.context import AnyObsContext, OBS_NOOP
from repro.core.runtime import Executor, RuntimeStats, SlotContext, \
    SlotRuntime, Stage, build_executor, sharded_grid_decode
from repro.core.sanitizer import Sanitizer, parallel_stage, \
    unwrap_tracked
from repro.core.spare_capacity import SpareCapacityEstimator, TtiUsage
from repro.core.decode_model import uci_decode_succeeds
from repro.core.telemetry import TelemetryLog
from repro.core.throughput import ThroughputBank
from repro.core.uci_telemetry import UciObservation, UciTelemetry
from repro.phy.grant import dci_to_grant
from repro.phy.numerology import slot_duration_s
from repro.gnb.gnb import SlotOutput
from repro.radio.medium import Link


class ScopeError(ValueError):
    """Raised for invalid scope configuration."""


#: Probability the sniffer's one-off RRC Setup PDSCH decode succeeds at
#: workable SNR; PDSCH decode of a 500-byte QPSK block is far more robust
#: than a single-shot DCI, hence the high floor.
_SETUP_DECODE_SNR_FLOOR_DB = -2.0


@dataclass
class ScopeCounters:
    """Operational statistics of one telemetry session."""

    slots_observed: int = 0
    slots_synchronized: int = 0
    dcis_decoded: int = 0
    msg4_seen: int = 0
    msg4_missed: int = 0
    #: Slots whose DCI decode was shed under backpressure, and the
    #: DCI opportunities that went with them (counted DCI misses, the
    #: paper's real-time constraint).
    slots_dropped: int = 0
    dcis_dropped: int = 0

    @property
    def msg4_total(self) -> int:
        return self.msg4_seen + self.msg4_missed


class NRScope:
    """The passive 5G SA telemetry tool."""

    def __init__(self, link: Link, scs_khz: int = 30,
                 fidelity: str = "message", seed: int = 0,
                 window_s: float = 0.2, idle_timeout_s: float = 10.0,
                 packet_bytes: int = 1400, cell_n_id: int = 0,
                 always_decode_setup: bool = False,
                 decode_uci: bool = True,
                 uplink_snr_offset_db: float = 6.0,
                 capture_impairments: bool = False,
                 waveform_bootstrap: bool = False,
                 executor: str | Executor = "inline",
                 n_workers: int = 4, n_dci_threads: int = 1,
                 queue_depth: int = 256,
                 slot_budget_s: float | None = None,
                 batch_kernels: bool = True,
                 sanitizer: Sanitizer | None = None,
                 obs: AnyObsContext | None = None,
                 cell: str | None = None) -> None:
        if fidelity not in ("message", "iq"):
            raise ScopeError(f"unknown fidelity: {fidelity!r}")
        self.link = link
        self.scs_khz = scs_khz
        self.fidelity = fidelity
        self.cell_n_id = cell_n_id
        self.idle_timeout_s = idle_timeout_s
        self.always_decode_setup = always_decode_setup
        # nrsan (opt-in via the sanitizer argument, the nrsan pytest
        # fixture or NRSAN=1): the session RNG is audited and tracked
        # snapshots are write-guarded, proving at runtime the purity
        # contract lint rules R006/R007 prove statically.  Disabled,
        # both hooks return their argument unchanged.
        self._sanitizer = sanitizer if sanitizer is not None \
            else Sanitizer.from_env()
        self._rng = self._sanitizer.audit_rng(np.random.default_rng(seed))
        # Observability bus (repro.obs).  Disabled it is the shared
        # no-op singleton; every emission site is behind ``if
        # self._obs:`` so a disabled session pays one pointer check and
        # allocates nothing.  ``cell`` becomes a constant label on
        # every event (multi-cell fleets share one bus, one globally
        # ordered stream).
        self.cell = cell
        base_obs = obs if obs is not None else OBS_NOOP
        self._obs: AnyObsContext = base_obs.bind(cell=cell) if cell \
            else base_obs
        self._sanitizer.bind_obs(self._obs)

        self.searcher = CellSearcher(sniffer_snr_db=link.snr_db)
        self.counters = ScopeCounters()
        self.telemetry = TelemetryLog()
        self.harq = HarqTrackerBank()
        self.throughput = ThroughputBank(window_s=window_s)
        self.aggregation = PacketAggregationAnalyzer(
            packet_bytes=packet_bytes)
        # UCI decoding (paper section 7 future work): PUCCH comes from
        # the UE's much weaker transmitter, hence the SNR offset.
        self.decode_uci = decode_uci
        self.uplink_snr_offset_db = uplink_snr_offset_db
        self.uci = UciTelemetry()
        # Front-end impairments: a slowly drifting complex gain applied
        # to every IQ capture (oscillator drift / AGC wobble).  The grid
        # decoder then equalises from the DMRS pilots like a real
        # receiver must.
        self.capture_impairments = capture_impairments
        self._capture_phase = 0.0
        self._capture_amplitude = 1.0
        # Waveform bootstrap: ignore message-layer MIBs and acquire the
        # cell from the SSB samples (PSS/SSS correlation + PBCH decode).
        self.waveform_bootstrap = waveform_bootstrap
        self.acquisitions = 0

        # Built once SIB 1 lands:
        self.rach: RachSniffer | None = None
        self.spare: SpareCapacityEstimator | None = None
        self._record_decoder: RecordDciDecoder | None = None
        self._grid_decoder: GridDciDecoder | None = None
        self._usrp = None
        self._slot_duration_s = slot_duration_s(scs_khz)
        self._prune_interval_slots = int(round(1.0 / self._slot_duration_s))

        # The staged slot pipeline (paper Fig 4).  Backbone stages hold
        # every RNG draw and every tracked-table mutation, so slot order
        # alone fixes the session's randomness; the one parallel stage
        # (per-UE DCI decode) is pure and safe to run out of order; the
        # sink commits telemetry in slot order behind the runtime's
        # reorder buffer.
        self.n_dci_threads = n_dci_threads
        #: Batched PHY kernels: stack every candidate of the slot
        #: through vectorized gather/demod/descramble/polar instead of
        #: per-candidate scalar calls (bit-identical outputs; ablatable
        #: for the Fig 12 / bench comparison).
        self.batch_kernels = batch_kernels
        self._runtime = SlotRuntime(
            stages=[
                Stage("sync", self._stage_sync),
                Stage("prune", self._stage_prune),
                Stage("uci", self._stage_uci),
                Stage("capture", self._stage_capture),
                Stage("rach", self._stage_rach),
                Stage("dci", self._stage_dci, parallel=True,
                      pack=self._pack_dci, merge=self._merge_dci),
                Stage("sinks", self._stage_sinks, sink=True),
            ],
            executor=build_executor(executor, n_workers=n_workers,
                                    n_dci_threads=n_dci_threads,
                                    queue_depth=queue_depth),
            slot_budget_s=slot_budget_s or self._slot_duration_s,
            drop_cost=self._drop_cost,
            sanitizer=self._sanitizer,
            obs=self._obs)
        if self._obs:
            self._obs.emit("session.start", fidelity=fidelity,
                           executor=self._runtime.executor.name,
                           seed=seed)

    # ----------------------------------------------------- attachment
    @classmethod
    def attach(cls, sim, snr_db: float | None = None, position=None,
               fidelity: str | None = None, **kwargs) -> "NRScope":
        """Create a scope listening to a :class:`~repro.simulation.Simulation`.

        The sniffer's link budget comes from the simulation's radio
        medium (or an explicit ``snr_db``); fidelity defaults to the
        gNB's mode so grids are only rendered when they will be used.
        """
        link = sim.sniffer_link(position=position, snr_db=snr_db)
        if "obs" in kwargs:
            kwargs.setdefault("cell", getattr(sim.profile, "name", None))
        scope = cls(link=link, scs_khz=sim.profile.scs_khz,
                    fidelity=fidelity or sim.gnb.fidelity,
                    cell_n_id=sim.profile.cell_id, **kwargs)
        sim.add_observer(scope.observe_slot, flush=scope.flush)
        return scope

    # ----------------------------------------------------- lifecycle
    def _on_synchronized(self) -> None:
        """SIB 1 landed: build the post-sync machinery."""
        knowledge = self.searcher.knowledge
        assert knowledge is not None and knowledge.n_prb is not None
        self.rach = RachSniffer(bwp_n_prb=knowledge.n_prb)
        self.spare = SpareCapacityEstimator(
            grant_config=knowledge.base_grant_config(),
            n_prb_carrier=knowledge.n_prb)
        self._record_decoder = RecordDciDecoder(
            sniffer_snr_db=self.link.snr_db,
            seed=int(self._rng.integers(0, 2**31)))
        self._grid_decoder = GridDciDecoder(
            dci_cfg=knowledge.dci_size_config(), n_id=self.cell_n_id,
            noise_var=self.link.noise_variance(),
            equalize=self.capture_impairments)

    @property
    def tracked_rntis(self) -> list[int]:
        """RNTIs currently under telemetry."""
        if self.rach is None:
            return []
        return sorted(self.rach.tracked)

    # ------------------------------------------------------- RACH path
    def _setup_decode_succeeds(self, body=None, rnti: int = 0) -> bool:
        """The one-off RRC Setup PDSCH decode.

        In iq fidelity the Setup body really rides the coded PDSCH
        chain (CRC24A + segmented polar + scrambling + QPSK) through
        the sniffer's noisy capture; in message fidelity a calibrated
        roll stands in (the chain decodes reliably above ~0 dB).
        """
        if self.link.snr_db < _SETUP_DECODE_SNR_FLOOR_DB:
            return False
        if self.fidelity == "iq" and body is not None:
            from repro.phy.pdsch import decode_pdsch_transport_block, \
                encode_pdsch_transport_block
            payload = body.encode()
            symbols = encode_pdsch_transport_block(payload, rnti,
                                                   self.cell_n_id)
            noise_var = self.link.noise_variance()
            scale = np.sqrt(noise_var / 2.0)
            noisy = symbols \
                + self._rng.normal(0, scale, symbols.size) \
                + 1j * self._rng.normal(0, scale, symbols.size)
            decoded = decode_pdsch_transport_block(
                noisy, payload.size, rnti, self.cell_n_id, noise_var)
            return decoded is not None \
                and bool(np.array_equal(decoded, payload))
        return bool(self._rng.random() < 0.995)

    def _handle_msg4_decode(self, rnti: int, output: SlotOutput,
                            decoded: bool,
                            events: list | None = None) -> None:
        assert self.rach is not None
        if self.rach.is_tracked(rnti) or \
                rnti in self.rach.missed_rach_rntis:
            return
        slot_index = output.slot.index
        if not decoded:
            self.rach.miss(rnti)
            self.counters.msg4_missed += 1
            if events is not None:
                events.append(("msg4.miss", {
                    "slot": slot_index, "rnti": rnti, "stage": "rach",
                    "reason": "msg4_decode"}))
            return
        setup = None
        needs_setup = self.rach.cached_setup is None \
            or self.always_decode_setup
        if needs_setup:
            body = next((m.rrc_setup for m in output.msg4_records
                         if m.tc_rnti == rnti), None)
            if body is None or not self._setup_decode_succeeds(body,
                                                               rnti):
                self.rach.miss(rnti)
                self.counters.msg4_missed += 1
                if events is not None:
                    events.append(("msg4.miss", {
                        "slot": slot_index, "rnti": rnti,
                        "stage": "rach", "reason": "rrc_setup"}))
                return
            setup = body
        self.rach.discover(rnti, output.slot.time_s, setup)
        self.counters.msg4_seen += 1
        if events is not None:
            events.append(("msg4.tracked", {
                "slot": slot_index, "rnti": rnti, "stage": "rach"}))

    def _sniff_rach_message_mode(self, output: SlotOutput,
                                 events: list | None = None) -> None:
        assert self._record_decoder is not None
        for record, ok in self._record_decoder.decode_common(
                output.dci_records):
            if record.rnti == SI_RNTI:
                continue
            self._handle_msg4_decode(record.rnti, output, ok, events)

    def _sniff_rach_iq_mode(self, grid, output: SlotOutput,
                            events: list | None = None) -> None:
        assert self._grid_decoder is not None
        knowledge = self.searcher.knowledge
        assert knowledge is not None
        decoded_rntis = set()
        for item in self._grid_decoder.blind_decode_common(
                grid, output.slot.index, knowledge.common_search_space()):
            if item.dci.rnti == SI_RNTI:
                continue
            decoded_rntis.add(item.dci.rnti)
            self._handle_msg4_decode(item.dci.rnti, output,
                                     decoded=True, events=events)
        # MSG 4s transmitted this slot but not blind-decoded are missed
        # forever (the sniffer of course cannot see this; we account it
        # from ground truth for the counters only).
        for record in output.msg4_records:
            if record.tc_rnti not in decoded_rntis:
                self._handle_msg4_decode(record.tc_rnti, output,
                                         decoded=False, events=events)

    # ------------------------------------------------------- DCI path
    def _process_decoded(self, decoded: list[DecodedDci],
                         output: SlotOutput) -> TtiUsage:
        assert self.rach is not None
        time_s = output.slot.time_s
        slot_index = output.slot.index
        per_ue_prbs: dict[int, int] = {}
        per_ue_mcs: dict[int, int] = {}
        used_prbs = 0
        for item in decoded:
            dci = item.dci
            ue = self.rach.tracked.get(dci.rnti)
            if ue is None:
                continue
            ue.touch(time_s)
            ue.decoded_dcis += 1
            grant = dci_to_grant(dci, ue.grant_config)
            is_retx = self.harq.observe(dci.rnti, dci.harq_id, dci.ndi,
                                        grant.downlink)
            self.telemetry.append_decode(
                slot_index=slot_index, time_s=time_s, dci=dci,
                grant=grant, aggregation_level=item.aggregation_level,
                is_retransmission=is_retx)
            self.counters.dcis_decoded += 1
            if not is_retx:
                self.throughput.add(dci.rnti, grant.downlink, time_s,
                                    grant.tbs_bits)
                if grant.downlink:
                    self.aggregation.observe(time_s, dci.rnti,
                                             grant.tbs_bits)
            if grant.downlink:
                per_ue_prbs[dci.rnti] = per_ue_prbs.get(dci.rnti, 0) \
                    + grant.n_prb
                per_ue_mcs[dci.rnti] = grant.mcs.index
                used_prbs += grant.n_prb
        return TtiUsage(slot_index=slot_index, time_s=time_s,
                        used_prbs=used_prbs, per_ue_prbs=per_ue_prbs,
                        per_ue_mcs=per_ue_mcs)

    # ------------------------------------------------------ main loop
    def observe_slot(self, output: SlotOutput) -> None:
        """Consume one slot of the air interface."""
        self._runtime.submit(output)

    def flush(self, timeout_s: float | None = None) -> None:
        """Barrier on in-flight slots; telemetry is complete after."""
        self._runtime.flush(timeout_s)

    def close(self) -> None:
        """Flush and stop the runtime's workers."""
        self._runtime.close()
        if self._obs:
            self._obs.emit(
                "session.end",
                slots=self.counters.slots_observed,
                dcis_decoded=self.counters.dcis_decoded,
                dcis_dropped=self.counters.dcis_dropped,
                msg4_missed=self.counters.msg4_missed)

    @property
    def runtime_stats(self) -> RuntimeStats:
        """Per-stage timing/counter snapshot of the slot runtime."""
        return self._runtime.stats()

    # ---------------------------------------------------- checkpointing
    def checkpoint_state(self) -> dict:
        """Everything needed to resume this session after a restart.

        Flushes the runtime first, so the snapshot sits on a slot
        boundary with no in-flight decodes.  The dict holds *live*
        references (tracked tables, the columnar telemetry store, RNG
        states) — callers must serialise it before stepping the session
        again.  The runtime itself (executors, locks) is deliberately
        absent: a restored scope brings its own.
        """
        self.flush()
        return {
            "searcher": self.searcher,
            "counters": self.counters,
            "telemetry": self.telemetry,
            "harq": self.harq,
            "throughput": self.throughput,
            "aggregation": self.aggregation,
            "uci": self.uci,
            "rach": self.rach,
            "spare": self.spare,
            "acquisitions": self.acquisitions,
            "capture_phase": self._capture_phase,
            "capture_amplitude": self._capture_amplitude,
            "rng_state": self._rng.bit_generator.state,
            "record_decoder": None if self._record_decoder is None
            else self._record_decoder.checkpoint_state(),
            "grid_decoder": None if self._grid_decoder is None
            else self._grid_decoder.checkpoint_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`checkpoint_state` snapshot.

        Call on a freshly attached scope before any slot is observed.
        The restored searcher is already synchronized, so the
        ``_on_synchronized`` hook never re-fires (its RNG draw already
        happened in the checkpointed session — the restored RNG state
        sits after it).
        """
        self.searcher = state["searcher"]
        self.counters = state["counters"]
        self.telemetry = state["telemetry"]
        self.harq = state["harq"]
        self.throughput = state["throughput"]
        self.aggregation = state["aggregation"]
        self.uci = state["uci"]
        self.rach = state["rach"]
        self.spare = state["spare"]
        self.acquisitions = state["acquisitions"]
        self._capture_phase = state["capture_phase"]
        self._capture_amplitude = state["capture_amplitude"]
        self._rng.bit_generator.state = state["rng_state"]
        record = state["record_decoder"]
        self._record_decoder = None if record is None \
            else RecordDciDecoder.from_state(record)
        grid = state["grid_decoder"]
        self._grid_decoder = None if grid is None \
            else GridDciDecoder.from_state(grid)

    # -------------------------------------------------------- stages
    def _stage_sync(self, ctx: SlotContext) -> bool | None:
        """Cell acquisition / broadcast decode; halts pre-sync slots."""
        output = ctx.output
        self.counters.slots_observed += 1
        if output.mib is not None:
            if self.waveform_bootstrap:
                mib = self._acquire_from_waveform(output)
                if mib is not None:
                    self.searcher.on_mib(mib)
            else:
                self.searcher.on_mib(output.mib)
        if output.sib1 is not None:
            was_synced = self.searcher.synchronized
            self.searcher.on_sib1(output.sib1)
            if self.searcher.synchronized and not was_synced:
                self._on_synchronized()
                if self._obs:
                    ctx.events.append(("sync.acquired", {
                        "slot": output.slot.index, "stage": "sync"}))
        if not self.searcher.synchronized:
            return False
        return None

    def _stage_prune(self, ctx: SlotContext) -> None:
        """Age out idle RNTIs once a second.

        The tracked table is only ever mutated on the backbone, so the
        prune first barriers on in-flight slots: every earlier slot's
        activity marks have then committed, and the surviving set is
        the same whichever executor ran the decodes.
        """
        if self.rach is None:
            return
        output = ctx.output
        if output.slot.index % self._prune_interval_slots != 0:
            return
        self._runtime.flush()
        for rnti in self.rach.prune_idle(output.slot.time_s,
                                         self.idle_timeout_s):
            self.harq.forget(rnti)
            self.throughput.forget(rnti)
            self.uci.forget(rnti)

    def _stage_uci(self, ctx: SlotContext) -> None:
        """Decode PUCCH reports of tracked UEs (message-level model;
        the UL waveform is not rendered in either fidelity).

        Decode decisions draw the session RNG here on the backbone;
        the activity marks they imply are deferred to the sink stage so
        they land in slot order under every executor.
        """
        output = ctx.output
        if output.uci_records and self.decode_uci and \
                self.rach is not None:
            snr = self.link.snr_db - self.uplink_snr_offset_db
            for record in output.uci_records:
                if not self.rach.is_tracked(record.rnti):
                    continue
                if not uci_decode_succeeds(snr, self._rng):
                    continue
                report = record.report
                self.uci.add(UciObservation(
                    slot_index=record.slot_index, time_s=record.time_s,
                    rnti=record.rnti, cqi=report.cqi,
                    scheduling_request=report.scheduling_request,
                    harq_ack=report.harq_ack))
                ctx.touch_marks.append((record.rnti, record.time_s))
        if not output.is_downlink:
            ctx.skip_decode = True

    def _stage_capture(self, ctx: SlotContext) -> None:
        """Noisy IQ capture of the slot (the virtual USRP front end)."""
        if ctx.skip_decode:
            return
        output = ctx.output
        self.counters.slots_synchronized += 1
        if self.fidelity == "iq":
            if output.grid is None:
                ctx.skip_decode = True
                return
            ctx.grid = self._capture(output)

    def _stage_rach(self, ctx: SlotContext) -> None:
        """Common-space sniffing: MSG 4 discovery, then snapshot the
        tracked table for the parallel decode."""
        if ctx.skip_decode:
            return
        output = ctx.output
        assert self.rach is not None
        events = ctx.events if self._obs else None
        if self.fidelity == "iq":
            self._sniff_rach_iq_mode(ctx.grid, output, events)
        else:
            self._sniff_rach_message_mode(output, events)
        ctx.tracked = self._sanitizer.guard_tracked(dict(self.rach.tracked))

    @parallel_stage
    def _stage_dci(self, ctx: SlotContext) -> None:
        """Per-UE DCI decode — the parallel stage.  Pure given the
        captured grid / slot records and the tracked snapshot.  The
        decorator marks it as a purity root for lint rule R006 and for
        the nrsan runtime guard."""
        output = ctx.output
        if self.fidelity == "iq":
            assert self._grid_decoder is not None
            ctx.decoded = sharded_grid_decode(
                self._grid_decoder, ctx.grid, output.slot.index,
                ctx.tracked, self.n_dci_threads,
                mapper=self._runtime.executor.map,
                batch=self.batch_kernels)
        else:
            assert self._record_decoder is not None
            miss_log: list[tuple[int, int, int]] | None = \
                [] if self._obs else None
            ctx.decoded = self._record_decoder.decode_slot(
                output.dci_records, ctx.tracked, miss_log)
            if miss_log:
                self._log_dci_misses(ctx, miss_log)

    @staticmethod
    def _log_dci_misses(ctx: SlotContext,
                        miss_log: list[tuple[int, int, int]]) -> None:
        """Queue one ``dci.miss`` event per missed decode; the runtime
        emits the queue at commit, so the stream is identical whether
        the misses happened inline, on a thread, or in a worker
        process (where the log rode the pickled job result)."""
        for slot_index, rnti, level in miss_log:
            ctx.events.append(("dci.miss", {
                "slot": slot_index, "rnti": rnti, "stage": "dci",
                "reason": "bler", "level": level}))

    def _pack_dci(self, ctx: SlotContext):
        """Picklable ``(job, payload)`` for a process executor.

        Mirrors :meth:`_stage_dci` exactly — same sharding, same batch
        flag, same decoder configuration — so a worker process produces
        the byte-identical decoded list the inline stage would.  The
        tracked snapshot is unwrapped from any nrsan guards (they hold
        thread-locals and cannot pickle); the workers' copies are
        private, so the no-mutation contract holds by construction.
        """
        output = ctx.output
        tracked = unwrap_tracked(ctx.tracked)
        if self.fidelity == "iq":
            dec = self._grid_decoder
            assert dec is not None
            return grid_decode_job, {
                "dci_cfg": dec.dci_cfg, "n_id": dec.n_id,
                "noise_var": dec.noise_var,
                "use_energy_gate": dec.use_energy_gate,
                "use_cce_claiming": dec.use_cce_claiming,
                "equalize": dec.equalize,
                "grid": pack_grid_for_decode(ctx.grid, tracked),
                "slot_index": output.slot.index,
                "tracked": pack_tracked_for_decode(tracked),
                "n_shards": self.n_dci_threads,
                "batch": self.batch_kernels,
            }
        rec = self._record_decoder
        assert rec is not None
        # The record decode only tests RNTI membership, so the wire
        # carries an immutable projection of the tracked table rather
        # than the live dict (which the backbone keeps mutating while
        # the pickle walks it — lint rule R009).
        return record_decode_job, {
            "snr_db": rec.sniffer_snr_db, "seed": rec.seed,
            "records": output.dci_records,
            "tracked": frozenset(tracked),
            "collect_misses": bool(self._obs),
        }

    def _merge_dci(self, ctx: SlotContext, result) -> None:
        """Fold a worker's pickled decode result back into the slot
        (runs on the backbone, so plain counter adds are safe)."""
        if self.fidelity == "iq":
            decoded, attempts = result
            assert self._grid_decoder is not None
            self._grid_decoder.attempts += attempts
        else:
            decoded, attempts, misses, miss_log = result
            assert self._record_decoder is not None
            self._record_decoder.attempts += attempts
            self._record_decoder.misses += misses
            if miss_log:
                self._log_dci_misses(ctx, miss_log)
        ctx.decoded = decoded

    def _drop_cost(self, ctx: SlotContext) -> int:
        """DCIs lost with a shed slot: the tracked UE-space DCIs it
        carried (counted from ground truth, for the counters only —
        like the iq-mode MSG 4 miss accounting)."""
        output = ctx.output
        return sum(1 for record in output.dci_records
                   if record.search_space == "ue"
                   and record.rnti in ctx.tracked)

    def _stage_sinks(self, ctx: SlotContext) -> None:
        """Telemetry commit, strictly in slot order."""
        output = ctx.output
        if self.rach is not None:
            for rnti, time_s in ctx.touch_marks:
                ue = self.rach.tracked.get(rnti)
                if ue is not None:
                    ue.touch(time_s)
        if ctx.skip_decode:
            return
        if ctx.dropped:
            self.counters.slots_dropped += 1
            self.counters.dcis_dropped += self._drop_cost(ctx)
            if self._obs:
                # One failure event per DCI opportunity the shed slot
                # carried (direct emission is safe here: sinks always
                # run on the backbone, in commit order).
                for record in output.dci_records:
                    if record.search_space == "ue" \
                            and record.rnti in ctx.tracked:
                        self._obs.emit(
                            "dci.drop", slot=output.slot.index,
                            rnti=record.rnti, stage="dci",
                            reason="backpressure")
            return
        assert self.spare is not None
        decoded_before = self.counters.dcis_decoded
        usage = self._process_decoded(ctx.decoded, output)
        self.spare.observe_tti(usage, known_rntis=self.tracked_rntis)
        if self._obs:
            n_decoded = self.counters.dcis_decoded - decoded_before
            if n_decoded:
                self._obs.count("dci.decoded", value=n_decoded,
                                slot=output.slot.index, stage="sinks")

    def _acquire_from_waveform(self, output: SlotOutput):
        """PSS/SSS search + PBCH decode over the noisy SSB burst."""
        if output.ssb_samples is None or output.mib is None:
            return None
        from repro.core.acquisition import acquire_cell
        samples = np.asarray(output.ssb_samples, dtype=np.complex128)
        noise_var = self.link.noise_variance()
        scale = np.sqrt(noise_var / 2.0)
        noisy = samples + self._rng.normal(0, scale, samples.size) \
            + 1j * self._rng.normal(0, scale, samples.size)
        result = acquire_cell(noisy, output.mib.encode().size,
                              noise_var)
        if result is None or result.cell_id != self.cell_n_id:
            return None
        self.acquisitions += 1
        return result.mib

    def _capture(self, output: SlotOutput):
        """Noisy capture of the transmitted grid (the virtual USRP)."""
        assert output.grid is not None
        captured = output.grid.clone_with_noise(self.link.snr_db,
                                                self._rng)
        if self.capture_impairments:
            # Random-walk phase (oscillator drift) and a mild amplitude
            # wobble around the AGC set point.
            self._capture_phase += float(self._rng.normal(0.0, 0.05))
            self._capture_amplitude = float(np.clip(
                self._capture_amplitude
                + self._rng.normal(0.0, 0.01), 0.7, 1.4))
            captured.data *= self._capture_amplitude \
                * np.exp(1j * self._capture_phase)
        return captured

    # ------------------------------------------------------ reporting
    def per_ue_throughput(self, now_s: float,
                          downlink: bool = True) -> dict[int, float]:
        """Current windowed bit-rate estimate per tracked UE."""
        return {rnti: self.throughput.rate_bps(rnti, now_s, downlink)
                for rnti in self.tracked_rntis}
