"""Tests for the text report renderer."""

import pytest

from repro.analysis.report import ReportError, Table, print_tables, \
    series_table


class TestTable:
    def test_render_aligned(self):
        table = Table(title="Demo", columns=("name", "value"),
                      rows=(("a", 1), ("longer", 2.5)))
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "longer" in lines[4]
        assert all(len(line) for line in lines[1:])

    def test_float_formatting(self):
        table = Table(title="t", columns=("x",),
                      rows=((0.123456,), (1e-5,), (3.0,)))
        text = table.render()
        assert "0.123" in text
        assert "e-05" in text

    def test_row_width_mismatch(self):
        table = Table(title="t", columns=("a", "b"), rows=((1,),))
        with pytest.raises(ReportError):
            table.render()


class TestSeriesTable:
    def test_downsamples(self):
        series = [(float(i), float(i * i)) for i in range(100)]
        table = series_table("s", series, "x", "y", max_rows=10)
        assert len(table.rows) <= 12
        assert table.rows[-1] == (99.0, 99.0 * 99.0)

    def test_empty_rejected(self):
        with pytest.raises(ReportError):
            series_table("s", [], "x", "y")


class TestPrint:
    def test_returns_joined_text(self, capsys):
        tables = [Table("a", ("x",), ((1,),)),
                  Table("b", ("y",), ((2,),))]
        text = print_tables(tables)
        captured = capsys.readouterr().out
        assert "a" in text and "b" in text
        assert captured.strip() == text.strip()
