"""R004: raw slot/frame modular arithmetic outside the numerology layer.

``slot_index % 20`` hard-codes the 30 kHz slots-per-frame count;
``sfn % 1024`` hard-codes the SFN modulus.  Both are correct today and
silently wrong the day a 15/60 kHz profile (or a longer counter) walks
through the same code — the exact class of drift the paper's telemetry
loop cannot tolerate.  Slot and frame reductions must route through
:mod:`repro.phy.numerology` (``slots_per_frame``, ``SlotClock``) or
the named constants (``SFN_MODULO``).

``phy/numerology.py`` and ``constants.py`` are exempt: they are the
helpers this rule funnels everyone towards.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import constant_definition_spans, float_value, \
    int_value
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Moduli that encode slot/frame structure: slots per frame at each SCS
#: (10/20/40), subframes and half-frames in symbols terms (80/160) and
#: the SFN wrap.
SLOT_FRAME_MODULI = {10, 20, 40, 80, 160, 320, 640, 1024}

#: The modules allowed to do raw numerology arithmetic.
EXEMPT_BASENAMES = {"numerology.py", "constants.py"}

#: The SCS values (kHz) an FR1 duration table would be keyed by.
SCS_KHZ = {15, 30, 60}


def _is_scs_table(node: ast.Dict) -> bool:
    """An inline ``{scs_khz: number}`` table with at least two rows.

    That shape is a private re-derivation of numerology facts
    (``TTI_DURATION_S``, ``SLOTS_PER_SUBFRAME``) — the drift the
    numerology helpers exist to prevent.
    """
    keys = [int_value(k) for k in node.keys if k is not None]
    if len(keys) < 2 or len(keys) != len(node.keys):
        return False
    if not all(k in SCS_KHZ for k in keys):
        return False
    return all(int_value(v) is not None or float_value(v) is not None
               for v in node.values)


@register
class SlotArithmeticRule(Rule):
    """Flag slot/frame modulo reductions that bypass numerology."""

    rule_id = "R004"
    title = "raw slot/frame arithmetic bypassing the numerology helpers"

    def applies(self, rel: str) -> bool:
        return rel.rsplit("/", 1)[-1] not in EXEMPT_BASENAMES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        spans = constant_definition_spans(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, ast.Mod):
                modulus = int_value(node.right)
                if modulus in SLOT_FRAME_MODULI:
                    yield self.finding(
                        ctx, node,
                        f"raw '% {modulus}' slot/frame arithmetic: use "
                        f"slots_per_frame()/SlotClock or the named "
                        f"constant (SFN_MODULO) so other numerologies "
                        f"stay correct")
                continue
            if isinstance(node, ast.Dict) and _is_scs_table(node):
                line = node.lineno
                if any(start <= line <= end for start, end in spans):
                    continue
                yield self.finding(
                    ctx, node,
                    "inline SCS-keyed numerology table: use "
                    "phy.numerology (slot_duration_s, slots_per_frame) "
                    "or the named constants (TTI_DURATION_S) instead of "
                    "re-deriving it")
